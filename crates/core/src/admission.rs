//! Bandwidth-accounting admission control.
//!
//! The paper's conclusion (§5.7, §6): "Admission control criteria … have to
//! consider what is the maximum load and proportion of VBR to best-effort
//! traffic that will provide statistically acceptable QoS". This module
//! implements the natural controller: track the real-time bandwidth
//! reserved on every physical link, and admit a stream only if every link
//! of its deterministic route stays below a configurable utilisation
//! threshold — the threshold being exactly the jitter-free operating point
//! the experiments identify (≈ 0.7–0.8 of link bandwidth for a single
//! MediaWorm switch).

use std::collections::HashMap;

use flitnet::{NodeId, PortId, RouterId, StreamId};
use topo::{PortTarget, Topology};

/// A link (or fat bundle) in a route: router `r`'s output port `p` —
/// lowest member port when parallel links bundle toward one neighbour —
/// (the injection link is represented by the attachment router's input,
/// keyed specially).
type LinkKey = (u32, u32);

/// Tracks per-link reserved bandwidth and admits or rejects streams.
///
/// # Example
///
/// ```
/// use mediaworm::AdmissionController;
/// use flitnet::{NodeId, StreamId};
/// use topo::Topology;
///
/// let topology = Topology::single_switch(8);
/// // 400 Mbps links, admit up to 80 % real-time utilisation.
/// let mut ac = AdmissionController::new(&topology, 400e6, 0.8);
/// // 80 streams of 4 Mbps fit under the 320 Mbps ceiling…
/// for k in 0..80 {
///     assert!(ac.admit(StreamId(k), NodeId(0), NodeId(1), 4e6).is_ok());
/// }
/// // …the 81st does not.
/// assert!(ac.admit(StreamId(80), NodeId(0), NodeId(1), 4e6).is_err());
/// ```
#[derive(Debug, Clone)]
pub struct AdmissionController {
    topology: Topology,
    link_bps: f64,
    threshold: f64,
    reserved: HashMap<LinkKey, f64>,
    /// Per admitted stream: each route link's key and aggregate capacity
    /// (kept so `release` can scale its cleanup threshold per bundle; the
    /// injection pseudo-key cannot be recovered from `bundle_of`).
    routes: HashMap<u32, Vec<(LinkKey, f64)>>,
}

/// Why a stream was rejected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionError {
    /// The saturated link (router id, output port).
    pub link: (RouterId, PortId),
    /// The utilisation the stream would have pushed the link to.
    pub would_be_utilisation: f64,
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "admission denied: link {}:{} would reach {:.1}% utilisation",
            self.link.0,
            self.link.1,
            self.would_be_utilisation * 100.0
        )
    }
}

impl std::error::Error for AdmissionError {}

/// Why a release failed: the stream was never admitted (or was already
/// released).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReleaseError {
    /// The stream the caller tried to release.
    pub stream: StreamId,
}

impl std::fmt::Display for ReleaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "release failed: stream {} was not admitted", self.stream)
    }
}

impl std::error::Error for ReleaseError {}

impl AdmissionController {
    /// Creates a controller for `topology` with links of `link_bps` and a
    /// real-time utilisation ceiling of `threshold` (fraction of link
    /// bandwidth).
    ///
    /// # Panics
    ///
    /// Panics if `link_bps` is not positive or `threshold` is outside
    /// `(0, 1]`.
    pub fn new(topology: &Topology, link_bps: f64, threshold: f64) -> AdmissionController {
        assert!(link_bps > 0.0, "link bandwidth must be positive");
        assert!(
            threshold > 0.0 && threshold <= 1.0,
            "threshold must be in (0, 1]"
        );
        AdmissionController {
            topology: topology.clone(),
            link_bps,
            threshold,
            reserved: HashMap::new(),
            routes: HashMap::new(),
        }
    }

    /// The links a `src → dest` stream traverses under deterministic
    /// routing, each with its aggregate capacity in bps, plus the
    /// injection link encoded as `(u32::MAX, src)`.
    ///
    /// On fat bundles the router spreads flits across every parallel link
    /// by instantaneous load, so the reservation is keyed by the *bundle*
    /// (its lowest member port) and metered against `width × link_bps` —
    /// booking only the first candidate link both rejected streams the
    /// bundle could carry and left the other members unaccounted.
    ///
    /// Keys come from [`AdmissionController::bundle_of`], the same
    /// function `utilisation` reads with: keying by `min(route
    /// candidates)` instead used to desynchronise the two whenever routing
    /// offered a strict subset of a bundle (reserve under one key, read
    /// another — utilisation silently reported 0).
    fn route_links(&self, src: NodeId, dest: NodeId) -> Vec<(LinkKey, f64)> {
        let mut links = vec![((u32::MAX, src.get()), self.link_bps)];
        let (mut at, _) = self.topology.attachment(src);
        let (goal, _) = self.topology.attachment(dest);
        loop {
            let cands = self.topology.route(at, dest);
            links.push(self.bundle_of(at, cands[0]));
            if at == goal {
                break;
            }
            match self.topology.target_of(at, cands[0]) {
                PortTarget::Router { router, .. } => at = router,
                PortTarget::Node(_) => break,
            }
        }
        links
    }

    /// The bundle containing router `r`'s output port `p`: its key (the
    /// lowest member port) and aggregate capacity. Node-facing ports are
    /// their own single-link bundle.
    fn bundle_of(&self, r: RouterId, p: PortId) -> (LinkKey, f64) {
        match self.topology.target_of(r, p) {
            PortTarget::Router { router: next, .. } => {
                let mut width = 0u32;
                let mut key_port = u32::MAX;
                for q in 0..self.topology.ports_of(r) {
                    if let PortTarget::Router { router, .. } = self.topology.target_of(r, PortId(q))
                    {
                        if router == next {
                            width += 1;
                            key_port = key_port.min(q);
                        }
                    }
                }
                ((r.get(), key_port), self.link_bps * f64::from(width))
            }
            PortTarget::Node(_) => ((r.get(), p.get()), self.link_bps),
        }
    }

    /// Requests admission for a stream of `rate_bps` from `src` to `dest`.
    ///
    /// On success the bandwidth is reserved on every link of the route
    /// until [`AdmissionController::release`].
    ///
    /// # Errors
    ///
    /// Returns the first link whose real-time reservation would exceed the
    /// threshold.
    ///
    /// # Panics
    ///
    /// Panics if `rate_bps` is not positive or the stream id is already
    /// admitted.
    pub fn admit(
        &mut self,
        stream: StreamId,
        src: NodeId,
        dest: NodeId,
        rate_bps: f64,
    ) -> Result<(), AdmissionError> {
        assert!(rate_bps > 0.0, "stream rate must be positive");
        assert!(
            !self.routes.contains_key(&stream.get()),
            "stream {stream} already admitted"
        );
        let links = self.route_links(src, dest);
        for (key, capacity_bps) in &links {
            let used = self.reserved.get(key).copied().unwrap_or(0.0);
            let would = (used + rate_bps) / capacity_bps;
            // Relative epsilon: an absolute one is meaningless across the
            // ~1e8 dynamic range of link rates, and repeated admit/release
            // cycles accumulate relative rounding error.
            if would > self.threshold * (1.0 + 1e-9) {
                return Err(AdmissionError {
                    link: (RouterId(key.0), PortId(key.1)),
                    would_be_utilisation: would,
                });
            }
        }
        for (key, _) in &links {
            *self.reserved.entry(*key).or_insert(0.0) += rate_bps;
        }
        self.routes.insert(stream.get(), links);
        Ok(())
    }

    /// Releases a previously admitted stream's reservations.
    ///
    /// # Errors
    ///
    /// Returns [`ReleaseError`] if the stream was never admitted (or was
    /// already released); the controller's state is unchanged.
    pub fn release(&mut self, stream: StreamId, rate_bps: f64) -> Result<(), ReleaseError> {
        let links = self
            .routes
            .remove(&stream.get())
            .ok_or(ReleaseError { stream })?;
        for (key, capacity_bps) in links {
            let used = self.reserved.get_mut(&key).expect("reservation exists");
            // Clamp at zero: subtraction can undershoot by a few ulps and a
            // negative reservation would let later admissions overshoot the
            // threshold. The drop-the-entry threshold scales with the
            // *bundle's* aggregate capacity — a fixed `link_bps * 1e-12`
            // under-cleans wide bundles, whose ulp-scale residue is
            // proportionally larger.
            *used = (*used - rate_bps).max(0.0);
            if *used <= capacity_bps * 1e-12 {
                self.reserved.remove(&key);
            }
        }
        Ok(())
    }

    /// Current real-time utilisation of the link (or fat bundle) that
    /// router `r`'s output port `p` belongs to — every member port of a
    /// bundle reports the same aggregate figure.
    pub fn utilisation(&self, r: RouterId, p: PortId) -> f64 {
        let (key, capacity_bps) = self.bundle_of(r, p);
        self.reserved.get(&key).copied().unwrap_or(0.0) / capacity_bps
    }

    /// Number of admitted streams.
    pub fn admitted(&self) -> usize {
        self.routes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_until_threshold_then_rejects() {
        let t = Topology::single_switch(8);
        let mut ac = AdmissionController::new(&t, 400e6, 0.7);
        // 0.7 × 400 Mbps = 280 Mbps = 70 streams of 4 Mbps on one route.
        for k in 0..70 {
            ac.admit(StreamId(k), NodeId(0), NodeId(1), 4e6).unwrap();
        }
        let err = ac
            .admit(StreamId(70), NodeId(0), NodeId(1), 4e6)
            .unwrap_err();
        assert!(err.would_be_utilisation > 0.7);
        assert_eq!(ac.admitted(), 70);
    }

    #[test]
    fn different_routes_do_not_interfere() {
        let t = Topology::single_switch(8);
        let mut ac = AdmissionController::new(&t, 400e6, 0.5);
        for k in 0..50 {
            ac.admit(StreamId(k), NodeId(0), NodeId(1), 4e6).unwrap();
        }
        // The 0→1 ejection link is full, but 2→3 is untouched… except the
        // injection link of node 2 which is also fresh.
        assert!(ac.admit(StreamId(100), NodeId(2), NodeId(3), 4e6).is_ok());
        // A new stream into node 1 hits the saturated ejection link.
        assert!(ac.admit(StreamId(101), NodeId(2), NodeId(1), 4e6).is_err());
    }

    #[test]
    fn release_frees_capacity() {
        let t = Topology::single_switch(8);
        let mut ac = AdmissionController::new(&t, 400e6, 0.1);
        for k in 0..10 {
            ac.admit(StreamId(k), NodeId(0), NodeId(1), 4e6).unwrap();
        }
        assert!(ac.admit(StreamId(10), NodeId(0), NodeId(1), 4e6).is_err());
        ac.release(StreamId(0), 4e6).unwrap();
        assert!(ac.admit(StreamId(10), NodeId(0), NodeId(1), 4e6).is_ok());
    }

    #[test]
    fn release_of_unknown_stream_is_an_error_not_a_panic() {
        let t = Topology::single_switch(8);
        let mut ac = AdmissionController::new(&t, 400e6, 0.5);
        assert_eq!(
            ac.release(StreamId(7), 4e6),
            Err(ReleaseError {
                stream: StreamId(7)
            })
        );
        ac.admit(StreamId(7), NodeId(0), NodeId(1), 4e6).unwrap();
        ac.release(StreamId(7), 4e6).unwrap();
        // Double release is also an error, and state stays consistent.
        assert!(ac.release(StreamId(7), 4e6).is_err());
        assert_eq!(ac.admitted(), 0);
    }

    #[test]
    fn churn_does_not_accumulate_float_drift() {
        let t = Topology::single_switch(8);
        let mut ac = AdmissionController::new(&t, 400e6, 0.7);
        // 4e6 × 1.1 / 3 is not exactly representable, so every cycle of
        // admit/release leaves ulp-scale residue unless releases clamp.
        let rate = 4e6 * 1.1 / 3.0;
        for round in 0..10_000u32 {
            ac.admit(StreamId(round), NodeId(0), NodeId(1), rate)
                .unwrap();
            ac.release(StreamId(round), rate).unwrap();
        }
        // After full churn the controller must still admit the exact
        // threshold-filling population it accepts when fresh.
        let full = (0.7 * 400e6 / rate) as u32;
        for k in 0..full {
            ac.admit(StreamId(k), NodeId(0), NodeId(1), rate).unwrap();
        }
        assert_eq!(ac.admitted(), full as usize);
    }

    #[test]
    fn fat_mesh_routes_reserve_intermediate_links() {
        let t = Topology::fat_mesh(2, 2, 2, 4);
        let mut ac = AdmissionController::new(&t, 400e6, 1.0);
        // Node 0 (router 0) → node 12 (router 3): two hops.
        ac.admit(StreamId(0), NodeId(0), NodeId(12), 4e6).unwrap();
        // Some inter-router link on router 0 carries the reservation.
        let used: f64 = (0..8).map(|p| ac.utilisation(RouterId(0), PortId(p))).sum();
        assert!(used > 0.0, "route must reserve a router-0 output");
    }

    #[test]
    fn fat_bundle_is_metered_against_aggregate_capacity() {
        // 2×2 fat mesh: two parallel links per neighbour pair. The router
        // spreads flits across the bundle by instantaneous load, so the
        // controller must meter 2 × link_bps — booking route()[0] alone
        // rejected the second stream at half the real capacity.
        let t = Topology::fat_mesh(2, 2, 2, 4);
        let mut ac = AdmissionController::new(&t, 400e6, 1.0);
        // Nodes 0..3 live on router 0, nodes 8..11 on router 2; the +Y hop
        // crosses the two-link bundle. Distinct src/dest keep injection
        // and ejection links disjoint, so the bundle is the only shared
        // resource.
        ac.admit(StreamId(0), NodeId(0), NodeId(8), 400e6).unwrap();
        ac.admit(StreamId(1), NodeId(1), NodeId(9), 400e6).unwrap();
        // Two full-link streams saturate the 800 Mbps bundle exactly;
        // every member port reports the aggregate figure.
        let cands: Vec<PortId> = t.route(RouterId(0), NodeId(8)).to_vec();
        assert_eq!(cands.len(), 2, "fat mesh offers a two-link bundle");
        for &p in &cands {
            assert!((ac.utilisation(RouterId(0), p) - 1.0).abs() < 1e-9);
        }
        // A third stream over the same bundle must be rejected against
        // the bundle, not against one member link.
        let err = ac
            .admit(StreamId(2), NodeId(2), NodeId(10), 400e6)
            .unwrap_err();
        assert!(err.would_be_utilisation > 1.0);
        assert_eq!(err.link.0, RouterId(0));
        assert_eq!(ac.admitted(), 2);
        // Releasing one stream frees bundle headroom again.
        ac.release(StreamId(0), 400e6).unwrap();
        ac.admit(StreamId(2), NodeId(2), NodeId(10), 400e6).unwrap();
    }

    #[test]
    fn routing_subset_of_a_bundle_reserves_under_the_bundle_key() {
        // Fat-tree uplinks are route *candidates* that lead to different
        // spine routers, so each is its own width-1 bundle. `route_links`
        // used to pool them anyway — keyed by min(candidate), metered at
        // `cands.len() × link_bps` — while `utilisation()` reads the
        // width-1 bundle at 1 × link_bps. `admit` therefore booked two
        // full-rate streams against the pooled capacity and the port-0
        // uplink read 200 % utilised.
        let t = Topology::fat_tree(2, 2, 2);
        let mut ac = AdmissionController::new(&t, 400e6, 1.0);
        // Node 0 (edge router 0) → node 2 (edge router 1): up one spine,
        // back down. The up hop books the bundle of candidate port 0.
        ac.admit(StreamId(0), NodeId(0), NodeId(2), 400e6).unwrap();
        assert!((ac.utilisation(RouterId(0), PortId(0)) - 1.0).abs() < 1e-9);
        // Pre-fix this second full-rate stream was *accepted* against the
        // phantom pooled capacity, overbooking the physical uplink.
        let err = ac
            .admit(StreamId(1), NodeId(1), NodeId(3), 400e6)
            .unwrap_err();
        assert_eq!(err.link, (RouterId(0), PortId(0)));
        // The reservation admit metered is the one utilisation reports.
        assert!(ac.utilisation(RouterId(0), PortId(0)) <= 1.0 + 1e-9);
    }

    #[test]
    fn release_cleanup_threshold_scales_with_bundle_capacity() {
        // A 1536-wide fat bundle accumulates reservations around 4e11 bps,
        // where one f64 ulp is ~1.2e-4 — already above the old absolute
        // cleanup threshold of link_bps × 1e-12 = 4e-4 after a few ops.
        // The varied rate schedule below deterministically leaves a
        // subtraction residue of ~6.8e-4 bps on the bundle accumulator
        // once every stream is released: the old threshold leaked the
        // entry (utilisation stayed nonzero forever), the
        // capacity-scaled threshold cleans it.
        let t = Topology::fat_mesh(2, 1, 1536, 1536);
        let mut ac = AdmissionController::new(&t, 400e6, 1.0);
        let rate = |i: u32| 400e6 * (0.5 + 0.4 * f64::from((i * 37) % 101) / 101.0);
        for i in 0..1536u32 {
            // Distinct src/dest per stream: the shared bundle is the only
            // accumulator that sees every rate.
            ac.admit(StreamId(i), NodeId(i), NodeId(1536 + i), rate(i))
                .unwrap();
        }
        let bundle_port = t.route(RouterId(0), NodeId(1536))[0];
        assert!(ac.utilisation(RouterId(0), bundle_port) > 0.4);
        for i in 0..1536u32 {
            ac.release(StreamId(i), rate(i)).unwrap();
        }
        assert_eq!(ac.admitted(), 0);
        assert_eq!(
            ac.utilisation(RouterId(0), bundle_port),
            0.0,
            "released bundle must report exactly zero utilisation"
        );
    }

    #[test]
    fn utilisation_reports_fractions() {
        let t = Topology::single_switch(8);
        let mut ac = AdmissionController::new(&t, 400e6, 1.0);
        ac.admit(StreamId(0), NodeId(3), NodeId(4), 40e6).unwrap();
        let (r, p) = t.attachment(NodeId(4));
        assert!((ac.utilisation(r, p) - 0.1).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "already admitted")]
    fn double_admit_panics() {
        let t = Topology::single_switch(8);
        let mut ac = AdmissionController::new(&t, 400e6, 1.0);
        ac.admit(StreamId(0), NodeId(0), NodeId(1), 4e6).unwrap();
        let _ = ac.admit(StreamId(0), NodeId(0), NodeId(2), 4e6);
    }
}
