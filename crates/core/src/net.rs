//! Cycle-accurate network simulation: routers + links + endpoints.
//!
//! [`Network`] instantiates one [`Router`] per switch of a
//! [`topo::Topology`], wires full-duplex links (a flit channel one way and
//! a credit channel back), attaches endpoints (network interfaces with
//! per-VC injection queues), and drives everything cycle by cycle:
//!
//! 1. injection calendar → NI queues,
//! 2. link/credit delivery (and sink accounting at destinations),
//! 3. routing + arbitration (stages 2–3),
//! 4. crossbar traversal (stage 4; returns upstream credits),
//! 5. output VC multiplexing onto the links (stage 5),
//! 6. NI injection multiplexing onto the injection links.
//!
//! When no flit is anywhere in the system, the clock jumps straight to the
//! next injection event — at MPEG-2 rates the network is idle most of the
//! time below saturation, and the skip keeps low-load points cheap.

use std::collections::VecDeque;

use flitnet::{CreditLink, Flit, Link, NodeId, PortId, RouterId, VcId};
use metrics::{DeliveryTracker, LatencyTracker};
use netsim::audit::AuditLog;
use netsim::snap::{SnapError, SnapReader, SnapWriter};
use netsim::telemetry::{FlitEvent, FlitEventKind, NoopSink, TelemetrySink};
use netsim::{Calendar, Cycles, RunningStats, TimeBase};
use topo::{PortTarget, Topology};
use traffic::{ScheduledMessage, Workload};

use crate::audit::{AuditConfig, StallKind, StallReport, WatchdogConfig};
use crate::config::RouterConfig;
use crate::counters::{NetCounters, SkipStats};
use crate::router::{sorted_insert, CreditReturn, Departure, Router};
use crate::scheduler::MuxScheduler;

mod par;

/// Credits given to endpoint-attached output ports: endpoints consume at
/// link rate, so they never exert backpressure.
const ENDPOINT_CREDITS: u32 = 1 << 30;

/// Who receives the flits a link delivers.
#[derive(Debug, Clone, Copy)]
enum RxSide {
    RouterIn { router: usize, port: PortId },
    Node,
}

/// Who receives the credits flowing back along a link.
#[derive(Debug, Clone, Copy)]
enum TxSide {
    RouterOut { router: usize, port: PortId },
    Ni { node: usize },
}

/// A full-duplex connection: flits one way, credits the other.
#[derive(Debug)]
struct LinkPair {
    flit: Link,
    credit: CreditLink,
    rx: RxSide,
    tx: TxSide,
}

/// An endpoint's network interface: per-VC injection queues plus the
/// credit view of the router input buffer it feeds.
#[derive(Debug)]
struct Endpoint {
    queues: Vec<VecDeque<Flit>>,
    sched: MuxScheduler,
    credits: Vec<u32>,
    link: usize,
    /// Flits queued across all VCs: the NI's O(1) idle test (`ni_send`
    /// visits only endpoints with `queued > 0`).
    queued: u64,
    /// VC of the worm currently being injected. The NI drains a message's
    /// flits back-to-back when it can (like a DMA engine), so worms enter
    /// the network compact; pacing between competing worms is the
    /// *router's* job (that is where the paper puts Virtual Clock).
    current: Option<usize>,
}

/// State of the (opt-in) invariant audit sweep.
#[derive(Debug)]
struct AuditState {
    cfg: AuditConfig,
    log: AuditLog,
    /// Next cycle an audit sweep is due (tolerant of idle-cycle jumps).
    next_at: Cycles,
}

/// State of the (opt-in) progress watchdog.
#[derive(Debug)]
struct WatchdogState {
    cfg: WatchdogConfig,
    /// Progress signature at the last observed progress (see
    /// [`Network::progress_signature`]).
    last_signature: u64,
    /// Cycle of the last observed progress (or idle network).
    last_progress_at: Cycles,
}

/// Destination-side accounting.
#[derive(Debug)]
struct Sinks {
    delivery: DeliveryTracker,
    latency: LatencyTracker,
    /// Per real-time stream: `(frame, tails seen)` for each in-flight
    /// frame, sorted ascending by frame id. A stream has at most a
    /// handful of frames in flight, so a sorted small-vec beats a hash
    /// map on the delivery path (no hashing, no rehash allocation).
    frame_tails: Vec<Vec<(u32, u32)>>,
    delivered_msgs: u64,
    delivered_flits: u64,
    /// Per real-time stream: end-to-end message latency in cycles
    /// (injection stamp → tail delivery), for messages created after
    /// warmup. These are the observations the delay-bound audit checks
    /// against the analytic worst case.
    rt_latency: Vec<RunningStats>,
    /// Per real-time stream: creation stamps of injected-but-undelivered
    /// messages, in injection order. A message stuck in the fabric must
    /// still be counted against its delay bound — this is what lets the
    /// audit catch a deadlocked (never-delivering) network.
    rt_outstanding: Vec<VecDeque<u64>>,
    /// Messages created before this stamp stay out of `rt_latency`.
    rt_warmup_end: Cycles,
}

/// The simulated network: topology + routers + endpoints + traffic.
///
/// Most users should go through [`crate::sim::run`]; `Network` is public
/// for fine-grained control (custom stopping conditions, mid-run probes)
/// and for integration tests.
#[derive(Debug)]
pub struct Network {
    topology: Topology,
    routers: Vec<Router>,
    endpoints: Vec<Endpoint>,
    links: Vec<LinkPair>,
    /// Link id carrying router `r`'s output port `p`.
    out_link: Vec<Vec<usize>>,
    /// Link id feeding router `r`'s input port `p`.
    feed_link: Vec<Vec<usize>>,
    workload: Workload,
    calendar: Calendar<usize>,
    staged: Vec<Option<ScheduledMessage>>,
    sinks: Sinks,
    now: Cycles,
    flits_in_flight: u64,
    injected_msgs: u64,
    timebase: TimeBase,
    /// Scratch eligibility mask reused across NI scheduling calls.
    scratch: Vec<bool>,
    /// Reusable per-cycle buffer for crossbar credit returns.
    credit_buf: Vec<CreditReturn>,
    /// Reusable per-cycle buffer for output-stage departures.
    depart_buf: Vec<Departure>,
    /// Links with at least one flit or credit in flight; `deliver` scans
    /// only these, so idle links cost nothing per cycle. Kept sorted
    /// ascending so the scan visits links in the same order as the
    /// full-scan reference (delivery order is observable: it fixes the
    /// float-accumulation order in the trackers and the trace byte
    /// order).
    active_links: Vec<usize>,
    /// Whether each link is in `active_links` (same indexing as `links`).
    link_active: Vec<bool>,
    /// Endpoints with flits queued at the NI; `ni_send` scans only these.
    /// Sorted ascending for the same order-identity reason as
    /// `active_links`. An endpoint joins on injection and leaves once its
    /// queues drain (`queued == 0` — which implies no open worm, since a
    /// message's flits are queued atomically).
    active_eps: Vec<usize>,
    /// Whether each endpoint is in `active_eps`.
    ep_active: Vec<bool>,
    /// Flits sent per link (same indexing as `links`), for utilisation
    /// statistics.
    link_sent: Vec<u64>,
    /// Start of the current link-statistics window (see
    /// [`Network::reset_link_stats`]).
    stats_start: Cycles,
    /// Whether endpoint inject/deliver events go to the telemetry sink.
    /// Mirrors the per-router flag; set from the sink at the start of
    /// [`Network::run_until_with`].
    trace: bool,
    /// Downstream input-buffer depth per VC (the audit's conservation
    /// checks need the capacity the credits were initialised from).
    buf_flits: u32,
    /// Monotone count of flits put on any link. Never reset (unlike
    /// `link_sent`, which [`Network::reset_link_stats`] zeroes), so the
    /// watchdog can use it as a forwarding-progress signal.
    total_link_sends: u64,
    /// Invariant audit sweep; `None` (the default) costs nothing.
    audit: Option<AuditState>,
    /// Progress watchdog; `None` (the default) costs nothing.
    watchdog: Option<WatchdogState>,
    /// The stall report, once the watchdog has tripped.
    stall: Option<StallReport>,
    /// Whether the drivers may jump quiescent spans to the horizon
    /// (default on). The perf harness turns it off to time the legacy
    /// all-idle-jump baseline against the horizon path.
    horizon_skipping: bool,
    /// Skip-effectiveness counters (driver diagnostics; never
    /// serialised — a restored network starts its own tally).
    skip: SkipStats,
}

impl Network {
    /// Builds a network running `workload` over `topology` with every
    /// switch configured per `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the workload's node universe does not match the topology.
    pub fn new(topology: &Topology, workload: Workload, cfg: &RouterConfig) -> Network {
        let timebase = workload.spec().timebase();
        let m = cfg.vcs_per_pc();
        let node_count = topology.node_count();

        let partition = workload.partition();
        if topology.has_datelines() {
            // Dateline restrictions halve each class's VC range; a class
            // with a single VC would have an empty lower half and worms
            // crossing the wrap-around could never be routed.
            assert!(
                partition.real_time_count() != 1,
                "a torus needs at least 2 real-time VCs for its dateline classes"
            );
            assert!(
                partition.best_effort_count() != 1,
                "a torus needs at least 2 best-effort VCs for its dateline classes"
            );
        }
        let mut routers: Vec<Router> = topology
            .routers()
            .map(|(id, spec)| Router::new(id, spec.ports.len(), cfg, partition))
            .collect();

        let mut links = Vec::new();
        let mut out_link = vec![Vec::new(); routers.len()];
        let mut feed_link = vec![vec![usize::MAX; 0]; routers.len()];
        for (rid, spec) in topology.routers() {
            feed_link[rid.index()] = vec![usize::MAX; spec.ports.len()];
            for (p, target) in spec.ports.iter().enumerate() {
                let rx = match target {
                    PortTarget::Router { router, port } => RxSide::RouterIn {
                        router: router.index(),
                        port: *port,
                    },
                    PortTarget::Node(_) => RxSide::Node,
                };
                links.push(LinkPair {
                    flit: Link::new(Cycles(u64::from(cfg.link_latency_value()))),
                    // The downstream input port can free at most one slot
                    // per VC per cycle (full crossbar), bounding the
                    // credit ring at m credits per cycle of latency.
                    credit: CreditLink::new(
                        Cycles(u64::from(cfg.link_latency_value())),
                        m as usize,
                    ),
                    rx,
                    tx: TxSide::RouterOut {
                        router: rid.index(),
                        port: PortId(p as u32),
                    },
                });
                out_link[rid.index()].push(links.len() - 1);
            }
        }
        // Endpoint injection links.
        let mut endpoints = Vec::with_capacity(node_count);
        for n in 0..node_count {
            let (router, port) = topology.attachment(NodeId(n as u32));
            links.push(LinkPair {
                flit: Link::new(Cycles(u64::from(cfg.link_latency_value()))),
                credit: CreditLink::new(Cycles(u64::from(cfg.link_latency_value())), m as usize),
                rx: RxSide::RouterIn {
                    router: router.index(),
                    port,
                },
                tx: TxSide::Ni { node: n },
            });
            endpoints.push(Endpoint {
                queues: (0..m).map(|_| VecDeque::new()).collect(),
                sched: MuxScheduler::new(cfg.scheduler_kind(), m as usize),
                credits: vec![cfg.buf_flits_value(); m as usize],
                link: links.len() - 1,
                queued: 0,
                current: None,
            });
        }
        // Index the feeders.
        for (i, lp) in links.iter().enumerate() {
            if let RxSide::RouterIn { router, port } = lp.rx {
                feed_link[router][port.index()] = i;
            }
        }
        for row in &feed_link {
            assert!(
                row.iter().all(|&l| l != usize::MAX),
                "every router input port must have a feeder"
            );
        }
        // Downstream credits for router outputs.
        for (rid, spec) in topology.routers() {
            for (p, target) in spec.ports.iter().enumerate() {
                let credits = match target {
                    PortTarget::Router { .. } => cfg.buf_flits_value(),
                    PortTarget::Node(_) => ENDPOINT_CREDITS,
                };
                for v in 0..m {
                    routers[rid.index()].init_credits(PortId(p as u32), VcId(v), credits);
                }
            }
        }

        // Stage the first message of every source.
        let mut calendar = Calendar::with_capacity(workload.source_count());
        let mut staged = Vec::with_capacity(workload.source_count());
        let mut workload = workload;
        for i in 0..workload.source_count() {
            let msg = workload.next_message(i);
            assert!(
                msg.src.index() < node_count,
                "workload source {} out of the topology's node range",
                msg.src
            );
            calendar.schedule(msg.at, i);
            staged.push(Some(msg));
        }

        let m_usize = m as usize;
        let link_count = links.len();
        Network {
            topology: topology.clone(),
            routers,
            endpoints,
            links,
            out_link,
            feed_link,
            workload,
            calendar,
            staged,
            sinks: Sinks {
                delivery: DeliveryTracker::new(timebase),
                latency: LatencyTracker::new(timebase),
                frame_tails: Vec::new(),
                delivered_msgs: 0,
                delivered_flits: 0,
                rt_latency: Vec::new(),
                rt_outstanding: Vec::new(),
                rt_warmup_end: Cycles::ZERO,
            },
            now: Cycles::ZERO,
            flits_in_flight: 0,
            injected_msgs: 0,
            timebase,
            scratch: vec![false; m_usize],
            credit_buf: Vec::new(),
            depart_buf: Vec::new(),
            active_links: Vec::new(),
            link_active: vec![false; link_count],
            active_eps: Vec::new(),
            ep_active: vec![false; node_count],
            link_sent: vec![0; link_count],
            stats_start: Cycles::ZERO,
            trace: false,
            buf_flits: cfg.buf_flits_value(),
            total_link_sends: 0,
            audit: None,
            watchdog: None,
            stall: None,
            horizon_skipping: true,
            skip: SkipStats::default(),
        }
    }

    /// Marks link `l` as carrying traffic so `deliver` will scan it.
    fn activate_link(link_active: &mut [bool], active_links: &mut Vec<usize>, l: usize) {
        if !link_active[l] {
            link_active[l] = true;
            sorted_insert(active_links, l);
        }
    }

    /// Marks endpoint `n` as having queued flits so `ni_send` will scan
    /// it.
    fn activate_ep(ep_active: &mut [bool], active_eps: &mut Vec<usize>, n: usize) {
        if !ep_active[n] {
            ep_active[n] = true;
            sorted_insert(active_eps, n);
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// The network's cycle ↔ wall-clock mapping.
    pub fn timebase(&self) -> TimeBase {
        self.timebase
    }

    /// Flits injected but not yet delivered.
    pub fn flits_in_flight(&self) -> u64 {
        self.flits_in_flight
    }

    /// Messages injected so far.
    pub fn injected_msgs(&self) -> u64 {
        self.injected_msgs
    }

    /// Messages fully delivered so far.
    pub fn delivered_msgs(&self) -> u64 {
        self.sinks.delivered_msgs
    }

    /// Flits delivered so far.
    pub fn delivered_flits(&self) -> u64 {
        self.sinks.delivered_flits
    }

    /// Discards measurements before `at` (cycles).
    pub fn set_warmup_end(&mut self, at: Cycles) {
        self.sinks.delivery.set_warmup_end(at);
        self.sinks.latency.set_warmup_end(at);
        self.sinks.rt_warmup_end = at;
    }

    /// Per real-time stream message-latency statistics (cycles, messages
    /// created after warmup). Indexed by stream id; streams that have not
    /// delivered yet may be absent from the tail of the slice.
    pub fn rt_latency_stats(&self) -> &[RunningStats] {
        &self.sinks.rt_latency
    }

    /// The creation stamp of stream `s`'s oldest injected-but-undelivered
    /// message, if any. `now − stamp` is a latency already *incurred* —
    /// the delay-bound audit charges stuck messages with it.
    pub fn rt_oldest_outstanding(&self, s: usize) -> Option<u64> {
        self.sinks
            .rt_outstanding
            .get(s)
            .and_then(|q| q.front().copied())
    }

    /// The frame-delivery (jitter) tracker.
    pub fn delivery(&self) -> &DeliveryTracker {
        &self.sinks.delivery
    }

    /// The best-effort latency tracker.
    pub fn latency(&self) -> &LatencyTracker {
        &self.sinks.latency
    }

    /// The workload driving the network.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// Cycles elapsed in the current link-statistics window.
    fn stats_window(&self) -> Cycles {
        self.now - self.stats_start
    }

    /// Zeroes the per-link flit counters and restarts the utilisation
    /// window at the current cycle.
    ///
    /// Utilisation queries divide by cycles elapsed *since this call*
    /// (or since construction), so a caller can exclude the start-up
    /// transient — CBR streams begin at random phases within the first
    /// frame interval, which otherwise dilutes a whole-run average.
    pub fn reset_link_stats(&mut self) {
        self.link_sent.fill(0);
        self.stats_start = self.now;
    }

    /// Utilisation of router `r`'s output link on port `p`: flits sent
    /// divided by cycles elapsed in the statistics window (0.0 before
    /// the clock advances past the window start).
    pub fn link_utilization(&self, r: flitnet::RouterId, p: PortId) -> f64 {
        let window = self.stats_window();
        if window == Cycles::ZERO {
            return 0.0;
        }
        let l = self.out_link[r.index()][p.index()];
        self.link_sent[l] as f64 / window.as_f64()
    }

    /// Utilisation of `node`'s injection link.
    pub fn injection_utilization(&self, node: NodeId) -> f64 {
        let window = self.stats_window();
        if window == Cycles::ZERO {
            return 0.0;
        }
        let l = self.endpoints[node.index()].link;
        self.link_sent[l] as f64 / window.as_f64()
    }

    /// Network-wide telemetry counter totals summed over all routers.
    pub fn counters(&self) -> NetCounters {
        let mut t = NetCounters::default();
        for r in &self.routers {
            t.absorb(&r.counters().totals());
        }
        t
    }

    /// Sums router allocator diagnostics
    /// `(active_cycles, conflict_losses, empty_slots)`.
    pub fn alloc_diag(&self) -> (u64, u64, u64) {
        let mut d = (0, 0, 0);
        for r in &self.routers {
            let rd = r.diag();
            d.0 += rd.0;
            d.1 += rd.1;
            d.2 += rd.2;
        }
        d
    }

    /// Prints every router's VC state (diagnostics).
    pub fn debug_dump(&self) {
        for (i, r) in self.routers.iter().enumerate() {
            println!("router {i}:");
            r.debug_dump();
        }
    }

    /// Diagnostic snapshot: flits `(real_time, best_effort)` waiting at the
    /// network interfaces, and `(real_time, best_effort)` buffered inside
    /// routers.
    pub fn occupancy_by_class(&self) -> ((usize, usize), (usize, usize)) {
        let mut ni = (0, 0);
        for ep in &self.endpoints {
            for q in &ep.queues {
                for f in q {
                    if f.class.is_real_time() {
                        ni.0 += 1;
                    } else {
                        ni.1 += 1;
                    }
                }
            }
        }
        let mut router = (0, 0);
        for r in &self.routers {
            let (rt, be) = r.occupancy_by_class();
            router.0 += rt;
            router.1 += be;
        }
        (ni, router)
    }

    /// Runs the simulation until cycle `end`.
    pub fn run_until(&mut self, end: Cycles) {
        self.run_until_with(end, &mut NoopSink);
    }

    /// Runs the simulation until cycle `end`, streaming flit events into
    /// `sink`.
    ///
    /// Tracing is armed from `sink.is_enabled()` once, up front, so a
    /// [`NoopSink`] run executes the exact same instruction stream as
    /// [`Network::run_until`] — the per-flit guard is a cached boolean,
    /// not a virtual call.
    /// When the audit or the watchdog is enabled (see
    /// [`Network::enable_audit`] / [`Network::enable_watchdog`]), each
    /// cycle additionally runs the safety checks; a detected stall stops
    /// the run early with a [`StallReport`] available from
    /// [`Network::stall_report`].
    pub fn run_until_with(&mut self, end: Cycles, sink: &mut dyn TelemetrySink) {
        self.run_until_impl(end, sink, false);
    }

    /// Runs the simulation until cycle `end`, stepping the routers on
    /// `threads` OS threads.
    ///
    /// Bit-identical to [`Network::run_until`] at any thread count: the
    /// routers are partitioned into contiguous ranges, the pipeline
    /// phases run between barriers, and all cross-partition traffic
    /// flows through the link mailboxes, which are drained in fixed
    /// global link order (see the `par` module for the full argument).
    pub fn run_until_parallel(&mut self, end: Cycles, threads: usize) {
        self.run_until_parallel_with(end, threads, &mut NoopSink);
    }

    /// [`Network::run_until_parallel`], streaming flit events into
    /// `sink`. The traced byte stream is identical to a sequential
    /// [`Network::run_until_with`] run.
    pub fn run_until_parallel_with(
        &mut self,
        end: Cycles,
        threads: usize,
        sink: &mut dyn TelemetrySink,
    ) {
        // Never spin up more workers than there are routers to own.
        let threads = threads.min(self.routers.len());
        if threads <= 1 {
            self.run_until_with(end, sink);
            return;
        }
        self.set_tracing(sink.is_enabled());
        par::drive(self, end, threads, sink);
    }

    /// Folds end-of-run truncation into the latency tracker: every
    /// message injected but not fully delivered when the clock stopped is
    /// a right-censored observation, not a missing one. Returns how many
    /// such messages there were.
    ///
    /// [`crate::sim::run`] calls this once, after the drain window; the
    /// count is surfaced as `in_flight_at_end` so measurement windows
    /// that truncate a meaningful share of traffic are visible instead
    /// of silently inflating the delivered-latency average.
    pub fn note_truncated_messages(&mut self) -> u64 {
        let in_flight = self.injected_msgs - self.sinks.delivered_msgs;
        self.sinks.latency.note_censored(in_flight);
        in_flight
    }

    /// Runs the simulation until cycle `end` using the *full-scan
    /// reference* stepping mode: every phase scans every slot, as the
    /// code did before the occupancy-driven active sets existed. Kept as
    /// the oracle for the bit-identity tests — a run here must produce
    /// exactly the same counters, stall reports and trace bytes as
    /// [`Network::run_until`].
    pub fn run_until_reference(&mut self, end: Cycles) {
        self.run_until_reference_with(end, &mut NoopSink);
    }

    /// [`Network::run_until_reference`], streaming flit events into
    /// `sink`.
    pub fn run_until_reference_with(&mut self, end: Cycles, sink: &mut dyn TelemetrySink) {
        self.run_until_impl(end, sink, true);
    }

    fn run_until_impl(&mut self, end: Cycles, sink: &mut dyn TelemetrySink, reference: bool) {
        self.set_tracing(sink.is_enabled());
        let checked = self.audit.is_some() || self.watchdog.is_some();
        while self.now < end {
            if self.try_horizon_jump(end) {
                continue;
            }
            self.step_impl(sink, reference);
            if checked {
                self.safety_check();
                if self.stall.is_some() {
                    break;
                }
            }
            self.advance_clock(end);
        }
    }

    /// Whether no component can change state at the current cycle: every
    /// router's pipeline is empty (`!has_work`, which covers pending
    /// heads, granted connections and staged outputs — all imply resident
    /// flits) and every backlogged NI is credit-blocked on all its VCs.
    ///
    /// Anything else that *will* act — a due injection, a flit or credit
    /// arriving on a wire, an audit or watchdog deadline — acts at a
    /// known future cycle, which is what [`Network::horizon`] computes.
    fn quiescent(&self) -> bool {
        // Fast path: `flits_in_flight` counts every undelivered flit —
        // NI-queued, router-resident and on-the-wire — so zero means
        // nothing can act and the scans below would all pass trivially.
        if self.flits_in_flight == 0 {
            return true;
        }
        self.routers.iter().all(|r| !r.has_work())
            && self.active_eps.iter().all(|&n| {
                let ep = &self.endpoints[n];
                !ep.queues
                    .iter()
                    .zip(&ep.credits)
                    .any(|(q, &c)| !q.is_empty() && c > 0)
            })
    }

    /// The earliest future cycle at which any component can act: the next
    /// calendar injection, the earliest in-flight flit or credit arrival
    /// across the active links, and — when enabled — the next audit sweep
    /// and the watchdog's trip deadline. `Cycles(u64::MAX)` if none of
    /// those exist (an empty network with an exhausted calendar).
    ///
    /// The link terms are O(1) head loads per active link
    /// ([`Link::earliest_arrival`]); during quiescent spans the active
    /// link list is exactly the set of wires still carrying state, so the
    /// scan is as small as the span is quiet.
    fn horizon(&self) -> Cycles {
        let mut h = self.calendar.next_at().unwrap_or(Cycles(u64::MAX));
        for &l in &self.active_links {
            let lp = &self.links[l];
            if let Some(at) = lp.flit.earliest_arrival() {
                h = h.min(at);
            }
            if let Some(at) = lp.credit.earliest_arrival() {
                h = h.min(at);
            }
        }
        // Safety machinery deadlines are horizon terms, not exceptions:
        // an audited run steps its due-cycles (the sweep observes the
        // same quiescent state it would have seen under exhaustive
        // stepping), and the watchdog's trip cycle stays exact even when
        // the span around it is skipped.
        if let Some(st) = &self.audit {
            h = h.min(st.next_at);
        }
        if let Some(wd) = &self.watchdog {
            h = h.min(wd.last_progress_at + Cycles(wd.cfg.stall_cycles));
        }
        h
    }

    /// If skipping is enabled, the network is quiescent and nothing is
    /// due at the current cycle, jumps the clock to the horizon (clamped
    /// to `end`) and returns `true`; the caller skips the step pipeline
    /// entirely. Every skipped cycle is one in which no component could
    /// have acted, so stepping it would have been a pure no-op — the
    /// identity suites hold the horizon path to that claim bit-for-bit.
    fn try_horizon_jump(&mut self, end: Cycles) -> bool {
        if !self.horizon_skipping || !self.quiescent() {
            return false;
        }
        let h = self.horizon();
        if h <= self.now {
            return false;
        }
        debug_assert!(
            self.routers.iter().all(|r| !r.has_work()),
            "horizon jump with router work pending"
        );
        let target = h.min(end);
        self.skip.cycles_skipped += (target - self.now).get();
        self.skip.horizon_jumps += 1;
        self.now = target;
        true
    }

    /// End-of-cycle clock advance shared by the sequential and parallel
    /// drivers. With horizon skipping enabled this is a plain `+1` (the
    /// jump decision lives at the top of the loop, so a re-entered
    /// driver — e.g. a checkpoint segment boundary — re-jumps without
    /// stepping); with it disabled, the legacy all-idle jump to the next
    /// injection is preserved as the perf baseline, overshooting `end`
    /// exactly like the pre-horizon stepper did.
    fn advance_clock(&mut self, end: Cycles) {
        self.skip.cycles_stepped += 1;
        if !self.horizon_skipping && self.flits_in_flight == 0 {
            let next = self.calendar.next_at().unwrap_or(end);
            self.now = next.max(self.now + Cycles(1));
        } else {
            self.now += Cycles(1);
        }
    }

    /// Skip-effectiveness counters accumulated by this network's drivers
    /// since construction (or [`Network::reset_skip_stats`]).
    pub fn skip_stats(&self) -> SkipStats {
        self.skip
    }

    /// Zeroes the skip counters (e.g. between a warm-up and a measured
    /// window).
    pub fn reset_skip_stats(&mut self) {
        self.skip = SkipStats::default();
    }

    /// Enables or disables quiescence-horizon skipping (on by default).
    ///
    /// With skipping off the drivers fall back to the legacy behaviour —
    /// stepping every cycle unless the network is completely empty — so
    /// the perf harness can measure the horizon's win honestly against
    /// the previous stepper rather than against a strawman.
    pub fn set_horizon_skipping(&mut self, on: bool) {
        self.horizon_skipping = on;
    }

    /// Runs the simulation until cycle `end` without the idle-cycle jump:
    /// every cycle is stepped explicitly. Only useful as a reference for
    /// validating that the jump in [`run_until`] is unobservable (the
    /// jumped-over cycles have no flit anywhere, so nothing can act).
    pub fn run_until_exhaustive(&mut self, end: Cycles) {
        while self.now < end {
            self.step();
            self.now += Cycles(1);
        }
    }

    /// Arms or disarms flit-event tracing on the endpoints and every
    /// router.
    fn set_tracing(&mut self, on: bool) {
        self.trace = on;
        for r in &mut self.routers {
            r.set_tracing(on);
        }
    }

    /// Executes one cycle at the current time.
    pub fn step(&mut self) {
        self.step_with(&mut NoopSink);
    }

    /// Executes one cycle, streaming flit events into `sink`. Callers
    /// driving the network step by step must arm tracing themselves (it
    /// is off by default); [`Network::run_until_with`] does it for them.
    pub fn step_with(&mut self, sink: &mut dyn TelemetrySink) {
        self.step_impl(sink, false);
    }

    fn step_impl(&mut self, sink: &mut dyn TelemetrySink, reference: bool) {
        let now = self.now;
        self.inject(now, sink);
        if reference {
            self.deliver_reference(now, sink);
        } else {
            self.deliver(now, sink);
        }
        self.route_and_arbitrate(now, sink, reference);
        self.crossbar(now, sink, reference);
        self.output(now, reference);
        if reference {
            self.ni_send_reference(now);
        } else {
            self.ni_send(now);
        }
    }

    /// Phase 1: fire due injections into the NI queues.
    fn inject(&mut self, now: Cycles, sink: &mut dyn TelemetrySink) {
        while let Some((_, i)) = self.calendar.pop_due(now) {
            let msg = self.staged[i].take().expect("staged message present");
            let ep = &mut self.endpoints[msg.src.index()];
            let v = msg.vc_in.index();
            for flit in &msg.flits {
                ep.queues[v].push_back(*flit);
                ep.sched.on_arrival(v, now, flit);
            }
            ep.queued += msg.flits.len() as u64;
            Self::activate_ep(&mut self.ep_active, &mut self.active_eps, msg.src.index());
            if self.trace {
                // One event per message; `port` holds the source node id
                // (there is no router at the injection point).
                let head = &msg.flits[0];
                sink.record(&FlitEvent {
                    cycle: now.get(),
                    kind: FlitEventKind::Inject,
                    router: None,
                    port: msg.src.get(),
                    vc: msg.vc_in.get(),
                    stream: head.stream.get(),
                    msg: head.msg.get(),
                    real_time: head.class.is_real_time(),
                });
            }
            self.flits_in_flight += msg.flits.len() as u64;
            self.injected_msgs += 1;
            let head = &msg.flits[0];
            if head.class.is_real_time() {
                let s = head.stream.index();
                if s >= self.sinks.rt_outstanding.len() {
                    self.sinks.rt_outstanding.resize_with(s + 1, VecDeque::new);
                }
                self.sinks.rt_outstanding[s].push_back(head.created_at.get());
            }
            let next = self.workload.next_message(i);
            debug_assert!(next.at >= msg.at, "source injections must be monotonic");
            self.calendar.schedule(next.at, i);
            self.staged[i] = Some(next);
        }
    }

    /// Phase 2: link and credit delivery (including sink accounting).
    ///
    /// Only links on the active list are scanned; a link leaves the list
    /// once both its flit and credit channels have drained and rejoins it
    /// on the next send.
    fn deliver(&mut self, now: Cycles, sink: &mut dyn TelemetrySink) {
        let mut i = 0;
        while i < self.active_links.len() {
            let l = self.active_links[i];
            if self.deliver_link(l, now, sink) {
                self.link_active[l] = false;
                // Order-preserving removal keeps the list sorted.
                self.active_links.remove(i);
            } else {
                i += 1;
            }
        }
    }

    /// Phase 2, reference mode: scan *every* link in index order (the
    /// order the sorted active list reproduces), then prune the active
    /// list exactly as the optimized scan would have.
    fn deliver_reference(&mut self, now: Cycles, sink: &mut dyn TelemetrySink) {
        for l in 0..self.links.len() {
            let drained = self.deliver_link(l, now, sink);
            debug_assert!(
                drained || self.link_active[l],
                "a busy link must be on the active list"
            );
        }
        let mut i = 0;
        while i < self.active_links.len() {
            let l = self.active_links[i];
            if self.links[l].flit.is_idle() && self.links[l].credit.is_idle() {
                self.link_active[l] = false;
                self.active_links.remove(i);
            } else {
                i += 1;
            }
        }
    }

    /// Drains everything due on link `l` this cycle; returns whether the
    /// link is now fully idle (nothing left in flight either way).
    fn deliver_link(&mut self, l: usize, now: Cycles, sink: &mut dyn TelemetrySink) -> bool {
        let lp = &mut self.links[l];
        while let Some(flit) = lp.flit.recv(now) {
            match lp.rx {
                RxSide::RouterIn { router, port } => {
                    self.routers[router].receive_flit(now, port, flit);
                }
                RxSide::Node => {
                    Self::sink_flit(
                        &mut self.sinks,
                        &mut self.flits_in_flight,
                        now,
                        flit,
                        self.trace,
                        sink,
                    );
                }
            }
        }
        while let Some(vc) = lp.credit.recv(now) {
            match lp.tx {
                TxSide::RouterOut { router, port } => {
                    self.routers[router].receive_credit(port, vc);
                }
                TxSide::Ni { node } => {
                    self.endpoints[node].credits[vc.index()] += 1;
                }
            }
        }
        lp.flit.is_idle() && lp.credit.is_idle()
    }

    fn sink_flit(
        sinks: &mut Sinks,
        in_flight: &mut u64,
        now: Cycles,
        flit: Flit,
        trace: bool,
        tsink: &mut dyn TelemetrySink,
    ) {
        *in_flight -= 1;
        sinks.delivered_flits += 1;
        if !flit.kind.is_tail() {
            return;
        }
        if trace {
            // One event per message, on its tail flit; `port` holds the
            // destination node id.
            tsink.record(&FlitEvent {
                cycle: now.get(),
                kind: FlitEventKind::Deliver,
                router: None,
                port: flit.dest.get(),
                vc: 0,
                stream: flit.stream.get(),
                msg: flit.msg.get(),
                real_time: flit.class.is_real_time(),
            });
        }
        sinks.delivered_msgs += 1;
        if flit.class.is_real_time() {
            let s = flit.stream.index();
            if s >= sinks.rt_latency.len() {
                sinks.rt_latency.resize_with(s + 1, RunningStats::new);
            }
            if flit.created_at >= sinks.rt_warmup_end {
                sinks.rt_latency[s].push((now - flit.created_at).get() as f64);
            }
            // Retire the message from the outstanding FIFO by stamp (not
            // front-pop: fat bundles can deliver messages out of order).
            if let Some(q) = sinks.rt_outstanding.get_mut(s) {
                let stamp = flit.created_at.get();
                if let Some(pos) = q.iter().position(|&c| c == stamp) {
                    q.remove(pos);
                }
            }
            if s >= sinks.frame_tails.len() {
                sinks.frame_tails.resize_with(s + 1, Vec::new);
            }
            let frames = &mut sinks.frame_tails[s];
            let frame = flit.frame.get();
            let pos = frames.partition_point(|&(f, _)| f < frame);
            let tails = match frames.get_mut(pos) {
                Some(entry) if entry.0 == frame => {
                    entry.1 += 1;
                    entry.1
                }
                _ => {
                    frames.insert(pos, (frame, 1));
                    1
                }
            };
            if tails == flit.msgs_in_frame {
                frames.remove(pos);
                sinks.delivery.record_frame(flit.stream, now);
            }
        } else {
            sinks.latency.record(flit.created_at, now);
        }
    }

    /// Phase 3: stages 2–3 on every router.
    fn route_and_arbitrate(&mut self, now: Cycles, sink: &mut dyn TelemetrySink, reference: bool) {
        let topology = &self.topology;
        for (r, router) in self.routers.iter_mut().enumerate() {
            if !router.has_work() {
                continue;
            }
            let rid = RouterId(r as u32);
            if reference {
                router.arbitrate_reference(now, |flit| topology.route_sel(rid, flit.dest), sink);
            } else {
                router.arbitrate(now, |flit| topology.route_sel(rid, flit.dest), sink);
            }
        }
    }

    /// Phase 4: crossbars; send freed-slot credits back upstream.
    fn crossbar(&mut self, now: Cycles, sink: &mut dyn TelemetrySink, reference: bool) {
        let mut credits = std::mem::take(&mut self.credit_buf);
        for r in 0..self.routers.len() {
            if !self.routers[r].has_work() {
                continue;
            }
            credits.clear();
            if reference {
                self.routers[r].crossbar_reference(now, &mut credits, sink);
            } else {
                self.routers[r].crossbar(now, &mut credits, sink);
            }
            for c in &credits {
                let feeder = self.feed_link[r][c.port.index()];
                self.links[feeder].credit.send(now, c.vc);
                Self::activate_link(&mut self.link_active, &mut self.active_links, feeder);
            }
        }
        self.credit_buf = credits;
    }

    /// Phase 5: output VC multiplexers onto the links.
    fn output(&mut self, now: Cycles, reference: bool) {
        let mut departures = std::mem::take(&mut self.depart_buf);
        for r in 0..self.routers.len() {
            if !self.routers[r].has_work() {
                continue;
            }
            departures.clear();
            if reference {
                self.routers[r].output_stage_reference(now, &mut departures);
            } else {
                self.routers[r].output_stage(now, &mut departures);
            }
            for d in &departures {
                let l = self.out_link[r][d.port.index()];
                self.links[l].flit.send(now, d.flit);
                Self::activate_link(&mut self.link_active, &mut self.active_links, l);
                self.link_sent[l] += 1;
                self.total_link_sends += 1;
            }
        }
        self.depart_buf = departures;
    }

    /// Phase 6: NI injection multiplexers onto the injection links.
    ///
    /// The NI finishes the worm it is injecting before starting another
    /// when it can (credits permitting), falling back to the scheduler's
    /// pick when the current worm stalls. Keeping worms compact at the
    /// source matters: a worm spread thin over time holds its granted
    /// output VC at every router for the whole stretch.
    fn ni_send(&mut self, now: Cycles) {
        let mut i = 0;
        while i < self.active_eps.len() {
            let n = self.active_eps[i];
            debug_assert!(
                self.endpoints[n].queued > 0,
                "active endpoint must have flits"
            );
            self.ni_send_one(n, now);
            if self.endpoints[n].queued == 0 {
                self.ep_active[n] = false;
                // Order-preserving removal keeps the list sorted.
                self.active_eps.remove(i);
            } else {
                i += 1;
            }
        }
    }

    /// Phase 6, reference mode: scan every endpoint in index order, then
    /// prune the active list exactly as the optimized scan would have.
    fn ni_send_reference(&mut self, now: Cycles) {
        for n in 0..self.endpoints.len() {
            if self.endpoints[n].queues.iter().all(VecDeque::is_empty) {
                debug_assert_eq!(
                    self.endpoints[n].queued, 0,
                    "queued counter must track queues"
                );
                continue;
            }
            debug_assert!(
                self.ep_active[n],
                "a backlogged NI must be on the active list"
            );
            self.ni_send_one(n, now);
        }
        let mut i = 0;
        while i < self.active_eps.len() {
            let n = self.active_eps[i];
            if self.endpoints[n].queued == 0 {
                self.ep_active[n] = false;
                self.active_eps.remove(i);
            } else {
                i += 1;
            }
        }
    }

    /// Lets endpoint `n`'s NI put (at most) one flit on its injection
    /// link.
    fn ni_send_one(&mut self, n: usize, now: Cycles) {
        let ep = &mut self.endpoints[n];
        let Some(flit) = Self::ni_pick(ep, &mut self.scratch) else {
            return;
        };
        let link = ep.link;
        self.links[link].flit.send(now, flit);
        Self::activate_link(&mut self.link_active, &mut self.active_links, link);
        self.link_sent[link] += 1;
        self.total_link_sends += 1;
    }

    /// The NI scheduling decision of [`Network::ni_send_one`], minus the
    /// link send: picks (and dequeues) the flit endpoint `ep` injects
    /// this cycle, if any. Split out so the parallel stepper can run the
    /// decision on the endpoint's owning thread and do the shared-state
    /// bookkeeping itself.
    fn ni_pick(ep: &mut Endpoint, scratch: &mut [bool]) -> Option<Flit> {
        let sendable = |ep: &Endpoint, v: usize| !ep.queues[v].is_empty() && ep.credits[v] > 0;
        let v = match ep.current {
            Some(v) if sendable(ep, v) => v,
            _ => {
                for (v, e) in scratch.iter_mut().enumerate() {
                    *e = sendable(ep, v);
                }
                ep.sched.choose(scratch)?
            }
        };
        let flit = ep.queues[v].pop_front().expect("eligible VC has a flit");
        ep.sched.on_service(v);
        ep.credits[v] -= 1;
        ep.queued -= 1;
        ep.current = if flit.kind.is_tail() { None } else { Some(v) };
        Some(flit)
    }

    // ---- audit + watchdog ------------------------------------------------

    /// Enables the invariant audit sweep. Violations accumulate in the
    /// log returned by [`Network::audit_log`]. Off by default: a run
    /// without this call executes the exact same instruction stream as
    /// before the audit layer existed.
    pub fn enable_audit(&mut self, cfg: AuditConfig) {
        self.audit = Some(AuditState {
            cfg,
            log: AuditLog::new(),
            next_at: self.now,
        });
    }

    /// Enables the progress watchdog. When flits are in flight but no
    /// forwarding progress happens for `cfg.stall_cycles` cycles,
    /// [`Network::run_until_with`] stops early and
    /// [`Network::stall_report`] describes the stall.
    pub fn enable_watchdog(&mut self, cfg: WatchdogConfig) {
        self.watchdog = Some(WatchdogState {
            cfg,
            last_signature: self.progress_signature(),
            last_progress_at: self.now,
        });
    }

    /// The audit log, if auditing is enabled.
    pub fn audit_log(&self) -> Option<&AuditLog> {
        self.audit.as_ref().map(|a| &a.log)
    }

    /// The watchdog's stall report, if the run stalled.
    pub fn stall_report(&self) -> Option<&StallReport> {
        self.stall.as_ref()
    }

    /// Runs one audit sweep immediately (enabling auditing with the
    /// default config if needed) and returns the violations found by
    /// *this* sweep.
    pub fn audit_now(&mut self) -> u64 {
        let mut st = self.audit.take().unwrap_or_else(|| AuditState {
            cfg: AuditConfig::default(),
            log: AuditLog::new(),
            next_at: self.now,
        });
        let found = self.audit_pass(self.now, &mut st.log);
        self.audit = Some(st);
        found
    }

    /// Mints a spurious credit on router `router`'s output `(port, vc)`
    /// — a deliberate credit-accounting bug for mutation-testing the
    /// audit layer (a credit that matches no freed downstream slot).
    pub fn inject_credit_fault(&mut self, router: RouterId, port: PortId, vc: VcId) {
        self.routers[router.index()].receive_credit(port, vc);
    }

    /// Discards every downstream credit of router `router`'s output
    /// `(port, vc)` — the opposite flow-control fault to
    /// [`Network::inject_credit_fault`]. Applied to an ejection port
    /// (whose endpoint never returns credits) before traffic flows, the
    /// VC is starved forever: flits routed to it stall indefinitely.
    /// Mutation-testing hook for the delay-bound oracle, which must flag
    /// the stuck messages as bound violations.
    pub fn inject_credit_starvation(&mut self, router: RouterId, port: PortId, vc: VcId) {
        self.routers[router.index()].init_credits(port, vc, 0);
    }

    /// Forwarding-progress signature: strictly increases whenever any
    /// flit moves (onto a link, across a crossbar, or into a sink).
    fn progress_signature(&self) -> u64 {
        let crossed: u64 = self.routers.iter().map(Router::flits_crossed).sum();
        self.sinks.delivered_flits + crossed + self.total_link_sends
    }

    /// Per-cycle safety checks: the periodic audit sweep and the
    /// watchdog's progress test. Only called when at least one of the two
    /// is enabled.
    fn safety_check(&mut self) {
        let now = self.now;
        if let Some(mut st) = self.audit.take() {
            if now >= st.next_at {
                self.audit_pass(now, &mut st.log);
                st.next_at = now + Cycles(st.cfg.interval);
            }
            self.audit = Some(st);
        }
        if let Some(mut wd) = self.watchdog.take() {
            let sig = self.progress_signature();
            if self.flits_in_flight == 0 || sig != wd.last_signature {
                wd.last_signature = sig;
                wd.last_progress_at = now;
            } else if (now - wd.last_progress_at).get() >= wd.cfg.stall_cycles {
                self.stall = Some(self.build_stall_report(now - wd.last_progress_at));
                wd.last_progress_at = now;
            }
            self.watchdog = Some(wd);
        }
    }

    /// One full audit sweep: router-local invariants, credit conservation
    /// around every link, and global flit conservation. Returns the
    /// violations found by this sweep.
    fn audit_pass(&self, now: Cycles, log: &mut AuditLog) -> u64 {
        use netsim::audit::{Violation, ViolationKind};
        let before = log.total();
        for r in &self.routers {
            r.audit(now, log);
        }
        let cap = self.buf_flits;
        let vcs = self.routers[0].partition().total();
        for lp in &self.links {
            match (lp.tx, lp.rx) {
                (
                    TxSide::RouterOut { router: r, port: p },
                    RxSide::RouterIn {
                        router: r2,
                        port: p2,
                    },
                ) => {
                    for v in 0..vcs {
                        let vc = VcId(v);
                        let held = self.routers[r].credits_of(p, vc);
                        if held > cap {
                            log.record(Violation {
                                cycle: now.get(),
                                router: Some(r as u32),
                                port: p.get(),
                                vc: v,
                                kind: ViolationKind::CreditOverflow,
                                detail: format!("{held} credits for a {cap}-slot buffer"),
                            });
                        }
                        let returning =
                            lp.credit.iter_in_flight().filter(|c| *c == vc).count() as u32;
                        let on_wire =
                            lp.flit.iter_in_flight().filter(|f| f.vc == vc).count() as u32;
                        let buffered = self.routers[r2].input_buffered(p2, vc) as u32;
                        let total = held + returning + on_wire + buffered;
                        if total != cap {
                            log.record(Violation {
                                cycle: now.get(),
                                router: Some(r as u32),
                                port: p.get(),
                                vc: v,
                                kind: ViolationKind::CreditConservation,
                                detail: format!(
                                    "{held} held + {returning} returning + {on_wire} on wire + \
                                     {buffered} buffered = {total}, capacity {cap}"
                                ),
                            });
                        }
                    }
                }
                (TxSide::RouterOut { router: r, port: p }, RxSide::Node) => {
                    // Endpoints never return credits: the credit channel
                    // of an ejection link must stay idle, and the
                    // endpoint credit pool can only drain.
                    if !lp.credit.is_idle() {
                        log.record(Violation {
                            cycle: now.get(),
                            router: Some(r as u32),
                            port: p.get(),
                            vc: 0,
                            kind: ViolationKind::CreditConservation,
                            detail: format!(
                                "{} credits in flight on an ejection link",
                                lp.credit.in_flight()
                            ),
                        });
                    }
                    for v in 0..vcs {
                        let held = self.routers[r].credits_of(p, VcId(v));
                        if held > ENDPOINT_CREDITS {
                            log.record(Violation {
                                cycle: now.get(),
                                router: Some(r as u32),
                                port: p.get(),
                                vc: v,
                                kind: ViolationKind::CreditOverflow,
                                detail: format!(
                                    "{held} credits exceed the endpoint pool {ENDPOINT_CREDITS}"
                                ),
                            });
                        }
                    }
                }
                (
                    TxSide::Ni { node },
                    RxSide::RouterIn {
                        router: r2,
                        port: p2,
                    },
                ) => {
                    for v in 0..vcs {
                        let vc = VcId(v);
                        let held = self.endpoints[node].credits[v as usize];
                        if held > cap {
                            log.record(Violation {
                                cycle: now.get(),
                                router: None,
                                port: node as u32,
                                vc: v,
                                kind: ViolationKind::CreditOverflow,
                                detail: format!("{held} NI credits for a {cap}-slot buffer"),
                            });
                        }
                        let returning =
                            lp.credit.iter_in_flight().filter(|c| *c == vc).count() as u32;
                        let on_wire =
                            lp.flit.iter_in_flight().filter(|f| f.vc == vc).count() as u32;
                        let buffered = self.routers[r2].input_buffered(p2, vc) as u32;
                        let total = held + returning + on_wire + buffered;
                        if total != cap {
                            log.record(Violation {
                                cycle: now.get(),
                                router: None,
                                port: node as u32,
                                vc: v,
                                kind: ViolationKind::CreditConservation,
                                detail: format!(
                                    "{held} NI credits + {returning} returning + {on_wire} on \
                                     wire + {buffered} buffered = {total}, capacity {cap}"
                                ),
                            });
                        }
                    }
                }
                (TxSide::Ni { .. }, RxSide::Node) => {
                    unreachable!("an injection link never ends at a node")
                }
            }
        }
        // Mailbox conservation: a link must be on the active list exactly
        // when it has traffic in flight, and an endpoint exactly when it
        // has flits queued. Both the sequential stepper and the parallel
        // one (which freezes these lists as its per-cycle mailboxes) scan
        // only the listed entries, so a desync silently strands traffic.
        for (l, lp) in self.links.iter().enumerate() {
            let busy = !(lp.flit.is_idle() && lp.credit.is_idle());
            let flagged = self.link_active[l];
            let listed = self.active_links.binary_search(&l).is_ok();
            if busy != flagged || flagged != listed {
                log.record(Violation {
                    cycle: now.get(),
                    router: None,
                    port: l as u32,
                    vc: 0,
                    kind: ViolationKind::ActiveSetDesync,
                    detail: format!("link {l}: busy={busy} flagged={flagged} listed={listed}"),
                });
            }
        }
        for (n, ep) in self.endpoints.iter().enumerate() {
            let backlogged = ep.queued > 0;
            let flagged = self.ep_active[n];
            let listed = self.active_eps.binary_search(&n).is_ok();
            if backlogged != flagged || flagged != listed {
                log.record(Violation {
                    cycle: now.get(),
                    router: None,
                    port: n as u32,
                    vc: 0,
                    kind: ViolationKind::ActiveSetDesync,
                    detail: format!(
                        "endpoint {n}: backlogged={backlogged} flagged={flagged} listed={listed}"
                    ),
                });
            }
        }
        // Global flit conservation: everything injected but undelivered
        // must be somewhere — an NI queue, a link, or a router buffer.
        let in_nis: u64 = self
            .endpoints
            .iter()
            .map(|ep| ep.queues.iter().map(VecDeque::len).sum::<usize>() as u64)
            .sum();
        let on_links: u64 = self.links.iter().map(|lp| lp.flit.in_flight() as u64).sum();
        let in_routers: u64 = self
            .routers
            .iter()
            .map(|r| {
                let (rt, be) = r.occupancy_by_class();
                (rt + be) as u64
            })
            .sum();
        let present = in_nis + on_links + in_routers;
        if present != self.flits_in_flight {
            log.record(Violation {
                cycle: now.get(),
                router: None,
                port: 0,
                vc: 0,
                kind: ViolationKind::FlitConservation,
                detail: format!(
                    "{in_nis} queued + {on_links} on links + {in_routers} in routers = \
                     {present}, but {} flits are in flight",
                    self.flits_in_flight
                ),
            });
        }
        log.total() - before
    }

    /// Builds the watchdog's structured stall report: the waits-for graph
    /// over held output VCs, classified deadlock (cycle) vs. starvation.
    fn build_stall_report(&self, stalled_for: Cycles) -> StallReport {
        let topology = &self.topology;
        let downstream = |r: usize, p: PortId| -> Option<(usize, PortId)> {
            match topology.target_of(RouterId(r as u32), p) {
                PortTarget::Router { router, port } => Some((router.index(), port)),
                PortTarget::Node(_) => None,
            }
        };
        let route = |r: usize, f: &Flit| topology.route(RouterId(r as u32), f.dest).to_vec();
        let (mut holders, adj) = crate::audit::build_waits_for(&self.routers, &downstream, &route);
        let on_cycle = crate::audit::find_cycle_nodes(&adj);
        let mut any_cycle = false;
        for (h, on) in holders.iter_mut().zip(&on_cycle) {
            h.on_cycle = *on;
            any_cycle |= *on;
        }
        let ni_backlog: u64 = self
            .endpoints
            .iter()
            .map(|ep| ep.queues.iter().map(VecDeque::len).sum::<usize>() as u64)
            .sum();
        StallReport {
            cycle: self.now.get(),
            stalled_for: stalled_for.get(),
            kind: if any_cycle {
                StallKind::Deadlock
            } else {
                StallKind::Starvation
            },
            flits_in_flight: self.flits_in_flight,
            ni_backlog,
            holders,
        }
    }

    // ---- checkpoint / restore --------------------------------------------

    /// Serialises the network's complete mutable state into a versioned,
    /// checksummed snapshot.
    ///
    /// The snapshot covers everything a restored run needs to continue
    /// bit-identically: the clock, in-flight accounting, the workload's
    /// RNG stream and per-source positions, the injection calendar
    /// (including its tie-break sequence numbers), staged messages, NI
    /// queues and credits, every router's buffers/grants/credits/
    /// schedulers/counters, every link's wire state, the destination-side
    /// trackers, and the audit/watchdog/stall state. Structural state
    /// (topology, wiring, configuration) is *not* written — [`Network::
    /// restore`] requires a network freshly built from the same inputs.
    ///
    /// The derived active sets (busy links, backlogged endpoints, router
    /// pending/granted/staged lists) are recomputed on restore from the
    /// restored buffers; they are pure functions of that state (the
    /// predicates the `ActiveSetDesync` audit checks).
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.u64(self.now.0);
        w.u64(self.flits_in_flight);
        w.u64(self.injected_msgs);
        w.u64(self.total_link_sends);
        w.u64(self.stats_start.0);
        w.usize(self.link_sent.len());
        for &n in &self.link_sent {
            w.u64(n);
        }
        self.workload.save(&mut w);
        w.u64(self.calendar.next_seq());
        let entries = self.calendar.snapshot_entries();
        w.usize(entries.len());
        for (at, seq, &idx) in entries {
            w.u64(at.0);
            w.u64(seq);
            w.usize(idx);
        }
        w.usize(self.staged.len());
        for slot in &self.staged {
            w.option(slot.as_ref(), |w, msg| {
                w.u64(msg.at.0);
                w.u32(msg.src.0);
                w.u32(msg.vc_in.0);
                w.usize(msg.flits.len());
                for f in &msg.flits {
                    f.save(w);
                }
            });
        }
        for ep in &self.endpoints {
            for q in &ep.queues {
                w.usize(q.len());
                for f in q {
                    f.save(&mut w);
                }
            }
            ep.sched.save(&mut w);
            for &c in &ep.credits {
                w.u32(c);
            }
            w.option(ep.current, |w, v| w.usize(v));
        }
        for r in &self.routers {
            r.save(&mut w);
        }
        for lp in &self.links {
            lp.flit.save(&mut w);
            lp.credit.save(&mut w);
        }
        self.sinks.delivery.save(&mut w);
        self.sinks.latency.save(&mut w);
        w.usize(self.sinks.frame_tails.len());
        for frames in &self.sinks.frame_tails {
            w.usize(frames.len());
            for &(frame, tails) in frames {
                w.u32(frame);
                w.u32(tails);
            }
        }
        w.u64(self.sinks.delivered_msgs);
        w.u64(self.sinks.delivered_flits);
        w.usize(self.sinks.rt_latency.len());
        for st in &self.sinks.rt_latency {
            st.save(&mut w);
        }
        w.usize(self.sinks.rt_outstanding.len());
        for q in &self.sinks.rt_outstanding {
            w.usize(q.len());
            for &c in q {
                w.u64(c);
            }
        }
        w.u64(self.sinks.rt_warmup_end.0);
        w.option(self.audit.as_ref(), |w, st| {
            w.u64(st.cfg.interval);
            w.u64(st.next_at.0);
            st.log.save(w);
        });
        w.option(self.watchdog.as_ref(), |w, wd| {
            w.u64(wd.cfg.stall_cycles);
            w.u64(wd.last_signature);
            w.u64(wd.last_progress_at.0);
        });
        w.option(self.stall.as_ref(), |w, s| s.save(w));
        w.finish()
    }

    /// Restores state saved by [`Network::snapshot`] into this network,
    /// which must have been freshly built by [`Network::new`] from the
    /// *same* topology, workload-builder inputs and router configuration.
    /// After a successful restore, stepping this network produces
    /// bit-identical counters, traces and reports to the run the snapshot
    /// was taken from.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] if the snapshot is corrupt (bad magic,
    /// version, length or checksum), truncated, or structurally
    /// incompatible with this network (wrong link/source/router counts).
    ///
    /// # Panics
    ///
    /// Panics if this network has already been stepped (it must be
    /// freshly constructed).
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), SnapError> {
        assert_eq!(
            self.flits_in_flight, 0,
            "restore target network must be freshly constructed"
        );
        let mut r = SnapReader::new(bytes)?;
        self.now = Cycles(r.u64()?);
        self.flits_in_flight = r.u64()?;
        self.injected_msgs = r.u64()?;
        self.total_link_sends = r.u64()?;
        self.stats_start = Cycles(r.u64()?);
        if r.usize()? != self.link_sent.len() {
            return Err(SnapError::BadValue("link count mismatch"));
        }
        for n in &mut self.link_sent {
            *n = r.u64()?;
        }
        self.workload.load_into(&mut r)?;
        let next_seq = r.u64()?;
        let n = r.usize()?;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let at = Cycles(r.u64()?);
            let seq = r.u64()?;
            let idx = r.usize()?;
            if idx >= self.staged.len() || seq >= next_seq {
                return Err(SnapError::BadValue("calendar entry out of range"));
            }
            entries.push((at, seq, idx));
        }
        self.calendar = Calendar::from_snapshot(entries, next_seq);
        if r.usize()? != self.staged.len() {
            return Err(SnapError::BadValue("staged source count mismatch"));
        }
        for slot in &mut self.staged {
            *slot = r.option(|r| {
                let at = Cycles(r.u64()?);
                let src = NodeId(r.u32()?);
                let vc_in = VcId(r.u32()?);
                let n = r.usize()?;
                let mut flits = Vec::with_capacity(n);
                for _ in 0..n {
                    flits.push(Flit::load(r)?);
                }
                Ok(ScheduledMessage {
                    at,
                    src,
                    vc_in,
                    flits,
                })
            })?;
        }
        for ep in &mut self.endpoints {
            let mut queued = 0u64;
            for q in &mut ep.queues {
                let n = r.usize()?;
                q.clear();
                for _ in 0..n {
                    q.push_back(Flit::load(&mut r)?);
                }
                queued += n as u64;
            }
            ep.sched.load_into(&mut r)?;
            for c in &mut ep.credits {
                *c = r.u32()?;
            }
            ep.current = r.option(|r| r.usize())?;
            if ep.current.is_some_and(|v| v >= ep.queues.len()) {
                return Err(SnapError::BadValue("NI current VC out of range"));
            }
            ep.queued = queued;
        }
        for router in &mut self.routers {
            router.load_into(&mut r)?;
        }
        for lp in &mut self.links {
            lp.flit.load_into(&mut r)?;
            lp.credit.load_into(&mut r)?;
        }
        self.sinks.delivery.load_into(&mut r)?;
        self.sinks.latency.load_into(&mut r)?;
        let n = r.usize()?;
        self.sinks.frame_tails.clear();
        for _ in 0..n {
            let m = r.usize()?;
            let mut frames = Vec::with_capacity(m);
            for _ in 0..m {
                frames.push((r.u32()?, r.u32()?));
            }
            self.sinks.frame_tails.push(frames);
        }
        self.sinks.delivered_msgs = r.u64()?;
        self.sinks.delivered_flits = r.u64()?;
        let n = r.usize()?;
        self.sinks.rt_latency.clear();
        for _ in 0..n {
            self.sinks.rt_latency.push(RunningStats::load(&mut r)?);
        }
        let n = r.usize()?;
        self.sinks.rt_outstanding.clear();
        for _ in 0..n {
            let m = r.usize()?;
            let mut q = VecDeque::with_capacity(m);
            for _ in 0..m {
                q.push_back(r.u64()?);
            }
            self.sinks.rt_outstanding.push(q);
        }
        self.sinks.rt_warmup_end = Cycles(r.u64()?);
        self.audit = r
            .option(|r| {
                let interval = r.u64()?;
                let next_at = Cycles(r.u64()?);
                let log = AuditLog::load(r)?;
                Ok(AuditState {
                    cfg: AuditConfig { interval },
                    log,
                    next_at,
                })
            })?
            .or_else(|| self.audit.take());
        self.watchdog = r
            .option(|r| {
                let stall_cycles = r.u64()?;
                let last_signature = r.u64()?;
                let last_progress_at = Cycles(r.u64()?);
                Ok(WatchdogState {
                    cfg: WatchdogConfig { stall_cycles },
                    last_signature,
                    last_progress_at,
                })
            })?
            .or_else(|| self.watchdog.take());
        self.stall = r.option(StallReport::load)?;
        r.finish()?;
        // Recompute the derived active sets from the restored state.
        self.active_links.clear();
        for (l, lp) in self.links.iter().enumerate() {
            let busy = !(lp.flit.is_idle() && lp.credit.is_idle());
            self.link_active[l] = busy;
            if busy {
                self.active_links.push(l);
            }
        }
        self.active_eps.clear();
        for (e, ep) in self.endpoints.iter().enumerate() {
            let backlogged = ep.queued > 0;
            self.ep_active[e] = backlogged;
            if backlogged {
                self.active_eps.push(e);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchedulerKind;
    use flitnet::VcPartition;
    use traffic::{StreamClass, WorkloadBuilder, WorkloadSpec};

    fn small_workload(load: f64, seed: u64) -> Workload {
        WorkloadBuilder::new(8, VcPartition::all_real_time(16))
            .load(load)
            .mix(100.0, 0.0)
            .real_time_class(StreamClass::Cbr)
            .seed(seed)
            .build()
    }

    #[test]
    fn conservation_all_injected_flits_are_delivered() {
        let topology = Topology::single_switch(8);
        let cfg = RouterConfig::default();
        let mut net = Network::new(&topology, small_workload(0.3, 1), &cfg);
        let end = net.timebase().cycles_from_ms(40.0);
        net.run_until(end);
        assert!(net.injected_msgs() > 100, "workload should be active");
        // Drain: stop time only after everything in flight lands. Run a
        // little longer and compare.
        let drain = net.now() + Cycles(500_000);
        net.run_until(drain);
        // All flits that were injected must have been delivered (modulo
        // the ones injected in the drain window still moving — at 0.3 load
        // the network drains within a frame interval).
        assert!(
            net.delivered_flits() * 100 >= net.injected_msgs() * 20 * 95,
            "delivered {} of {} msgs",
            net.delivered_flits() / 20,
            net.injected_msgs()
        );
    }

    #[test]
    fn low_load_cbr_is_jitter_free() {
        let topology = Topology::single_switch(8);
        let cfg = RouterConfig::default();
        let mut net = Network::new(&topology, small_workload(0.4, 2), &cfg);
        let tb = net.timebase();
        net.set_warmup_end(tb.cycles_from_ms(40.0));
        net.run_until(tb.cycles_from_ms(150.0));
        let s = net.delivery().summary();
        assert!(
            s.intervals > 50,
            "need interval samples, got {}",
            s.intervals
        );
        assert!(
            s.is_jitter_free(33.0, 0.8),
            "expected jitter-free at low load: d={} σ={}",
            s.mean_ms,
            s.std_ms
        );
    }

    #[test]
    fn mixed_traffic_records_best_effort_latency() {
        let topology = Topology::single_switch(8);
        let wl = WorkloadBuilder::new(8, VcPartition::from_mix(16, 50.0, 50.0))
            .load(0.5)
            .mix(50.0, 50.0)
            .seed(3)
            .build();
        let cfg = RouterConfig::default();
        let mut net = Network::new(&topology, wl, &cfg);
        let tb = net.timebase();
        net.run_until(tb.cycles_from_ms(30.0));
        assert!(
            net.latency().count() > 100,
            "best-effort messages must flow"
        );
        let mean = net.latency().mean_us();
        // One switch at half load: latencies should be tens of µs at most.
        assert!(mean > 0.0 && mean < 500.0, "mean latency {mean} µs");
    }

    #[test]
    fn fifo_and_virtual_clock_both_complete() {
        let topology = Topology::single_switch(8);
        for kind in [
            SchedulerKind::Fifo,
            SchedulerKind::VirtualClock,
            SchedulerKind::RoundRobin,
        ] {
            let cfg = RouterConfig::default().scheduler(kind);
            let mut net = Network::new(&topology, small_workload(0.5, 4), &cfg);
            let tb = net.timebase();
            net.run_until(tb.cycles_from_ms(20.0));
            assert!(net.delivered_msgs() > 0, "{kind:?} delivered nothing");
        }
    }

    #[test]
    fn fat_mesh_delivers_across_hops() {
        let topology = Topology::fat_mesh(2, 2, 2, 4);
        let wl = WorkloadBuilder::new(16, VcPartition::all_real_time(16))
            .load(0.3)
            .mix(100.0, 0.0)
            .real_time_class(StreamClass::Cbr)
            .seed(5)
            .build();
        let cfg = RouterConfig::default();
        let mut net = Network::new(&topology, wl, &cfg);
        let tb = net.timebase();
        net.set_warmup_end(tb.cycles_from_ms(40.0));
        net.run_until(tb.cycles_from_ms(120.0));
        let s = net.delivery().summary();
        assert!(
            s.intervals > 50,
            "fat mesh must deliver frames; got {}",
            s.intervals
        );
        assert!(
            s.is_jitter_free(33.0, 1.0),
            "low-load fat mesh should be jitter-free: d={} σ={}",
            s.mean_ms,
            s.std_ms
        );
    }

    #[test]
    fn utilization_tracks_offered_load() {
        let topology = Topology::single_switch(8);
        let cfg = RouterConfig::default();
        let mut net = Network::new(&topology, small_workload(0.5, 9), &cfg);
        let tb = net.timebase();
        // CBR streams start at random phases within the first 33 ms frame
        // interval; measure a window that excludes that ramp-up.
        net.run_until(tb.cycles_from_ms(40.0));
        net.reset_link_stats();
        net.run_until(tb.cycles_from_ms(100.0));
        // Injection links should run near the offered 0.5 load; ejection
        // links likewise (uniform destinations).
        let mut total_inj = 0.0;
        for n in 0..8 {
            total_inj += net.injection_utilization(flitnet::NodeId(n));
        }
        let mean_inj = total_inj / 8.0;
        assert!(
            (mean_inj - 0.5).abs() < 0.06,
            "mean injection util {mean_inj}"
        );
        let mut total_out = 0.0;
        for p in 0..8 {
            total_out += net.link_utilization(flitnet::RouterId(0), PortId(p));
        }
        let mean_out = total_out / 8.0;
        assert!((mean_out - 0.5).abs() < 0.06, "mean output util {mean_out}");
    }

    #[test]
    fn counters_balance_with_delivered_flits() {
        let topology = Topology::single_switch(8);
        let cfg = RouterConfig::default();
        let mut net = Network::new(&topology, small_workload(0.3, 7), &cfg);
        let tb = net.timebase();
        net.run_until(tb.cycles_from_ms(20.0));
        let c = net.counters();
        // Single switch, all-real-time workload: every delivered flit
        // crossed exactly one router output.
        assert_eq!(c.be_flits, 0);
        assert!(c.rt_flits >= net.delivered_flits());
        assert!(c.rt_flits <= net.delivered_flits() + net.flits_in_flight());
    }

    #[test]
    fn traced_run_emits_inject_and_deliver_events() {
        use netsim::JsonlSink;
        let topology = Topology::single_switch(8);
        let cfg = RouterConfig::default();
        let mut net = Network::new(&topology, small_workload(0.3, 8), &cfg);
        let tb = net.timebase();
        let mut sink = JsonlSink::new();
        net.run_until_with(tb.cycles_from_ms(5.0), &mut sink);
        let text = String::from_utf8(sink.into_bytes()).expect("utf8");
        let injects = text.matches("\"event\":\"inject\"").count() as u64;
        let delivers = text.matches("\"event\":\"deliver\"").count() as u64;
        assert_eq!(injects, net.injected_msgs());
        assert_eq!(delivers, net.delivered_msgs());
        assert!(text.matches("\"event\":\"route\"").count() > 0);
        assert!(text.matches("\"event\":\"arbitrate\"").count() > 0);
    }

    #[test]
    fn noop_sink_run_matches_plain_run() {
        let topology = Topology::single_switch(8);
        let cfg = RouterConfig::default();
        let mut plain = Network::new(&topology, small_workload(0.4, 11), &cfg);
        let mut wired = Network::new(&topology, small_workload(0.4, 11), &cfg);
        let tb = plain.timebase();
        let end = tb.cycles_from_ms(25.0);
        plain.run_until(end);
        wired.run_until_with(end, &mut NoopSink);
        assert_eq!(plain.delivered_flits(), wired.delivered_flits());
        assert_eq!(plain.injected_msgs(), wired.injected_msgs());
        assert_eq!(plain.counters(), wired.counters());
    }

    #[test]
    fn small_message_spec_flows() {
        // Single-flit messages exercise the HeadTail path end to end.
        let spec = WorkloadSpec {
            msg_flits: 1,
            ..WorkloadSpec::paper_default()
        };
        let wl = WorkloadBuilder::new(8, VcPartition::all_real_time(4))
            .spec(spec)
            .load(0.2)
            .mix(100.0, 0.0)
            .real_time_class(StreamClass::Cbr)
            .seed(6)
            .build();
        let cfg = RouterConfig::new(4);
        let topology = Topology::single_switch(8);
        let mut net = Network::new(&topology, wl, &cfg);
        let tb = net.timebase();
        net.run_until(tb.cycles_from_ms(5.0));
        assert!(net.delivered_msgs() > 0);
    }

    #[test]
    fn audit_is_clean_on_a_healthy_run() {
        use crate::audit::AuditConfig;
        let topology = Topology::single_switch(8);
        let cfg = RouterConfig::default();
        let mut net = Network::new(&topology, small_workload(0.5, 13), &cfg);
        net.enable_audit(AuditConfig { interval: 64 });
        let tb = net.timebase();
        net.run_until(tb.cycles_from_ms(10.0));
        assert!(net.delivered_msgs() > 0);
        let log = net.audit_log().expect("audit enabled");
        assert!(
            log.is_clean(),
            "healthy run must audit clean, got: {:?}",
            log.violations()
        );
        assert!(net.stall_report().is_none());
    }

    #[test]
    fn audit_catches_an_injected_credit_fault() {
        use crate::audit::AuditConfig;
        let topology = Topology::single_switch(8);
        let cfg = RouterConfig::default();
        let mut net = Network::new(&topology, small_workload(0.5, 14), &cfg);
        net.enable_audit(AuditConfig::every_cycle());
        let tb = net.timebase();
        net.run_until(tb.cycles_from_ms(2.0));
        assert_eq!(net.audit_log().map(|l| l.total()), Some(0));
        // Mutation: hand the router a credit no endpoint ever sent. The
        // per-link credit books no longer balance, and every later sweep
        // must notice.
        net.inject_credit_fault(flitnet::RouterId(0), PortId(3), flitnet::VcId(0));
        let found = net.audit_now();
        assert!(found > 0, "audit must flag the forged credit");
        let log = net.audit_log().expect("audit enabled");
        assert!(!log.is_clean());
        assert!(log
            .violations()
            .iter()
            .any(|v| v.router == Some(0) && v.port == 3 && v.vc == 0));
    }

    #[test]
    fn audited_run_matches_unaudited_numbers() {
        use crate::audit::{AuditConfig, WatchdogConfig};
        let topology = Topology::single_switch(8);
        let cfg = RouterConfig::default();
        let mut plain = Network::new(&topology, small_workload(0.4, 15), &cfg);
        let mut checked = Network::new(&topology, small_workload(0.4, 15), &cfg);
        checked.enable_audit(AuditConfig { interval: 256 });
        checked.enable_watchdog(WatchdogConfig::default());
        let tb = plain.timebase();
        let end = tb.cycles_from_ms(20.0);
        plain.run_until(end);
        checked.run_until(end);
        // Observability must not perturb the simulation.
        assert_eq!(plain.delivered_flits(), checked.delivered_flits());
        assert_eq!(plain.injected_msgs(), checked.injected_msgs());
        assert_eq!(plain.counters(), checked.counters());
        assert!(checked.audit_log().expect("enabled").is_clean());
        assert!(checked.stall_report().is_none());
    }

    #[test]
    fn watchdog_classifies_clockwise_ring_deadlock() {
        use crate::audit::{StallKind, WatchdogConfig};
        // A unidirectional ring with a single VC and no dateline has a
        // cyclic channel dependency; deep worms at high load must deadlock.
        let topology = Topology::ring(3, 1);
        let spec = WorkloadSpec {
            msg_flits: 64,
            ..WorkloadSpec::paper_default()
        };
        let wl = WorkloadBuilder::new(3, VcPartition::all_real_time(1))
            .spec(spec)
            .load(0.9)
            .mix(100.0, 0.0)
            .real_time_class(StreamClass::Cbr)
            .seed(16)
            .build();
        let cfg = RouterConfig::new(1).buf_flits(4);
        let mut net = Network::new(&topology, wl, &cfg);
        net.enable_watchdog(WatchdogConfig {
            stall_cycles: 5_000,
        });
        let tb = net.timebase();
        let end = tb.cycles_from_ms(500.0);
        net.run_until(end);
        let stall = net
            .stall_report()
            .expect("1-VC clockwise ring must deadlock");
        assert_eq!(stall.kind, StallKind::Deadlock);
        assert!(stall.flits_in_flight > 0);
        assert!(
            stall.holders.iter().filter(|h| h.on_cycle).count() >= 2,
            "a deadlock cycle spans at least two holders: {:?}",
            stall.holders
        );
        // The run stops at detection instead of spinning to the end.
        assert!(net.now() < end);
        assert_eq!(stall.stalled_for, 5_000);
    }

    #[test]
    fn snapshot_round_trip_is_bit_identical() {
        let topology = Topology::single_switch(8);
        let cfg = RouterConfig::default();
        let mut a = Network::new(&topology, small_workload(0.5, 21), &cfg);
        let tb = a.timebase();
        a.run_until(tb.cycles_from_ms(10.0));
        let bytes = a.snapshot();

        let mut b = Network::new(&topology, small_workload(0.5, 21), &cfg);
        b.restore(&bytes).expect("restore");
        assert_eq!(a.now(), b.now());
        assert_eq!(a.injected_msgs(), b.injected_msgs());
        assert_eq!(a.flits_in_flight(), b.flits_in_flight());
        assert_eq!(
            bytes,
            b.snapshot(),
            "re-snapshot after restore must be byte-identical"
        );

        let end = tb.cycles_from_ms(25.0);
        a.run_until(end);
        b.run_until(end);
        assert_eq!(a.injected_msgs(), b.injected_msgs());
        assert_eq!(a.delivered_msgs(), b.delivered_msgs());
        assert_eq!(a.delivered_flits(), b.delivered_flits());
        assert_eq!(a.counters(), b.counters());
        assert_eq!(
            a.snapshot(),
            b.snapshot(),
            "states diverge after the restore point"
        );
    }

    #[test]
    fn snapshot_round_trip_with_audit_and_mixed_traffic() {
        use crate::audit::{AuditConfig, WatchdogConfig};
        let topology = Topology::fat_mesh(2, 2, 2, 4);
        let build = || {
            WorkloadBuilder::new(16, VcPartition::from_mix(16, 50.0, 50.0))
                .load(0.6)
                .mix(50.0, 50.0)
                .seed(22)
                .build()
        };
        let cfg = RouterConfig::default();
        let mut a = Network::new(&topology, build(), &cfg);
        a.enable_audit(AuditConfig { interval: 64 });
        a.enable_watchdog(WatchdogConfig::default());
        let tb = a.timebase();
        a.set_warmup_end(tb.cycles_from_ms(5.0));
        a.run_until(tb.cycles_from_ms(12.0));
        let bytes = a.snapshot();

        // The snapshot carries the audit/watchdog state, so the restored
        // network does not need them re-enabled by the caller.
        let mut b = Network::new(&topology, build(), &cfg);
        b.restore(&bytes).expect("restore");
        let end = tb.cycles_from_ms(20.0);
        a.run_until(end);
        b.run_until(end);
        assert_eq!(a.delivered_flits(), b.delivered_flits());
        assert_eq!(a.counters(), b.counters());
        assert_eq!(
            a.audit_log().map(|l| l.total()),
            b.audit_log().map(|l| l.total())
        );
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn restore_rejects_corrupted_bytes() {
        let topology = Topology::single_switch(8);
        let cfg = RouterConfig::default();
        let mut a = Network::new(&topology, small_workload(0.4, 23), &cfg);
        let tb = a.timebase();
        a.run_until(tb.cycles_from_ms(2.0));
        let mut bytes = a.snapshot();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x5a;
        let mut b = Network::new(&topology, small_workload(0.4, 23), &cfg);
        assert!(b.restore(&bytes).is_err(), "corruption must be detected");
    }
}
