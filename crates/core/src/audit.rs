//! Flow-control invariant auditing and the progress watchdog.
//!
//! Two independent safety nets guard a simulation run, both following the
//! telemetry layer's free-when-off design (a disabled run executes the
//! same instruction stream as before):
//!
//! * **Audit mode** ([`AuditConfig`]) periodically sweeps the whole
//!   network and verifies wormhole flow-control invariants — per-VC
//!   credit counts never exceed the downstream buffer capacity, every
//!   credit matches a freed slot (credit conservation around each link),
//!   flits are conserved from injection through delivery, and every VC
//!   buffer holds a well-formed run of worms. Violations are filed into a
//!   [`netsim::audit::AuditLog`].
//! * The **progress watchdog** ([`WatchdogConfig`]) detects "flits in
//!   flight but zero forwarding progress for N cycles", then builds a
//!   waits-for graph over the (router, output VC) holders to classify the
//!   stall: a cycle in the graph is a true **deadlock** (circular
//!   channel-dependency — no flit can ever move again), an acyclic graph
//!   means **starvation/livelock** (progress is blocked but no circular
//!   wait exists). The outcome is a structured [`StallReport`] in
//!   `SimOutcome`/`--json` instead of a silent timeout.
//!
//! See `DESIGN.md` for the invariant catalogue and the waits-for edge
//! rules.

use flitnet::{PortId, VcId};
use metrics::Json;
use netsim::snap::{SnapError, SnapReader, SnapWriter};

use crate::router::Router;

/// Configuration of the invariant audit sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditConfig {
    /// Cycles between full-network audit sweeps. Conservation violations
    /// persist once introduced, so a periodic sweep catches them; a sweep
    /// every cycle is for unit tests and costs O(links × VCs) per cycle.
    pub interval: u64,
}

impl Default for AuditConfig {
    fn default() -> AuditConfig {
        AuditConfig { interval: 1024 }
    }
}

impl AuditConfig {
    /// An audit sweep on every simulated cycle (test use).
    pub fn every_cycle() -> AuditConfig {
        AuditConfig { interval: 1 }
    }
}

/// Configuration of the progress watchdog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Cycles without any forwarding progress (while flits are in flight)
    /// before the run is declared stalled. The default is far above any
    /// legitimate pause: a worm's worst-case wait under the paper's
    /// workloads is a few thousand cycles.
    pub stall_cycles: u64,
}

impl Default for WatchdogConfig {
    fn default() -> WatchdogConfig {
        WatchdogConfig {
            stall_cycles: 50_000,
        }
    }
}

/// How a stalled run is classified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallKind {
    /// The waits-for graph over output-VC holders contains a cycle: a
    /// circular channel dependency that can never resolve.
    Deadlock,
    /// No circular wait: flits are blocked (e.g. starved behind other
    /// traffic or an accounting bug dried up credits) but no dependency
    /// cycle exists.
    Starvation,
}

impl StallKind {
    /// The stable lowercase label (used in JSON output).
    pub fn label(self) -> &'static str {
        match self {
            StallKind::Deadlock => "deadlock",
            StallKind::Starvation => "starvation",
        }
    }
}

/// One (router, output port, output VC) held by a blocked worm at stall
/// time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VcHold {
    /// Router holding the output VC.
    pub router: u32,
    /// Output physical channel.
    pub port: u32,
    /// Output virtual channel.
    pub vc: u32,
    /// Message owning the VC (held head → tail).
    pub msg: u64,
    /// Flits staged in the VC's output buffer.
    pub staged: u32,
    /// Credits the VC holds for the downstream buffer.
    pub credits: u32,
    /// The `(router, port, vc)` holder this one waits for, if blocked on
    /// another held VC.
    pub waits_for: Option<(u32, u32, u32)>,
    /// Whether this holder lies on a waits-for cycle.
    pub on_cycle: bool,
}

impl VcHold {
    fn to_json(self) -> Json {
        let mut o = Json::obj([
            ("router", Json::Uint(u64::from(self.router))),
            ("port", Json::Uint(u64::from(self.port))),
            ("vc", Json::Uint(u64::from(self.vc))),
            ("msg", Json::Uint(self.msg)),
            ("staged", Json::Uint(u64::from(self.staged))),
            ("credits", Json::Uint(u64::from(self.credits))),
        ]);
        o.push(
            "waits_for",
            match self.waits_for {
                Some((r, p, v)) => Json::obj([
                    ("router", Json::Uint(u64::from(r))),
                    ("port", Json::Uint(u64::from(p))),
                    ("vc", Json::Uint(u64::from(v))),
                ]),
                None => Json::Null,
            },
        );
        o.push("on_cycle", Json::Bool(self.on_cycle));
        o
    }

    fn save(self, w: &mut SnapWriter) {
        w.u32(self.router);
        w.u32(self.port);
        w.u32(self.vc);
        w.u64(self.msg);
        w.u32(self.staged);
        w.u32(self.credits);
        w.option(self.waits_for, |w, (r, p, v)| {
            w.u32(r);
            w.u32(p);
            w.u32(v);
        });
        w.bool(self.on_cycle);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<VcHold, SnapError> {
        Ok(VcHold {
            router: r.u32()?,
            port: r.u32()?,
            vc: r.u32()?,
            msg: r.u64()?,
            staged: r.u32()?,
            credits: r.u32()?,
            waits_for: r.option(|r| Ok((r.u32()?, r.u32()?, r.u32()?)))?,
            on_cycle: r.bool()?,
        })
    }
}

/// The structured report the watchdog emits when a run stalls.
#[derive(Debug, Clone, PartialEq)]
pub struct StallReport {
    /// Cycle the stall was declared on.
    pub cycle: u64,
    /// Cycles since the last observed forwarding progress.
    pub stalled_for: u64,
    /// Deadlock (waits-for cycle) or starvation/livelock.
    pub kind: StallKind,
    /// Flits injected but not delivered at stall time.
    pub flits_in_flight: u64,
    /// Flits still queued in the network interfaces.
    pub ni_backlog: u64,
    /// Every output VC held by a blocked worm, with its wait edge.
    pub holders: Vec<VcHold>,
}

impl StallReport {
    /// The report as a JSON object (the `"stall"` value in `--json`
    /// output; shape documented in the README).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("cycle", Json::Uint(self.cycle)),
            ("stalled_for", Json::Uint(self.stalled_for)),
            ("kind", Json::str(self.kind.label())),
            ("flits_in_flight", Json::Uint(self.flits_in_flight)),
            ("ni_backlog", Json::Uint(self.ni_backlog)),
            (
                "holders",
                Json::arr(self.holders.iter().map(|h| h.to_json())),
            ),
        ])
    }

    /// Serialises the report into a snapshot (a tripped watchdog is part
    /// of the network state a checkpoint must carry).
    pub fn save(&self, w: &mut SnapWriter) {
        w.u64(self.cycle);
        w.u64(self.stalled_for);
        w.u8(match self.kind {
            StallKind::Deadlock => 0,
            StallKind::Starvation => 1,
        });
        w.u64(self.flits_in_flight);
        w.u64(self.ni_backlog);
        w.usize(self.holders.len());
        for h in &self.holders {
            h.save(w);
        }
    }

    /// Restores a report saved by [`StallReport::save`].
    ///
    /// # Errors
    ///
    /// Propagates snapshot decoding errors; rejects unknown stall-kind
    /// tags.
    pub fn load(r: &mut SnapReader<'_>) -> Result<StallReport, SnapError> {
        let cycle = r.u64()?;
        let stalled_for = r.u64()?;
        let kind = match r.u8()? {
            0 => StallKind::Deadlock,
            1 => StallKind::Starvation,
            _ => return Err(SnapError::BadValue("unknown stall kind tag")),
        };
        let flits_in_flight = r.u64()?;
        let ni_backlog = r.u64()?;
        let n = r.usize()?;
        let mut holders = Vec::with_capacity(n);
        for _ in 0..n {
            holders.push(VcHold::load(r)?);
        }
        Ok(StallReport {
            cycle,
            stalled_for,
            kind,
            flits_in_flight,
            ni_backlog,
            holders,
        })
    }
}

/// Builds the waits-for graph over the routers' held output VCs.
///
/// Nodes are the `(router, output port, output VC)` triples currently
/// owned by a message. Edges follow the blocked worm downstream:
///
/// * `downstream(router, port)` names the `(router, input port)` the
///   output feeds, or `None` for an ejection port (endpoints always
///   drain, so ejection holders wait on nothing).
/// * If the downstream input VC carries a **granted** worm, the holder
///   waits for that grant's output VC (the same worm's next hop).
/// * If the downstream input VC's front flit is an **ungranted head**,
///   the worm is waiting for *any* free output VC of its class on its
///   candidate ports (`route(router, flit)`): one edge per currently
///   owned candidate VC.
/// * An empty downstream buffer means the worm can still progress (it is
///   strung out, not blocked): no edge.
///
/// Returns the holders (with `waits_for` set to the first edge and
/// `on_cycle` false) and the adjacency lists over holder indices.
pub(crate) fn build_waits_for(
    routers: &[Router],
    downstream: &dyn Fn(usize, PortId) -> Option<(usize, PortId)>,
    route: &dyn Fn(usize, &flitnet::Flit) -> Vec<PortId>,
) -> (Vec<VcHold>, Vec<Vec<usize>>) {
    use std::collections::HashMap;

    let mut holders = Vec::new();
    let mut index: HashMap<(u32, u32, u32), usize> = HashMap::new();
    for (r, router) in routers.iter().enumerate() {
        let m = router.partition().total();
        for p in 0..router.port_count() {
            for v in 0..m {
                let (port, vc) = (PortId(p as u32), VcId(v));
                if let Some(msg) = router.output_owner(port, vc) {
                    index.insert((r as u32, p as u32, v), holders.len());
                    holders.push(VcHold {
                        router: r as u32,
                        port: p as u32,
                        vc: v,
                        msg: msg.get(),
                        staged: router.output_staged(port, vc) as u32,
                        credits: router.credits_of(port, vc),
                        waits_for: None,
                        on_cycle: false,
                    });
                }
            }
        }
    }

    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); holders.len()];
    for i in 0..holders.len() {
        let h = holders[i];
        let Some((r2, p2)) = downstream(h.router as usize, PortId(h.port)) else {
            continue; // ejection port: always drains
        };
        let in_vc = VcId(h.vc); // flits keep the granted VC across the link
        let mut targets: Vec<(u32, u32, u32)> = Vec::new();
        if let Some((go, gv)) = routers[r2].grant_of(p2, in_vc) {
            targets.push((r2 as u32, go.get(), gv.get()));
        } else if let Some(head) = routers[r2].input_head(p2, in_vc) {
            if head.kind.is_head() {
                for cand in route(r2, head) {
                    for vc2 in routers[r2].partition().vcs_for(head.class) {
                        if routers[r2].output_owner(cand, vc2).is_some() {
                            targets.push((r2 as u32, cand.get(), vc2.get()));
                        }
                    }
                }
            }
        }
        for t in targets {
            if let Some(&j) = index.get(&t) {
                if holders[i].waits_for.is_none() {
                    holders[i].waits_for = Some(t);
                }
                adj[i].push(j);
            }
        }
    }
    (holders, adj)
}

/// Marks every node that lies on a cycle of `adj`.
///
/// Stall-time only (and the graphs are small), so a per-node DFS is
/// plenty: node `i` is on a cycle iff `i` is reachable from one of its
/// successors.
pub(crate) fn find_cycle_nodes(adj: &[Vec<usize>]) -> Vec<bool> {
    let n = adj.len();
    let mut on_cycle = vec![false; n];
    let mut visited = vec![false; n];
    let mut stack = Vec::new();
    for i in 0..n {
        visited.iter_mut().for_each(|v| *v = false);
        stack.clear();
        stack.extend(adj[i].iter().copied());
        while let Some(x) = stack.pop() {
            if x == i {
                on_cycle[i] = true;
                break;
            }
            if !visited[x] {
                visited[x] = true;
                stack.extend(adj[x].iter().copied());
            }
        }
    }
    on_cycle
}

#[cfg(test)]
mod tests {
    use super::*;
    use flitnet::{
        Flit, FlitKind, FrameId, MsgId, NodeId, RouterId, StreamId, TrafficClass, VcPartition,
        VcSel,
    };
    use netsim::telemetry::NoopSink;
    use netsim::Cycles;

    use crate::config::RouterConfig;

    fn worm(msg: u64, len: u32, dest: u32) -> Vec<Flit> {
        Flit::flitify(Flit {
            kind: FlitKind::Head,
            stream: StreamId(msg as u32),
            msg: MsgId(msg),
            frame: FrameId(0),
            seq_in_msg: 0,
            msg_len: len,
            msg_seq_in_frame: 0,
            msgs_in_frame: 1,
            dest: NodeId(dest),
            vc: VcId(0),
            out_vc: VcId(0),
            vtick: 100.0,
            class: TrafficClass::Vbr,
            created_at: Cycles(0),
        })
    }

    #[test]
    fn stall_kind_labels_are_stable() {
        assert_eq!(StallKind::Deadlock.label(), "deadlock");
        assert_eq!(StallKind::Starvation.label(), "starvation");
    }

    #[test]
    fn cycle_detection_marks_only_cycle_members() {
        // 0 → 1 → 2 → 1 (cycle {1, 2}), 3 → 0 (chain into it), 4 isolated.
        let adj = vec![vec![1], vec![2], vec![1], vec![0], vec![]];
        let on = find_cycle_nodes(&adj);
        assert_eq!(on, vec![false, true, true, false, false]);
        // A self-loop is a cycle.
        let on = find_cycle_nodes(&[vec![0]]);
        assert_eq!(on, vec![true]);
        // A DAG has none.
        let on = find_cycle_nodes(&[vec![1, 2], vec![2], vec![]]);
        assert_eq!(on, vec![false, false, false]);
    }

    #[test]
    fn stall_report_serializes_to_documented_shape() {
        let report = StallReport {
            cycle: 9000,
            stalled_for: 5000,
            kind: StallKind::Deadlock,
            flits_in_flight: 42,
            ni_backlog: 7,
            holders: vec![VcHold {
                router: 0,
                port: 1,
                vc: 0,
                msg: 17,
                staged: 3,
                credits: 0,
                waits_for: Some((1, 0, 0)),
                on_cycle: true,
            }],
        };
        let text = report.to_json().to_string();
        assert!(text.contains("\"kind\":\"deadlock\""));
        assert!(text.contains("\"stalled_for\":5000"));
        assert!(text.contains("\"waits_for\":{\"router\":1,\"port\":0,\"vc\":0}"));
        assert!(text.contains("\"on_cycle\":true"));
        let none = VcHold {
            waits_for: None,
            ..report.holders[0]
        };
        assert!(none.to_json().to_string().contains("\"waits_for\":null"));
    }

    /// The crafted two-router cyclic-dependency configuration the issue
    /// calls for: two real routers, each holding its inter-router output
    /// VC for a worm whose head sits ungranted at the *other* router,
    /// wanting that router's (owned) inter-router output. The waits-for
    /// graph must close the cycle and classify as deadlock.
    #[test]
    fn crafted_two_router_cycle_is_classified_as_deadlock() {
        // One VC, tiny buffers. Port 0 of each router is the inter-router
        // link (0.port0 ↔ 1.port0); port 1 is the ejection port.
        let cfg = RouterConfig::new(1).buf_flits(4);
        let part = VcPartition::all_real_time(1);
        let mut r0 = Router::new(RouterId(0), 2, &cfg, part);
        let mut r1 = Router::new(RouterId(1), 2, &cfg, part);
        for r in [&mut r0, &mut r1] {
            r.init_credits(PortId(0), VcId(0), 4);
            r.init_credits(PortId(1), VcId(0), 1_000_000);
        }
        let mut sink = NoopSink;

        // Worm A arrives at router 0 (from its endpoint via port 1) and is
        // granted output port 0 (toward router 1). Worm B mirrors it.
        const TO_NEIGHBOUR: [PortId; 1] = [PortId(0)];
        for (i, f) in worm(1, 16, 3).into_iter().take(4).enumerate() {
            r0.receive_flit(Cycles(i as u64), PortId(1), f);
        }
        for (i, f) in worm(2, 16, 1).into_iter().take(4).enumerate() {
            r1.receive_flit(Cycles(i as u64), PortId(1), f);
        }
        for t in 0..10u64 {
            r0.arbitrate(Cycles(t), |_| (&TO_NEIGHBOUR[..], VcSel::Any), &mut sink);
            r1.arbitrate(Cycles(t), |_| (&TO_NEIGHBOUR[..], VcSel::Any), &mut sink);
        }
        assert_eq!(r0.output_owner(PortId(0), VcId(0)), Some(MsgId(1)));
        assert_eq!(r1.output_owner(PortId(0), VcId(0)), Some(MsgId(2)));

        // Each worm's *continuation* head is parked ungranted at the other
        // router's inter-router input: worm A's next message-segment wants
        // router 1's port 0 (owned by B), and vice versa. (In a real ring
        // this is the strung-out worm's head one hop ahead; hand-placing
        // the flits lets the test pin the exact shape.)
        r0.receive_flit(Cycles(20), PortId(0), worm(3, 16, 3)[0]);
        r1.receive_flit(Cycles(20), PortId(0), worm(4, 16, 1)[0]);

        let routers = [r0, r1];
        let downstream = |r: usize, p: PortId| -> Option<(usize, PortId)> {
            (p == PortId(0)).then_some((1 - r, PortId(0)))
        };
        let route = |_r: usize, _f: &Flit| vec![PortId(0)];
        let (mut holders, adj) = build_waits_for(&routers, &downstream, &route);
        assert_eq!(holders.len(), 2, "both inter-router VCs are held");
        let on_cycle = find_cycle_nodes(&adj);
        for (h, on) in holders.iter_mut().zip(&on_cycle) {
            h.on_cycle = *on;
        }
        assert!(
            on_cycle.iter().all(|&c| c),
            "the two holders must wait on each other: {holders:?}"
        );
        // Each holder's wait edge points at the other router's held VC.
        for h in &holders {
            let (wr, wp, wv) = h.waits_for.expect("blocked holder has a wait edge");
            assert_eq!(wr, 1 - h.router);
            assert_eq!((wp, wv), (0, 0));
        }
    }

    /// Without the parked heads, the held VCs wait on nothing — an
    /// acyclic graph that must NOT classify as deadlock.
    #[test]
    fn holders_with_empty_downstream_have_no_wait_edges() {
        let cfg = RouterConfig::new(1).buf_flits(4);
        let part = VcPartition::all_real_time(1);
        let mut r0 = Router::new(RouterId(0), 2, &cfg, part);
        let r1 = Router::new(RouterId(1), 2, &cfg, part);
        r0.init_credits(PortId(0), VcId(0), 4);
        r0.init_credits(PortId(1), VcId(0), 1_000_000);
        let mut sink = NoopSink;
        const TO_NEIGHBOUR: [PortId; 1] = [PortId(0)];
        for (i, f) in worm(1, 16, 3).into_iter().take(4).enumerate() {
            r0.receive_flit(Cycles(i as u64), PortId(1), f);
        }
        for t in 0..10u64 {
            r0.arbitrate(Cycles(t), |_| (&TO_NEIGHBOUR[..], VcSel::Any), &mut sink);
        }
        let routers = [r0, r1];
        let downstream = |r: usize, p: PortId| -> Option<(usize, PortId)> {
            (p == PortId(0)).then_some((1 - r, PortId(0)))
        };
        let route = |_r: usize, _f: &Flit| vec![PortId(0)];
        let (holders, adj) = build_waits_for(&routers, &downstream, &route);
        assert_eq!(holders.len(), 1);
        assert!(adj[0].is_empty(), "empty downstream buffer ⇒ no edge");
        assert!(!find_cycle_nodes(&adj)[0]);
    }
}
