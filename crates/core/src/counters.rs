//! Always-on router telemetry counters.
//!
//! Every [`crate::Router`] keeps per-port/per-VC counters that cost a
//! handful of integer adds on paths the router already executes: flits
//! forwarded per traffic class, crossbar-mux conflicts, credit-stall
//! cycles and sampled VC-buffer occupancy. They exist so scheduler-bias or
//! flow-control bugs show up as counter asymmetries instead of anecdotes,
//! and they serialize to the machine-readable bench output via
//! [`RouterCounters::to_json`].

use metrics::Json;

/// How often (in cycles) the crossbar samples input-buffer occupancy.
///
/// Sampling happens on active cycles only: a router that is idle (and
/// skipped by the driver's quiescence-horizon jump) records no samples,
/// which is the interesting regime anyway — an idle router's buffers are
/// empty. The crossbar stage asserts this invariant (`debug_assert` on
/// `Router::has_work`), and a skipped span therefore contributes neither
/// samples nor occupancy sums; mean occupancy is a *busy-cycle* mean, not
/// a wall-clock mean, regardless of how many cycles the driver jumps.
pub const OCCUPANCY_SAMPLE_PERIOD: u64 = 1024;

/// Quiescence-skip effectiveness counters, kept by the network driver.
///
/// Always on (two integer adds per stepped cycle or jump) but *not* part
/// of [`NetCounters`]: skip behaviour is a property of the driver, not of
/// the simulated machine — an audited run steps extra due-cycles and so
/// skips less, while producing bit-identical simulation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SkipStats {
    /// Cycles actually executed through the step pipeline.
    pub cycles_stepped: u64,
    /// Cycles jumped over because the network was quiescent.
    pub cycles_skipped: u64,
    /// Number of horizon jumps taken (each skips ≥ 1 cycle).
    pub horizon_jumps: u64,
}

impl SkipStats {
    /// Total simulated cycles this driver advanced (stepped + skipped).
    pub fn simulated_cycles(&self) -> u64 {
        self.cycles_stepped + self.cycles_skipped
    }

    /// Fraction of simulated cycles that were skipped (0.0 when nothing
    /// was simulated).
    pub fn skip_ratio(&self) -> f64 {
        let total = self.simulated_cycles();
        if total == 0 {
            0.0
        } else {
            self.cycles_skipped as f64 / total as f64
        }
    }

    /// The skip counters as a flat JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("cycles_stepped", Json::Uint(self.cycles_stepped)),
            ("cycles_skipped", Json::Uint(self.cycles_skipped)),
            ("horizon_jumps", Json::Uint(self.horizon_jumps)),
            ("skip_ratio", Json::num(self.skip_ratio())),
        ])
    }
}

/// Counters for one physical channel (its input and output side).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PortCounters {
    /// Real-time (VBR/CBR) flits this output port transmitted.
    pub rt_flits: u64,
    /// Best-effort flits this output port transmitted.
    pub be_flits: u64,
    /// Crossbar input-mux conflicts at this input port: one count per
    /// eligible VC that lost its arbitration cycle (point A).
    pub mux_conflicts: u64,
    /// Per output VC: cycles its staged head flit was ready to transmit
    /// but the downstream buffer had no credit.
    pub credit_stalls: Vec<u64>,
    /// Sum over samples of this input port's buffered flits (all VCs).
    pub occupancy_flits: u64,
}

impl PortCounters {
    fn new(n_vcs: usize) -> PortCounters {
        PortCounters {
            credit_stalls: vec![0; n_vcs],
            ..PortCounters::default()
        }
    }

    /// Total credit-stall cycles across this port's output VCs.
    pub fn credit_stall_cycles(&self) -> u64 {
        self.credit_stalls.iter().sum()
    }
}

/// All counters of one router.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouterCounters {
    /// Per-physical-channel counters.
    pub ports: Vec<PortCounters>,
    /// Number of occupancy sampling events taken so far.
    pub occupancy_samples: u64,
}

impl RouterCounters {
    /// Zeroed counters for a router with `n_ports` channels of `n_vcs`
    /// VCs each.
    pub fn new(n_ports: usize, n_vcs: usize) -> RouterCounters {
        RouterCounters {
            ports: (0..n_ports).map(|_| PortCounters::new(n_vcs)).collect(),
            occupancy_samples: 0,
        }
    }

    /// Sums this router's counters into one [`NetCounters`] record.
    pub fn totals(&self) -> NetCounters {
        let mut t = NetCounters::default();
        for p in &self.ports {
            t.rt_flits += p.rt_flits;
            t.be_flits += p.be_flits;
            t.mux_conflicts += p.mux_conflicts;
            t.credit_stall_cycles += p.credit_stall_cycles();
            t.occupancy_flits += p.occupancy_flits;
        }
        t.occupancy_samples = self.occupancy_samples;
        t
    }

    /// The counters as a JSON object (per-port arrays plus totals).
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "ports",
                Json::arr(self.ports.iter().map(|p| {
                    Json::obj([
                        ("rt_flits", Json::Uint(p.rt_flits)),
                        ("be_flits", Json::Uint(p.be_flits)),
                        ("mux_conflicts", Json::Uint(p.mux_conflicts)),
                        (
                            "credit_stalls",
                            Json::arr(p.credit_stalls.iter().map(|&c| Json::Uint(c))),
                        ),
                        ("occupancy_flits", Json::Uint(p.occupancy_flits)),
                    ])
                })),
            ),
            ("totals", self.totals().to_json()),
        ])
    }
}

/// Network-wide counter totals, embedded in every simulation outcome.
///
/// `Copy` and cheaply mergeable so parallel sweeps can aggregate it the
/// same deterministic way they merge latency statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetCounters {
    /// Real-time flits transmitted by router output ports.
    pub rt_flits: u64,
    /// Best-effort flits transmitted by router output ports.
    pub be_flits: u64,
    /// Crossbar input-mux conflict count (losing eligible VCs).
    pub mux_conflicts: u64,
    /// Cycles an output VC's head flit waited on credits.
    pub credit_stall_cycles: u64,
    /// Occupancy sampling events.
    pub occupancy_samples: u64,
    /// Summed sampled input-buffer occupancy (flits).
    pub occupancy_flits: u64,
}

impl NetCounters {
    /// Adds `other` into `self` (for merging routers or sweep replicas).
    pub fn absorb(&mut self, other: &NetCounters) {
        self.rt_flits += other.rt_flits;
        self.be_flits += other.be_flits;
        self.mux_conflicts += other.mux_conflicts;
        self.credit_stall_cycles += other.credit_stall_cycles;
        self.occupancy_samples += other.occupancy_samples;
        self.occupancy_flits += other.occupancy_flits;
    }

    /// Mean sampled buffer occupancy in flits, `None` without samples.
    pub fn mean_occupancy(&self) -> Option<f64> {
        (self.occupancy_samples > 0)
            .then(|| self.occupancy_flits as f64 / self.occupancy_samples as f64)
    }

    /// The totals as a flat JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("rt_flits", Json::Uint(self.rt_flits)),
            ("be_flits", Json::Uint(self.be_flits)),
            ("mux_conflicts", Json::Uint(self.mux_conflicts)),
            ("credit_stall_cycles", Json::Uint(self.credit_stall_cycles)),
            ("occupancy_samples", Json::Uint(self.occupancy_samples)),
            ("mean_occupancy_flits", Json::opt_num(self.mean_occupancy())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_over_ports() {
        let mut c = RouterCounters::new(2, 2);
        c.ports[0].rt_flits = 3;
        c.ports[1].rt_flits = 4;
        c.ports[1].be_flits = 5;
        c.ports[0].mux_conflicts = 1;
        c.ports[0].credit_stalls[1] = 7;
        c.ports[1].credit_stalls[0] = 2;
        c.occupancy_samples = 2;
        c.ports[0].occupancy_flits = 10;
        let t = c.totals();
        assert_eq!(t.rt_flits, 7);
        assert_eq!(t.be_flits, 5);
        assert_eq!(t.mux_conflicts, 1);
        assert_eq!(t.credit_stall_cycles, 9);
        assert_eq!(t.mean_occupancy(), Some(5.0));
    }

    #[test]
    fn absorb_accumulates() {
        let mut a = NetCounters {
            rt_flits: 1,
            be_flits: 2,
            mux_conflicts: 3,
            credit_stall_cycles: 4,
            occupancy_samples: 1,
            occupancy_flits: 8,
        };
        let b = a;
        a.absorb(&b);
        assert_eq!(a.rt_flits, 2);
        assert_eq!(a.occupancy_flits, 16);
    }

    #[test]
    fn empty_counters_serialize_without_nan() {
        let text = NetCounters::default().to_json().to_string();
        assert!(text.contains("\"mean_occupancy_flits\":null"));
        assert!(!text.contains("NaN"));
    }

    #[test]
    fn skip_stats_ratio_and_json() {
        let s = SkipStats::default();
        assert_eq!(s.skip_ratio(), 0.0);
        let s = SkipStats {
            cycles_stepped: 25,
            cycles_skipped: 75,
            horizon_jumps: 3,
        };
        assert_eq!(s.simulated_cycles(), 100);
        assert!((s.skip_ratio() - 0.75).abs() < 1e-12);
        let text = s.to_json().to_string();
        assert!(text.contains("\"cycles_skipped\":75"));
        assert!(text.contains("\"horizon_jumps\":3"));
        assert!(!text.contains("NaN"));
    }

    #[test]
    fn json_shape_has_ports_and_totals() {
        let c = RouterCounters::new(1, 2);
        let text = c.to_json().to_string();
        assert!(text.starts_with("{\"ports\":[{\"rt_flits\":0"));
        assert!(text.contains("\"totals\":{"));
        assert!(text.contains("\"credit_stalls\":[0,0]"));
    }
}
