//! # MediaWorm: a QoS-capable wormhole router
//!
//! This crate is the heart of the reproduction of *"Investigating QoS
//! Support for Traffic Mixes with the MediaWorm Router"* (Yum, Vaidya, Das,
//! Sivasubramaniam — HPCA 2000).
//!
//! MediaWorm is a five-stage pipelined wormhole router (the PROUD model)
//! whose **only major modification** over a conventional router is the
//! resource scheduler: instead of FIFO, the multiplexer that shares
//! crossbar/link bandwidth among virtual channels runs the **Virtual
//! Clock** rate-based algorithm (Zhang 1991). Each message carries its
//! bandwidth requirement as a `Vtick` in its head flit; the scheduler
//! timestamps arriving flits with
//!
//! ```text
//! auxVC ← max(Clock, auxVC); auxVC ← auxVC + Vtick
//! ```
//!
//! and services flits in increasing timestamp order, giving soft bandwidth
//! guarantees to VBR/CBR streams while best-effort traffic (Vtick = ∞)
//! fills the remaining capacity.
//!
//! ## What's here
//!
//! * [`config`] — router configuration: VCs per physical channel, buffer
//!   depth, crossbar style ([`CrossbarKind::Multiplexed`] or
//!   [`CrossbarKind::Full`]), scheduler ([`SchedulerKind`]) and the
//!   scheduling point ablation ([`SchedPoint`]).
//! * [`scheduler`] — the Virtual Clock / FIFO / round-robin multiplexer
//!   schedulers.
//! * [`router`] — the pipelined router model: per-VC input buffering,
//!   routing (stage 2), message-granularity crossbar-output arbitration
//!   (stage 3), flit-level crossbar multiplexing (stage 4) and the output
//!   VC multiplexer (stage 5).
//! * [`net`] — a cycle-accurate network simulator that instantiates one
//!   router per switch of a [`topo::Topology`], wires links and credit
//!   paths, injects a [`traffic::Workload`] and collects
//!   [`metrics::JitterSummary`] / best-effort latency.
//! * [`sim`] — one-call experiment driver used by the `mediaworm-bench`
//!   binaries.
//! * [`counters`] — always-on per-router/per-port telemetry counters
//!   (flits per class, mux conflicts, credit stalls, sampled occupancy).
//! * [`admission`] — a bandwidth-accounting admission controller (the
//!   paper's §6 admission-control direction).
//! * [`audit`] — opt-in flow-control invariant audits (credit/flit
//!   conservation, worm well-formedness) and the progress watchdog that
//!   classifies stalls as deadlock vs. starvation with a structured
//!   [`StallReport`].
//! * [`bounds`] — the network-calculus delay-bound oracle
//!   ([`BoundsOracle`]): maps an experiment onto the `calculus` crate's
//!   arrival/service-curve model and audits the run's observed latencies
//!   against each real-time stream's analytic worst case
//!   (`SimOpts::bounds()` / the bench `--bounds` flag).
//!
//! ## Quick start
//!
//! ```
//! use mediaworm::{RouterConfig, SchedulerKind, sim};
//! use flitnet::VcPartition;
//! use topo::Topology;
//! use traffic::{StreamClass, WorkloadBuilder};
//!
//! // An 8-port MediaWorm switch, 16 VCs, Virtual Clock scheduling.
//! let topology = Topology::single_switch(8);
//! let partition = VcPartition::from_mix(16, 80.0, 20.0);
//! let workload = WorkloadBuilder::new(8, partition)
//!     .load(0.5)
//!     .mix(80.0, 20.0)
//!     .real_time_class(StreamClass::Vbr)
//!     .seed(42)
//!     .build();
//! let cfg = RouterConfig::new(16).scheduler(SchedulerKind::VirtualClock);
//!
//! // Short run: 20 ms warm-up + 100 ms measured (simulated time).
//! let outcome = sim::run(&topology, workload, &cfg, 0.020, 0.100);
//! assert!(outcome.jitter.is_jitter_free(33.0, 1.0));
//! ```

#![warn(missing_docs)]

pub mod admission;
pub mod audit;
pub mod bounds;
pub mod config;
pub mod counters;
pub mod net;
pub mod router;
pub mod scheduler;
pub mod sim;

pub use admission::{AdmissionController, AdmissionError, ReleaseError};
pub use audit::{AuditConfig, StallKind, StallReport, VcHold, WatchdogConfig};
pub use bounds::{BoundViolation, BoundViolationKind, BoundsOracle, BoundsReport, StreamBound};
pub use config::{CrossbarKind, RouterConfig, SchedPoint, SchedulerKind};
pub use counters::{NetCounters, PortCounters, RouterCounters, SkipStats};
pub use net::Network;
pub use router::Router;
pub use scheduler::{MuxScheduler, DRR_QUANTUM, STAMP_SATURATION};
pub use sim::{run, run_opts, run_opts_traced, run_traced, SimOpts, SimOutcome};
