//! One-call experiment driver.
//!
//! Wraps [`crate::net::Network`] with the warm-up / measurement protocol
//! every experiment in the paper follows, and condenses the result into a
//! [`SimOutcome`].

use metrics::JitterSummary;
use topo::Topology;
use traffic::Workload;

use crate::config::RouterConfig;
use crate::net::Network;

/// The condensed result of one simulation run.
#[derive(Debug, Clone, Copy)]
pub struct SimOutcome {
    /// Frame-delivery jitter of the real-time streams (d̄, σ_d).
    pub jitter: JitterSummary,
    /// Mean best-effort message latency in microseconds (`NaN` if the
    /// workload had no best-effort component).
    pub be_mean_latency_us: f64,
    /// Best-effort messages measured.
    pub be_msgs: u64,
    /// Realized real-time load (fraction of link bandwidth per node).
    pub rt_load: f64,
    /// Realized best-effort load.
    pub be_load: f64,
    /// Whether the real-time demand exceeded the per-VC stream capacity.
    pub oversubscribed: bool,
    /// Messages injected over the whole run (including warm-up).
    pub injected_msgs: u64,
    /// Messages delivered over the whole run.
    pub delivered_msgs: u64,
}

impl SimOutcome {
    /// Whether the run delivered real-time traffic jitter-free in the
    /// paper's sense (d̄ ≈ frame interval, σ_d ≈ 0), with `tol_ms`
    /// tolerance.
    pub fn is_jitter_free(&self, frame_interval_ms: f64, tol_ms: f64) -> bool {
        self.jitter.is_jitter_free(frame_interval_ms, tol_ms)
    }
}

/// Runs `workload` over `topology` with `cfg`-configured MediaWorm
/// switches for `warmup_secs + measure_secs` of simulated time, measuring
/// only after the warm-up.
///
/// # Example
///
/// ```
/// use mediaworm::{sim, RouterConfig};
/// use flitnet::VcPartition;
/// use topo::Topology;
/// use traffic::{StreamClass, WorkloadBuilder};
///
/// let topology = Topology::single_switch(8);
/// let wl = WorkloadBuilder::new(8, VcPartition::all_real_time(16))
///     .load(0.4)
///     .mix(100.0, 0.0)
///     .real_time_class(StreamClass::Cbr)
///     .build();
/// let out = sim::run(&topology, wl, &RouterConfig::default(), 0.02, 0.08);
/// assert!(out.is_jitter_free(33.0, 1.0));
/// ```
///
/// # Panics
///
/// Panics if either duration is not positive.
pub fn run(
    topology: &Topology,
    workload: Workload,
    cfg: &RouterConfig,
    warmup_secs: f64,
    measure_secs: f64,
) -> SimOutcome {
    assert!(warmup_secs > 0.0, "warm-up must be positive");
    assert!(measure_secs > 0.0, "measurement window must be positive");
    let (rt_load, be_load) = workload.realized_load();
    let oversubscribed = workload.is_oversubscribed();
    let mut net = Network::new(topology, workload, cfg);
    let tb = net.timebase();
    let warmup = tb.cycles_from_secs(warmup_secs);
    let end = tb.cycles_from_secs(warmup_secs + measure_secs);
    net.set_warmup_end(warmup);
    net.run_until(end);
    SimOutcome {
        jitter: net.delivery().summary(),
        be_mean_latency_us: net.latency().mean_us(),
        be_msgs: net.latency().count(),
        rt_load,
        be_load,
        oversubscribed,
        injected_msgs: net.injected_msgs(),
        delivered_msgs: net.delivered_msgs(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchedulerKind;
    use flitnet::VcPartition;
    use traffic::{StreamClass, WorkloadBuilder};

    fn workload(load: f64, x: f64, y: f64, seed: u64) -> Workload {
        let p = if y == 0.0 {
            VcPartition::all_real_time(16)
        } else {
            VcPartition::from_mix(16, x, y)
        };
        WorkloadBuilder::new(8, p)
            .load(load)
            .mix(x, y)
            .real_time_class(StreamClass::Vbr)
            .seed(seed)
            .build()
    }

    #[test]
    fn outcome_reports_loads() {
        let out = run(
            &Topology::single_switch(8),
            workload(0.5, 80.0, 20.0, 1),
            &RouterConfig::default(),
            0.02,
            0.05,
        );
        assert!((out.rt_load - 0.4).abs() < 0.01);
        assert!((out.be_load - 0.1).abs() < 0.01);
        assert!(out.be_msgs > 0);
        assert!(out.injected_msgs > out.delivered_msgs / 2);
    }

    #[test]
    fn moderate_load_vbr_is_jitter_free_with_virtual_clock() {
        let out = run(
            &Topology::single_switch(8),
            workload(0.6, 100.0, 0.0, 2),
            &RouterConfig::default().scheduler(SchedulerKind::VirtualClock),
            0.05,
            0.2,
        );
        assert!(
            out.is_jitter_free(33.0, 1.5),
            "d={} σ={}",
            out.jitter.mean_ms,
            out.jitter.std_ms
        );
    }

    #[test]
    #[should_panic(expected = "warm-up must be positive")]
    fn zero_warmup_rejected() {
        let _ = run(
            &Topology::single_switch(8),
            workload(0.5, 100.0, 0.0, 3),
            &RouterConfig::default(),
            0.0,
            0.1,
        );
    }
}
