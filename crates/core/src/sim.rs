//! One-call experiment driver.
//!
//! Wraps [`crate::net::Network`] with the warm-up / measurement protocol
//! every experiment in the paper follows, and condenses the result into a
//! [`SimOutcome`].

use std::io;
use std::path::PathBuf;

use metrics::JitterSummary;
use netsim::telemetry::{JsonlSink, NoopSink, TelemetrySink};
use netsim::Cycles;
use topo::Topology;
use traffic::Workload;

use crate::audit::{AuditConfig, StallReport, WatchdogConfig};
use crate::bounds::{BoundsOracle, BoundsReport};
use crate::config::RouterConfig;
use crate::counters::{NetCounters, SkipStats};
use crate::net::Network;

/// Opt-in safety layers for a run (see [`crate::audit`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimOpts {
    /// Invariant audit sweep; `None` is off.
    pub audit: Option<AuditConfig>,
    /// Progress watchdog; `None` is off.
    pub watchdog: Option<WatchdogConfig>,
    /// Step with the full-scan reference mode instead of the
    /// occupancy-driven active sets (see
    /// [`crate::net::Network::run_until_reference`]). Slow; only useful
    /// as the oracle in bit-identity tests.
    pub reference: bool,
    /// Worker threads for in-network parallel stepping (see
    /// [`crate::net::Network::run_until_parallel`]). `0` and `1` both mean
    /// sequential; results are bit-identical at any count.
    pub threads: usize,
    /// Delay-bound audit: compute each real-time stream's analytic
    /// worst-case latency before the run (see [`crate::bounds`]) and
    /// check `observed ≤ bound` at the end, attaching a
    /// [`BoundsReport`] to the outcome. Panics at run start if the
    /// topology's routes are not feedforward (tori, cyclic ring traffic)
    /// — those have no network-calculus bound.
    pub bounds: bool,
}

impl SimOpts {
    /// The default for [`run`]: watchdog on (an O(routers) check per busy
    /// cycle that turns silent stalls into structured reports), audit
    /// off.
    pub fn standard() -> SimOpts {
        SimOpts {
            audit: None,
            watchdog: Some(WatchdogConfig::default()),
            reference: false,
            threads: 1,
            bounds: false,
        }
    }

    /// Audit and watchdog both on (CI audit mode, the bench `--audit`
    /// flag).
    pub fn audited() -> SimOpts {
        SimOpts {
            audit: Some(AuditConfig::default()),
            watchdog: Some(WatchdogConfig::default()),
            reference: false,
            threads: 1,
            bounds: false,
        }
    }

    /// This configuration with the delay-bound audit on (the bench
    /// `--bounds` flag).
    pub fn bounds(self) -> SimOpts {
        SimOpts {
            bounds: true,
            ..self
        }
    }

    /// This configuration with full-scan reference stepping.
    pub fn reference(self) -> SimOpts {
        SimOpts {
            reference: true,
            ..self
        }
    }

    /// This configuration stepped by `threads` worker threads
    /// (bit-identical to sequential stepping; incompatible with
    /// [`SimOpts::reference`], which always runs sequentially).
    pub fn threads(self, threads: usize) -> SimOpts {
        SimOpts { threads, ..self }
    }
}

/// Periodic on-disk checkpointing for a resumable run (see
/// [`run_checkpointed`]).
///
/// The checkpoint file is a [`crate::net::Network::snapshot`] image:
/// versioned, length- and checksum-guarded, and restored bit-identically.
/// Writes are atomic (a `.tmp` sibling is renamed over the target), so a
/// kill mid-write never leaves a torn checkpoint behind.
#[derive(Debug, Clone)]
pub struct CheckpointOpts {
    /// Cycles between snapshots. `0` writes no periodic checkpoints (the
    /// run can still *resume from* an existing file when `resume` is set).
    pub interval_cycles: u64,
    /// Where the snapshot lives. The parent directory is created on the
    /// first write; the file is deleted when the run completes.
    pub path: PathBuf,
    /// Restore from `path` before stepping, if the file exists. A missing
    /// file is not an error — the run simply starts from cycle zero.
    pub resume: bool,
}

impl CheckpointOpts {
    /// Checkpoint to `path` every `interval_cycles`, resuming from it when
    /// present — the configuration the sweep engine uses.
    pub fn resumable(path: PathBuf, interval_cycles: u64) -> CheckpointOpts {
        CheckpointOpts {
            interval_cycles,
            path,
            resume: true,
        }
    }
}

/// The condensed result of one simulation run.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Frame-delivery jitter of the real-time streams (d̄, σ_d).
    pub jitter: JitterSummary,
    /// Mean best-effort message latency in microseconds (`NaN` if the
    /// workload had no best-effort component).
    pub be_mean_latency_us: f64,
    /// Best-effort messages measured.
    pub be_msgs: u64,
    /// Realized real-time load (fraction of link bandwidth per node).
    pub rt_load: f64,
    /// Realized best-effort load.
    pub be_load: f64,
    /// Whether the real-time demand exceeded the per-VC stream capacity.
    pub oversubscribed: bool,
    /// Messages injected over the whole run (including warm-up).
    pub injected_msgs: u64,
    /// Messages delivered over the whole run.
    pub delivered_msgs: u64,
    /// Messages still in flight when the run's end cycle cut them off.
    ///
    /// These are right-censored observations: they appear in no latency or
    /// jitter statistic, so at high load the reported tails are biased
    /// low. Always `injected_msgs - delivered_msgs`; reported explicitly
    /// (here and in `--json` records) so the truncation is visible instead
    /// of silent.
    pub in_flight_at_end: u64,
    /// Simulated cycles the run covered (warm-up + measurement).
    pub cycles: u64,
    /// Router telemetry counter totals over the whole run.
    pub counters: NetCounters,
    /// The watchdog's stall report, if the run stalled (the run stops at
    /// the stall instead of spinning to the end cycle).
    pub stall: Option<StallReport>,
    /// Flow-control invariant violations the audit sweep observed (0 when
    /// auditing is off — see [`SimOpts`]).
    pub audit_violations: u64,
    /// Quiescence-skip effectiveness of the run's driver (stepped vs
    /// skipped cycles, horizon jumps). Diagnostic only: two runs that
    /// differ here (e.g. audited vs not) still simulate identical bits.
    pub skip: SkipStats,
    /// The delay-bound audit (`None` unless [`SimOpts::bounds`] was on):
    /// per-stream analytic worst case vs. observed maximum latency, with
    /// any `observed > bound` violations pulled out.
    pub bounds: Option<BoundsReport>,
}

impl SimOutcome {
    /// Mean best-effort latency in microseconds, `None` when the workload
    /// had no best-effort component (avoids NaN in serialized output).
    pub fn be_mean_latency_us_opt(&self) -> Option<f64> {
        self.be_mean_latency_us
            .is_finite()
            .then_some(self.be_mean_latency_us)
    }
}

impl SimOutcome {
    /// Whether the run delivered real-time traffic jitter-free in the
    /// paper's sense (d̄ ≈ frame interval, σ_d ≈ 0), with `tol_ms`
    /// tolerance.
    pub fn is_jitter_free(&self, frame_interval_ms: f64, tol_ms: f64) -> bool {
        self.jitter.is_jitter_free(frame_interval_ms, tol_ms)
    }
}

/// Runs `workload` over `topology` with `cfg`-configured MediaWorm
/// switches for `warmup_secs + measure_secs` of simulated time, measuring
/// only after the warm-up.
///
/// # Example
///
/// ```
/// use mediaworm::{sim, RouterConfig};
/// use flitnet::VcPartition;
/// use topo::Topology;
/// use traffic::{StreamClass, WorkloadBuilder};
///
/// let topology = Topology::single_switch(8);
/// let wl = WorkloadBuilder::new(8, VcPartition::all_real_time(16))
///     .load(0.4)
///     .mix(100.0, 0.0)
///     .real_time_class(StreamClass::Cbr)
///     .build();
/// let out = sim::run(&topology, wl, &RouterConfig::default(), 0.02, 0.08);
/// assert!(out.is_jitter_free(33.0, 1.0));
/// ```
///
/// # Panics
///
/// Panics if either duration is not positive.
pub fn run(
    topology: &Topology,
    workload: Workload,
    cfg: &RouterConfig,
    warmup_secs: f64,
    measure_secs: f64,
) -> SimOutcome {
    run_with(
        topology,
        workload,
        cfg,
        warmup_secs,
        measure_secs,
        SimOpts::standard(),
        &mut NoopSink,
    )
}

/// Like [`run`], with explicit [`SimOpts`] (audit mode, watchdog tuning,
/// or both off for an exact pre-audit instruction stream).
pub fn run_opts(
    topology: &Topology,
    workload: Workload,
    cfg: &RouterConfig,
    warmup_secs: f64,
    measure_secs: f64,
    opts: SimOpts,
) -> SimOutcome {
    run_with(
        topology,
        workload,
        cfg,
        warmup_secs,
        measure_secs,
        opts,
        &mut NoopSink,
    )
}

/// Like [`run`], but additionally records a JSONL flit-event trace
/// (inject/route/arbitrate/deliver) and returns its bytes alongside the
/// outcome.
///
/// The trace is buffered in memory; keep traced runs short (a few
/// simulated milliseconds) — every flit movement through a crossbar is an
/// event.
pub fn run_traced(
    topology: &Topology,
    workload: Workload,
    cfg: &RouterConfig,
    warmup_secs: f64,
    measure_secs: f64,
) -> (SimOutcome, Vec<u8>) {
    run_opts_traced(
        topology,
        workload,
        cfg,
        warmup_secs,
        measure_secs,
        SimOpts::standard(),
    )
}

/// Like [`run_traced`], with explicit [`SimOpts`].
pub fn run_opts_traced(
    topology: &Topology,
    workload: Workload,
    cfg: &RouterConfig,
    warmup_secs: f64,
    measure_secs: f64,
    opts: SimOpts,
) -> (SimOutcome, Vec<u8>) {
    let mut sink = JsonlSink::new();
    let outcome = run_with(
        topology,
        workload,
        cfg,
        warmup_secs,
        measure_secs,
        opts,
        &mut sink,
    );
    (outcome, sink.into_bytes())
}

/// Like [`run_opts`], but additionally writes a periodic on-disk
/// checkpoint and — when `ckpt.resume` is set and the file exists — picks
/// the run up from it instead of starting at cycle zero.
///
/// A resumed run is bit-identical to an uninterrupted one: the snapshot
/// captures the complete mutable simulation state (RNG streams, VC
/// buffers, scheduler tags, link pipelines, metric accumulators), so
/// counters, statistics and traces continue exactly where the checkpoint
/// left them. The checkpoint file is removed once the run reaches its end
/// cycle, so a completed point never resumes stale state.
///
/// # Errors
///
/// Propagates filesystem errors; a corrupt or mismatched snapshot surfaces
/// as [`io::ErrorKind::InvalidData`].
pub fn run_checkpointed(
    topology: &Topology,
    workload: Workload,
    cfg: &RouterConfig,
    warmup_secs: f64,
    measure_secs: f64,
    opts: SimOpts,
    ckpt: &CheckpointOpts,
) -> io::Result<SimOutcome> {
    run_checkpointed_with(
        topology,
        workload,
        cfg,
        warmup_secs,
        measure_secs,
        opts,
        ckpt,
        &mut NoopSink,
    )
}

/// [`run_checkpointed`] with a JSONL flit-event trace. A resumed run's
/// trace covers only the segment after the restore point; appending it to
/// the pre-checkpoint trace reproduces the uninterrupted run's bytes.
///
/// # Errors
///
/// See [`run_checkpointed`].
pub fn run_checkpointed_traced(
    topology: &Topology,
    workload: Workload,
    cfg: &RouterConfig,
    warmup_secs: f64,
    measure_secs: f64,
    opts: SimOpts,
    ckpt: &CheckpointOpts,
) -> io::Result<(SimOutcome, Vec<u8>)> {
    let mut sink = JsonlSink::new();
    let outcome = run_checkpointed_with(
        topology,
        workload,
        cfg,
        warmup_secs,
        measure_secs,
        opts,
        ckpt,
        &mut sink,
    )?;
    Ok((outcome, sink.into_bytes()))
}

#[allow(clippy::too_many_arguments)]
fn run_checkpointed_with(
    topology: &Topology,
    workload: Workload,
    cfg: &RouterConfig,
    warmup_secs: f64,
    measure_secs: f64,
    opts: SimOpts,
    ckpt: &CheckpointOpts,
    sink: &mut dyn TelemetrySink,
) -> io::Result<SimOutcome> {
    assert!(warmup_secs > 0.0, "warm-up must be positive");
    assert!(measure_secs > 0.0, "measurement window must be positive");
    let (rt_load, be_load) = workload.realized_load();
    let oversubscribed = workload.is_oversubscribed();
    let oracle = oracle_for(topology, &workload, cfg, opts);
    let mut net = Network::new(topology, workload, cfg);
    if let Some(a) = opts.audit {
        net.enable_audit(a);
    }
    if let Some(w) = opts.watchdog {
        net.enable_watchdog(w);
    }
    let tb = net.timebase();
    let warmup = tb.cycles_from_secs(warmup_secs);
    let end = tb.cycles_from_secs(warmup_secs + measure_secs);
    net.set_warmup_end(warmup);
    if ckpt.resume {
        match std::fs::read(&ckpt.path) {
            Ok(bytes) => net.restore(&bytes).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("checkpoint {}: {e}", ckpt.path.display()),
                )
            })?,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
    }
    while net.now() < end && net.stall_report().is_none() {
        let to = if ckpt.interval_cycles == 0 {
            end
        } else {
            end.min(net.now() + Cycles(ckpt.interval_cycles))
        };
        step_net(&mut net, to, opts, sink);
        if net.now() < end && net.stall_report().is_none() {
            write_checkpoint(&ckpt.path, &net.snapshot())?;
        }
    }
    match std::fs::remove_file(&ckpt.path) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    Ok(outcome_of(
        &mut net,
        rt_load,
        be_load,
        oversubscribed,
        end,
        oracle,
    ))
}

/// Writes `bytes` to `path` atomically: a `.tmp` sibling is written,
/// flushed and renamed over the target, so a kill mid-write leaves either
/// the previous checkpoint or the new one — never a torn file.
fn write_checkpoint(path: &std::path::Path, bytes: &[u8]) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

/// One stepping segment under `opts` (reference / parallel / sequential).
fn step_net(net: &mut Network, to: Cycles, opts: SimOpts, sink: &mut dyn TelemetrySink) {
    if opts.reference {
        net.run_until_reference_with(to, sink);
    } else if opts.threads > 1 {
        net.run_until_parallel_with(to, opts.threads, sink);
    } else {
        net.run_until_with(to, sink);
    }
}

/// Condenses a finished network into the [`SimOutcome`] record.
fn outcome_of(
    net: &mut Network,
    rt_load: f64,
    be_load: f64,
    oversubscribed: bool,
    end: Cycles,
    oracle: Option<BoundsOracle>,
) -> SimOutcome {
    let bounds = oracle.map(|o| o.report(net, end));
    let in_flight_at_end = net.note_truncated_messages();
    SimOutcome {
        jitter: net.delivery().summary(),
        be_mean_latency_us: net.latency().mean_us(),
        be_msgs: net.latency().count(),
        rt_load,
        be_load,
        oversubscribed,
        injected_msgs: net.injected_msgs(),
        delivered_msgs: net.delivered_msgs(),
        in_flight_at_end,
        cycles: end.get(),
        counters: net.counters(),
        stall: net.stall_report().cloned(),
        audit_violations: net.audit_log().map_or(0, |l| l.total()),
        skip: net.skip_stats(),
        bounds,
    }
}

/// Builds the delay-bound oracle when [`SimOpts::bounds`] asks for one.
/// Must run *before* `Network::new` consumes the workload.
///
/// # Panics
///
/// Panics when the route set is not feedforward — the caller opted into
/// bounds on a topology that has none.
fn oracle_for(
    topology: &Topology,
    workload: &Workload,
    cfg: &RouterConfig,
    opts: SimOpts,
) -> Option<BoundsOracle> {
    if !opts.bounds {
        return None;
    }
    match BoundsOracle::new(topology, workload, cfg) {
        Ok(o) => Some(o),
        Err(e) => panic!("delay-bound audit unavailable: {e}"),
    }
}

/// Shared body of [`run`] / [`run_opts`] / [`run_traced`].
fn run_with(
    topology: &Topology,
    workload: Workload,
    cfg: &RouterConfig,
    warmup_secs: f64,
    measure_secs: f64,
    opts: SimOpts,
    sink: &mut dyn TelemetrySink,
) -> SimOutcome {
    assert!(warmup_secs > 0.0, "warm-up must be positive");
    assert!(measure_secs > 0.0, "measurement window must be positive");
    let (rt_load, be_load) = workload.realized_load();
    let oversubscribed = workload.is_oversubscribed();
    let oracle = oracle_for(topology, &workload, cfg, opts);
    let mut net = Network::new(topology, workload, cfg);
    if let Some(a) = opts.audit {
        net.enable_audit(a);
    }
    if let Some(w) = opts.watchdog {
        net.enable_watchdog(w);
    }
    let tb = net.timebase();
    let warmup = tb.cycles_from_secs(warmup_secs);
    let end = tb.cycles_from_secs(warmup_secs + measure_secs);
    net.set_warmup_end(warmup);
    step_net(&mut net, end, opts, sink);
    outcome_of(&mut net, rt_load, be_load, oversubscribed, end, oracle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchedulerKind;
    use flitnet::VcPartition;
    use traffic::{StreamClass, WorkloadBuilder};

    fn workload(load: f64, x: f64, y: f64, seed: u64) -> Workload {
        let p = if y == 0.0 {
            VcPartition::all_real_time(16)
        } else {
            VcPartition::from_mix(16, x, y)
        };
        WorkloadBuilder::new(8, p)
            .load(load)
            .mix(x, y)
            .real_time_class(StreamClass::Vbr)
            .seed(seed)
            .build()
    }

    #[test]
    fn outcome_reports_loads() {
        let out = run(
            &Topology::single_switch(8),
            workload(0.5, 80.0, 20.0, 1),
            &RouterConfig::default(),
            0.02,
            0.05,
        );
        assert!((out.rt_load - 0.4).abs() < 0.01);
        assert!((out.be_load - 0.1).abs() < 0.01);
        assert!(out.be_msgs > 0);
        assert!(out.injected_msgs > out.delivered_msgs / 2);
    }

    #[test]
    fn moderate_load_vbr_is_jitter_free_with_virtual_clock() {
        let out = run(
            &Topology::single_switch(8),
            workload(0.6, 100.0, 0.0, 2),
            &RouterConfig::default().scheduler(SchedulerKind::VirtualClock),
            0.05,
            0.2,
        );
        assert!(
            out.is_jitter_free(33.0, 1.5),
            "d={} σ={}",
            out.jitter.mean_ms,
            out.jitter.std_ms
        );
    }

    #[test]
    fn traced_run_matches_untraced_numbers() {
        let topology = Topology::single_switch(8);
        let cfg = RouterConfig::default();
        let plain = run(&topology, workload(0.4, 100.0, 0.0, 5), &cfg, 0.01, 0.02);
        let (traced, trace) = run_traced(&topology, workload(0.4, 100.0, 0.0, 5), &cfg, 0.01, 0.02);
        assert_eq!(plain.delivered_msgs, traced.delivered_msgs);
        assert_eq!(plain.counters, traced.counters);
        assert_eq!(plain.cycles, traced.cycles);
        assert!(!trace.is_empty(), "traced run must produce events");
        assert!(trace.ends_with(b"\n"), "JSONL trace ends with newline");
    }

    #[test]
    fn outcome_carries_counters_and_cycles() {
        let out = run(
            &Topology::single_switch(8),
            workload(0.5, 80.0, 20.0, 6),
            &RouterConfig::default(),
            0.01,
            0.02,
        );
        assert!(out.cycles > 0);
        assert!(out.counters.rt_flits > 0);
        assert!(out.counters.be_flits > 0);
        assert_eq!(out.be_mean_latency_us_opt(), Some(out.be_mean_latency_us));
    }

    #[test]
    fn watchdog_never_trips_on_saturated_but_progressing_loads() {
        // The fig. 3 operating range, including past saturation: slow is
        // not stuck, and the default watchdog must not cry wolf.
        for &load in &[0.6, 0.8, 0.96] {
            let out = run(
                &Topology::single_switch(8),
                workload(load, 80.0, 20.0, 21),
                &RouterConfig::default(),
                0.01,
                0.03,
            );
            assert!(
                out.stall.is_none(),
                "load {load} tripped the watchdog: {:?}",
                out.stall
            );
            assert!(out.delivered_msgs > 0);
        }
    }

    #[test]
    fn audited_opts_report_zero_violations_on_healthy_runs() {
        let out = run_opts(
            &Topology::single_switch(8),
            workload(0.5, 80.0, 20.0, 22),
            &RouterConfig::default(),
            0.01,
            0.02,
            SimOpts::audited(),
        );
        assert_eq!(out.audit_violations, 0);
        assert!(out.stall.is_none());
    }

    #[test]
    fn end_of_run_truncation_is_counted_not_silent() {
        // Drain-window regression: at high load a short measurement window
        // always cuts messages off mid-flight. They must show up in
        // `in_flight_at_end` (and on the latency tracker as censored
        // observations) instead of silently vanishing from the stats.
        let out = run(
            &Topology::single_switch(8),
            workload(0.96, 80.0, 20.0, 9),
            &RouterConfig::default(),
            0.01,
            0.02,
        );
        assert!(
            out.in_flight_at_end > 0,
            "a saturated run must truncate some messages"
        );
        assert_eq!(
            out.injected_msgs,
            out.delivered_msgs + out.in_flight_at_end,
            "message conservation: injected = delivered + in flight"
        );
    }

    #[test]
    fn longer_drain_reduces_truncation_share() {
        // The same offered load measured over a longer window truncates a
        // smaller *fraction* of its messages — the bias in_flight_at_end
        // exposes shrinks as the window grows.
        let share = |measure: f64| {
            let out = run(
                &Topology::single_switch(8),
                workload(0.8, 80.0, 20.0, 10),
                &RouterConfig::default(),
                0.01,
                measure,
            );
            out.in_flight_at_end as f64 / out.injected_msgs.max(1) as f64
        };
        let short = share(0.01);
        let long = share(0.08);
        assert!(
            long < short,
            "truncated share must shrink with the window: short {short} long {long}"
        );
    }

    #[test]
    fn checkpointed_run_matches_plain_run() {
        let topology = Topology::single_switch(8);
        let cfg = RouterConfig::default();
        let plain = run(&topology, workload(0.5, 80.0, 20.0, 31), &cfg, 0.01, 0.03);
        let path = std::env::temp_dir().join("mediaworm_sim_ckpt_plain.snap");
        let _ = std::fs::remove_file(&path);
        let out = run_checkpointed(
            &topology,
            workload(0.5, 80.0, 20.0, 31),
            &cfg,
            0.01,
            0.03,
            SimOpts::standard(),
            &CheckpointOpts::resumable(path.clone(), 20_000),
        )
        .expect("checkpointed run");
        assert_eq!(plain.delivered_msgs, out.delivered_msgs);
        assert_eq!(plain.injected_msgs, out.injected_msgs);
        assert_eq!(plain.counters, out.counters);
        assert_eq!(
            plain.jitter.mean_ms.to_bits(),
            out.jitter.mean_ms.to_bits(),
            "periodic checkpointing must not perturb the statistics"
        );
        assert!(!path.exists(), "checkpoint must be removed on completion");
    }

    #[test]
    fn resumed_run_is_bit_identical_to_uninterrupted() {
        use crate::audit::WatchdogConfig;
        let topology = Topology::single_switch(8);
        let cfg = RouterConfig::default();
        let plain = run(&topology, workload(0.6, 80.0, 20.0, 32), &cfg, 0.01, 0.03);

        // Manufacture an interrupted run: step half-way under the same
        // options run() uses, then leave its snapshot on disk.
        let mut half = Network::new(&topology, workload(0.6, 80.0, 20.0, 32), &cfg);
        half.enable_watchdog(WatchdogConfig::default());
        let tb = half.timebase();
        half.set_warmup_end(tb.cycles_from_secs(0.01));
        half.run_until(tb.cycles_from_secs(0.02));
        let path = std::env::temp_dir().join("mediaworm_sim_ckpt_resume.snap");
        std::fs::write(&path, half.snapshot()).expect("write checkpoint");

        let out = run_checkpointed(
            &topology,
            workload(0.6, 80.0, 20.0, 32),
            &cfg,
            0.01,
            0.03,
            SimOpts::standard(),
            &CheckpointOpts::resumable(path.clone(), 0),
        )
        .expect("resumed run");
        assert_eq!(plain.delivered_msgs, out.delivered_msgs);
        assert_eq!(plain.counters, out.counters);
        assert_eq!(plain.in_flight_at_end, out.in_flight_at_end);
        assert_eq!(plain.jitter.mean_ms.to_bits(), out.jitter.mean_ms.to_bits());
        assert_eq!(plain.jitter.std_ms.to_bits(), out.jitter.std_ms.to_bits());
        assert_eq!(
            plain.be_mean_latency_us.to_bits(),
            out.be_mean_latency_us.to_bits()
        );
        assert!(!path.exists(), "checkpoint must be removed on completion");
    }

    #[test]
    fn corrupt_checkpoint_is_an_error_not_a_silent_restart() {
        let topology = Topology::single_switch(8);
        let cfg = RouterConfig::default();
        let path = std::env::temp_dir().join("mediaworm_sim_ckpt_corrupt.snap");
        std::fs::write(&path, b"not a snapshot").expect("write garbage");
        let err = run_checkpointed(
            &topology,
            workload(0.5, 80.0, 20.0, 33),
            &cfg,
            0.01,
            0.02,
            SimOpts::standard(),
            &CheckpointOpts::resumable(path.clone(), 0),
        )
        .expect_err("garbage checkpoint must be rejected");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    #[should_panic(expected = "warm-up must be positive")]
    fn zero_warmup_rejected() {
        let _ = run(
            &Topology::single_switch(8),
            workload(0.5, 100.0, 0.0, 3),
            &RouterConfig::default(),
            0.0,
            0.1,
        );
    }
}
