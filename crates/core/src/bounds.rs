//! The delay-bound oracle: analytic worst-case latency per real-time
//! stream, checked against what the simulator actually observed.
//!
//! [`BoundsOracle::new`] maps a concrete experiment — topology, workload,
//! router configuration — onto the [`calculus`] crate's abstract model:
//! each real-time stream becomes a (σ, ρ) arrival curve (CBR exactly from
//! its periodic message schedule; VBR from its negotiated mean rate with
//! one mean frame of burst — the same envelope the NI policer enforces),
//! and the configured scheduler becomes a per-VC rate-latency service
//! curve at every scheduling point of the stream's deterministic route.
//!
//! After the run, [`BoundsOracle::report`] compares each stream's
//! analytic bound with two observations from the [`Network`]:
//!
//! * the **maximum measured latency** of its delivered messages, and
//! * the **age of its oldest undelivered message** — a message stuck in
//!   the fabric has already incurred that much latency, which is what
//!   lets the oracle flag a deadlocked network that delivers nothing
//!   (a plain max-latency check would vacuously pass).
//!
//! Any observation above the bound becomes a [`BoundViolation`]. The
//! oracle *reports*; callers decide what to assert. A violation on a
//! `guaranteed` stream (CBR without policing — the only case where the
//! envelope is provable rather than a model) is a simulator bug or a
//! broken fabric: the bench `--bounds` mode and the CI smoke test treat
//! it as fatal, and the credit-starvation mutation test proves the
//! mechanism fires when flow control is sabotaged.

use calculus::{ArrivalCurve, BoundError, FabricModel, FlowBound, FlowSpec, SchedKind};
use flitnet::TrafficClass;
use metrics::Json;
use netsim::Cycles;
use topo::Topology;
use traffic::{PolicingMode, Workload};

use crate::config::{RouterConfig, SchedulerKind};
use crate::net::Network;
use crate::scheduler::DRR_QUANTUM;

/// Pipeline stages a flit crosses per router (the PROUD five-stage
/// model). Together with the link latency this is the fixed,
/// load-independent delay per scheduling point.
const PIPELINE_STAGES: u32 = 5;

/// One stream's analytic bound plus its observed behaviour.
#[derive(Debug, Clone, Copy)]
pub struct StreamBound {
    /// Stream id.
    pub stream: u32,
    /// CBR or VBR.
    pub class: TrafficClass,
    /// Routers the stream's messages traverse.
    pub hops: u32,
    /// Whether the arrival envelope is provably enforced (CBR with
    /// policing off) rather than a mean-rate model of a variable source.
    pub guaranteed: bool,
    /// Arrival-curve burst σ in flits.
    pub sigma_flits: f64,
    /// Arrival-curve rate ρ in flits per cycle.
    pub rho_flits_per_cycle: f64,
    /// Worst-case end-to-end delay in cycles; `None` when no finite
    /// bound exists (a saturated point, or FIFO sharing with unregulated
    /// best-effort traffic).
    pub bound_cycles: Option<f64>,
    /// Largest measured message latency in cycles (messages created
    /// after warm-up), if any message was measured.
    pub observed_max_cycles: Option<f64>,
    /// Mean measured message latency in cycles.
    pub observed_mean_cycles: Option<f64>,
    /// Messages measured.
    pub observed_msgs: u64,
    /// Age in cycles of the oldest message still undelivered at the end
    /// of the run, if any.
    pub stuck_age_cycles: Option<u64>,
}

impl StreamBound {
    /// `observed_max / bound` — how much of the analytic worst case the
    /// run actually used. `None` without both a bound and a measurement.
    pub fn tightness(&self) -> Option<f64> {
        Some(self.observed_max_cycles? / self.bound_cycles?)
    }

    fn to_json(self) -> Json {
        Json::obj([
            ("stream", Json::Uint(u64::from(self.stream))),
            ("class", Json::str(format!("{:?}", self.class))),
            ("hops", Json::Uint(u64::from(self.hops))),
            ("guaranteed", Json::Bool(self.guaranteed)),
            ("sigma_flits", Json::num(self.sigma_flits)),
            ("rho_flits_per_cycle", Json::num(self.rho_flits_per_cycle)),
            ("bound_cycles", Json::opt_num(self.bound_cycles)),
            (
                "observed_max_cycles",
                Json::opt_num(self.observed_max_cycles),
            ),
            (
                "observed_mean_cycles",
                Json::opt_num(self.observed_mean_cycles),
            ),
            ("observed_msgs", Json::Uint(self.observed_msgs)),
            (
                "stuck_age_cycles",
                self.stuck_age_cycles.map_or(Json::Null, Json::Uint),
            ),
            ("tightness", Json::opt_num(self.tightness())),
        ])
    }
}

/// How a stream exceeded its bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundViolationKind {
    /// A delivered message measured more latency than the bound allows.
    DeliveredLate,
    /// An undelivered message is already older than the bound.
    Stuck,
}

/// A stream observed beyond its analytic worst case — either the model's
/// envelope assumption does not hold for this stream (`guaranteed:
/// false`), or the simulator/fabric is broken (`guaranteed: true`).
#[derive(Debug, Clone, Copy)]
pub struct BoundViolation {
    /// The violating stream.
    pub stream: u32,
    /// Late delivery vs. stuck message.
    pub kind: BoundViolationKind,
    /// The offending observation in cycles.
    pub observed_cycles: f64,
    /// The bound it exceeded, in cycles.
    pub bound_cycles: f64,
    /// Copied from the stream's [`StreamBound::guaranteed`].
    pub guaranteed: bool,
}

impl BoundViolation {
    fn to_json(self) -> Json {
        Json::obj([
            ("stream", Json::Uint(u64::from(self.stream))),
            (
                "kind",
                Json::str(match self.kind {
                    BoundViolationKind::DeliveredLate => "delivered_late",
                    BoundViolationKind::Stuck => "stuck",
                }),
            ),
            ("observed_cycles", Json::num(self.observed_cycles)),
            ("bound_cycles", Json::num(self.bound_cycles)),
            ("guaranteed", Json::Bool(self.guaranteed)),
        ])
    }
}

/// The end-of-run audit: every stream's bound vs. observation, with the
/// violations pulled out.
#[derive(Debug, Clone)]
pub struct BoundsReport {
    /// Per-stream records, in stream-id order.
    pub streams: Vec<StreamBound>,
    /// Streams observed beyond their bound.
    pub violations: Vec<BoundViolation>,
}

impl BoundsReport {
    /// Violations on streams whose envelope is provably enforced — these
    /// falsify the simulator or the fabric, not the traffic model.
    pub fn guaranteed_violations(&self) -> impl Iterator<Item = &BoundViolation> {
        self.violations.iter().filter(|v| v.guaranteed)
    }

    /// Structured JSON (the `BENCH_bounds.json` / `--bounds` payload).
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "streams",
                Json::arr(self.streams.iter().map(|s| s.to_json())),
            ),
            (
                "violations",
                Json::arr(self.violations.iter().map(|v| v.to_json())),
            ),
        ])
    }
}

/// The analytic half of the audit, computed **before** the run (the
/// [`Workload`] is borrowed; `Network::new` consumes it afterwards).
#[derive(Debug, Clone)]
pub struct BoundsOracle {
    bounds: Vec<FlowBound>,
    classes: Vec<TrafficClass>,
}

impl BoundsOracle {
    /// Maps the experiment onto the network-calculus model and computes
    /// every real-time stream's delay bound.
    ///
    /// # Errors
    ///
    /// Propagates [`calculus::BoundError`] for non-feedforward route sets
    /// (tori, cyclic ring traffic), which have no SFA bound.
    pub fn new(
        topology: &Topology,
        workload: &Workload,
        cfg: &RouterConfig,
    ) -> Result<BoundsOracle, BoundError> {
        let spec = workload.spec();
        let (_, be_load) = workload.realized_load();
        let policing = workload.policing();

        // CBR emits whole messages of `msg_flits` every
        // `frame_interval / msgs` cycles (the generator's exact integer
        // schedule — see `traffic::stream`), so σ = one message and
        // ρ = msg_flits / gap over *every* sliding window.
        let frame_flits = spec.frame_flits(spec.frame_mean_bytes);
        let msgs = spec.msgs_for_flits(frame_flits);
        let frame_interval = spec.timebase().cycles_from_ms(spec.frame_interval_ms).get();
        let msg_gap = (frame_interval / u64::from(msgs)).max(1);
        let cbr = ArrivalCurve::new(
            f64::from(spec.msg_flits),
            f64::from(spec.msg_flits) / msg_gap as f64,
        );
        // VBR is modelled by its negotiated envelope — mean rate with one
        // mean frame of burst, exactly the NI policer's token bucket.
        let vbr = ArrivalCurve::new(
            (spec.frame_mean_bytes / f64::from(spec.flit_bytes))
                .ceil()
                .max(f64::from(spec.msg_flits)),
            spec.stream_bps / spec.link_bps,
        );

        let flows: Vec<FlowSpec> = workload
            .stream_infos()
            .iter()
            .map(|info| FlowSpec {
                id: info.id.get(),
                src: info.src,
                dest: info.dest,
                vc_in: info.vc_in.get(),
                vc_out: info.vc_out.get(),
                arrival: if info.class == TrafficClass::Cbr {
                    cbr
                } else {
                    vbr
                },
                // Only the periodic CBR generator *provably* conforms to
                // its envelope. Shaping re-times releases the latency
                // measurement still charges, demotion lets bursts through
                // at best-effort priority, and VBR is a mean-rate model.
                guaranteed: info.class == TrafficClass::Cbr && policing == PolicingMode::Off,
            })
            .collect();

        let partition = workload.partition();
        let model = FabricModel {
            sched: match cfg.scheduler_kind() {
                SchedulerKind::VirtualClock => SchedKind::VirtualClock,
                SchedulerKind::Fifo => SchedKind::Fifo,
                SchedulerKind::RoundRobin => SchedKind::RoundRobin,
                SchedulerKind::Wfq => SchedKind::Wfq,
                SchedulerKind::Drr => SchedKind::Drr {
                    quantum: DRR_QUANTUM,
                },
                SchedulerKind::Scfq => SchedKind::Scfq,
            },
            link_rate: 1.0,
            max_msg_flits: f64::from(spec.msg_flits),
            point_fixed_cycles: f64::from(PIPELINE_STAGES + cfg.link_latency_value()),
            rt_weight: 1.0 / spec.stream_vtick_cycles(),
            be_weight: 1.0 / flitnet::BEST_EFFORT_VTICK,
            // Idle best-effort VCs exert no backpressure on the
            // schedulers, so they only count when the mix carries
            // best-effort load.
            be_vcs: if be_load > 0.0 {
                partition.best_effort_count()
            } else {
                0
            },
            be_per_node: (be_load > 0.0).then(|| {
                // One message of burst at the realized per-node rate
                // (fraction of a 1-flit/cycle link *is* flits per cycle).
                // A model, not a contract: best-effort is unregulated.
                ArrivalCurve::new(f64::from(spec.msg_flits), be_load)
            }),
            node_count: topology.node_count() as u32,
        };

        let bounds = calculus::flow_bounds(topology, &flows, &model)?;
        let classes = workload.stream_infos().iter().map(|i| i.class).collect();
        Ok(BoundsOracle { bounds, classes })
    }

    /// The raw analytic bounds, in stream-id order.
    pub fn bounds(&self) -> &[FlowBound] {
        &self.bounds
    }

    /// Audits the finished run: bound vs. observed maximum latency and
    /// vs. the age of the oldest still-undelivered message, at `end`.
    pub fn report(&self, net: &Network, end: Cycles) -> BoundsReport {
        let stats = net.rt_latency_stats();
        let mut streams = Vec::with_capacity(self.bounds.len());
        let mut violations = Vec::new();
        for (fb, &class) in self.bounds.iter().zip(&self.classes) {
            let s = fb.id as usize;
            let st = stats.get(s).filter(|st| !st.is_empty());
            let observed_max = st.map(netsim::RunningStats::max);
            let stuck_age = net
                .rt_oldest_outstanding(s)
                .map(|created| end.get().saturating_sub(created));
            let sb = StreamBound {
                stream: fb.id,
                class,
                hops: fb.hops,
                guaranteed: fb.guaranteed,
                sigma_flits: fb.arrival.sigma,
                rho_flits_per_cycle: fb.arrival.rho,
                bound_cycles: fb.bound_cycles,
                observed_max_cycles: observed_max,
                observed_mean_cycles: st.map(netsim::RunningStats::mean),
                observed_msgs: st.map_or(0, netsim::RunningStats::count),
                stuck_age_cycles: stuck_age,
            };
            if let Some(bound) = fb.bound_cycles {
                if let Some(max) = observed_max {
                    if max > bound {
                        violations.push(BoundViolation {
                            stream: fb.id,
                            kind: BoundViolationKind::DeliveredLate,
                            observed_cycles: max,
                            bound_cycles: bound,
                            guaranteed: fb.guaranteed,
                        });
                    }
                }
                if let Some(age) = stuck_age {
                    if age as f64 > bound {
                        violations.push(BoundViolation {
                            stream: fb.id,
                            kind: BoundViolationKind::Stuck,
                            observed_cycles: age as f64,
                            bound_cycles: bound,
                            guaranteed: fb.guaranteed,
                        });
                    }
                }
            }
            streams.push(sb);
        }
        BoundsReport {
            streams,
            violations,
        }
    }
}
