//! Deterministic shared-memory parallel stepping.
//!
//! [`drive`] runs a [`Network`] on a scoped thread pool and produces
//! **bit-identical** results to the sequential active-set stepper at any
//! thread count: every arbitration decision, counter increment, float
//! accumulation and trace byte is the same. The construction:
//!
//! * **Partitioning.** Routers are split into contiguous index ranges,
//!   one per participant (participant 0 is the coordinator — the calling
//!   thread). Every other piece of state has exactly one owner derived
//!   from that: an endpoint belongs to the owner of its attachment
//!   router; a link's *flit* channel to the owner of the router it feeds
//!   (ejection channels to the coordinator, which owns the sinks); a
//!   link's *credit* channel to the owner of the upstream router or NI
//!   it refunds. The two channels of one [`LinkPair`] may thus belong to
//!   different threads — accesses project the field through a raw
//!   pointer without ever materializing `&mut LinkPair`.
//!
//! * **Phases and barriers.** Each cycle runs injection (serial, on the
//!   coordinator), then a *deliver* phase and a *compute* phase
//!   (arbitrate → crossbar → output → NI injection) on all participants
//!   between barriers, then a serial merge. Within a phase no thread
//!   reads state another thread writes: deliver only moves flits/credits
//!   from an owned channel into an owned router/endpoint, and compute
//!   only reads/writes owned routers and *sends* onto link channels that
//!   no other participant touches this phase (each channel has a single
//!   sender per cycle by construction).
//!
//! * **Mailboxes and merge order.** Cross-partition traffic moves only
//!   through the link channels, which the next cycle's deliver phase
//!   drains in ascending link order — exactly the order the sequential
//!   stepper's sorted active list produces. Everything order-sensitive
//!   that a phase cannot write directly (trace events, link activations,
//!   the global send counter) is buffered per participant and merged by
//!   the coordinator in participant order, which — the ranges being
//!   contiguous and ascending — is the sequential router order.
//!
//! * **Determinism.** Per consumer (a router input port, an endpoint's
//!   credit pool, the delivery sinks, the trace stream) the sequence of
//!   mutations is a permutation-free match of the sequential one:
//!   deliver visits the frozen active list in the same order, compute
//!   phases see the same `has_work` values (a router's state changes
//!   only on its own thread between barriers), and the sinks plus every
//!   float accumulation live on the coordinator, fed in ascending link
//!   order. Active-list pruning is deferred to the merge, which leaves
//!   the same post-cycle set the sequential stepper maintains
//!   incrementally (a link stays listed iff it still has traffic in
//!   flight; an endpoint iff it still has flits queued).
//!
//! The audit's mailbox-conservation sweep (`ActiveSetDesync`)
//! cross-checks that invariant after every audited cycle.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Barrier;

use flitnet::{NodeId, RouterId};
use netsim::par::{SharedCell, SharedSlice};
use netsim::telemetry::{BufferSink, TelemetrySink};
use netsim::Cycles;
use topo::Topology;

use super::{Endpoint, LinkPair, Network, RxSide, Sinks, TxSide};
use crate::router::{CreditReturn, Departure, Router};

/// Owner tag for ejection-link flit channels: the coordinator drains
/// them into the delivery sinks (which it alone owns).
const EJECT: usize = usize::MAX;

/// `cmd` value telling workers to step another cycle.
const STEP: usize = 0;
/// `cmd` value telling workers to exit.
const EXIT: usize = 1;

/// The static ownership table: who steps what. Built once per run.
struct Plan {
    /// Contiguous router range `[lo, hi)` per participant.
    router_ranges: Vec<(usize, usize)>,
    /// Owning participant of each endpoint (= its attachment router's).
    ep_owner: Vec<usize>,
    /// Owning participant of each link's flit channel ([`EJECT`] for
    /// ejection links, drained by the coordinator into the sinks).
    flit_owner: Vec<usize>,
    /// Owning participant of each link's credit channel (the upstream
    /// router's owner, or the endpoint's for injection links).
    credit_owner: Vec<usize>,
}

impl Plan {
    fn build(net: &Network, threads: usize) -> Plan {
        let n = net.routers.len();
        debug_assert!(threads >= 2 && threads <= n);
        let (base, rem) = (n / threads, n % threads);
        let mut router_owner = vec![0usize; n];
        let mut router_ranges = Vec::with_capacity(threads);
        let mut start = 0;
        for t in 0..threads {
            let len = base + usize::from(t < rem);
            router_ranges.push((start, start + len));
            for owner in &mut router_owner[start..start + len] {
                *owner = t;
            }
            start += len;
        }
        let ep_owner: Vec<usize> = (0..net.endpoints.len())
            .map(|node| {
                let (r, _) = net.topology.attachment(NodeId(node as u32));
                router_owner[r.index()]
            })
            .collect();
        let flit_owner = net
            .links
            .iter()
            .map(|lp| match lp.rx {
                RxSide::RouterIn { router, .. } => router_owner[router],
                RxSide::Node => EJECT,
            })
            .collect();
        let credit_owner = net
            .links
            .iter()
            .map(|lp| match lp.tx {
                TxSide::RouterOut { router, .. } => router_owner[router],
                TxSide::Ni { node } => ep_owner[node],
            })
            .collect();
        Plan {
            router_ranges,
            ep_owner,
            flit_owner,
            credit_owner,
        }
    }
}

/// The per-cycle shared view of the network, republished by the
/// coordinator before every cycle (the backing `Vec`s may have grown).
///
/// Pointer-based so copies are lifetime-free; every access goes through
/// the ownership discipline in [`Plan`].
#[derive(Clone, Copy)]
struct Ctx {
    routers: SharedSlice<Router>,
    endpoints: SharedSlice<Endpoint>,
    links: SharedSlice<LinkPair>,
    link_sent: SharedSlice<u64>,
    /// The cycle's frozen deliver mailbox list (nobody mutates
    /// `active_links` between the publish and the merge).
    active_links: SharedSlice<usize>,
    /// The cycle's frozen NI backlog list.
    active_eps: SharedSlice<usize>,
    feed_link: SharedSlice<Vec<usize>>,
    out_link: SharedSlice<Vec<usize>>,
    topology: *const Topology,
    now: Cycles,
}

// SAFETY: the raw topology pointer is only read (`&Topology` is Sync),
// and the slices carry their own Send justification.
unsafe impl Send for Ctx {}

impl Ctx {
    fn capture(net: &mut Network, now: Cycles) -> Ctx {
        Ctx {
            routers: SharedSlice::new(&mut net.routers),
            endpoints: SharedSlice::new(&mut net.endpoints),
            links: SharedSlice::new(&mut net.links),
            link_sent: SharedSlice::new(&mut net.link_sent),
            active_links: SharedSlice::new(&mut net.active_links),
            active_eps: SharedSlice::new(&mut net.active_eps),
            feed_link: SharedSlice::new(&mut net.feed_link),
            out_link: SharedSlice::new(&mut net.out_link),
            topology: &net.topology,
            now,
        }
    }
}

/// Per-participant private state: trace buffers, pending activations,
/// and the scratch buffers the compute phase reuses.
struct WorkerBox {
    /// Route events (arbitrate stage), flushed to the real sink at the
    /// merge in participant order.
    route_sink: BufferSink,
    /// Arbitrate events (crossbar stage), flushed after all route
    /// events, in participant order.
    arb_sink: BufferSink,
    /// Links this participant sent on this cycle; the merge activates
    /// them (idempotently) on the shared active list.
    activations: Vec<usize>,
    /// Flits this participant put on links this cycle (the merge folds
    /// this into `total_link_sends`).
    link_sends: u64,
    credit_buf: Vec<CreditReturn>,
    depart_buf: Vec<Departure>,
    scratch: Vec<bool>,
}

impl WorkerBox {
    fn new(trace: bool, vcs: usize) -> WorkerBox {
        WorkerBox {
            route_sink: BufferSink::new(trace),
            arb_sink: BufferSink::new(trace),
            activations: Vec::new(),
            link_sends: 0,
            credit_buf: Vec::new(),
            depart_buf: Vec::new(),
            scratch: vec![false; vcs],
        }
    }
}

/// Deliver phase: drain this participant's flit and credit channels, in
/// ascending order over the frozen active-link list.
///
/// # Safety
///
/// Must run between the cycle's first and second barriers, with `ctx`
/// the coordinator's current publication and `me` this participant's
/// id. The [`Plan`] ownership discipline makes every access exclusive.
unsafe fn deliver_pass(me: usize, plan: &Plan, ctx: &Ctx) {
    for i in 0..ctx.active_links.len() {
        let l = *ctx.active_links.get(i);
        let lp = ctx.links.ptr_at(l);
        if plan.flit_owner[l] == me {
            while let Some(flit) = (*lp).flit.recv(ctx.now) {
                match (*lp).rx {
                    RxSide::RouterIn { router, port } => {
                        ctx.routers
                            .get_mut(router)
                            .receive_flit(ctx.now, port, flit);
                    }
                    RxSide::Node => unreachable!("ejection channels belong to the coordinator"),
                }
            }
        }
        if plan.credit_owner[l] == me {
            while let Some(vc) = (*lp).credit.recv(ctx.now) {
                match (*lp).tx {
                    TxSide::RouterOut { router, port } => {
                        ctx.routers.get_mut(router).receive_credit(port, vc);
                    }
                    TxSide::Ni { node } => {
                        ctx.endpoints.get_mut(node).credits[vc.index()] += 1;
                    }
                }
            }
        }
    }
}

/// Coordinator-only half of the deliver phase: drain the ejection
/// channels into the delivery sinks, in ascending order over the frozen
/// active-link list — the exact order (and float-accumulation order)
/// of the sequential stepper.
///
/// # Safety
///
/// Same window as [`deliver_pass`]; additionally `sinks`, `in_flight`
/// and `tsink` must be the coordinator's exclusive borrows.
unsafe fn eject_pass(
    plan: &Plan,
    ctx: &Ctx,
    sinks: &mut Sinks,
    in_flight: &mut u64,
    trace: bool,
    tsink: &mut dyn TelemetrySink,
) {
    for i in 0..ctx.active_links.len() {
        let l = *ctx.active_links.get(i);
        if plan.flit_owner[l] != EJECT {
            continue;
        }
        let lp = ctx.links.ptr_at(l);
        while let Some(flit) = (*lp).flit.recv(ctx.now) {
            Network::sink_flit(sinks, in_flight, ctx.now, flit, trace, tsink);
        }
    }
}

/// Compute phase: stages 2–5 plus NI injection for this participant's
/// routers and endpoints. No internal barriers: nothing here reads state
/// another participant writes (sends land on channels with a single
/// sender per cycle, and are only read by next cycle's deliver).
///
/// # Safety
///
/// Must run between the cycle's second and third barriers; same
/// ownership contract as [`deliver_pass`].
unsafe fn compute_pass(me: usize, plan: &Plan, ctx: &Ctx, bx: &mut WorkerBox) {
    let (lo, hi) = plan.router_ranges[me];
    let now = ctx.now;
    let topology = &*ctx.topology;
    // Stages 2–3: routing + output-VC arbitration.
    for r in lo..hi {
        let router = ctx.routers.get_mut(r);
        if !router.has_work() {
            continue;
        }
        let rid = RouterId(r as u32);
        router.arbitrate(
            now,
            |flit| topology.route_sel(rid, flit.dest),
            &mut bx.route_sink,
        );
    }
    // Stage 4: crossbar traversal; refund freed slots upstream.
    for r in lo..hi {
        let router = ctx.routers.get_mut(r);
        if !router.has_work() {
            continue;
        }
        bx.credit_buf.clear();
        router.crossbar(now, &mut bx.credit_buf, &mut bx.arb_sink);
        for c in &bx.credit_buf {
            let feeder = ctx.feed_link.get(r)[c.port.index()];
            // SAFETY: only the fed router's owner sends credits on its
            // feeder; the channel's *flit* half may concurrently belong
            // to another thread, hence the field projection.
            (*ctx.links.ptr_at(feeder)).credit.send(now, c.vc);
            bx.activations.push(feeder);
        }
    }
    // Stage 5: output VC multiplexers onto the links.
    for r in lo..hi {
        let router = ctx.routers.get_mut(r);
        if !router.has_work() {
            continue;
        }
        bx.depart_buf.clear();
        router.output_stage(now, &mut bx.depart_buf);
        for d in &bx.depart_buf {
            let l = ctx.out_link.get(r)[d.port.index()];
            (*ctx.links.ptr_at(l)).flit.send(now, d.flit);
            *ctx.link_sent.get_mut(l) += 1;
            bx.link_sends += 1;
            bx.activations.push(l);
        }
    }
    // Phase 6: NI injection, over the frozen backlog list.
    for i in 0..ctx.active_eps.len() {
        let n = *ctx.active_eps.get(i);
        if plan.ep_owner[n] != me {
            continue;
        }
        let ep = ctx.endpoints.get_mut(n);
        if let Some(flit) = Network::ni_pick(ep, &mut bx.scratch) {
            let link = ep.link;
            (*ctx.links.ptr_at(link)).flit.send(now, flit);
            *ctx.link_sent.get_mut(link) += 1;
            bx.link_sends += 1;
            bx.activations.push(link);
        }
    }
}

/// Runs `net` until `end` on `threads` participants (the caller plus
/// `threads - 1` scoped workers). See the module docs for the
/// determinism argument.
pub(super) fn drive(net: &mut Network, end: Cycles, threads: usize, sink: &mut dyn TelemetrySink) {
    let plan = Plan::build(net, threads);
    let trace = net.trace;
    let vcs = net.scratch.len();
    let checked = net.audit.is_some() || net.watchdog.is_some();

    let mut box0 = WorkerBox::new(trace, vcs);
    let boxes: Vec<SharedCell<WorkerBox>> = (1..threads)
        .map(|_| SharedCell::new(WorkerBox::new(trace, vcs)))
        .collect();
    let ctx_cell = SharedCell::new(Ctx::capture(net, net.now));
    let b1 = Barrier::new(threads);
    let b2 = Barrier::new(threads);
    let b3 = Barrier::new(threads);
    let cmd = AtomicUsize::new(STEP);

    std::thread::scope(|s| {
        for me in 1..threads {
            let bx = &boxes[me - 1];
            let (b1, b2, b3) = (&b1, &b2, &b3);
            let (cmd, ctx_cell, plan) = (&cmd, &ctx_cell, &plan);
            s.spawn(move || loop {
                b1.wait();
                if cmd.load(Ordering::Relaxed) == EXIT {
                    break;
                }
                // SAFETY: the coordinator publishes `ctx` before b1 and
                // does not touch it again until after b3; this box is
                // ours alone between barriers; all state accesses follow
                // the plan's ownership table.
                unsafe {
                    let ctx = *ctx_cell.get();
                    let bx = &mut *bx.get();
                    deliver_pass(me, plan, &ctx);
                    b2.wait();
                    compute_pass(me, plan, &ctx, bx);
                }
                b3.wait();
            });
        }

        while net.now < end {
            if net.try_horizon_jump(end) {
                continue;
            }
            let now = net.now;
            net.inject(now, sink);
            let ctx = Ctx::capture(net, now);
            // SAFETY: workers are parked at b1; the write is ordered
            // before their reads by the barrier.
            unsafe { *ctx_cell.get() = ctx };
            b1.wait();
            // SAFETY: from here to b3 the coordinator touches routers /
            // endpoints / links only through `ctx`, and `sinks` /
            // `flits_in_flight` are fields no worker accesses.
            unsafe {
                deliver_pass(0, &plan, &ctx);
                eject_pass(
                    &plan,
                    &ctx,
                    &mut net.sinks,
                    &mut net.flits_in_flight,
                    trace,
                    sink,
                );
                b2.wait();
                compute_pass(0, &plan, &ctx, &mut box0);
            }
            b3.wait();

            // Serial merge. Trace events first: all route events in
            // participant (= ascending router) order, then all arbitrate
            // events — the sequential phase order.
            box0.route_sink.drain_into(sink);
            for bx in &boxes {
                // SAFETY: workers are parked at b1 again; b3 ordered
                // their writes before these reads.
                unsafe { (*bx.get()).route_sink.drain_into(sink) };
            }
            box0.arb_sink.drain_into(sink);
            for bx in &boxes {
                unsafe { (*bx.get()).arb_sink.drain_into(sink) };
            }
            // Activations and the global send counter.
            for l in box0.activations.drain(..) {
                Network::activate_link(&mut net.link_active, &mut net.active_links, l);
            }
            net.total_link_sends += box0.link_sends;
            box0.link_sends = 0;
            for bx in &boxes {
                let bx = unsafe { &mut *bx.get() };
                for l in bx.activations.drain(..) {
                    Network::activate_link(&mut net.link_active, &mut net.active_links, l);
                }
                net.total_link_sends += bx.link_sends;
                bx.link_sends = 0;
            }
            // Deferred pruning: drop links that drained without being
            // resent on, and endpoints whose NI backlog emptied — the
            // same post-cycle sets the sequential stepper leaves.
            let mut i = 0;
            while i < net.active_links.len() {
                let l = net.active_links[i];
                if net.links[l].flit.is_idle() && net.links[l].credit.is_idle() {
                    net.link_active[l] = false;
                    net.active_links.remove(i);
                } else {
                    i += 1;
                }
            }
            let mut i = 0;
            while i < net.active_eps.len() {
                let n = net.active_eps[i];
                if net.endpoints[n].queued == 0 {
                    net.ep_active[n] = false;
                    net.active_eps.remove(i);
                } else {
                    i += 1;
                }
            }

            if checked {
                net.safety_check();
                if net.stall.is_some() {
                    break;
                }
            }
            net.advance_clock(end);
        }

        cmd.store(EXIT, Ordering::Relaxed);
        b1.wait();
    });
}
