//! The pipelined MediaWorm router model.
//!
//! One [`Router`] models the paper's five-stage PROUD pipeline (Fig. 1):
//!
//! 1. **Sync / demux / buffer / decode** — arriving flits land in the
//!    per-VC input buffer (one cycle before becoming schedulable).
//! 2. **Routing decision** and
//! 3. **arbitration** — a head flit at the front of its VC spends two
//!    cycles computing its route and competing for its output VC, which a
//!    message holds from head to tail (the paper's message-granularity
//!    output arbitration, §3.3). Middle and tail flits bypass these
//!    stages.
//! 4. **Crossbar** — flits move to the output staging buffers. On a
//!    multiplexed crossbar each input port's multiplexer picks one flit
//!    per cycle among its granted VCs — the paper's contention point "A",
//!    where MediaWorm applies Virtual Clock. Output-side arbitration
//!    already happened at message granularity in stage 3 (output-VC
//!    ownership), so staging buffers absorb concurrent arrivals on
//!    different VCs. A full crossbar moves every granted VC's flit
//!    concurrently.
//! 5. **Output buffering / VC mux** — each output physical channel picks
//!    one staged flit per cycle (point "C"; the Virtual Clock point for
//!    full-crossbar routers) and transmits it, consuming a credit of the
//!    downstream input buffer.
//!
//! The router is pure state + decisions; moving flits across links and
//! returning credits is the [`crate::net::Network`]'s job.

use std::collections::VecDeque;

use flitnet::{Flit, MsgId, PortId, RouterId, VcBuffer, VcId, VcPartition, VcSel};
use netsim::telemetry::{FlitEvent, FlitEventKind, TelemetrySink};
use netsim::Cycles;

use crate::config::{CrossbarKind, RouterConfig, SchedPoint, SchedulerKind};
use crate::counters::{RouterCounters, OCCUPANCY_SAMPLE_PERIOD};
use crate::scheduler::MuxScheduler;

/// Cycles a head flit spends in stages 2–3 (routing + arbitration) before
/// it may try to win the crossbar.
pub const ROUTE_ARB_CYCLES: u64 = 2;

/// Inserts `x` into a sorted ascending list, keeping it sorted. The active
/// sets iterate in ascending index order — the same order the full scans
/// visit slots — so maintaining sortedness is what keeps the occupancy-
/// driven stepping bit-identical to the reference scans.
pub(crate) fn sorted_insert(list: &mut Vec<usize>, x: usize) {
    let pos = list.partition_point(|&y| y < x);
    debug_assert!(list.get(pos) != Some(&x), "duplicate active-set entry {x}");
    list.insert(pos, x);
}

/// Removes `x` from a sorted ascending list.
pub(crate) fn sorted_remove(list: &mut Vec<usize>, x: usize) {
    let pos = list.partition_point(|&y| y < x);
    debug_assert_eq!(list.get(pos), Some(&x), "missing active-set entry {x}");
    list.remove(pos);
}

/// A granted route for the message currently occupying an input VC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Grant {
    out_port: usize,
    out_vc: usize,
    /// Earliest cycle the head may traverse the crossbar.
    ready_at: Cycles,
}

/// Per-VC input unit: buffer + pipeline bookkeeping.
#[derive(Debug)]
struct InputVc {
    buf: VcBuffer,
    /// Arrival cycle of each buffered flit (parallel to `buf`).
    arrivals: VecDeque<Cycles>,
    grant: Option<Grant>,
    /// When the current head flit was first seen at the buffer front
    /// (starts the stage-2/3 latency).
    head_seen_at: Option<Cycles>,
}

#[derive(Debug)]
struct InputPort {
    vcs: Vec<InputVc>,
    /// Crossbar input multiplexer scheduler (point A).
    sched: MuxScheduler,
    /// VC indices holding an active grant (sorted ascending): the granted
    /// connections the crossbar serves. Maintained at grant (arbitration)
    /// and release (tail crossing).
    granted: Vec<usize>,
}

/// Per-VC output unit: stage-5 staging buffer + downstream credits.
#[derive(Debug)]
struct OutputVc {
    /// Staged flits with their staging-arrival cycle.
    buf: VecDeque<(Cycles, Flit)>,
    cap: usize,
    /// Credits for the downstream input VC buffer.
    credits: u32,
    /// Message currently allocated this output VC (held head → tail).
    owner: Option<MsgId>,
}

#[derive(Debug)]
struct OutputPort {
    vcs: Vec<OutputVc>,
    /// Output VC multiplexer scheduler (point C).
    sched: MuxScheduler,
    /// VC indices with a non-empty staging buffer (sorted ascending): the
    /// VCs the output multiplexer considers. Maintained at stage (crossbar
    /// push) and drain (stage-5 pop). Note the predicate is *non-empty
    /// staging buffer*, not VC ownership: an owner with nothing staged has
    /// nothing to transmit, and a tail handover clears the owner while the
    /// tail still sits staged.
    staged: Vec<usize>,
}

/// A flit leaving the router this cycle on `port`.
#[derive(Debug, Clone, Copy)]
pub struct Departure {
    /// Output physical channel.
    pub port: PortId,
    /// The transmitted flit.
    pub flit: Flit,
}

/// A credit to return upstream: the input `(port, vc)` that freed a slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CreditReturn {
    /// Input physical channel whose buffer freed a slot.
    pub port: PortId,
    /// The VC within that channel.
    pub vc: VcId,
}

/// A MediaWorm router instance.
///
/// See the [module docs](self) for the pipeline model. Typical use is via
/// [`crate::net::Network`]; the router API is public for unit testing and
/// custom drivers.
#[derive(Debug)]
pub struct Router {
    id: RouterId,
    cfg: RouterConfig,
    /// Class split of each physical channel's VCs; output-VC allocation
    /// draws from the head flit's class partition.
    partition: VcPartition,
    inputs: Vec<InputPort>,
    outputs: Vec<OutputPort>,
    /// Rotating arbitration start point for fairness.
    arb_cursor: usize,
    /// Flat input-slot indices `port * vcs_per_pc + vc` with a buffered
    /// but unrouted head (sorted ascending): the pending-heads list
    /// arbitration scans. Maintained at `receive_flit`, grant, and tail
    /// crossing.
    pending: Vec<usize>,
    /// Whether each flat input slot is in `pending` (same indexing).
    pending_mask: Vec<bool>,
    /// Flits resident in the router (input buffers + output staging):
    /// makes `has_work` O(1).
    resident: u64,
    /// Reusable index scratch for iterating an active set while the
    /// iteration itself mutates it (arbitration, full-crossbar moves).
    scratch_idx: Vec<usize>,
    /// Reusable eligibility mask for the crossbar input multiplexers
    /// (avoids a per-cycle allocation on the hot path).
    xbar_mask: Vec<bool>,
    /// Reusable eligibility mask for the output VC multiplexers.
    out_mask: Vec<bool>,
    /// Total flits that traversed the crossbar (utilisation stats).
    flits_crossed: u64,
    /// Allocator diagnostics: (active cycles, input-slots with an eligible
    /// flit that did not move, input-slots with nothing eligible).
    diag: (u64, u64, u64),
    /// Per-port/per-VC telemetry counters (always on: plain integer adds).
    counters: RouterCounters,
    /// Cached `sink.is_enabled()`: flit-event emission is guarded by this
    /// plain bool so a disabled sink costs nothing on the hot path.
    trace: bool,
}

impl Router {
    /// Creates a router with `n_ports` physical channels whose VCs are
    /// split between traffic classes per `partition`.
    ///
    /// # Panics
    ///
    /// Panics if `n_ports == 0` or the partition does not cover exactly
    /// the configured VCs.
    pub fn new(id: RouterId, n_ports: usize, cfg: &RouterConfig, partition: VcPartition) -> Router {
        assert!(n_ports > 0, "a router needs at least one port");
        assert_eq!(
            partition.total(),
            cfg.vcs_per_pc(),
            "VC partition must cover exactly the configured VCs"
        );
        let m = cfg.vcs_per_pc() as usize;
        let point = cfg.effective_sched_point();
        let a_kind = if point == SchedPoint::CrossbarInput {
            cfg.scheduler_kind()
        } else {
            SchedulerKind::Fifo
        };
        let c_kind = if point == SchedPoint::VcMux {
            cfg.scheduler_kind()
        } else {
            SchedulerKind::Fifo
        };
        let inputs = (0..n_ports)
            .map(|_| InputPort {
                vcs: (0..m)
                    .map(|_| InputVc {
                        buf: VcBuffer::new(cfg.buf_flits_value() as usize),
                        arrivals: VecDeque::new(),
                        grant: None,
                        head_seen_at: None,
                    })
                    .collect(),
                sched: MuxScheduler::new(a_kind, m),
                granted: Vec::new(),
            })
            .collect();
        let outputs = (0..n_ports)
            .map(|_| OutputPort {
                vcs: (0..m)
                    .map(|_| OutputVc {
                        buf: VecDeque::new(),
                        cap: cfg.out_buf_flits_value() as usize,
                        credits: 0,
                        owner: None,
                    })
                    .collect(),
                sched: MuxScheduler::new(c_kind, m),
                staged: Vec::new(),
            })
            .collect();
        Router {
            id,
            cfg: cfg.clone(),
            partition,
            inputs,
            outputs,
            arb_cursor: 0,
            pending: Vec::new(),
            pending_mask: vec![false; n_ports * m],
            resident: 0,
            scratch_idx: Vec::new(),
            xbar_mask: vec![false; m],
            out_mask: vec![false; m],
            flits_crossed: 0,
            diag: (0, 0, 0),
            counters: RouterCounters::new(n_ports, m),
            trace: false,
        }
    }

    /// Enables or disables flit-event emission to the telemetry sink
    /// passed to [`Router::arbitrate`] / [`Router::crossbar`]. The driver
    /// sets this once per run from `sink.is_enabled()`.
    pub fn set_tracing(&mut self, on: bool) {
        self.trace = on;
    }

    /// The router's telemetry counters.
    pub fn counters(&self) -> &RouterCounters {
        &self.counters
    }

    /// Router id.
    pub fn id(&self) -> RouterId {
        self.id
    }

    /// Number of physical channels.
    pub fn port_count(&self) -> usize {
        self.inputs.len()
    }

    /// Initialises the downstream credit count of output `(port, vc)` —
    /// the depth of the next hop's input buffer, or a large value for
    /// endpoint-attached ports (endpoints consume at link rate).
    pub fn init_credits(&mut self, port: PortId, vc: VcId, credits: u32) {
        self.outputs[port.index()].vcs[vc.index()].credits = credits;
    }

    /// Accepts a flit arriving on input `port` (stage 1). The flit joins
    /// the VC buffer selected by its `vc` field.
    ///
    /// # Panics
    ///
    /// Panics if the buffer overflows (credit protocol violation) or the
    /// VC index is out of range.
    pub fn receive_flit(&mut self, now: Cycles, port: PortId, flit: Flit) {
        let m = self.cfg.vcs_per_pc() as usize;
        let p = port.index();
        let ip = &mut self.inputs[p];
        let v = flit.vc.index();
        ip.vcs[v].buf.push(flit);
        ip.vcs[v].arrivals.push_back(now);
        ip.sched.on_arrival(v, now, &flit);
        self.resident += 1;
        // An ungranted slot with buffered flits is a pending head (the
        // buffer always fronts a head when no grant is held).
        let idx = p * m + v;
        if ip.vcs[v].grant.is_none() && !self.pending_mask[idx] {
            self.pending_mask[idx] = true;
            sorted_insert(&mut self.pending, idx);
        }
    }

    /// Accepts a returned credit for output `(port, vc)`.
    pub fn receive_credit(&mut self, port: PortId, vc: VcId) {
        self.outputs[port.index()].vcs[vc.index()].credits += 1;
    }

    /// Stage 2–3: routing + arbitration for every input VC whose head flit
    /// has finished its [`ROUTE_ARB_CYCLES`] and whose resources are free.
    ///
    /// `candidates(flit)` returns the deterministic route's output-port
    /// candidates (several only across parallel fat links) plus a
    /// [`VcSel`] dateline restriction; among the candidates with a free,
    /// `VcSel`-permitted VC the *least loaded* wins, per §3.4. The output
    /// VC is allocated dynamically from the head's class partition
    /// (preferring the stream's requested VC) and is owned by the message
    /// until its tail passes the crossbar — the paper's
    /// message-granularity output arbitration. On dateline-free
    /// topologies the restriction is [`VcSel::Any`] and changes nothing.
    ///
    /// Each successful grant emits a `Route` event to `sink` when tracing
    /// is enabled (see [`Router::set_tracing`]).
    pub fn arbitrate<'t, F>(&mut self, now: Cycles, candidates: F, sink: &mut dyn TelemetrySink)
    where
        F: Fn(&Flit) -> (&'t [PortId], VcSel),
    {
        let m = self.cfg.vcs_per_pc() as usize;
        let total = self.inputs.len() * m;
        let start = self.arb_cursor;
        self.arb_cursor = (self.arb_cursor + 1) % total;

        // Visit only pending heads, in the rotated order the full scan
        // uses: slots >= start first, then the wrap-around. A scratch copy
        // is scanned because granting removes entries from `pending`.
        let mut scan = std::mem::take(&mut self.scratch_idx);
        scan.clear();
        let split = self.pending.partition_point(|&i| i < start);
        scan.extend_from_slice(&self.pending[split..]);
        scan.extend_from_slice(&self.pending[..split]);
        for &idx in &scan {
            self.try_route_slot(idx / m, idx % m, now, &candidates, sink);
        }
        self.scratch_idx = scan;
    }

    /// [`Router::arbitrate`] as the original full scan over every input
    /// slot — the oracle the bit-identity tests compare the pending-heads
    /// list against. Both paths share [`Router::try_route_slot`] and
    /// maintain the active sets identically.
    pub fn arbitrate_reference<'t, F>(
        &mut self,
        now: Cycles,
        candidates: F,
        sink: &mut dyn TelemetrySink,
    ) where
        F: Fn(&Flit) -> (&'t [PortId], VcSel),
    {
        let m = self.cfg.vcs_per_pc() as usize;
        let total = self.inputs.len() * m;
        let start = self.arb_cursor;
        self.arb_cursor = (self.arb_cursor + 1) % total;

        for off in 0..total {
            let idx = (start + off) % total;
            let (p, v) = (idx / m, idx % m);
            let ivc = &mut self.inputs[p].vcs[v];
            if ivc.grant.is_some() {
                continue;
            }
            if ivc.buf.is_empty() {
                ivc.head_seen_at = None;
                continue;
            }
            debug_assert!(
                self.pending_mask[idx],
                "ungranted non-empty slot {idx} missing from the pending list"
            );
            self.try_route_slot(p, v, now, &candidates, sink);
        }
    }

    /// Stage 2–3 body for one pending input slot: the slot holds buffered
    /// flits and no grant. Tries to route + arbitrate its head; on success
    /// the slot moves from the pending-heads list to the port's granted
    /// list.
    fn try_route_slot<'t, F>(
        &mut self,
        p: usize,
        v: usize,
        now: Cycles,
        candidates: &F,
        sink: &mut dyn TelemetrySink,
    ) where
        F: Fn(&Flit) -> (&'t [PortId], VcSel),
    {
        let ivc = &mut self.inputs[p].vcs[v];
        debug_assert!(ivc.grant.is_none(), "pending slot must be ungranted");
        let head = *ivc.buf.head().expect("pending slot has a buffered head");
        // Stage-1 latency: the head becomes visible to the routing
        // logic the cycle after it was buffered.
        let arrived = *ivc.arrivals.front().expect("arrivals parallel buf");
        if now < arrived + Cycles(1) {
            return;
        }
        if !head.kind.is_head() {
            // A body flit with no grant can only mean the previous
            // tail released the VC out of order — a simulator bug.
            unreachable!("non-head flit at an unrouted input VC: port {p} vc {v} flit {head:?}");
        }
        let seen = *ivc.head_seen_at.get_or_insert(now);
        if now < seen.saturating_add(Cycles(ROUTE_ARB_CYCLES)) {
            return;
        }
        // Dynamic output-VC allocation: any free VC of the head's
        // class partition, preferring the stream's requested VC. With
        // VC borrowing enabled (§6 future work), a free VC of the
        // *other* class is taken as a last resort, so idle capacity
        // is never stranded by the static split. All three tiers honour
        // the hop's dateline restriction — including the borrowing
        // fallback, or a borrowed VC would re-open the wrap-link
        // dependency cycle the datelines exist to break.
        let borrowing = self.cfg.vc_borrowing_enabled();
        let (cands, sel) = candidates(&head);
        let free_vc = |op: &OutputPort| -> Option<usize> {
            let preferred = head.out_vc.index();
            if self.partition.class_of(head.out_vc).is_real_time() == head.class.is_real_time()
                && self.partition.sel_allows(sel, head.out_vc)
                && op.vcs[preferred].owner.is_none()
            {
                return Some(preferred);
            }
            let own = self
                .partition
                .vcs_for(head.class)
                .filter(|&vc| self.partition.sel_allows(sel, vc))
                .map(VcId::index)
                .find(|&vc| op.vcs[vc].owner.is_none());
            if own.is_some() || !borrowing {
                return own;
            }
            (0..op.vcs.len()).find(|&vc| {
                op.vcs[vc].owner.is_none() && self.partition.sel_allows(sel, VcId(vc as u32))
            })
        };
        // Pick the least-loaded candidate port with a free VC.
        let mut best: Option<(usize, usize, usize)> = None; // (load, port, vc)
        for cand in cands {
            let o = cand.index();
            let op = &self.outputs[o];
            let Some(vc) = free_vc(op) else {
                continue;
            };
            // Load proxy for the fat-link choice (§3.4): staged flits
            // plus a term per VC currently owned by an in-flight
            // message.
            let load: usize = op
                .vcs
                .iter()
                .map(|vc| vc.buf.len() + if vc.owner.is_some() { 4 } else { 0 })
                .sum();
            if best.is_none_or(|(l, _, _)| load < l) {
                best = Some((load, o, vc));
            }
        }
        let Some((_, o, out_vc)) = best else {
            return;
        };
        self.inputs[p].vcs[v].grant = Some(Grant {
            out_port: o,
            out_vc,
            ready_at: now + Cycles(1),
        });
        self.inputs[p].vcs[v].head_seen_at = None;
        self.outputs[o].vcs[out_vc].owner = Some(head.msg);
        // Routed: the slot leaves the pending-heads list and joins the
        // port's granted connections.
        let m = self.cfg.vcs_per_pc() as usize;
        let idx = p * m + v;
        debug_assert!(self.pending_mask[idx]);
        self.pending_mask[idx] = false;
        sorted_remove(&mut self.pending, idx);
        sorted_insert(&mut self.inputs[p].granted, v);
        if self.trace {
            sink.record(&FlitEvent {
                cycle: now.get(),
                kind: FlitEventKind::Route,
                router: Some(self.id.get()),
                port: o as u32,
                vc: out_vc as u32,
                stream: head.stream.get(),
                msg: head.msg.get(),
                real_time: head.class.is_real_time(),
            });
        }
    }

    /// Whether input `(p, v)` may move its head flit through the crossbar
    /// at `now`.
    fn xbar_eligible(&self, p: usize, v: usize, now: Cycles) -> bool {
        let ivc = &self.inputs[p].vcs[v];
        let Some(grant) = ivc.grant else {
            return false;
        };
        let Some(head) = ivc.buf.head() else {
            return false;
        };
        // Stage-1 latency: a flit becomes schedulable the cycle after it
        // was buffered.
        let arrived = *ivc.arrivals.front().expect("arrivals parallel buf");
        if now < arrived + Cycles(1) {
            return false;
        }
        if head.kind.is_head() && now < grant.ready_at {
            return false;
        }
        let ovc = &self.outputs[grant.out_port].vcs[grant.out_vc];
        ovc.buf.len() < ovc.cap
    }

    /// Moves input `(p, v)`'s head flit through the crossbar.
    fn xbar_move(
        &mut self,
        p: usize,
        v: usize,
        now: Cycles,
        credits: &mut Vec<CreditReturn>,
        sink: &mut dyn TelemetrySink,
    ) {
        let grant = self.inputs[p].vcs[v]
            .grant
            .expect("eligible VC has a grant");
        let mut flit = self.inputs[p].vcs[v]
            .buf
            .pop()
            .expect("eligible VC has a flit");
        self.inputs[p].vcs[v].arrivals.pop_front();
        self.inputs[p].sched.on_service(v);
        credits.push(CreditReturn {
            port: PortId(p as u32),
            vc: VcId(v as u32),
        });
        // The flit now travels on the granted output VC.
        flit.vc = VcId(grant.out_vc as u32);
        let out = &mut self.outputs[grant.out_port];
        out.sched.on_arrival(grant.out_vc, now, &flit);
        out.vcs[grant.out_vc].buf.push_back((now, flit));
        if out.vcs[grant.out_vc].buf.len() == 1 {
            sorted_insert(&mut out.staged, grant.out_vc);
        }
        self.flits_crossed += 1;
        if self.trace {
            sink.record(&FlitEvent {
                cycle: now.get(),
                kind: FlitEventKind::Arbitrate,
                router: Some(self.id.get()),
                port: p as u32,
                vc: v as u32,
                stream: flit.stream.get(),
                msg: flit.msg.get(),
                real_time: flit.class.is_real_time(),
            });
        }
        if flit.kind.is_tail() {
            self.inputs[p].vcs[v].grant = None;
            // The output VC hands over at tail crossing: its staging
            // buffer is FIFO, so a successor message cannot overtake the
            // worm downstream.
            out.vcs[grant.out_vc].owner = None;
            // The connection closes: the slot leaves the granted list,
            // and rejoins the pending-heads list if the next worm's head
            // is already buffered behind the tail.
            sorted_remove(&mut self.inputs[p].granted, v);
            if !self.inputs[p].vcs[v].buf.is_empty() {
                let idx = p * self.cfg.vcs_per_pc() as usize + v;
                debug_assert!(!self.pending_mask[idx]);
                self.pending_mask[idx] = true;
                sorted_insert(&mut self.pending, idx);
            }
        }
    }

    /// Stage 4: crossbar traversal. Appends the credits to send upstream
    /// for the input-buffer slots freed this cycle to `credits` (an
    /// out-parameter so the per-cycle driver can reuse one buffer; the
    /// router never allocates here).
    ///
    /// Multiplexed crossbar: each input port's multiplexer (point A)
    /// picks one flit per cycle among its granted VCs. Crossbar output
    /// ports were arbitrated at message granularity back in stage 3
    /// (output-VC ownership), so there is no per-flit output conflict
    /// here: the stage-5 staging buffers absorb concurrent arrivals on
    /// different VCs and the VC multiplexer enforces the physical
    /// one-flit-per-cycle bound of the output channel.
    ///
    /// Full crossbar: every granted VC moves — each output VC has its own
    /// crossbar port.
    ///
    /// Each flit that crosses emits an `Arbitrate` event to `sink` when
    /// tracing is enabled. On a multiplexed crossbar, eligible VCs that
    /// lose their cycle are counted as mux conflicts; every
    /// [`OCCUPANCY_SAMPLE_PERIOD`] cycles the input-buffer occupancy is
    /// sampled into the counters.
    pub fn crossbar(
        &mut self,
        now: Cycles,
        credits: &mut Vec<CreditReturn>,
        sink: &mut dyn TelemetrySink,
    ) {
        self.crossbar_impl(now, credits, sink, false);
    }

    /// [`Router::crossbar`] with the original full `ports × VCs` scan —
    /// the oracle the bit-identity tests compare the granted-connections
    /// list against.
    pub fn crossbar_reference(
        &mut self,
        now: Cycles,
        credits: &mut Vec<CreditReturn>,
        sink: &mut dyn TelemetrySink,
    ) {
        self.crossbar_impl(now, credits, sink, true);
    }

    fn crossbar_impl(
        &mut self,
        now: Cycles,
        credits: &mut Vec<CreditReturn>,
        sink: &mut dyn TelemetrySink,
        reference: bool,
    ) {
        let n = self.inputs.len();
        let m = self.cfg.vcs_per_pc() as usize;
        self.diag.0 += 1;
        if now.get().is_multiple_of(OCCUPANCY_SAMPLE_PERIOD) {
            // Occupancy is a busy-cycle statistic: the drivers only run
            // the crossbar on routers with resident flits, so quiescent
            // spans (stepped or horizon-skipped alike) contribute no
            // samples. If a driver ever called this on an idle router,
            // skipped and stepped runs would sample different cycle sets
            // and the identity suites would diverge — fail fast instead.
            debug_assert!(
                self.has_work(),
                "occupancy sampling on an idle router: drivers must gate \
                 the crossbar stage on has_work()"
            );
            self.counters.occupancy_samples += 1;
            for (p, ip) in self.inputs.iter().enumerate() {
                let buffered: usize = ip.vcs.iter().map(|vc| vc.buf.len()).sum();
                self.counters.ports[p].occupancy_flits += buffered as u64;
            }
        }
        match self.cfg.crossbar_kind() {
            CrossbarKind::Multiplexed => {
                let mut eligible = std::mem::take(&mut self.xbar_mask);
                for p in 0..n {
                    // Only granted VCs can be crossbar-eligible; a port
                    // with no granted connection is an empty slot. The
                    // mask starts all-false and only granted entries are
                    // written (and cleared below), so the scheduler sees
                    // the exact mask the full scan builds.
                    if !reference && self.inputs[p].granted.is_empty() {
                        self.diag.2 += 1;
                        continue;
                    }
                    let mut n_eligible = 0u64;
                    if reference {
                        for (v, e) in eligible.iter_mut().enumerate() {
                            *e = self.xbar_eligible(p, v, now);
                            n_eligible += u64::from(*e);
                        }
                    } else {
                        for i in 0..self.inputs[p].granted.len() {
                            let v = self.inputs[p].granted[i];
                            let e = self.xbar_eligible(p, v, now);
                            eligible[v] = e;
                            n_eligible += u64::from(e);
                        }
                    }
                    // Every eligible VC beyond the one served loses this
                    // cycle to the input multiplexer: a mux conflict.
                    self.counters.ports[p].mux_conflicts += n_eligible.saturating_sub(1);
                    let choice = self.inputs[p].sched.choose(&eligible);
                    if !reference {
                        // Clear before moving: a tail crossing mutates
                        // the granted list.
                        for i in 0..self.inputs[p].granted.len() {
                            eligible[self.inputs[p].granted[i]] = false;
                        }
                    }
                    if let Some(v) = choice {
                        self.xbar_move(p, v, now, credits, sink);
                    } else if n_eligible > 0 {
                        self.diag.1 += 1;
                    } else {
                        self.diag.2 += 1;
                    }
                }
                if reference {
                    // The mask invariant between calls is all-false (the
                    // optimized path relies on it).
                    eligible.fill(false);
                }
                self.xbar_mask = eligible;
            }
            CrossbarKind::Full => {
                if reference {
                    for p in 0..n {
                        for v in 0..m {
                            if self.xbar_eligible(p, v, now) {
                                self.xbar_move(p, v, now, credits, sink);
                            }
                        }
                    }
                } else {
                    // Scratch copy: tail crossings mutate the granted
                    // list mid-iteration.
                    let mut scan = std::mem::take(&mut self.scratch_idx);
                    for p in 0..n {
                        scan.clear();
                        scan.extend_from_slice(&self.inputs[p].granted);
                        for &v in &scan {
                            if self.xbar_eligible(p, v, now) {
                                self.xbar_move(p, v, now, credits, sink);
                            }
                        }
                    }
                    self.scratch_idx = scan;
                }
            }
        }
    }

    /// Allocator diagnostics `(active_cycles, blocked_slots, empty_slots)`.
    pub fn diag(&self) -> (u64, u64, u64) {
        self.diag
    }

    /// Stage 5: the output VC multiplexers. Each output physical channel
    /// transmits at most one staged flit (point C), consuming one
    /// downstream credit. Departures are appended to `departures` (an
    /// out-parameter so the per-cycle driver can reuse one buffer; the
    /// router never allocates here).
    pub fn output_stage(&mut self, now: Cycles, departures: &mut Vec<Departure>) {
        self.output_stage_impl(now, departures, false);
    }

    /// [`Router::output_stage`] with the original full scan over every
    /// output VC — the oracle the bit-identity tests compare the staged
    /// list against.
    pub fn output_stage_reference(&mut self, now: Cycles, departures: &mut Vec<Departure>) {
        self.output_stage_impl(now, departures, true);
    }

    fn output_stage_impl(&mut self, now: Cycles, departures: &mut Vec<Departure>, reference: bool) {
        let mut eligible = std::mem::take(&mut self.out_mask);
        for (p, out) in self.outputs.iter_mut().enumerate() {
            // VCs with an empty staging buffer can neither transmit nor
            // count a credit stall, so a port with nothing staged is a
            // no-op and the mask write-and-clear can be confined to the
            // staged list.
            if !reference && out.staged.is_empty() {
                continue;
            }
            let pc = &mut self.counters.ports[p];
            if reference {
                for (v, e) in eligible.iter_mut().enumerate() {
                    let ovc = &out.vcs[v];
                    let staged = ovc
                        .buf
                        .front()
                        .is_some_and(|(at, _)| now >= *at + Cycles(1));
                    *e = staged && ovc.credits > 0;
                    // A staged head that only lacks a credit is stalled by
                    // downstream flow control — the per-VC backpressure
                    // signal.
                    pc.credit_stalls[v] += u64::from(staged && ovc.credits == 0);
                }
            } else {
                for &v in &out.staged {
                    let ovc = &out.vcs[v];
                    let staged = ovc
                        .buf
                        .front()
                        .is_some_and(|(at, _)| now >= *at + Cycles(1));
                    eligible[v] = staged && ovc.credits > 0;
                    pc.credit_stalls[v] += u64::from(staged && ovc.credits == 0);
                }
            }
            let choice = out.sched.choose(&eligible);
            if !reference {
                for &v in &out.staged {
                    eligible[v] = false;
                }
            }
            let Some(v) = choice else {
                continue;
            };
            let (_, flit) = out.vcs[v].buf.pop_front().expect("eligible VC has a flit");
            if out.vcs[v].buf.is_empty() {
                sorted_remove(&mut out.staged, v);
            }
            self.resident -= 1;
            out.sched.on_service(v);
            out.vcs[v].credits -= 1;
            if flit.class.is_real_time() {
                pc.rt_flits += 1;
            } else {
                pc.be_flits += 1;
            }
            departures.push(Departure {
                port: PortId(p as u32),
                flit,
            });
        }
        if reference {
            eligible.fill(false);
        }
        self.out_mask = eligible;
    }

    /// Whether any flit is buffered anywhere in the router. O(1): a
    /// resident-flit counter is maintained at `receive_flit` and the
    /// stage-5 drain (crossbar moves are internal and net out to zero).
    pub fn has_work(&self) -> bool {
        self.resident > 0
    }

    /// Flits resident in the router (input buffers + output staging).
    pub fn resident_flits(&self) -> u64 {
        self.resident
    }

    /// Total flits that have traversed the crossbar.
    pub fn flits_crossed(&self) -> u64 {
        self.flits_crossed
    }

    /// Free credit count of output `(port, vc)` (for tests).
    pub fn credits_of(&self, port: PortId, vc: VcId) -> u32 {
        self.outputs[port.index()].vcs[vc.index()].credits
    }

    /// Buffered flit count of input `(port, vc)` (for tests).
    pub fn input_buffered(&self, port: PortId, vc: VcId) -> usize {
        self.inputs[port.index()].vcs[vc.index()].buf.len()
    }

    /// The granted `(output port, output VC)` of input `(port, vc)`, if a
    /// message currently holds one (audit/watchdog visibility).
    pub fn grant_of(&self, port: PortId, vc: VcId) -> Option<(PortId, VcId)> {
        self.inputs[port.index()].vcs[vc.index()]
            .grant
            .map(|g| (PortId(g.out_port as u32), VcId(g.out_vc as u32)))
    }

    /// The message currently owning output `(port, vc)`, if any
    /// (audit/watchdog visibility).
    pub fn output_owner(&self, port: PortId, vc: VcId) -> Option<MsgId> {
        self.outputs[port.index()].vcs[vc.index()].owner
    }

    /// Flits staged in output `(port, vc)`'s stage-5 buffer
    /// (audit/watchdog visibility).
    pub fn output_staged(&self, port: PortId, vc: VcId) -> usize {
        self.outputs[port.index()].vcs[vc.index()].buf.len()
    }

    /// The flit at the front of input `(port, vc)`'s buffer, if any
    /// (audit/watchdog visibility).
    pub fn input_head(&self, port: PortId, vc: VcId) -> Option<&Flit> {
        self.inputs[port.index()].vcs[vc.index()].buf.head()
    }

    /// The class split of this router's VCs.
    pub fn partition(&self) -> &VcPartition {
        &self.partition
    }

    /// Audit pass over router-local invariants, filing violations into
    /// `log`:
    ///
    /// * every input and output VC buffer holds a well-formed run of worms
    ///   (head→body→tail, no interleaving);
    /// * the per-flit arrival bookkeeping stays parallel to the buffer;
    /// * no output staging buffer exceeds its configured capacity;
    /// * every input-VC grant points at an output VC owned by the granted
    ///   message;
    /// * the incrementally maintained active sets (pending heads, granted
    ///   connections, staged output VCs, resident-flit counter) agree with
    ///   the buffer state they summarize.
    ///
    /// Credit conservation needs both link endpoints, so the network-level
    /// audit checks it; see `Network::audit_now`.
    pub fn audit(&self, now: Cycles, log: &mut netsim::audit::AuditLog) {
        use netsim::audit::{Violation, ViolationKind};
        let router = Some(self.id.get());
        for (p, ip) in self.inputs.iter().enumerate() {
            for (v, ivc) in ip.vcs.iter().enumerate() {
                if let Some(detail) = flitnet::worm_order_violation(ivc.buf.iter()) {
                    log.record(Violation {
                        cycle: now.get(),
                        router,
                        port: p as u32,
                        vc: v as u32,
                        kind: ViolationKind::WormOrder,
                        detail,
                    });
                }
                if ivc.arrivals.len() != ivc.buf.len() {
                    log.record(Violation {
                        cycle: now.get(),
                        router,
                        port: p as u32,
                        vc: v as u32,
                        kind: ViolationKind::FlitConservation,
                        detail: format!(
                            "arrival bookkeeping out of step: {} arrivals for {} buffered flits",
                            ivc.arrivals.len(),
                            ivc.buf.len()
                        ),
                    });
                }
                if let Some(grant) = ivc.grant {
                    let owner = self.outputs[grant.out_port].vcs[grant.out_vc].owner;
                    let held_by = ivc.buf.head().map(|f| f.msg);
                    let mismatch = match (owner, held_by) {
                        (None, _) => Some("granted output VC has no owner".to_string()),
                        (Some(o), Some(h)) if o != h => Some(format!(
                            "granted output VC owned by msg {o} but input head is msg {h}"
                        )),
                        _ => None,
                    };
                    if let Some(detail) = mismatch {
                        log.record(Violation {
                            cycle: now.get(),
                            router,
                            port: p as u32,
                            vc: v as u32,
                            kind: ViolationKind::GrantWithoutOwner,
                            detail,
                        });
                    }
                }
            }
        }
        for (p, op) in self.outputs.iter().enumerate() {
            for (v, ovc) in op.vcs.iter().enumerate() {
                if ovc.buf.len() > ovc.cap {
                    log.record(Violation {
                        cycle: now.get(),
                        router,
                        port: p as u32,
                        vc: v as u32,
                        kind: ViolationKind::StagingOverflow,
                        detail: format!(
                            "{} staged flits in a {}-slot buffer",
                            ovc.buf.len(),
                            ovc.cap
                        ),
                    });
                }
                if let Some(detail) = flitnet::worm_order_violation(ovc.buf.iter().map(|(_, f)| f))
                {
                    log.record(Violation {
                        cycle: now.get(),
                        router,
                        port: p as u32,
                        vc: v as u32,
                        kind: ViolationKind::WormOrder,
                        detail,
                    });
                }
            }
        }
        self.audit_active_sets(now, log);
    }

    /// Audit sub-pass: every active set must equal the full-scan
    /// recomputation of the predicate it summarizes.
    fn audit_active_sets(&self, now: Cycles, log: &mut netsim::audit::AuditLog) {
        use netsim::audit::{Violation, ViolationKind};
        let router = Some(self.id.get());
        let m = self.cfg.vcs_per_pc() as usize;
        let mut desync = |p: usize, v: usize, detail: String| {
            log.record(Violation {
                cycle: now.get(),
                router,
                port: p as u32,
                vc: v as u32,
                kind: ViolationKind::ActiveSetDesync,
                detail,
            });
        };
        let mut resident = 0u64;
        for (p, ip) in self.inputs.iter().enumerate() {
            let granted: Vec<usize> = (0..m).filter(|&v| ip.vcs[v].grant.is_some()).collect();
            if granted != ip.granted {
                desync(
                    p,
                    0,
                    format!(
                        "granted list {:?} but grants held by {granted:?}",
                        ip.granted
                    ),
                );
            }
            for (v, ivc) in ip.vcs.iter().enumerate() {
                resident += ivc.buf.len() as u64;
                let idx = p * m + v;
                let should_pend = ivc.grant.is_none() && !ivc.buf.is_empty();
                if self.pending_mask[idx] != should_pend {
                    desync(
                        p,
                        v,
                        format!(
                            "pending mask {} but slot {} a pending head",
                            self.pending_mask[idx],
                            if should_pend { "is" } else { "is not" }
                        ),
                    );
                }
            }
        }
        let pending_ok = self.pending.windows(2).all(|w| w[0] < w[1])
            && self.pending.len() == self.pending_mask.iter().filter(|&&b| b).count()
            && self.pending.iter().all(|&i| self.pending_mask[i]);
        if !pending_ok {
            desync(0, 0, format!("pending list {:?} out of step", self.pending));
        }
        for (p, op) in self.outputs.iter().enumerate() {
            let staged: Vec<usize> = (0..m).filter(|&v| !op.vcs[v].buf.is_empty()).collect();
            if staged != op.staged {
                desync(
                    p,
                    0,
                    format!(
                        "staged list {:?} but non-empty staging buffers {staged:?}",
                        op.staged
                    ),
                );
            }
            resident += op.vcs.iter().map(|vc| vc.buf.len() as u64).sum::<u64>();
        }
        if resident != self.resident {
            desync(
                0,
                0,
                format!(
                    "resident counter {} but {resident} flits buffered",
                    self.resident
                ),
            );
        }
    }

    /// Serialises the router's mutable state into a snapshot: buffers,
    /// arrival bookkeeping, grants, owners, credits, schedulers, cursors
    /// and counters. The derived active sets (pending heads, granted
    /// connections, staged VCs, resident counter) are *not* written — they
    /// are pure functions of the buffer state (the exact predicates
    /// [`Router::audit`]'s `ActiveSetDesync` sweep re-derives) and are
    /// recomputed on load.
    pub fn save(&self, w: &mut netsim::snap::SnapWriter) {
        w.usize(self.arb_cursor);
        w.u64(self.flits_crossed);
        w.u64(self.diag.0);
        w.u64(self.diag.1);
        w.u64(self.diag.2);
        w.u64(self.counters.occupancy_samples);
        for pc in &self.counters.ports {
            w.u64(pc.rt_flits);
            w.u64(pc.be_flits);
            w.u64(pc.mux_conflicts);
            w.usize(pc.credit_stalls.len());
            for &s in &pc.credit_stalls {
                w.u64(s);
            }
            w.u64(pc.occupancy_flits);
        }
        for ip in &self.inputs {
            ip.sched.save(w);
            for ivc in &ip.vcs {
                ivc.buf.save(w);
                w.usize(ivc.arrivals.len());
                for &at in &ivc.arrivals {
                    w.u64(at.0);
                }
                w.option(ivc.grant, |w, g| {
                    w.usize(g.out_port);
                    w.usize(g.out_vc);
                    w.u64(g.ready_at.0);
                });
                w.option(ivc.head_seen_at, |w, at| w.u64(at.0));
            }
        }
        for op in &self.outputs {
            op.sched.save(w);
            for ovc in &op.vcs {
                w.usize(ovc.buf.len());
                for (at, f) in &ovc.buf {
                    w.u64(at.0);
                    f.save(w);
                }
                w.u32(ovc.credits);
                w.option(ovc.owner, |w, m| w.u64(m.0));
            }
        }
    }

    /// Restores state saved by [`Router::save`] into this
    /// freshly-constructed (empty) router, then recomputes the derived
    /// active sets from the restored buffers.
    ///
    /// # Errors
    ///
    /// Propagates snapshot decoding errors.
    ///
    /// # Panics
    ///
    /// Panics if the router already holds flits.
    pub fn load_into(
        &mut self,
        r: &mut netsim::snap::SnapReader<'_>,
    ) -> Result<(), netsim::snap::SnapError> {
        use netsim::snap::SnapError;
        assert_eq!(self.resident, 0, "restore target router must be empty");
        let m = self.cfg.vcs_per_pc() as usize;
        self.arb_cursor = r.usize()?;
        self.flits_crossed = r.u64()?;
        self.diag = (r.u64()?, r.u64()?, r.u64()?);
        self.counters.occupancy_samples = r.u64()?;
        for pc in &mut self.counters.ports {
            pc.rt_flits = r.u64()?;
            pc.be_flits = r.u64()?;
            pc.mux_conflicts = r.u64()?;
            if r.usize()? != pc.credit_stalls.len() {
                return Err(SnapError::BadValue("credit-stall lane count mismatch"));
            }
            for s in &mut pc.credit_stalls {
                *s = r.u64()?;
            }
            pc.occupancy_flits = r.u64()?;
        }
        for ip in &mut self.inputs {
            ip.sched.load_into(r)?;
            for ivc in &mut ip.vcs {
                ivc.buf.load_into(r)?;
                let n = r.usize()?;
                ivc.arrivals.clear();
                for _ in 0..n {
                    ivc.arrivals.push_back(Cycles(r.u64()?));
                }
                if ivc.arrivals.len() != ivc.buf.len() {
                    return Err(SnapError::BadValue("arrival bookkeeping mismatch"));
                }
                ivc.grant = r.option(|r| {
                    Ok(Grant {
                        out_port: r.usize()?,
                        out_vc: r.usize()?,
                        ready_at: Cycles(r.u64()?),
                    })
                })?;
                ivc.head_seen_at = r.option(|r| r.u64().map(Cycles))?;
            }
        }
        for op in &mut self.outputs {
            op.sched.load_into(r)?;
            for ovc in &mut op.vcs {
                let n = r.usize()?;
                ovc.buf.clear();
                for _ in 0..n {
                    let at = Cycles(r.u64()?);
                    ovc.buf.push_back((at, Flit::load(r)?));
                }
                ovc.credits = r.u32()?;
                ovc.owner = r.option(|r| r.u64().map(MsgId))?;
            }
        }
        // Recompute the derived active sets from the restored buffers —
        // the same predicates the ActiveSetDesync audit checks.
        let mut resident = 0u64;
        self.pending.clear();
        self.pending_mask.fill(false);
        for (p, ip) in self.inputs.iter_mut().enumerate() {
            ip.granted.clear();
            for (v, ivc) in ip.vcs.iter().enumerate() {
                resident += ivc.buf.len() as u64;
                if ivc.grant.is_some() {
                    ip.granted.push(v);
                } else if !ivc.buf.is_empty() {
                    let idx = p * m + v;
                    self.pending_mask[idx] = true;
                    self.pending.push(idx);
                }
            }
        }
        for op in &mut self.outputs {
            op.staged.clear();
            for (v, ovc) in op.vcs.iter().enumerate() {
                resident += ovc.buf.len() as u64;
                if !ovc.buf.is_empty() {
                    op.staged.push(v);
                }
            }
        }
        self.resident = resident;
        Ok(())
    }

    /// Prints a human-readable dump of every VC's state (diagnostics).
    pub fn debug_dump(&self) {
        for (p, ip) in self.inputs.iter().enumerate() {
            for (v, vc) in ip.vcs.iter().enumerate() {
                if vc.buf.is_empty() {
                    continue;
                }
                let head = vc.buf.head().expect("non-empty");
                println!(
                    "  in p{p} v{v}: len={:<2} head={:?} {:?} granted={} ",
                    vc.buf.len(),
                    head.kind,
                    head.class,
                    vc.grant.is_some(),
                );
            }
        }
        for (p, op) in self.outputs.iter().enumerate() {
            for (v, vc) in op.vcs.iter().enumerate() {
                if vc.owner.is_none() && vc.buf.is_empty() {
                    continue;
                }
                println!(
                    "  out p{p} v{v}: staged={} owner={:?} credits={}",
                    vc.buf.len(),
                    vc.owner,
                    vc.credits
                );
            }
        }
    }

    /// Counts buffered flits `(real_time, best_effort)` across all input
    /// and output buffers (diagnostics).
    pub fn occupancy_by_class(&self) -> (usize, usize) {
        let mut rt = 0;
        let mut be = 0;
        for ip in &self.inputs {
            for vc in &ip.vcs {
                for f in vc.buf.iter() {
                    if f.class.is_real_time() {
                        rt += 1;
                    } else {
                        be += 1;
                    }
                }
            }
        }
        for op in &self.outputs {
            for vc in &op.vcs {
                for (_, f) in &vc.buf {
                    if f.class.is_real_time() {
                        rt += 1;
                    } else {
                        be += 1;
                    }
                }
            }
        }
        (rt, be)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flitnet::{FlitKind, FrameId, MsgId, NodeId, StreamId, TrafficClass};

    fn msg_flits(msg: u64, len: u32, dest: u32, vc: u32, vtick: f64) -> Vec<Flit> {
        let template = Flit {
            kind: FlitKind::Head,
            stream: StreamId(0),
            msg: MsgId(msg),
            frame: FrameId(0),
            seq_in_msg: 0,
            msg_len: len,
            msg_seq_in_frame: 0,
            msgs_in_frame: 1,
            dest: NodeId(dest),
            vc: VcId(vc),
            out_vc: VcId(vc),
            vtick,
            class: TrafficClass::Vbr,
            created_at: Cycles(0),
        };
        Flit::flitify(template)
    }

    fn drive(router: &mut Router, now: Cycles) -> (Vec<CreditReturn>, Vec<Departure>) {
        // Route straight to the port matching the destination id.
        const PORTS: [PortId; 4] = [PortId(0), PortId(1), PortId(2), PortId(3)];
        let mut sink = netsim::telemetry::NoopSink;
        router.arbitrate(
            now,
            |f| (std::slice::from_ref(&PORTS[f.dest.index()]), VcSel::Any),
            &mut sink,
        );
        let mut credits = Vec::new();
        router.crossbar(now, &mut credits, &mut sink);
        let mut departs = Vec::new();
        router.output_stage(now, &mut departs);
        (credits, departs)
    }

    fn cfg() -> RouterConfig {
        RouterConfig::new(4)
    }

    fn new_router(cfg: &RouterConfig) -> Router {
        let mut r = Router::new(
            RouterId(0),
            4,
            cfg,
            VcPartition::all_real_time(cfg.vcs_per_pc()),
        );
        for p in 0..4 {
            for v in 0..cfg.vcs_per_pc() {
                r.init_credits(PortId(p), VcId(v), 1_000_000);
            }
        }
        r
    }

    #[test]
    fn single_message_flows_through_pipeline() {
        let mut r = new_router(&cfg());
        let flits = msg_flits(1, 3, 2, 0, 100.0);
        for (i, f) in flits.iter().enumerate() {
            r.receive_flit(Cycles(i as u64), PortId(0), *f);
        }
        let mut out = Vec::new();
        for t in 0..30u64 {
            let (_, d) = drive(&mut r, Cycles(t));
            out.extend(d);
        }
        assert_eq!(out.len(), 3);
        for d in &out {
            assert_eq!(d.port, PortId(2));
        }
        assert_eq!(out[0].flit.kind, FlitKind::Head);
        assert_eq!(out[2].flit.kind, FlitKind::Tail);
        assert!(!r.has_work());
        assert_eq!(r.flits_crossed(), 3);
    }

    #[test]
    fn head_takes_five_stage_latency() {
        let mut r = new_router(&cfg());
        let flits = msg_flits(1, 2, 3, 1, 100.0);
        r.receive_flit(Cycles(0), PortId(0), flits[0]);
        r.receive_flit(Cycles(1), PortId(0), flits[1]);
        let mut first_out = None;
        for t in 0..20u64 {
            let (_, d) = drive(&mut r, Cycles(t));
            if let Some(dep) = d.first() {
                first_out = Some((t, dep.flit.kind));
                break;
            }
        }
        let (t, kind) = first_out.expect("head must depart");
        assert_eq!(kind, FlitKind::Head);
        // Arrived at 0; stages: buffer(1) + route/arb(2) + xbar(1) +
        // output(1) = departs at cycle 5... allow exactly 5 here.
        assert_eq!(t, 5, "head departed at cycle {t}");
    }

    #[test]
    fn messages_serialize_when_only_one_vc_exists() {
        // With a single VC per channel, two messages to the same output
        // must serialize at message granularity (the VC is owned head to
        // tail).
        let c = RouterConfig::new(1);
        let mut r = Router::new(RouterId(0), 4, &c, VcPartition::all_real_time(1));
        for p in 0..4 {
            r.init_credits(PortId(p), VcId(0), 1_000_000);
        }
        for f in msg_flits(1, 3, 3, 0, 100.0) {
            r.receive_flit(Cycles(0), PortId(0), f);
        }
        for f in msg_flits(2, 3, 3, 0, 100.0) {
            r.receive_flit(Cycles(0), PortId(1), f);
        }
        let mut order = Vec::new();
        for t in 0..80u64 {
            let (_, d) = drive(&mut r, Cycles(t));
            for dep in d {
                order.push(dep.flit.msg);
            }
        }
        assert_eq!(order.len(), 6);
        // All three flits of one message before any flit of the other.
        assert_eq!(order[0], order[1]);
        assert_eq!(order[1], order[2]);
        assert_eq!(order[3], order[4]);
        assert_eq!(order[4], order[5]);
        assert_ne!(order[0], order[3]);
    }

    #[test]
    fn best_effort_is_confined_without_borrowing() {
        // 4 VCs, 2 real-time + 2 best-effort. A best-effort message whose
        // two class VCs are owned must wait, even while real-time VCs sit
        // free.
        let c = RouterConfig::new(4);
        let part = VcPartition::from_mix(4, 50.0, 50.0);
        let mut r = Router::new(RouterId(0), 4, &c, part);
        for p in 0..4 {
            for v in 0..4 {
                r.init_credits(PortId(p), VcId(v), 1_000_000);
            }
        }
        let be = |msg: u64, port: u32, vc: u32| {
            let mut flits = msg_flits(msg, 20, 3, vc, flitnet::BEST_EFFORT_VTICK);
            for f in &mut flits {
                f.class = TrafficClass::BestEffort;
            }
            let _ = port;
            flits
        };
        // Two long best-effort worms occupy the two BE VCs (2 and 3).
        for f in be(1, 0, 2) {
            r.receive_flit(Cycles(0), PortId(0), f);
        }
        for f in be(2, 1, 3) {
            r.receive_flit(Cycles(0), PortId(1), f);
        }
        // A third best-effort message has nowhere to go until one ends.
        for f in be(3, 2, 2) {
            r.receive_flit(Cycles(0), PortId(2), f);
        }
        let mut first_flit_at = std::collections::HashMap::new();
        let mut vcs_seen = std::collections::HashSet::new();
        for t in 0..300u64 {
            let (_, d) = drive(&mut r, Cycles(t));
            for dep in d {
                first_flit_at.entry(dep.flit.msg).or_insert(t);
                vcs_seen.insert(dep.flit.vc);
            }
        }
        // All three eventually flow, but only over the two best-effort
        // VCs — and therefore one worm had to wait for a VC to free.
        assert_eq!(first_flit_at.len(), 3);
        assert!(
            vcs_seen.iter().all(|vc| vc.get() >= 2),
            "confined to BE VCs: {vcs_seen:?}"
        );
        let latest = first_flit_at.values().max().copied().expect("three worms");
        assert!(
            latest > 20,
            "one BE worm must wait for a BE VC, latest start {latest}"
        );
    }

    #[test]
    fn borrowing_lets_best_effort_use_idle_real_time_vcs() {
        let c = RouterConfig::new(4).vc_borrowing(true);
        let part = VcPartition::from_mix(4, 50.0, 50.0);
        let mut r = Router::new(RouterId(0), 4, &c, part);
        for p in 0..4 {
            for v in 0..4 {
                r.init_credits(PortId(p), VcId(v), 1_000_000);
            }
        }
        let be = |msg: u64, vc: u32| {
            let mut flits = msg_flits(msg, 20, 3, vc, flitnet::BEST_EFFORT_VTICK);
            for f in &mut flits {
                f.class = TrafficClass::BestEffort;
            }
            flits
        };
        for f in be(1, 2) {
            r.receive_flit(Cycles(0), PortId(0), f);
        }
        for f in be(2, 3) {
            r.receive_flit(Cycles(0), PortId(1), f);
        }
        for f in be(3, 2) {
            r.receive_flit(Cycles(0), PortId(2), f);
        }
        // With borrowing, the third worm is granted an idle real-time VC
        // and departs interleaved with the other two.
        let mut vcs_seen = std::collections::HashSet::new();
        for t in 0..120u64 {
            let (_, d) = drive(&mut r, Cycles(t));
            for dep in d {
                vcs_seen.insert(dep.flit.vc);
            }
        }
        assert!(
            vcs_seen.iter().any(|vc| vc.get() < 2),
            "expected a borrowed real-time VC in {vcs_seen:?}"
        );
        assert_eq!(vcs_seen.len(), 3);
    }

    #[test]
    fn same_requested_vc_reallocates_dynamically() {
        // With several VCs available, a second message requesting an
        // owned output VC is steered to a free VC of the same class and
        // proceeds concurrently (dynamic VC allocation).
        let mut r = new_router(&cfg());
        for f in msg_flits(1, 10, 3, 0, 100.0) {
            r.receive_flit(Cycles(0), PortId(0), f);
        }
        for f in msg_flits(2, 10, 3, 0, 100.0) {
            r.receive_flit(Cycles(0), PortId(1), f);
        }
        let mut done_at = std::collections::HashMap::new();
        let mut vcs_seen = std::collections::HashSet::new();
        for t in 0..120u64 {
            let (_, d) = drive(&mut r, Cycles(t));
            for dep in d {
                vcs_seen.insert(dep.flit.vc);
                if dep.flit.kind.is_tail() {
                    done_at.insert(dep.flit.msg, t);
                }
            }
        }
        assert_eq!(done_at.len(), 2);
        assert_eq!(
            vcs_seen.len(),
            2,
            "two VCs must carry the worms: {vcs_seen:?}"
        );
        let t1 = done_at[&MsgId(1)];
        let t2 = done_at[&MsgId(2)];
        // Concurrent, interleaved on the output physical channel: the two
        // tails finish within a couple of flit times of each other.
        assert!(t1.abs_diff(t2) <= 4, "t1={t1} t2={t2}");
    }

    #[test]
    fn different_vcs_to_different_outputs_proceed_concurrently() {
        let mut r = new_router(&cfg());
        for f in msg_flits(1, 5, 2, 0, 100.0) {
            r.receive_flit(Cycles(0), PortId(0), f);
        }
        for f in msg_flits(2, 5, 3, 1, 100.0) {
            r.receive_flit(Cycles(0), PortId(1), f);
        }
        let mut done_at = std::collections::HashMap::new();
        for t in 0..60u64 {
            let (_, d) = drive(&mut r, Cycles(t));
            for dep in d {
                if dep.flit.kind.is_tail() {
                    done_at.insert(dep.flit.msg, t);
                }
            }
        }
        let t1 = done_at[&MsgId(1)];
        let t2 = done_at[&MsgId(2)];
        // Independent paths: finish within a cycle of each other.
        assert!(t1.abs_diff(t2) <= 1, "t1={t1} t2={t2}");
    }

    #[test]
    fn credits_block_transmission_until_returned() {
        let c = cfg();
        let mut r = Router::new(
            RouterId(0),
            4,
            &c,
            VcPartition::all_real_time(c.vcs_per_pc()),
        );
        // Only 2 credits on the output this message uses.
        r.init_credits(PortId(2), VcId(0), 2);
        for f in msg_flits(1, 5, 2, 0, 100.0) {
            r.receive_flit(Cycles(0), PortId(0), f);
        }
        let mut sent = 0;
        for t in 0..40u64 {
            let (_, d) = drive(&mut r, Cycles(t));
            sent += d.len();
        }
        assert_eq!(sent, 2, "only two credits were available");
        // Returning credits resumes the flow.
        r.receive_credit(PortId(2), VcId(0));
        r.receive_credit(PortId(2), VcId(0));
        r.receive_credit(PortId(2), VcId(0));
        for t in 40..80u64 {
            let (_, d) = drive(&mut r, Cycles(t));
            sent += d.len();
        }
        assert_eq!(sent, 5);
    }

    #[test]
    fn crossbar_returns_one_credit_per_moved_flit() {
        let mut r = new_router(&cfg());
        for f in msg_flits(1, 4, 1, 2, 100.0) {
            r.receive_flit(Cycles(0), PortId(3), f);
        }
        let mut credits = Vec::new();
        for t in 0..30u64 {
            let (c, _) = drive(&mut r, Cycles(t));
            credits.extend(c);
        }
        assert_eq!(credits.len(), 4);
        for c in &credits {
            assert_eq!(
                *c,
                CreditReturn {
                    port: PortId(3),
                    vc: VcId(2)
                }
            );
        }
    }

    #[test]
    fn full_crossbar_moves_multiple_vcs_of_one_port_per_cycle() {
        let c = RouterConfig::new(4).crossbar(CrossbarKind::Full);
        let mut r = Router::new(
            RouterId(0),
            4,
            &c,
            VcPartition::all_real_time(c.vcs_per_pc()),
        );
        for p in 0..4 {
            for v in 0..4 {
                r.init_credits(PortId(p), VcId(v), 1_000_000);
            }
        }
        // Two messages on the same input port, different VCs, different
        // outputs: with a full crossbar both can cross in the same cycle.
        for f in msg_flits(1, 10, 1, 0, 100.0) {
            r.receive_flit(Cycles(0), PortId(0), f);
        }
        for f in msg_flits(2, 10, 2, 1, 100.0) {
            r.receive_flit(Cycles(0), PortId(0), f);
        }
        let mut per_cycle_max = 0usize;
        let mut sink = netsim::telemetry::NoopSink;
        for t in 0..40u64 {
            const PORTS: [PortId; 4] = [PortId(0), PortId(1), PortId(2), PortId(3)];
            r.arbitrate(
                Cycles(t),
                |f| (std::slice::from_ref(&PORTS[f.dest.index()]), VcSel::Any),
                &mut sink,
            );
            let mut credits = Vec::new();
            r.crossbar(Cycles(t), &mut credits, &mut sink);
            per_cycle_max = per_cycle_max.max(credits.len());
            let mut departs = Vec::new();
            r.output_stage(Cycles(t), &mut departs);
        }
        assert_eq!(
            per_cycle_max, 2,
            "full crossbar should move both VCs at once"
        );
    }

    #[test]
    fn multiplexed_crossbar_moves_at_most_one_vc_per_input_port() {
        let mut r = new_router(&cfg());
        for f in msg_flits(1, 10, 1, 0, 100.0) {
            r.receive_flit(Cycles(0), PortId(0), f);
        }
        for f in msg_flits(2, 10, 2, 1, 100.0) {
            r.receive_flit(Cycles(0), PortId(0), f);
        }
        let mut sink = netsim::telemetry::NoopSink;
        for t in 0..60u64 {
            const PORTS: [PortId; 4] = [PortId(0), PortId(1), PortId(2), PortId(3)];
            r.arbitrate(
                Cycles(t),
                |f| (std::slice::from_ref(&PORTS[f.dest.index()]), VcSel::Any),
                &mut sink,
            );
            let mut credits = Vec::new();
            r.crossbar(Cycles(t), &mut credits, &mut sink);
            assert!(
                credits.len() <= 1,
                "muxed crossbar: one flit per input port"
            );
            let mut departs = Vec::new();
            r.output_stage(Cycles(t), &mut departs);
        }
    }

    #[test]
    fn fat_link_candidates_balance_by_load() {
        let mut r = new_router(&cfg());
        // Message 1 to port 2 (via candidate set {2, 3}).
        for f in msg_flits(1, 20, 0, 0, 100.0) {
            r.receive_flit(Cycles(0), PortId(0), f);
        }
        // Message 2, same candidate set, different input port & VC.
        for f in msg_flits(2, 20, 0, 1, 100.0) {
            r.receive_flit(Cycles(0), PortId(1), f);
        }
        let mut used_ports = std::collections::HashSet::new();
        let mut sink = netsim::telemetry::NoopSink;
        for t in 0..100u64 {
            const FAT: [PortId; 2] = [PortId(2), PortId(3)];
            r.arbitrate(Cycles(t), |_| (&FAT[..], VcSel::Any), &mut sink);
            let mut credits = Vec::new();
            r.crossbar(Cycles(t), &mut credits, &mut sink);
            let mut departs = Vec::new();
            r.output_stage(Cycles(t), &mut departs);
            for d in departs {
                used_ports.insert(d.port);
            }
        }
        // The two concurrent messages must spread across the fat bundle —
        // the multiplexed crossbar holds an output per message, so the
        // second message is steered to the free parallel link.
        assert_eq!(used_ports.len(), 2, "used {used_ports:?}");
    }

    #[test]
    fn counters_track_forwarded_flits_and_mux_conflicts() {
        let mut r = new_router(&cfg());
        // Two worms on the same input port, different VCs: the input mux
        // serves one flit per cycle, so the other VC loses — a conflict.
        for f in msg_flits(1, 10, 1, 0, 100.0) {
            r.receive_flit(Cycles(0), PortId(0), f);
        }
        for f in msg_flits(2, 10, 2, 1, 100.0) {
            r.receive_flit(Cycles(0), PortId(0), f);
        }
        for t in 0..80u64 {
            drive(&mut r, Cycles(t));
        }
        let totals = r.counters().totals();
        assert_eq!(totals.rt_flits, 20, "all 20 VBR flits forwarded");
        assert_eq!(totals.be_flits, 0);
        assert!(
            r.counters().ports[0].mux_conflicts > 0,
            "competing VCs on port 0 must register conflicts"
        );
        // Cycle 0 is a sampling cycle and the buffers held flits then.
        assert!(totals.occupancy_samples > 0);
        assert!(totals.occupancy_flits > 0);
    }

    #[test]
    fn counters_record_credit_stall_cycles() {
        let c = cfg();
        let mut r = Router::new(
            RouterId(0),
            4,
            &c,
            VcPartition::all_real_time(c.vcs_per_pc()),
        );
        // Only 2 credits: the worm's remaining flits stall at the output.
        r.init_credits(PortId(2), VcId(0), 2);
        for f in msg_flits(1, 5, 2, 0, 100.0) {
            r.receive_flit(Cycles(0), PortId(0), f);
        }
        for t in 0..40u64 {
            drive(&mut r, Cycles(t));
        }
        let stalls = r.counters().ports[2].credit_stalls[0];
        assert!(stalls > 10, "starved output VC must count stalls: {stalls}");
        assert_eq!(r.counters().totals().credit_stall_cycles, stalls);
    }

    #[test]
    fn tracing_emits_route_and_arbitrate_events() {
        use netsim::telemetry::{JsonlSink, TelemetrySink as _};
        let mut r = new_router(&cfg());
        r.set_tracing(true);
        let mut sink = JsonlSink::new();
        for f in msg_flits(1, 3, 2, 0, 100.0) {
            r.receive_flit(Cycles(0), PortId(0), f);
        }
        const PORTS: [PortId; 4] = [PortId(0), PortId(1), PortId(2), PortId(3)];
        for t in 0..30u64 {
            let now = Cycles(t);
            r.arbitrate(
                now,
                |f| (std::slice::from_ref(&PORTS[f.dest.index()]), VcSel::Any),
                &mut sink,
            );
            let mut credits = Vec::new();
            r.crossbar(now, &mut credits, &mut sink);
            let mut departs = Vec::new();
            r.output_stage(now, &mut departs);
        }
        assert!(sink.is_enabled());
        let text = String::from_utf8(sink.into_bytes()).expect("utf8");
        // One route grant for the message, one arbitrate event per flit.
        assert_eq!(text.matches("\"event\":\"route\"").count(), 1);
        assert_eq!(text.matches("\"event\":\"arbitrate\"").count(), 3);
        assert!(text.contains("\"router\":0"));
    }

    #[test]
    fn disabled_tracing_emits_nothing() {
        use netsim::telemetry::JsonlSink;
        let mut r = new_router(&cfg());
        // Tracing defaults to off even with an enabled sink wired in.
        let mut sink = JsonlSink::new();
        for f in msg_flits(1, 3, 2, 0, 100.0) {
            r.receive_flit(Cycles(0), PortId(0), f);
        }
        const PORTS: [PortId; 4] = [PortId(0), PortId(1), PortId(2), PortId(3)];
        for t in 0..30u64 {
            let now = Cycles(t);
            r.arbitrate(
                now,
                |f| (std::slice::from_ref(&PORTS[f.dest.index()]), VcSel::Any),
                &mut sink,
            );
            let mut credits = Vec::new();
            r.crossbar(now, &mut credits, &mut sink);
            let mut departs = Vec::new();
            r.output_stage(now, &mut departs);
        }
        assert_eq!(sink.events(), 0);
    }

    /// Drives one router whose route closure pins every hop to `sel`.
    fn drive_sel(r: &mut Router, now: Cycles, sel: VcSel) -> Vec<Departure> {
        const PORTS: [PortId; 4] = [PortId(0), PortId(1), PortId(2), PortId(3)];
        let mut sink = netsim::telemetry::NoopSink;
        r.arbitrate(
            now,
            move |f| (std::slice::from_ref(&PORTS[f.dest.index()]), sel),
            &mut sink,
        );
        let mut credits = Vec::new();
        r.crossbar(now, &mut credits, &mut sink);
        let mut departs = Vec::new();
        r.output_stage(now, &mut departs);
        departs
    }

    #[test]
    fn dateline_sel_confines_output_vc_allocation() {
        // 4 all-real-time VCs: Lower = {0, 1}, Upper = {2, 3}. A head
        // requesting VC 0 under an Upper restriction must be re-allocated
        // into the upper half; under Lower it keeps its preference.
        for (sel, allowed) in [(VcSel::Upper, [2u32, 3]), (VcSel::Lower, [0u32, 1])] {
            let mut r = new_router(&cfg());
            for f in msg_flits(1, 3, 2, 0, 100.0) {
                r.receive_flit(Cycles(0), PortId(0), f);
            }
            let mut seen = Vec::new();
            for t in 0..30u64 {
                for d in drive_sel(&mut r, Cycles(t), sel) {
                    seen.push(d.flit.vc.get());
                }
            }
            assert_eq!(seen.len(), 3);
            assert!(
                seen.iter().all(|vc| allowed.contains(vc)),
                "{sel:?} must confine to {allowed:?}, got {seen:?}"
            );
        }
    }

    #[test]
    fn dateline_sel_blocks_when_its_half_is_owned() {
        // Both upper-half VCs are owned by in-flight worms; an Upper-
        // restricted head must wait even though lower VCs are free — and
        // even with borrowing enabled, since the borrowing fallback also
        // honours the restriction.
        let c = cfg().vc_borrowing(true);
        let mut r = new_router(&c);
        // Two long worms to port 2 occupy VCs 2 and 3 (Upper).
        for f in msg_flits(1, 18, 2, 2, 100.0) {
            r.receive_flit(Cycles(0), PortId(0), f);
        }
        for f in msg_flits(2, 18, 2, 3, 100.0) {
            r.receive_flit(Cycles(0), PortId(1), f);
        }
        let mut msg3_first = None;
        for t in 0..200u64 {
            if t == 6 {
                // Both upper VCs are owned by now; a third worm,
                // Upper-restricted and requesting VC 2, must block.
                for f in msg_flits(3, 3, 2, 2, 100.0) {
                    r.receive_flit(Cycles(t), PortId(3), f);
                }
            }
            for d in drive_sel(&mut r, Cycles(t), VcSel::Upper) {
                if d.flit.msg == MsgId(3) && msg3_first.is_none() {
                    msg3_first = Some((t, d.flit.vc.get()));
                }
            }
        }
        let (t, vc) = msg3_first.expect("the restricted worm eventually departs");
        assert!(
            t > 18,
            "msg 3 must wait for an upper VC to free, departed at {t}"
        );
        assert!(vc >= 2, "msg 3 must use an upper VC, used {vc}");
    }
}
