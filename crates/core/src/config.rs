//! Router configuration.

use std::fmt;

/// Crossbar implementation style (paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CrossbarKind {
    /// `n×n` crossbar with a multiplexer at each input port sharing the
    /// crossbar input among that port's VCs. Cheap, but introduces a new
    /// contention point (the paper's point "A") — which is exactly where
    /// MediaWorm runs Virtual Clock.
    #[default]
    Multiplexed,
    /// `(n·m)×(n·m)` crossbar with one port per VC. No input multiplexer;
    /// the only shared resource is the output physical channel, so Virtual
    /// Clock runs at the VC multiplexer (point "C").
    Full,
}

/// Multiplexer scheduling discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// Rate-based Virtual Clock (Zhang 1991) — the MediaWorm scheduler.
    #[default]
    VirtualClock,
    /// First-in-first-out by arrival time — the conventional wormhole
    /// router baseline of Fig. 3.
    Fifo,
    /// Rotating priority — the other rate-agnostic scheduler the paper
    /// mentions (§6); used in the scheduling ablation.
    RoundRobin,
    /// Weighted Fair Queueing: per-connection finish times against a
    /// GPS-approximating virtual time that advances at `1/Σ weights` of
    /// the backlogged VCs, with each connection's Vtick as its inverse
    /// weight (Demers/Keshav/Shenker; PGPS).
    Wfq,
    /// Deficit Round Robin: per-VC deficit counters replenished by a
    /// fixed quantum each round (Shreedhar & Varghese). Rate-agnostic —
    /// all backlogged VCs get equal long-run shares.
    Drr,
    /// Self-Clocked Fair Queueing: like WFQ, but the virtual time is the
    /// service tag of the flit currently/last in service (Golestani),
    /// which avoids tracking the GPS reference system.
    Scfq,
}

/// Where the QoS scheduler is applied in a *multiplexed*-crossbar router.
///
/// The paper argues (§3.3) for the crossbar input multiplexer (point A)
/// over the VC output multiplexer (point C); `SchedPoint::VcMux` lets the
/// ablation benchmark quantify that argument. Full-crossbar routers always
/// schedule at the VC multiplexer (they have no input multiplexer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedPoint {
    /// The crossbar input multiplexer — the paper's choice.
    #[default]
    CrossbarInput,
    /// The output VC multiplexer.
    VcMux,
}

/// Complete configuration of a MediaWorm router.
///
/// # Example
///
/// ```
/// use mediaworm::{CrossbarKind, RouterConfig, SchedulerKind};
///
/// // The paper's Fig. 6 "4 VCs with full crossbar" configuration:
/// let cfg = RouterConfig::new(4)
///     .crossbar(CrossbarKind::Full)
///     .scheduler(SchedulerKind::VirtualClock);
/// assert_eq!(cfg.vcs_per_pc(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouterConfig {
    vcs_per_pc: u32,
    buf_flits: u32,
    out_buf_flits: u32,
    crossbar: CrossbarKind,
    scheduler: SchedulerKind,
    sched_point: SchedPoint,
    link_latency: u32,
    vc_borrowing: bool,
}

impl RouterConfig {
    /// Creates a configuration with `vcs_per_pc` virtual channels per
    /// physical channel and the paper's Table 1 defaults elsewhere:
    /// 20-flit input buffers, multiplexed crossbar, Virtual Clock at the
    /// crossbar input multiplexer, 1-cycle links.
    ///
    /// # Panics
    ///
    /// Panics if `vcs_per_pc == 0`.
    pub fn new(vcs_per_pc: u32) -> RouterConfig {
        assert!(vcs_per_pc > 0, "need at least one VC per physical channel");
        RouterConfig {
            vcs_per_pc,
            buf_flits: 20,
            out_buf_flits: 20,
            crossbar: CrossbarKind::Multiplexed,
            scheduler: SchedulerKind::VirtualClock,
            sched_point: SchedPoint::CrossbarInput,
            link_latency: 1,
            vc_borrowing: false,
        }
    }

    /// Sets the input VC buffer depth in flits.
    ///
    /// # Panics
    ///
    /// Panics if `flits == 0`.
    pub fn buf_flits(mut self, flits: u32) -> RouterConfig {
        assert!(flits > 0, "buffers must hold at least one flit");
        self.buf_flits = flits;
        self
    }

    /// Sets the output (stage-5) staging buffer depth in flits.
    ///
    /// # Panics
    ///
    /// Panics if `flits == 0`.
    pub fn out_buf_flits(mut self, flits: u32) -> RouterConfig {
        assert!(flits > 0, "buffers must hold at least one flit");
        self.out_buf_flits = flits;
        self
    }

    /// Chooses the crossbar style.
    pub fn crossbar(mut self, kind: CrossbarKind) -> RouterConfig {
        self.crossbar = kind;
        self
    }

    /// Chooses the QoS scheduler.
    pub fn scheduler(mut self, kind: SchedulerKind) -> RouterConfig {
        self.scheduler = kind;
        self
    }

    /// Forces the QoS scheduling point (multiplexed crossbars only; full
    /// crossbars always schedule at the VC multiplexer).
    pub fn sched_point(mut self, point: SchedPoint) -> RouterConfig {
        self.sched_point = point;
        self
    }

    /// Enables dynamic VC borrowing: when a message finds no free output
    /// VC in its own class partition, it may take a free VC of the other
    /// class. This implements the paper's §6 future-work direction of
    /// "dynamic mixes with dynamically partitioned resources" — the
    /// static x:y split remains the *preference*, but idle capacity is
    /// never stranded.
    pub fn vc_borrowing(mut self, enabled: bool) -> RouterConfig {
        self.vc_borrowing = enabled;
        self
    }

    /// Sets the link latency in cycles.
    ///
    /// # Panics
    ///
    /// Panics if `cycles == 0`.
    pub fn link_latency(mut self, cycles: u32) -> RouterConfig {
        assert!(cycles > 0, "links have at least one cycle of latency");
        self.link_latency = cycles;
        self
    }

    /// Virtual channels per physical channel.
    pub fn vcs_per_pc(&self) -> u32 {
        self.vcs_per_pc
    }

    /// Input VC buffer depth in flits.
    pub fn buf_flits_value(&self) -> u32 {
        self.buf_flits
    }

    /// Output staging buffer depth in flits.
    pub fn out_buf_flits_value(&self) -> u32 {
        self.out_buf_flits
    }

    /// The crossbar style.
    pub fn crossbar_kind(&self) -> CrossbarKind {
        self.crossbar
    }

    /// The QoS scheduler.
    pub fn scheduler_kind(&self) -> SchedulerKind {
        self.scheduler
    }

    /// The effective QoS scheduling point: the configured point for a
    /// multiplexed crossbar, always the VC multiplexer for a full crossbar.
    pub fn effective_sched_point(&self) -> SchedPoint {
        match self.crossbar {
            CrossbarKind::Multiplexed => self.sched_point,
            CrossbarKind::Full => SchedPoint::VcMux,
        }
    }

    /// Whether dynamic VC borrowing is enabled.
    pub fn vc_borrowing_enabled(&self) -> bool {
        self.vc_borrowing
    }

    /// Link latency in cycles.
    pub fn link_latency_value(&self) -> u32 {
        self.link_latency
    }
}

impl Default for RouterConfig {
    /// The paper's canonical configuration: 16 VCs, multiplexed crossbar,
    /// Virtual Clock at the crossbar input multiplexer.
    fn default() -> RouterConfig {
        RouterConfig::new(16)
    }
}

impl fmt::Display for RouterConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} crossbar, {} VCs/PC, {:?} scheduling at {:?}",
            self.crossbar,
            self.vcs_per_pc,
            self.scheduler,
            self.effective_sched_point()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_table1() {
        let cfg = RouterConfig::default();
        assert_eq!(cfg.vcs_per_pc(), 16);
        assert_eq!(cfg.buf_flits_value(), 20);
        assert_eq!(cfg.crossbar_kind(), CrossbarKind::Multiplexed);
        assert_eq!(cfg.scheduler_kind(), SchedulerKind::VirtualClock);
        assert_eq!(cfg.effective_sched_point(), SchedPoint::CrossbarInput);
    }

    #[test]
    fn full_crossbar_forces_vc_mux_scheduling() {
        let cfg = RouterConfig::new(4)
            .crossbar(CrossbarKind::Full)
            .sched_point(SchedPoint::CrossbarInput);
        assert_eq!(cfg.effective_sched_point(), SchedPoint::VcMux);
    }

    #[test]
    fn builder_chains() {
        let cfg = RouterConfig::new(8)
            .buf_flits(10)
            .out_buf_flits(2)
            .scheduler(SchedulerKind::Fifo)
            .link_latency(3);
        assert_eq!(cfg.buf_flits_value(), 10);
        assert_eq!(cfg.out_buf_flits_value(), 2);
        assert_eq!(cfg.scheduler_kind(), SchedulerKind::Fifo);
        assert_eq!(cfg.link_latency_value(), 3);
    }

    #[test]
    fn vc_borrowing_defaults_off() {
        assert!(!RouterConfig::default().vc_borrowing_enabled());
        assert!(RouterConfig::new(8)
            .vc_borrowing(true)
            .vc_borrowing_enabled());
    }

    #[test]
    fn display_mentions_key_facts() {
        let s = RouterConfig::default().to_string();
        assert!(s.contains("16 VCs"));
        assert!(s.contains("VirtualClock"));
    }

    #[test]
    #[should_panic(expected = "at least one VC")]
    fn zero_vcs_panics() {
        let _ = RouterConfig::new(0);
    }
}
