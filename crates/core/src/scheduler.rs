//! Multiplexer schedulers: Virtual Clock, FIFO, round-robin, WFQ, DRR
//! and SCFQ.
//!
//! A [`MuxScheduler`] arbitrates one multiplexing point — a crossbar input
//! multiplexer, an output VC multiplexer, or a network-interface injection
//! multiplexer — among the virtual channels feeding it.
//!
//! For **Virtual Clock** (paper §3.3), each VC keeps two registers:
//! `auxVC` (the connection's virtual clock) and `Vtick` (the negotiated
//! inter-flit service interval, carried by each message's head flit). On
//! every flit arrival the flit is stamped with
//! `auxVC ← max(Clock, auxVC) + Vtick`, and the multiplexer serves, each
//! cycle, the eligible VC whose head flit has the lowest stamp. The
//! algorithm is work-conserving: stamps order competing flits but never
//! delay a lone one.
//!
//! **FIFO** stamps flits with their arrival cycle (the conventional
//! wormhole router of Fig. 3); **round-robin** rotates among eligible VCs.
//!
//! The fair-queueing spread around that axis (ROADMAP item 2):
//!
//! * **WFQ** stamps each flit with a GPS-approximated finish time
//!   `F ← max(F_prev, V(now)) + Vtick`, where the scheduler-global
//!   virtual time `V` advances at rate `1/Σ wᵢ` over the *backlogged*
//!   VCs' weights `wᵢ = 1/Vtickᵢ`. Unlike Virtual Clock, an idle
//!   connection earns no credit while others are backlogged — `V` stalls
//!   rather than tracking the wall clock.
//! * **SCFQ** (self-clocked fair queueing) replaces the GPS reference
//!   with the tag of the flit most recently selected for service:
//!   `F ← max(F_prev, v_served) + Vtick`. Cheaper than WFQ and immune to
//!   real-clock drift, at the cost of looser delay bounds.
//! * **DRR** keeps a per-VC deficit counter topped up by a fixed
//!   [`DRR_QUANTUM`] each round; a VC may send while its deficit covers
//!   a flit. Rate-agnostic: equal quanta mean equal long-run shares
//!   regardless of Vtick.
//!
//! All stamp/register updates saturate at [`STAMP_SATURATION`] so
//! best-effort traffic (whose `Vtick` is `1e12`) cannot push a register
//! past the f64 integer-precision cliff at 2⁵³, where stamp comparisons
//! and tie rotation would silently degrade.

use std::collections::VecDeque;

use flitnet::{Flit, StreamId};
use netsim::snap::{SnapError, SnapReader, SnapWriter};
use netsim::Cycles;

use crate::config::SchedulerKind;

/// Ceiling applied to every virtual-clock-style register and stamp.
///
/// Best-effort flits carry `Vtick = 1e12` ([`flitnet::BEST_EFFORT_VTICK`]),
/// so a backlogged best-effort VC adds `1e12` per flit to its register.
/// f64 loses integer precision at 2⁵³ ≈ 9.0e15; once two stamps round to
/// the same value their *order* information is gone and tie rotation is
/// all that separates them. Saturating well below the cliff (≈ 1000
/// best-effort flits) keeps real-time stamps (Vticks of ~10–100 cycles)
/// exactly representable when added on top, and turns the best-effort
/// tail into an explicit, tested tie-rotation regime instead of a silent
/// precision failure.
pub const STAMP_SATURATION: f64 = 1e15;

/// DRR quantum in flits credited to every backlogged VC per round.
///
/// Small enough to bound burst length at one message fragment, large
/// enough that the round-refill bookkeeping stays off the per-flit path.
pub const DRR_QUANTUM: f64 = 4.0;

/// Per-VC scheduler state.
#[derive(Debug, Clone, Default)]
struct VcState {
    /// Pending stamps, parallel to the flits queued at this mux point.
    stamps: VecDeque<f64>,
    /// Memoized copy of `stamps.front()`: `choose` scans every eligible
    /// VC every cycle, and a plain field load beats a `VecDeque` front
    /// access in that loop. Maintained on arrival (first flit) and
    /// service (next flit); meaningless while `stamps` is empty.
    head_stamp: f64,
    /// The connection's virtual clock register. Virtual Clock uses it as
    /// Zhang's `auxVC`; WFQ and SCFQ reuse it as the connection's last
    /// finish tag (same lifecycle: reset when the VC is recycled to a new
    /// stream).
    aux_vc: f64,
    /// DRR deficit counter in flits. Untouched by the other disciplines.
    deficit: f64,
    /// The Vtick of the message currently using this VC (set by its head
    /// flit, discarded — i.e. simply overwritten — after the tail).
    vtick: f64,
    /// The stream (connection) the VC currently serves. `auxVC` is a
    /// per-connection register, so it is reset when this changes.
    stream: Option<StreamId>,
}

/// A scheduler for one multiplexing point with a fixed number of VCs.
///
/// The owner mirrors its flit queues into the scheduler: call
/// [`MuxScheduler::on_arrival`] when a flit joins VC `vc`'s queue,
/// [`MuxScheduler::choose`] each cycle with the eligibility mask, and
/// [`MuxScheduler::on_service`] when the chosen VC's head flit departs.
///
/// # Example
///
/// ```
/// use mediaworm::{MuxScheduler, SchedulerKind};
/// use netsim::Cycles;
/// # use flitnet::{Flit, FlitKind, TrafficClass, MsgId, NodeId, StreamId, FrameId, VcId};
/// # fn head(vtick: f64) -> Flit {
/// #     Flit { kind: FlitKind::Head, stream: StreamId(0), msg: MsgId(0), frame: FrameId(0),
/// #         seq_in_msg: 0, msg_len: 2, msg_seq_in_frame: 0, msgs_in_frame: 1,
/// #         dest: NodeId(0), vc: VcId(0), out_vc: VcId(0), vtick, class: TrafficClass::Vbr,
/// #         created_at: Cycles(0) }
/// # }
/// let mut s = MuxScheduler::new(SchedulerKind::VirtualClock, 2);
/// // VC 0: a low-rate stream (large Vtick). VC 1: a high-rate stream.
/// s.on_arrival(0, Cycles(0), &head(1000.0));
/// s.on_arrival(1, Cycles(0), &head(10.0));
/// // The high-rate stream's flit has the earlier virtual-clock stamp.
/// assert_eq!(s.choose(&[true, true]), Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct MuxScheduler {
    kind: SchedulerKind,
    vcs: Vec<VcState>,
    rr_cursor: usize,
    /// WFQ's GPS-approximated virtual time, advanced lazily on arrivals.
    v_time: f64,
    /// The cycle `v_time` was last advanced to (WFQ).
    v_cycle: u64,
    /// SCFQ's virtual time: the stamp of the flit last selected for
    /// service.
    v_served: f64,
}

impl MuxScheduler {
    /// Creates a scheduler for `n_vcs` virtual channels.
    ///
    /// # Panics
    ///
    /// Panics if `n_vcs == 0`.
    pub fn new(kind: SchedulerKind, n_vcs: usize) -> MuxScheduler {
        assert!(n_vcs > 0, "a mux point needs at least one VC");
        MuxScheduler {
            kind,
            vcs: vec![VcState::default(); n_vcs],
            rr_cursor: 0,
            v_time: 0.0,
            v_cycle: 0,
            v_served: 0.0,
        }
    }

    /// The scheduling discipline.
    pub fn kind(&self) -> SchedulerKind {
        self.kind
    }

    /// Number of VCs at this mux point.
    pub fn vc_count(&self) -> usize {
        self.vcs.len()
    }

    /// Records a flit joining VC `vc`'s queue at cycle `now` and stamps it.
    ///
    /// # Panics
    ///
    /// Panics if `vc` is out of range.
    pub fn on_arrival(&mut self, vc: usize, now: Cycles, flit: &Flit) {
        if self.kind == SchedulerKind::Wfq {
            self.advance_virtual_time(now);
        }
        let v_time = self.v_time;
        let v_served = self.v_served;
        let state = &mut self.vcs[vc];
        if flit.kind.is_head() {
            state.vtick = flit.vtick;
            // Zhang's auxVC is a per-connection register (WFQ and SCFQ
            // reuse it as the connection's finish tag). When the VC is
            // recycled to a different stream, the new connection must not
            // inherit (and be penalized by) the old connection's clock.
            if state.stream != Some(flit.stream) {
                state.aux_vc = 0.0;
                state.stream = Some(flit.stream);
            }
        }
        let stamp = match self.kind {
            SchedulerKind::VirtualClock => {
                // auxVC ← max(Clock, auxVC) + Vtick  (Zhang's update
                // rule), saturated so a best-effort backlog cannot push
                // the register past f64 integer precision.
                state.aux_vc = (state.aux_vc.max(now.as_f64()) + state.vtick).min(STAMP_SATURATION);
                state.aux_vc
            }
            SchedulerKind::Wfq => {
                // F ← max(F_prev, V) + Vtick against the GPS-approximated
                // virtual time advanced above.
                state.aux_vc = (state.aux_vc.max(v_time) + state.vtick).min(STAMP_SATURATION);
                state.aux_vc
            }
            SchedulerKind::Scfq => {
                // F ← max(F_prev, tag of the last-served flit) + Vtick.
                state.aux_vc = (state.aux_vc.max(v_served) + state.vtick).min(STAMP_SATURATION);
                state.aux_vc
            }
            SchedulerKind::Fifo => now.as_f64(),
            SchedulerKind::RoundRobin | SchedulerKind::Drr => 0.0,
        };
        if state.stamps.is_empty() {
            state.head_stamp = stamp;
        }
        state.stamps.push_back(stamp);
    }

    /// Advances WFQ's virtual time to `now`.
    ///
    /// `V` grows at `1/Σ wᵢ` over the currently backlogged VCs (with
    /// `wᵢ = 1/Vtickᵢ`, so a lone backlogged connection's tags and `V`
    /// move in lockstep), and snaps forward to the wall clock across idle
    /// periods so connections arriving after a gap are stamped relative
    /// to the present — mirroring Virtual Clock's `max(Clock, auxVC)`.
    fn advance_virtual_time(&mut self, now: Cycles) {
        let dt = now.0.saturating_sub(self.v_cycle);
        if dt == 0 {
            return;
        }
        self.v_cycle = now.0;
        let weight: f64 = self
            .vcs
            .iter()
            .filter(|s| !s.stamps.is_empty())
            .map(|s| 1.0 / s.vtick)
            .sum();
        self.v_time = if weight > 0.0 {
            (self.v_time + dt as f64 / weight).min(STAMP_SATURATION)
        } else {
            self.v_time.max(now.as_f64()).min(STAMP_SATURATION)
        };
    }

    /// Picks the VC to serve this cycle among those marked eligible.
    ///
    /// A VC may only be marked eligible if it has at least one pending
    /// stamp (i.e. a queued flit) — violations panic, as they indicate the
    /// owner's queue and the scheduler went out of sync.
    ///
    /// # Panics
    ///
    /// Panics if `eligible.len()` differs from the VC count, or an eligible
    /// VC has no pending flit.
    pub fn choose(&mut self, eligible: &[bool]) -> Option<usize> {
        assert_eq!(
            eligible.len(),
            self.vcs.len(),
            "eligibility mask size mismatch"
        );
        match self.kind {
            SchedulerKind::VirtualClock
            | SchedulerKind::Fifo
            | SchedulerKind::Wfq
            | SchedulerKind::Scfq => {
                // Scan from the VC after the last one served so that exact
                // stamp ties rotate across VCs instead of pinning to the
                // lowest index (which starves high-index VCs under
                // saturation). Strict < keeps the first VC in scan order on
                // a tie, so the result is still fully deterministic.
                let n = self.vcs.len();
                let mut best: Option<(f64, usize)> = None;
                for off in 1..=n {
                    let vc = (self.rr_cursor + off) % n;
                    if !eligible[vc] {
                        continue;
                    }
                    let state = &self.vcs[vc];
                    assert!(
                        !state.stamps.is_empty(),
                        "eligible VC must have a queued flit"
                    );
                    let stamp = state.head_stamp;
                    debug_assert_eq!(
                        stamp.to_bits(),
                        state.stamps.front().copied().unwrap().to_bits(),
                        "memoized head stamp must track the queue front"
                    );
                    if best.is_none_or(|(s, _)| stamp < s) {
                        best = Some((stamp, vc));
                    }
                }
                best.map(|(_, vc)| vc)
            }
            SchedulerKind::RoundRobin => {
                let n = self.vcs.len();
                for off in 1..=n {
                    let vc = (self.rr_cursor + off) % n;
                    if eligible[vc] {
                        assert!(
                            !self.vcs[vc].stamps.is_empty(),
                            "eligible VC must have a queued flit"
                        );
                        return Some(vc);
                    }
                }
                None
            }
            SchedulerKind::Drr => {
                let n = self.vcs.len();
                // Phase 1: the quantum holder (scan from the cursor
                // itself, not past it) keeps sending while its deficit
                // covers a flit, then the remaining credit-holders in
                // rotation order.
                for off in 0..n {
                    let vc = (self.rr_cursor + off) % n;
                    if !eligible[vc] {
                        continue;
                    }
                    assert!(
                        !self.vcs[vc].stamps.is_empty(),
                        "eligible VC must have a queued flit"
                    );
                    if self.vcs[vc].deficit >= 1.0 {
                        return Some(vc);
                    }
                }
                // Phase 2: every eligible VC has exhausted its deficit —
                // open a new round at the next VC in rotation. The refill
                // itself happens in `on_service`, keeping `choose` pure
                // (the unmemoized oracle mirrors this scan exactly).
                for off in 1..=n {
                    let vc = (self.rr_cursor + off) % n;
                    if eligible[vc] {
                        return Some(vc);
                    }
                }
                None
            }
        }
    }

    /// Records that VC `vc`'s head flit was served.
    ///
    /// # Panics
    ///
    /// Panics if `vc` has no pending flit.
    pub fn on_service(&mut self, vc: usize) {
        let served = {
            let state = &mut self.vcs[vc];
            let served = state
                .stamps
                .pop_front()
                .expect("serviced VC must have had a queued flit");
            if let Some(&next) = state.stamps.front() {
                state.head_stamp = next;
            }
            served
        };
        match self.kind {
            SchedulerKind::Scfq => {
                // The served flit's tag becomes the virtual time base for
                // subsequent arrivals.
                self.v_served = served;
            }
            SchedulerKind::Drr => {
                // A grant below one flit of deficit means `choose` opened
                // a new round: top up the backlogged VCs (including the
                // one just served) and clear idle VCs so they cannot
                // hoard credit across idle periods. Capping at two quanta
                // bounds the burst a VC blocked mid-round can later send.
                if self.vcs[vc].deficit < 1.0 {
                    for (i, s) in self.vcs.iter_mut().enumerate() {
                        if i == vc || !s.stamps.is_empty() {
                            s.deficit = (s.deficit + DRR_QUANTUM).min(2.0 * DRR_QUANTUM);
                        } else {
                            s.deficit = 0.0;
                        }
                    }
                }
                self.vcs[vc].deficit -= 1.0;
            }
            _ => {}
        }
        self.rr_cursor = vc;
    }

    /// Pending flits registered for VC `vc` (for owner/scheduler sync
    /// assertions in tests).
    pub fn pending(&self, vc: usize) -> usize {
        self.vcs[vc].stamps.len()
    }

    /// Serialises the mutable scheduler state (stamps, clocks, cursor)
    /// into a snapshot. The discipline and VC count are configuration and
    /// are written only as a consistency check.
    pub fn save(&self, w: &mut SnapWriter) {
        w.u8(kind_tag(self.kind));
        w.usize(self.vcs.len());
        w.usize(self.rr_cursor);
        // Discipline-global registers, written unconditionally (they are
        // zero for disciplines that don't use them) to keep the format
        // uniform across kinds.
        w.f64(self.v_time);
        w.u64(self.v_cycle);
        w.f64(self.v_served);
        for vc in &self.vcs {
            w.usize(vc.stamps.len());
            for &s in &vc.stamps {
                w.f64(s);
            }
            w.f64(vc.head_stamp);
            w.f64(vc.aux_vc);
            w.f64(vc.deficit);
            w.f64(vc.vtick);
            w.option(vc.stream, |w, s| w.u32(s.0));
        }
    }

    /// Restores state saved by [`MuxScheduler::save`] into this
    /// freshly-constructed scheduler.
    ///
    /// # Errors
    ///
    /// Propagates decoding errors; rejects a snapshot whose discipline or
    /// VC count disagrees with this scheduler's configuration.
    pub fn load_into(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        if r.u8()? != kind_tag(self.kind) {
            return Err(SnapError::BadValue("scheduler kind mismatch"));
        }
        if r.usize()? != self.vcs.len() {
            return Err(SnapError::BadValue("scheduler VC count mismatch"));
        }
        self.rr_cursor = r.usize()?;
        self.v_time = r.f64()?;
        self.v_cycle = r.u64()?;
        self.v_served = r.f64()?;
        for vc in &mut self.vcs {
            let n = r.usize()?;
            vc.stamps.clear();
            for _ in 0..n {
                vc.stamps.push_back(r.f64()?);
            }
            vc.head_stamp = r.f64()?;
            vc.aux_vc = r.f64()?;
            vc.deficit = r.f64()?;
            vc.vtick = r.f64()?;
            vc.stream = r.option(|r| r.u32().map(StreamId))?;
        }
        Ok(())
    }
}

/// Snapshot tag for a discipline (stable across versions; never reuse).
fn kind_tag(kind: SchedulerKind) -> u8 {
    match kind {
        SchedulerKind::VirtualClock => 0,
        SchedulerKind::Fifo => 1,
        SchedulerKind::RoundRobin => 2,
        SchedulerKind::Wfq => 3,
        SchedulerKind::Drr => 4,
        SchedulerKind::Scfq => 5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flitnet::{FlitKind, FrameId, MsgId, NodeId, StreamId, TrafficClass, VcId};

    fn flit(kind: FlitKind, vtick: f64) -> Flit {
        Flit {
            kind,
            stream: StreamId(0),
            msg: MsgId(0),
            frame: FrameId(0),
            seq_in_msg: 0,
            msg_len: 4,
            msg_seq_in_frame: 0,
            msgs_in_frame: 1,
            dest: NodeId(0),
            vc: VcId(0),
            out_vc: VcId(0),
            vtick,
            class: TrafficClass::Vbr,
            created_at: Cycles(0),
        }
    }

    const ALL_KINDS: [SchedulerKind; 6] = [
        SchedulerKind::VirtualClock,
        SchedulerKind::Fifo,
        SchedulerKind::RoundRobin,
        SchedulerKind::Wfq,
        SchedulerKind::Drr,
        SchedulerKind::Scfq,
    ];

    #[test]
    fn virtual_clock_prefers_higher_rate() {
        let mut s = MuxScheduler::new(SchedulerKind::VirtualClock, 2);
        s.on_arrival(0, Cycles(0), &flit(FlitKind::Head, 100.0)); // stamp 100
        s.on_arrival(1, Cycles(0), &flit(FlitKind::Head, 10.0)); // stamp 10
        assert_eq!(s.choose(&[true, true]), Some(1));
        s.on_service(1);
        assert_eq!(s.choose(&[true, false]), Some(0));
    }

    #[test]
    fn virtual_clock_shares_proportionally() {
        // Two streams with 1:3 rate ratio should be served ~1:3.
        let mut s = MuxScheduler::new(SchedulerKind::VirtualClock, 2);
        // Pre-load 400 flits on each VC (burst arrival at t=0).
        let h0 = flit(FlitKind::Head, 40.0); // slow stream
        let h1 = flit(FlitKind::Head, 13.3); // ~3x faster
        s.on_arrival(0, Cycles(0), &h0);
        s.on_arrival(1, Cycles(0), &h1);
        for _ in 0..399 {
            s.on_arrival(0, Cycles(0), &flit(FlitKind::Body, 40.0));
            s.on_arrival(1, Cycles(0), &flit(FlitKind::Body, 13.3));
        }
        let mut served = [0u32; 2];
        for _ in 0..400 {
            let vc = s.choose(&[true, true]).unwrap();
            served[vc] += 1;
            s.on_service(vc);
        }
        let ratio = f64::from(served[1]) / f64::from(served[0]);
        assert!(
            (2.5..3.5).contains(&ratio),
            "ratio {ratio}, served {served:?}"
        );
    }

    #[test]
    fn virtual_clock_resets_stale_clock_to_now() {
        let mut s = MuxScheduler::new(SchedulerKind::VirtualClock, 1);
        s.on_arrival(0, Cycles(0), &flit(FlitKind::Head, 10.0));
        let vc = s.choose(&[true]).unwrap();
        s.on_service(vc);
        // Long idle gap: auxVC (10) is far behind the clock; the next
        // arrival must stamp relative to `now`, not the stale register.
        s.on_arrival(0, Cycles(1_000), &flit(FlitKind::Head, 10.0));
        // Internal stamp = max(1000, 10) + 10 = 1010. Verify by comparing
        // against a fresh fast arrival on another scheduler — here we just
        // check it serves (work conservation) and doesn't panic.
        assert_eq!(s.choose(&[true]), Some(0));
    }

    #[test]
    fn fifo_serves_in_arrival_order_across_vcs() {
        let mut s = MuxScheduler::new(SchedulerKind::Fifo, 3);
        s.on_arrival(2, Cycles(5), &flit(FlitKind::Head, 1.0));
        s.on_arrival(0, Cycles(7), &flit(FlitKind::Head, 1.0));
        s.on_arrival(1, Cycles(6), &flit(FlitKind::Head, 1.0));
        let order: Vec<usize> = (0..3)
            .map(|_| {
                let eligible: Vec<bool> = (0..3).map(|v| s.pending(v) > 0).collect();
                let vc = s.choose(&eligible).unwrap();
                s.on_service(vc);
                vc
            })
            .collect();
        assert_eq!(order, vec![2, 1, 0]);
    }

    #[test]
    fn fifo_ignores_vtick() {
        let mut s = MuxScheduler::new(SchedulerKind::Fifo, 2);
        s.on_arrival(0, Cycles(1), &flit(FlitKind::Head, 1e9)); // "slow" stream first
        s.on_arrival(1, Cycles(2), &flit(FlitKind::Head, 1.0));
        assert_eq!(s.choose(&[true, true]), Some(0));
    }

    #[test]
    fn round_robin_rotates() {
        let mut s = MuxScheduler::new(SchedulerKind::RoundRobin, 3);
        for vc in 0..3 {
            for _ in 0..2 {
                s.on_arrival(vc, Cycles(0), &flit(FlitKind::Body, 1.0));
            }
        }
        let mut order = Vec::new();
        for _ in 0..6 {
            let vc = s.choose(&[true, true, true]).unwrap();
            s.on_service(vc);
            order.push(vc);
        }
        assert_eq!(order, vec![1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn round_robin_skips_ineligible() {
        let mut s = MuxScheduler::new(SchedulerKind::RoundRobin, 3);
        s.on_arrival(0, Cycles(0), &flit(FlitKind::Body, 1.0));
        s.on_arrival(2, Cycles(0), &flit(FlitKind::Body, 1.0));
        assert_eq!(s.choose(&[true, false, true]), Some(2));
    }

    #[test]
    fn choose_returns_none_when_nothing_eligible() {
        let mut s = MuxScheduler::new(SchedulerKind::VirtualClock, 2);
        assert_eq!(s.choose(&[false, false]), None);
    }

    #[test]
    fn best_effort_always_loses_to_real_time() {
        let mut s = MuxScheduler::new(SchedulerKind::VirtualClock, 2);
        // Best-effort arrives FIRST, real-time second.
        s.on_arrival(
            0,
            Cycles(0),
            &flit(FlitKind::Head, flitnet::BEST_EFFORT_VTICK),
        );
        s.on_arrival(1, Cycles(10), &flit(FlitKind::Head, 100.0));
        assert_eq!(s.choose(&[true, true]), Some(1));
    }

    #[test]
    fn best_effort_is_fifo_among_itself() {
        let mut s = MuxScheduler::new(SchedulerKind::VirtualClock, 2);
        s.on_arrival(
            1,
            Cycles(0),
            &flit(FlitKind::Head, flitnet::BEST_EFFORT_VTICK),
        );
        s.on_arrival(
            0,
            Cycles(5),
            &flit(FlitKind::Head, flitnet::BEST_EFFORT_VTICK),
        );
        // VC 1 arrived first → lower accumulated stamp.
        assert_eq!(s.choose(&[true, true]), Some(1));
    }

    #[test]
    fn vtick_tracks_current_message() {
        let mut s = MuxScheduler::new(SchedulerKind::VirtualClock, 1);
        // Message 1: fast. Its body flits inherit the head's vtick.
        s.on_arrival(0, Cycles(0), &flit(FlitKind::Head, 10.0));
        s.on_arrival(0, Cycles(0), &flit(FlitKind::Tail, 10.0));
        // Message 2 on the same VC: slow.
        s.on_arrival(0, Cycles(0), &flit(FlitKind::Head, 1000.0));
        assert_eq!(s.pending(0), 3);
        for _ in 0..3 {
            let vc = s.choose(&[true]).unwrap();
            s.on_service(vc);
        }
        assert_eq!(s.pending(0), 0);
    }

    #[test]
    fn equal_stamps_share_service_across_vcs() {
        // Regression: equal stamps used to always pick the lowest VC
        // index, starving high-index VCs under saturation. Ties now
        // rotate (deterministically) via the service cursor.
        let mut s = MuxScheduler::new(SchedulerKind::Fifo, 4);
        for vc in 0..4 {
            for _ in 0..100 {
                // All flits arrive on the same cycle → all stamps equal.
                s.on_arrival(vc, Cycles(0), &flit(FlitKind::Body, 1.0));
            }
        }
        let mut served = [0u32; 4];
        for _ in 0..200 {
            let vc = s.choose(&[true, true, true, true]).unwrap();
            served[vc] += 1;
            s.on_service(vc);
        }
        assert_eq!(served, [50, 50, 50, 50], "equal-stamp VCs must share");
    }

    #[test]
    fn aux_vc_resets_when_vc_recycled_to_new_stream() {
        let mut s = MuxScheduler::new(SchedulerKind::VirtualClock, 2);
        // Stream A: slow (Vtick 1000) uses VC 0 and finishes.
        let mut a = flit(FlitKind::HeadTail, 1000.0);
        a.stream = StreamId(1);
        s.on_arrival(0, Cycles(0), &a); // auxVC(0) = 1000
        let vc = s.choose(&[true, false]).unwrap();
        s.on_service(vc);
        // VC 0 is recycled to stream B (Vtick 10) at cycle 100 while a
        // fresh stream C (Vtick 50) starts on VC 1 at the same cycle.
        let mut b = flit(FlitKind::Head, 10.0);
        b.stream = StreamId(2);
        s.on_arrival(0, Cycles(100), &b); // reset → stamp 100 + 10 = 110
        let mut c = flit(FlitKind::Head, 50.0);
        c.stream = StreamId(3);
        s.on_arrival(1, Cycles(100), &c); // stamp 100 + 50 = 150
                                          // Without the reset B would inherit A's clock (stamp 1010) and
                                          // lose to C despite being the faster stream on a clean VC.
        assert_eq!(s.choose(&[true, true]), Some(0));
    }

    #[test]
    fn aux_vc_accumulates_within_one_stream() {
        let mut s = MuxScheduler::new(SchedulerKind::VirtualClock, 2);
        // Two back-to-back messages of the SAME stream on VC 0: the
        // second head must keep the connection clock (no reset).
        let mut a1 = flit(FlitKind::HeadTail, 100.0);
        a1.stream = StreamId(1);
        s.on_arrival(0, Cycles(0), &a1); // auxVC = 100
        let mut a2 = flit(FlitKind::HeadTail, 100.0);
        a2.stream = StreamId(1);
        s.on_arrival(0, Cycles(0), &a2); // auxVC = 200 (accumulated)
        let mut b = flit(FlitKind::Head, 150.0);
        b.stream = StreamId(2);
        s.on_arrival(1, Cycles(0), &b); // stamp 150
        let first = s.choose(&[true, true]).unwrap();
        assert_eq!(first, 0, "a1 (stamp 100) goes first");
        s.on_service(first);
        // b (150) must beat a2 (200): the stream kept its clock.
        assert_eq!(s.choose(&[true, true]), Some(1));
    }

    /// Proportional-share conformance shared by the stamp-based fair
    /// queueing disciplines: two streams with a 1:3 rate ratio must be
    /// served ~1:3 (mirrors `virtual_clock_shares_proportionally`).
    fn assert_shares_proportionally(kind: SchedulerKind) {
        let mut s = MuxScheduler::new(kind, 2);
        let mut h0 = flit(FlitKind::Head, 40.0); // slow stream
        h0.stream = StreamId(1);
        let mut h1 = flit(FlitKind::Head, 13.3); // ~3x faster
        h1.stream = StreamId(2);
        s.on_arrival(0, Cycles(0), &h0);
        s.on_arrival(1, Cycles(0), &h1);
        for _ in 0..399 {
            s.on_arrival(0, Cycles(0), &flit(FlitKind::Body, 40.0));
            s.on_arrival(1, Cycles(0), &flit(FlitKind::Body, 13.3));
        }
        let mut served = [0u32; 2];
        for _ in 0..400 {
            let vc = s.choose(&[true, true]).unwrap();
            served[vc] += 1;
            s.on_service(vc);
        }
        let ratio = f64::from(served[1]) / f64::from(served[0]);
        assert!(
            (2.5..3.5).contains(&ratio),
            "{kind:?}: ratio {ratio}, served {served:?}"
        );
    }

    #[test]
    fn wfq_shares_proportionally() {
        assert_shares_proportionally(SchedulerKind::Wfq);
    }

    #[test]
    fn scfq_shares_proportionally() {
        assert_shares_proportionally(SchedulerKind::Scfq);
    }

    #[test]
    fn wfq_newcomer_joins_at_current_virtual_time() {
        // VC 0 builds a deep backlog at t=0 and is served alone for 500
        // cycles. A stream joining VC 1 at t=500 must be stamped at the
        // *virtual* time (which tracked VC 0's service tags), not at zero
        // (which would let it sweep the mux) and not purely at the wall
        // clock the way Virtual Clock does.
        let mut s = MuxScheduler::new(SchedulerKind::Wfq, 2);
        let mut h0 = flit(FlitKind::Head, 10.0);
        h0.stream = StreamId(1);
        s.on_arrival(0, Cycles(0), &h0);
        for _ in 0..999 {
            s.on_arrival(0, Cycles(0), &flit(FlitKind::Body, 10.0));
        }
        for _ in 0..500 {
            let vc = s.choose(&[true, false]).unwrap();
            s.on_service(vc);
        }
        let mut h1 = flit(FlitKind::Head, 10.0);
        h1.stream = StreamId(2);
        s.on_arrival(1, Cycles(500), &h1);
        for _ in 0..99 {
            s.on_arrival(1, Cycles(500), &flit(FlitKind::Body, 10.0));
        }
        let mut served = [0u32; 2];
        for _ in 0..100 {
            let vc = s.choose(&[true, true]).unwrap();
            served[vc] += 1;
            s.on_service(vc);
        }
        // Equal weights from here on → roughly half the service each.
        // (Under Virtual Clock the newcomer's wall-clock stamps of ~510
        // would beat VC 0's ~5010 backlog tags and take all 100 grants.)
        assert!(
            (40..=60).contains(&served[1]),
            "newcomer share {served:?} not ~50/100"
        );
    }

    #[test]
    fn drr_shares_equally_ignoring_rates() {
        // A 100:1 Vtick ratio is invisible to DRR: equal quanta mean
        // exactly equal long-run shares.
        let mut s = MuxScheduler::new(SchedulerKind::Drr, 2);
        s.on_arrival(0, Cycles(0), &flit(FlitKind::Head, 10.0));
        s.on_arrival(1, Cycles(0), &flit(FlitKind::Head, 1000.0));
        for _ in 0..399 {
            s.on_arrival(0, Cycles(0), &flit(FlitKind::Body, 10.0));
            s.on_arrival(1, Cycles(0), &flit(FlitKind::Body, 1000.0));
        }
        let mut served = [0u32; 2];
        for _ in 0..400 {
            let vc = s.choose(&[true, true]).unwrap();
            served[vc] += 1;
            s.on_service(vc);
        }
        assert_eq!(served, [200, 200], "DRR must ignore Vtick");
    }

    #[test]
    fn drr_serves_in_quantum_bursts() {
        let mut s = MuxScheduler::new(SchedulerKind::Drr, 2);
        for vc in 0..2 {
            for _ in 0..20 {
                s.on_arrival(vc, Cycles(0), &flit(FlitKind::Body, 1.0));
            }
        }
        let mut order = Vec::new();
        for _ in 0..12 {
            let vc = s.choose(&[true, true]).unwrap();
            s.on_service(vc);
            order.push(vc);
        }
        // New rounds open at the VC after the cursor; each backlogged VC
        // then drains one quantum (4 flits) before yielding.
        assert_eq!(order, vec![1, 1, 1, 1, 0, 0, 0, 0, 1, 1, 1, 1]);
    }

    #[test]
    fn drr_deficit_does_not_accumulate_across_idle() {
        let mut s = MuxScheduler::new(SchedulerKind::Drr, 2);
        // VC 1 is backlogged alone through several rounds; VC 0 is idle
        // and must NOT bank quanta for later.
        for _ in 0..20 {
            s.on_arrival(1, Cycles(0), &flit(FlitKind::Body, 1.0));
        }
        for _ in 0..12 {
            let vc = s.choose(&[false, true]).unwrap();
            assert_eq!(vc, 1);
            s.on_service(vc);
        }
        // VC 0 wakes up: it gets at most the capped burst (2 quanta),
        // not 3 rounds' worth of credit.
        for _ in 0..20 {
            s.on_arrival(0, Cycles(0), &flit(FlitKind::Body, 1.0));
        }
        let mut burst0 = 0;
        loop {
            let vc = s.choose(&[true, true]).unwrap();
            if vc != 0 {
                break;
            }
            burst0 += 1;
            s.on_service(vc);
            assert!(burst0 <= 2 * DRR_QUANTUM as u32, "idle VC hoarded credit");
        }
    }

    #[test]
    fn zoo_is_work_conserving() {
        // A lone eligible VC is always served immediately, whatever the
        // discipline and whatever its rate.
        for kind in ALL_KINDS {
            let mut s = MuxScheduler::new(kind, 4);
            let mut h = flit(FlitKind::Head, flitnet::BEST_EFFORT_VTICK);
            h.stream = StreamId(7);
            s.on_arrival(2, Cycles(123), &h);
            assert_eq!(
                s.choose(&[false, false, true, false]),
                Some(2),
                "{kind:?} must be work-conserving"
            );
        }
    }

    #[test]
    fn zoo_equal_stamps_rotate_across_vcs() {
        // Same-cycle, same-rate arrivals give byte-identical stamp
        // sequences on every VC; the tie rotation must share service
        // instead of pinning to the lowest index.
        for kind in [SchedulerKind::Wfq, SchedulerKind::Scfq] {
            let mut s = MuxScheduler::new(kind, 4);
            for vc in 0..4 {
                let mut h = flit(FlitKind::Head, 10.0);
                h.stream = StreamId(vc as u32);
                s.on_arrival(vc, Cycles(0), &h);
                for _ in 0..99 {
                    s.on_arrival(vc, Cycles(0), &flit(FlitKind::Body, 10.0));
                }
            }
            let mut served = [0u32; 4];
            for _ in 0..200 {
                let vc = s.choose(&[true, true, true, true]).unwrap();
                served[vc] += 1;
                s.on_service(vc);
            }
            assert_eq!(served, [50, 50, 50, 50], "{kind:?} ties must share");
        }
    }

    #[test]
    fn best_effort_backlog_saturates_stamps_and_still_rotates() {
        // Regression for the Virtual Clock register blow-up: a backlogged
        // best-effort VC adds BEST_EFFORT_VTICK (1e12) per flit to its
        // register, which used to grow without bound toward the f64
        // integer-precision cliff at 2^53. The register now saturates at
        // STAMP_SATURATION; stamps stay bounded and ordered, and the
        // post-saturation tie regime still shares service via rotation.
        let mut s = MuxScheduler::new(SchedulerKind::VirtualClock, 3);
        for vc in 0..2 {
            let mut h = flit(FlitKind::Head, flitnet::BEST_EFFORT_VTICK);
            h.stream = StreamId(vc as u32);
            s.on_arrival(vc, Cycles(0), &h);
            for _ in 0..1_999 {
                s.on_arrival(
                    vc,
                    Cycles(0),
                    &flit(FlitKind::Body, flitnet::BEST_EFFORT_VTICK),
                );
            }
        }
        for vc in 0..2 {
            let mut prev = f64::NEG_INFINITY;
            for &stamp in &s.vcs[vc].stamps {
                assert!(stamp.is_finite(), "stamp must stay finite");
                assert!(
                    stamp <= STAMP_SATURATION,
                    "stamp {stamp:e} escaped the saturation ceiling"
                );
                assert!(prev <= stamp, "stamps must stay ordered");
                prev = stamp;
            }
        }
        // Saturated (tied) stamps share service through the cursor.
        let mut served = [0u32; 3];
        for _ in 0..1_000 {
            let vc = s.choose(&[true, true, false]).unwrap();
            served[vc] += 1;
            s.on_service(vc);
        }
        assert_eq!(served[..2], [500, 500], "saturated BE VCs must share");
        // A real-time stream arriving after saturation still wins: its
        // register resets to the wall clock, far below the BE plateau.
        let mut rt = flit(FlitKind::Head, 100.0);
        rt.stream = StreamId(99);
        s.on_arrival(2, Cycles(4_000), &rt);
        assert_eq!(s.choose(&[true, true, true]), Some(2));
    }

    #[test]
    #[should_panic(expected = "queued flit")]
    fn eligible_without_flit_panics() {
        let mut s = MuxScheduler::new(SchedulerKind::VirtualClock, 1);
        let _ = s.choose(&[true]);
    }

    impl MuxScheduler {
        /// The pre-memoization `choose`: reads each eligible VC's stamp
        /// from the queue front instead of the cached `head_stamp`. The
        /// oracle for `memoized_choice_sequence_matches_unmemoized_scan`.
        fn choose_unmemoized(&self, eligible: &[bool]) -> Option<usize> {
            assert_eq!(eligible.len(), self.vcs.len());
            let n = self.vcs.len();
            match self.kind {
                SchedulerKind::VirtualClock
                | SchedulerKind::Fifo
                | SchedulerKind::Wfq
                | SchedulerKind::Scfq => {
                    let mut best: Option<(f64, usize)> = None;
                    for off in 1..=n {
                        let vc = (self.rr_cursor + off) % n;
                        if !eligible[vc] {
                            continue;
                        }
                        let stamp = *self.vcs[vc]
                            .stamps
                            .front()
                            .expect("eligible VC must have a queued flit");
                        if best.is_none_or(|(s, _)| stamp < s) {
                            best = Some((stamp, vc));
                        }
                    }
                    best.map(|(_, vc)| vc)
                }
                SchedulerKind::RoundRobin => {
                    for off in 1..=n {
                        let vc = (self.rr_cursor + off) % n;
                        if eligible[vc] {
                            return Some(vc);
                        }
                    }
                    None
                }
                SchedulerKind::Drr => {
                    for off in 0..n {
                        let vc = (self.rr_cursor + off) % n;
                        if eligible[vc] && self.vcs[vc].deficit >= 1.0 {
                            assert!(
                                !self.vcs[vc].stamps.is_empty(),
                                "eligible VC must have a queued flit"
                            );
                            return Some(vc);
                        }
                    }
                    for off in 1..=n {
                        let vc = (self.rr_cursor + off) % n;
                        if eligible[vc] {
                            return Some(vc);
                        }
                    }
                    None
                }
            }
        }
    }

    #[test]
    fn memoized_choice_sequence_matches_unmemoized_scan() {
        // Drive one scheduler through a long pseudo-random arrival/service
        // trace and check every choice against the queue-front oracle.
        // No external RNG: a tiny inline xorshift keeps this in-crate.
        let mut rng: u64 = 0x9e37_79b9_97f4_a7c5;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for kind in ALL_KINDS {
            let n = 8;
            let mut s = MuxScheduler::new(kind, n);
            let mut choices = Vec::new();
            for cycle in 0..5_000u64 {
                // A burst of arrivals with varied vticks (stamp ties and
                // same-cycle arrivals included, on purpose).
                for _ in 0..(next() % 3) {
                    let vc = (next() % n as u64) as usize;
                    let vtick = [10.0, 13.3, 40.0, 100.0][(next() % 4) as usize];
                    let kind = if next() % 4 == 0 {
                        FlitKind::Head
                    } else {
                        FlitKind::Body
                    };
                    let mut f = flit(kind, vtick);
                    f.stream = StreamId((next() % 3) as u32);
                    s.on_arrival(vc, Cycles(cycle), &f);
                }
                // Random eligibility over the backlogged VCs.
                let eligible: Vec<bool> = (0..n)
                    .map(|v| s.pending(v) > 0 && next() % 4 != 0)
                    .collect();
                let expect = s.choose_unmemoized(&eligible);
                let got = s.choose(&eligible);
                assert_eq!(got, expect, "{kind:?} diverged at cycle {cycle}");
                if let Some(vc) = got {
                    s.on_service(vc);
                    choices.push(vc);
                }
            }
            assert!(choices.len() > 2_000, "{kind:?} trace must stay busy");
        }
    }
}
