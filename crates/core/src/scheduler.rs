//! Multiplexer schedulers: Virtual Clock, FIFO and round-robin.
//!
//! A [`MuxScheduler`] arbitrates one multiplexing point — a crossbar input
//! multiplexer, an output VC multiplexer, or a network-interface injection
//! multiplexer — among the virtual channels feeding it.
//!
//! For **Virtual Clock** (paper §3.3), each VC keeps two registers:
//! `auxVC` (the connection's virtual clock) and `Vtick` (the negotiated
//! inter-flit service interval, carried by each message's head flit). On
//! every flit arrival the flit is stamped with
//! `auxVC ← max(Clock, auxVC) + Vtick`, and the multiplexer serves, each
//! cycle, the eligible VC whose head flit has the lowest stamp. The
//! algorithm is work-conserving: stamps order competing flits but never
//! delay a lone one.
//!
//! **FIFO** stamps flits with their arrival cycle (the conventional
//! wormhole router of Fig. 3); **round-robin** rotates among eligible VCs.

use std::collections::VecDeque;

use flitnet::{Flit, StreamId};
use netsim::snap::{SnapError, SnapReader, SnapWriter};
use netsim::Cycles;

use crate::config::SchedulerKind;

/// Per-VC scheduler state.
#[derive(Debug, Clone, Default)]
struct VcState {
    /// Pending stamps, parallel to the flits queued at this mux point.
    stamps: VecDeque<f64>,
    /// Memoized copy of `stamps.front()`: `choose` scans every eligible
    /// VC every cycle, and a plain field load beats a `VecDeque` front
    /// access in that loop. Maintained on arrival (first flit) and
    /// service (next flit); meaningless while `stamps` is empty.
    head_stamp: f64,
    /// The connection's virtual clock register.
    aux_vc: f64,
    /// The Vtick of the message currently using this VC (set by its head
    /// flit, discarded — i.e. simply overwritten — after the tail).
    vtick: f64,
    /// The stream (connection) the VC currently serves. `auxVC` is a
    /// per-connection register, so it is reset when this changes.
    stream: Option<StreamId>,
}

/// A scheduler for one multiplexing point with a fixed number of VCs.
///
/// The owner mirrors its flit queues into the scheduler: call
/// [`MuxScheduler::on_arrival`] when a flit joins VC `vc`'s queue,
/// [`MuxScheduler::choose`] each cycle with the eligibility mask, and
/// [`MuxScheduler::on_service`] when the chosen VC's head flit departs.
///
/// # Example
///
/// ```
/// use mediaworm::{MuxScheduler, SchedulerKind};
/// use netsim::Cycles;
/// # use flitnet::{Flit, FlitKind, TrafficClass, MsgId, NodeId, StreamId, FrameId, VcId};
/// # fn head(vtick: f64) -> Flit {
/// #     Flit { kind: FlitKind::Head, stream: StreamId(0), msg: MsgId(0), frame: FrameId(0),
/// #         seq_in_msg: 0, msg_len: 2, msg_seq_in_frame: 0, msgs_in_frame: 1,
/// #         dest: NodeId(0), vc: VcId(0), out_vc: VcId(0), vtick, class: TrafficClass::Vbr,
/// #         created_at: Cycles(0) }
/// # }
/// let mut s = MuxScheduler::new(SchedulerKind::VirtualClock, 2);
/// // VC 0: a low-rate stream (large Vtick). VC 1: a high-rate stream.
/// s.on_arrival(0, Cycles(0), &head(1000.0));
/// s.on_arrival(1, Cycles(0), &head(10.0));
/// // The high-rate stream's flit has the earlier virtual-clock stamp.
/// assert_eq!(s.choose(&[true, true]), Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct MuxScheduler {
    kind: SchedulerKind,
    vcs: Vec<VcState>,
    rr_cursor: usize,
}

impl MuxScheduler {
    /// Creates a scheduler for `n_vcs` virtual channels.
    ///
    /// # Panics
    ///
    /// Panics if `n_vcs == 0`.
    pub fn new(kind: SchedulerKind, n_vcs: usize) -> MuxScheduler {
        assert!(n_vcs > 0, "a mux point needs at least one VC");
        MuxScheduler {
            kind,
            vcs: vec![VcState::default(); n_vcs],
            rr_cursor: 0,
        }
    }

    /// The scheduling discipline.
    pub fn kind(&self) -> SchedulerKind {
        self.kind
    }

    /// Number of VCs at this mux point.
    pub fn vc_count(&self) -> usize {
        self.vcs.len()
    }

    /// Records a flit joining VC `vc`'s queue at cycle `now` and stamps it.
    ///
    /// # Panics
    ///
    /// Panics if `vc` is out of range.
    pub fn on_arrival(&mut self, vc: usize, now: Cycles, flit: &Flit) {
        let state = &mut self.vcs[vc];
        if flit.kind.is_head() {
            state.vtick = flit.vtick;
            // Zhang's auxVC is a per-connection register. When the VC is
            // recycled to a different stream, the new connection must not
            // inherit (and be penalized by) the old connection's clock.
            if state.stream != Some(flit.stream) {
                state.aux_vc = 0.0;
                state.stream = Some(flit.stream);
            }
        }
        let stamp = match self.kind {
            SchedulerKind::VirtualClock => {
                // auxVC ← max(Clock, auxVC) + Vtick  (Zhang's update rule)
                state.aux_vc = state.aux_vc.max(now.as_f64()) + state.vtick;
                state.aux_vc
            }
            SchedulerKind::Fifo => now.as_f64(),
            SchedulerKind::RoundRobin => 0.0,
        };
        if state.stamps.is_empty() {
            state.head_stamp = stamp;
        }
        state.stamps.push_back(stamp);
    }

    /// Picks the VC to serve this cycle among those marked eligible.
    ///
    /// A VC may only be marked eligible if it has at least one pending
    /// stamp (i.e. a queued flit) — violations panic, as they indicate the
    /// owner's queue and the scheduler went out of sync.
    ///
    /// # Panics
    ///
    /// Panics if `eligible.len()` differs from the VC count, or an eligible
    /// VC has no pending flit.
    pub fn choose(&mut self, eligible: &[bool]) -> Option<usize> {
        assert_eq!(
            eligible.len(),
            self.vcs.len(),
            "eligibility mask size mismatch"
        );
        match self.kind {
            SchedulerKind::VirtualClock | SchedulerKind::Fifo => {
                // Scan from the VC after the last one served so that exact
                // stamp ties rotate across VCs instead of pinning to the
                // lowest index (which starves high-index VCs under
                // saturation). Strict < keeps the first VC in scan order on
                // a tie, so the result is still fully deterministic.
                let n = self.vcs.len();
                let mut best: Option<(f64, usize)> = None;
                for off in 1..=n {
                    let vc = (self.rr_cursor + off) % n;
                    if !eligible[vc] {
                        continue;
                    }
                    let state = &self.vcs[vc];
                    assert!(
                        !state.stamps.is_empty(),
                        "eligible VC must have a queued flit"
                    );
                    let stamp = state.head_stamp;
                    debug_assert_eq!(
                        stamp.to_bits(),
                        state.stamps.front().copied().unwrap().to_bits(),
                        "memoized head stamp must track the queue front"
                    );
                    if best.is_none_or(|(s, _)| stamp < s) {
                        best = Some((stamp, vc));
                    }
                }
                best.map(|(_, vc)| vc)
            }
            SchedulerKind::RoundRobin => {
                let n = self.vcs.len();
                for off in 1..=n {
                    let vc = (self.rr_cursor + off) % n;
                    if eligible[vc] {
                        assert!(
                            !self.vcs[vc].stamps.is_empty(),
                            "eligible VC must have a queued flit"
                        );
                        return Some(vc);
                    }
                }
                None
            }
        }
    }

    /// Records that VC `vc`'s head flit was served.
    ///
    /// # Panics
    ///
    /// Panics if `vc` has no pending flit.
    pub fn on_service(&mut self, vc: usize) {
        let state = &mut self.vcs[vc];
        state
            .stamps
            .pop_front()
            .expect("serviced VC must have had a queued flit");
        if let Some(&next) = state.stamps.front() {
            state.head_stamp = next;
        }
        self.rr_cursor = vc;
    }

    /// Pending flits registered for VC `vc` (for owner/scheduler sync
    /// assertions in tests).
    pub fn pending(&self, vc: usize) -> usize {
        self.vcs[vc].stamps.len()
    }

    /// Serialises the mutable scheduler state (stamps, clocks, cursor)
    /// into a snapshot. The discipline and VC count are configuration and
    /// are written only as a consistency check.
    pub fn save(&self, w: &mut SnapWriter) {
        w.u8(match self.kind {
            SchedulerKind::VirtualClock => 0,
            SchedulerKind::Fifo => 1,
            SchedulerKind::RoundRobin => 2,
        });
        w.usize(self.vcs.len());
        w.usize(self.rr_cursor);
        for vc in &self.vcs {
            w.usize(vc.stamps.len());
            for &s in &vc.stamps {
                w.f64(s);
            }
            w.f64(vc.head_stamp);
            w.f64(vc.aux_vc);
            w.f64(vc.vtick);
            w.option(vc.stream, |w, s| w.u32(s.0));
        }
    }

    /// Restores state saved by [`MuxScheduler::save`] into this
    /// freshly-constructed scheduler.
    ///
    /// # Errors
    ///
    /// Propagates decoding errors; rejects a snapshot whose discipline or
    /// VC count disagrees with this scheduler's configuration.
    pub fn load_into(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let kind_tag = r.u8()?;
        let expect_tag = match self.kind {
            SchedulerKind::VirtualClock => 0,
            SchedulerKind::Fifo => 1,
            SchedulerKind::RoundRobin => 2,
        };
        if kind_tag != expect_tag {
            return Err(SnapError::BadValue("scheduler kind mismatch"));
        }
        if r.usize()? != self.vcs.len() {
            return Err(SnapError::BadValue("scheduler VC count mismatch"));
        }
        self.rr_cursor = r.usize()?;
        for vc in &mut self.vcs {
            let n = r.usize()?;
            vc.stamps.clear();
            for _ in 0..n {
                vc.stamps.push_back(r.f64()?);
            }
            vc.head_stamp = r.f64()?;
            vc.aux_vc = r.f64()?;
            vc.vtick = r.f64()?;
            vc.stream = r.option(|r| r.u32().map(StreamId))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flitnet::{FlitKind, FrameId, MsgId, NodeId, StreamId, TrafficClass, VcId};

    fn flit(kind: FlitKind, vtick: f64) -> Flit {
        Flit {
            kind,
            stream: StreamId(0),
            msg: MsgId(0),
            frame: FrameId(0),
            seq_in_msg: 0,
            msg_len: 4,
            msg_seq_in_frame: 0,
            msgs_in_frame: 1,
            dest: NodeId(0),
            vc: VcId(0),
            out_vc: VcId(0),
            vtick,
            class: TrafficClass::Vbr,
            created_at: Cycles(0),
        }
    }

    #[test]
    fn virtual_clock_prefers_higher_rate() {
        let mut s = MuxScheduler::new(SchedulerKind::VirtualClock, 2);
        s.on_arrival(0, Cycles(0), &flit(FlitKind::Head, 100.0)); // stamp 100
        s.on_arrival(1, Cycles(0), &flit(FlitKind::Head, 10.0)); // stamp 10
        assert_eq!(s.choose(&[true, true]), Some(1));
        s.on_service(1);
        assert_eq!(s.choose(&[true, false]), Some(0));
    }

    #[test]
    fn virtual_clock_shares_proportionally() {
        // Two streams with 1:3 rate ratio should be served ~1:3.
        let mut s = MuxScheduler::new(SchedulerKind::VirtualClock, 2);
        // Pre-load 400 flits on each VC (burst arrival at t=0).
        let h0 = flit(FlitKind::Head, 40.0); // slow stream
        let h1 = flit(FlitKind::Head, 13.3); // ~3x faster
        s.on_arrival(0, Cycles(0), &h0);
        s.on_arrival(1, Cycles(0), &h1);
        for _ in 0..399 {
            s.on_arrival(0, Cycles(0), &flit(FlitKind::Body, 40.0));
            s.on_arrival(1, Cycles(0), &flit(FlitKind::Body, 13.3));
        }
        let mut served = [0u32; 2];
        for _ in 0..400 {
            let vc = s.choose(&[true, true]).unwrap();
            served[vc] += 1;
            s.on_service(vc);
        }
        let ratio = f64::from(served[1]) / f64::from(served[0]);
        assert!(
            (2.5..3.5).contains(&ratio),
            "ratio {ratio}, served {served:?}"
        );
    }

    #[test]
    fn virtual_clock_resets_stale_clock_to_now() {
        let mut s = MuxScheduler::new(SchedulerKind::VirtualClock, 1);
        s.on_arrival(0, Cycles(0), &flit(FlitKind::Head, 10.0));
        let vc = s.choose(&[true]).unwrap();
        s.on_service(vc);
        // Long idle gap: auxVC (10) is far behind the clock; the next
        // arrival must stamp relative to `now`, not the stale register.
        s.on_arrival(0, Cycles(1_000), &flit(FlitKind::Head, 10.0));
        // Internal stamp = max(1000, 10) + 10 = 1010. Verify by comparing
        // against a fresh fast arrival on another scheduler — here we just
        // check it serves (work conservation) and doesn't panic.
        assert_eq!(s.choose(&[true]), Some(0));
    }

    #[test]
    fn fifo_serves_in_arrival_order_across_vcs() {
        let mut s = MuxScheduler::new(SchedulerKind::Fifo, 3);
        s.on_arrival(2, Cycles(5), &flit(FlitKind::Head, 1.0));
        s.on_arrival(0, Cycles(7), &flit(FlitKind::Head, 1.0));
        s.on_arrival(1, Cycles(6), &flit(FlitKind::Head, 1.0));
        let order: Vec<usize> = (0..3)
            .map(|_| {
                let eligible: Vec<bool> = (0..3).map(|v| s.pending(v) > 0).collect();
                let vc = s.choose(&eligible).unwrap();
                s.on_service(vc);
                vc
            })
            .collect();
        assert_eq!(order, vec![2, 1, 0]);
    }

    #[test]
    fn fifo_ignores_vtick() {
        let mut s = MuxScheduler::new(SchedulerKind::Fifo, 2);
        s.on_arrival(0, Cycles(1), &flit(FlitKind::Head, 1e9)); // "slow" stream first
        s.on_arrival(1, Cycles(2), &flit(FlitKind::Head, 1.0));
        assert_eq!(s.choose(&[true, true]), Some(0));
    }

    #[test]
    fn round_robin_rotates() {
        let mut s = MuxScheduler::new(SchedulerKind::RoundRobin, 3);
        for vc in 0..3 {
            for _ in 0..2 {
                s.on_arrival(vc, Cycles(0), &flit(FlitKind::Body, 1.0));
            }
        }
        let mut order = Vec::new();
        for _ in 0..6 {
            let vc = s.choose(&[true, true, true]).unwrap();
            s.on_service(vc);
            order.push(vc);
        }
        assert_eq!(order, vec![1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn round_robin_skips_ineligible() {
        let mut s = MuxScheduler::new(SchedulerKind::RoundRobin, 3);
        s.on_arrival(0, Cycles(0), &flit(FlitKind::Body, 1.0));
        s.on_arrival(2, Cycles(0), &flit(FlitKind::Body, 1.0));
        assert_eq!(s.choose(&[true, false, true]), Some(2));
    }

    #[test]
    fn choose_returns_none_when_nothing_eligible() {
        let mut s = MuxScheduler::new(SchedulerKind::VirtualClock, 2);
        assert_eq!(s.choose(&[false, false]), None);
    }

    #[test]
    fn best_effort_always_loses_to_real_time() {
        let mut s = MuxScheduler::new(SchedulerKind::VirtualClock, 2);
        // Best-effort arrives FIRST, real-time second.
        s.on_arrival(
            0,
            Cycles(0),
            &flit(FlitKind::Head, flitnet::BEST_EFFORT_VTICK),
        );
        s.on_arrival(1, Cycles(10), &flit(FlitKind::Head, 100.0));
        assert_eq!(s.choose(&[true, true]), Some(1));
    }

    #[test]
    fn best_effort_is_fifo_among_itself() {
        let mut s = MuxScheduler::new(SchedulerKind::VirtualClock, 2);
        s.on_arrival(
            1,
            Cycles(0),
            &flit(FlitKind::Head, flitnet::BEST_EFFORT_VTICK),
        );
        s.on_arrival(
            0,
            Cycles(5),
            &flit(FlitKind::Head, flitnet::BEST_EFFORT_VTICK),
        );
        // VC 1 arrived first → lower accumulated stamp.
        assert_eq!(s.choose(&[true, true]), Some(1));
    }

    #[test]
    fn vtick_tracks_current_message() {
        let mut s = MuxScheduler::new(SchedulerKind::VirtualClock, 1);
        // Message 1: fast. Its body flits inherit the head's vtick.
        s.on_arrival(0, Cycles(0), &flit(FlitKind::Head, 10.0));
        s.on_arrival(0, Cycles(0), &flit(FlitKind::Tail, 10.0));
        // Message 2 on the same VC: slow.
        s.on_arrival(0, Cycles(0), &flit(FlitKind::Head, 1000.0));
        assert_eq!(s.pending(0), 3);
        for _ in 0..3 {
            let vc = s.choose(&[true]).unwrap();
            s.on_service(vc);
        }
        assert_eq!(s.pending(0), 0);
    }

    #[test]
    fn equal_stamps_share_service_across_vcs() {
        // Regression: equal stamps used to always pick the lowest VC
        // index, starving high-index VCs under saturation. Ties now
        // rotate (deterministically) via the service cursor.
        let mut s = MuxScheduler::new(SchedulerKind::Fifo, 4);
        for vc in 0..4 {
            for _ in 0..100 {
                // All flits arrive on the same cycle → all stamps equal.
                s.on_arrival(vc, Cycles(0), &flit(FlitKind::Body, 1.0));
            }
        }
        let mut served = [0u32; 4];
        for _ in 0..200 {
            let vc = s.choose(&[true, true, true, true]).unwrap();
            served[vc] += 1;
            s.on_service(vc);
        }
        assert_eq!(served, [50, 50, 50, 50], "equal-stamp VCs must share");
    }

    #[test]
    fn aux_vc_resets_when_vc_recycled_to_new_stream() {
        let mut s = MuxScheduler::new(SchedulerKind::VirtualClock, 2);
        // Stream A: slow (Vtick 1000) uses VC 0 and finishes.
        let mut a = flit(FlitKind::HeadTail, 1000.0);
        a.stream = StreamId(1);
        s.on_arrival(0, Cycles(0), &a); // auxVC(0) = 1000
        let vc = s.choose(&[true, false]).unwrap();
        s.on_service(vc);
        // VC 0 is recycled to stream B (Vtick 10) at cycle 100 while a
        // fresh stream C (Vtick 50) starts on VC 1 at the same cycle.
        let mut b = flit(FlitKind::Head, 10.0);
        b.stream = StreamId(2);
        s.on_arrival(0, Cycles(100), &b); // reset → stamp 100 + 10 = 110
        let mut c = flit(FlitKind::Head, 50.0);
        c.stream = StreamId(3);
        s.on_arrival(1, Cycles(100), &c); // stamp 100 + 50 = 150
                                          // Without the reset B would inherit A's clock (stamp 1010) and
                                          // lose to C despite being the faster stream on a clean VC.
        assert_eq!(s.choose(&[true, true]), Some(0));
    }

    #[test]
    fn aux_vc_accumulates_within_one_stream() {
        let mut s = MuxScheduler::new(SchedulerKind::VirtualClock, 2);
        // Two back-to-back messages of the SAME stream on VC 0: the
        // second head must keep the connection clock (no reset).
        let mut a1 = flit(FlitKind::HeadTail, 100.0);
        a1.stream = StreamId(1);
        s.on_arrival(0, Cycles(0), &a1); // auxVC = 100
        let mut a2 = flit(FlitKind::HeadTail, 100.0);
        a2.stream = StreamId(1);
        s.on_arrival(0, Cycles(0), &a2); // auxVC = 200 (accumulated)
        let mut b = flit(FlitKind::Head, 150.0);
        b.stream = StreamId(2);
        s.on_arrival(1, Cycles(0), &b); // stamp 150
        let first = s.choose(&[true, true]).unwrap();
        assert_eq!(first, 0, "a1 (stamp 100) goes first");
        s.on_service(first);
        // b (150) must beat a2 (200): the stream kept its clock.
        assert_eq!(s.choose(&[true, true]), Some(1));
    }

    #[test]
    #[should_panic(expected = "queued flit")]
    fn eligible_without_flit_panics() {
        let mut s = MuxScheduler::new(SchedulerKind::VirtualClock, 1);
        let _ = s.choose(&[true]);
    }

    impl MuxScheduler {
        /// The pre-memoization `choose`: reads each eligible VC's stamp
        /// from the queue front instead of the cached `head_stamp`. The
        /// oracle for `memoized_choice_sequence_matches_unmemoized_scan`.
        fn choose_unmemoized(&self, eligible: &[bool]) -> Option<usize> {
            assert_eq!(eligible.len(), self.vcs.len());
            let n = self.vcs.len();
            match self.kind {
                SchedulerKind::VirtualClock | SchedulerKind::Fifo => {
                    let mut best: Option<(f64, usize)> = None;
                    for off in 1..=n {
                        let vc = (self.rr_cursor + off) % n;
                        if !eligible[vc] {
                            continue;
                        }
                        let stamp = *self.vcs[vc]
                            .stamps
                            .front()
                            .expect("eligible VC must have a queued flit");
                        if best.is_none_or(|(s, _)| stamp < s) {
                            best = Some((stamp, vc));
                        }
                    }
                    best.map(|(_, vc)| vc)
                }
                SchedulerKind::RoundRobin => {
                    for off in 1..=n {
                        let vc = (self.rr_cursor + off) % n;
                        if eligible[vc] {
                            return Some(vc);
                        }
                    }
                    None
                }
            }
        }
    }

    #[test]
    fn memoized_choice_sequence_matches_unmemoized_scan() {
        // Drive one scheduler through a long pseudo-random arrival/service
        // trace and check every choice against the queue-front oracle.
        // No external RNG: a tiny inline xorshift keeps this in-crate.
        let mut rng: u64 = 0x9e37_79b9_97f4_a7c5;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for kind in [
            SchedulerKind::VirtualClock,
            SchedulerKind::Fifo,
            SchedulerKind::RoundRobin,
        ] {
            let n = 8;
            let mut s = MuxScheduler::new(kind, n);
            let mut choices = Vec::new();
            for cycle in 0..5_000u64 {
                // A burst of arrivals with varied vticks (stamp ties and
                // same-cycle arrivals included, on purpose).
                for _ in 0..(next() % 3) {
                    let vc = (next() % n as u64) as usize;
                    let vtick = [10.0, 13.3, 40.0, 100.0][(next() % 4) as usize];
                    let kind = if next() % 4 == 0 {
                        FlitKind::Head
                    } else {
                        FlitKind::Body
                    };
                    let mut f = flit(kind, vtick);
                    f.stream = StreamId((next() % 3) as u32);
                    s.on_arrival(vc, Cycles(cycle), &f);
                }
                // Random eligibility over the backlogged VCs.
                let eligible: Vec<bool> = (0..n)
                    .map(|v| s.pending(v) > 0 && next() % 4 != 0)
                    .collect();
                let expect = s.choose_unmemoized(&eligible);
                let got = s.choose(&eligible);
                assert_eq!(got, expect, "{kind:?} diverged at cycle {cycle}");
                if let Some(vc) = got {
                    s.on_service(vc);
                    choices.push(vc);
                }
            }
            assert!(choices.len() > 2_000, "{kind:?} trace must stay busy");
        }
    }
}
