//! Unsafe shared-memory primitives for deterministic parallel stepping.
//!
//! The parallel network stepper partitions disjoint element ranges of a
//! few big `Vec`s across a scoped thread pool. Rust's `&mut` rules cannot
//! express "thread A mutates elements 0..k while thread B mutates k..n of
//! the same slice", so the stepper publishes raw-pointer views and takes
//! on the aliasing obligations itself:
//!
//! * [`SharedSlice`] — an unlifetimed `(ptr, len)` view of a slice whose
//!   *elements* are handed out `&mut` one at a time. Callers guarantee
//!   that no element is referenced mutably by two threads at once and
//!   that the owning allocation outlives every use.
//! * [`SharedCell`] — an [`UnsafeCell`] wrapper for a value written by
//!   one thread and read by others *across a barrier* (the barrier's
//!   happens-before edge is what makes the access ordered).
//!
//! Both types are deliberately tiny and deliberately `unsafe` at every
//! access: safety lives in the stepper's ownership discipline (a fixed
//! owner per element per phase), not here.

use std::cell::UnsafeCell;

/// A raw `(ptr, len)` view of a slice, shareable across scoped threads.
///
/// Copyable and lifetime-free; the creator must keep the backing slice
/// alive and un-moved for as long as any copy is used, and re-derive the
/// view whenever the backing `Vec` may have reallocated.
#[derive(Debug)]
pub struct SharedSlice<T> {
    ptr: *mut T,
    len: usize,
}

impl<T> Clone for SharedSlice<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for SharedSlice<T> {}

// The view only moves `&mut T` / `&T` access between threads, which is
// what `T: Send` licenses. (A `SharedSlice` is not handed to untrusted
// code: every dereference is unsafe and audited at the call site.)
unsafe impl<T: Send> Send for SharedSlice<T> {}
unsafe impl<T: Send> Sync for SharedSlice<T> {}

impl<T> SharedSlice<T> {
    /// Creates a view of `slice`.
    ///
    /// The caller promises the backing storage outlives every copy of
    /// the view (scoped threads + a barrier protocol, in practice).
    pub fn new(slice: &mut [T]) -> SharedSlice<T> {
        SharedSlice {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
        }
    }

    /// Number of elements in the viewed slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the viewed slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A raw pointer to element `i`, for callers that need to project a
    /// *field* of the element without materializing a reference to the
    /// whole element (two threads may own different fields).
    ///
    /// # Safety
    ///
    /// `i` must be in bounds and the backing slice still alive. Any
    /// reference later formed from the pointer must honour the one-owner-
    /// per-(element, field) discipline.
    pub unsafe fn ptr_at(&self, i: usize) -> *mut T {
        debug_assert!(i < self.len, "index {i} out of bounds ({})", self.len);
        unsafe { self.ptr.add(i) }
    }

    /// A shared reference to element `i`.
    ///
    /// # Safety
    ///
    /// `i` must be in bounds, the backing slice alive, and no thread may
    /// hold `&mut` to the same element for the reference's lifetime.
    #[allow(clippy::mut_from_ref)] // the whole point of the type
    pub unsafe fn get(&self, i: usize) -> &T {
        unsafe { &*self.ptr_at(i) }
    }

    /// An exclusive reference to element `i`.
    ///
    /// # Safety
    ///
    /// `i` must be in bounds, the backing slice alive, and this thread
    /// must be the element's unique owner for the reference's lifetime
    /// (no other reference to it, shared or exclusive, anywhere).
    #[allow(clippy::mut_from_ref)] // the whole point of the type
    pub unsafe fn get_mut(&self, i: usize) -> &mut T {
        unsafe { &mut *self.ptr_at(i) }
    }
}

/// A single value written by one thread and read by others across a
/// barrier (e.g. the per-cycle context block the stepping coordinator
/// republishes before releasing its workers).
#[derive(Debug, Default)]
pub struct SharedCell<T> {
    cell: UnsafeCell<T>,
}

// Access is externally synchronized (barriers); `T: Send` is all that is
// required to move the value's access between threads.
unsafe impl<T: Send> Sync for SharedCell<T> {}

impl<T> SharedCell<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> SharedCell<T> {
        SharedCell {
            cell: UnsafeCell::new(value),
        }
    }

    /// A raw pointer to the value.
    ///
    /// # Safety
    ///
    /// Dereferences must be ordered by an external happens-before edge
    /// (a barrier or join) relative to every other access.
    pub fn get(&self) -> *mut T {
        self.cell.get()
    }

    /// Consumes the cell, returning the value.
    pub fn into_inner(self) -> T {
        self.cell.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;

    #[test]
    fn shared_slice_disjoint_ranges_across_threads() {
        let mut data = vec![0u64; 64];
        let view = SharedSlice::new(&mut data);
        assert_eq!(view.len(), 64);
        assert!(!view.is_empty());
        std::thread::scope(|s| {
            for t in 0..4usize {
                s.spawn(move || {
                    for i in (t * 16)..((t + 1) * 16) {
                        // SAFETY: each thread owns a disjoint 16-element
                        // range, and `data` outlives the scope.
                        unsafe { *view.get_mut(i) = i as u64 };
                    }
                });
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i as u64);
        }
    }

    #[test]
    fn shared_cell_publishes_across_a_barrier() {
        let cell = SharedCell::new(0u64);
        let barrier = Barrier::new(2);
        std::thread::scope(|s| {
            let (c, b) = (&cell, &barrier);
            s.spawn(move || {
                // SAFETY: the reader blocks on the barrier until after
                // this write.
                unsafe { *c.get() = 42 };
                b.wait();
            });
            barrier.wait();
            // SAFETY: ordered after the write by the barrier.
            assert_eq!(unsafe { *cell.get() }, 42);
        });
        assert_eq!(cell.into_inner(), 42);
    }
}
