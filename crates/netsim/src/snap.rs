//! Versioned, integrity-checked binary snapshot codec.
//!
//! Checkpoint/restore needs a format that is (a) deterministic — the same
//! simulation state always serialises to the same bytes, (b) self-checking —
//! a truncated or corrupted file must fail loudly at load, never restore a
//! subtly wrong state, and (c) dependency-free — the build environment is
//! offline, so no serde. [`SnapWriter`] and [`SnapReader`] provide exactly
//! that: little-endian primitives behind a fixed header of
//!
//! ```text
//! magic   [u8; 4]   b"MWSN"
//! version u32       bumped on any layout change
//! length  u64       payload bytes following the header
//! check   u64       FNV-1a over the payload
//! payload ...
//! ```
//!
//! Floats travel as raw IEEE-754 bits ([`f64::to_bits`]) so restore is
//! bit-identical, including negative zero and NaN payloads. There is no
//! schema: writer and reader must agree on the field sequence, which is why
//! every snapshotting type owns both its `save` and its `load`.
//!
//! # Example
//!
//! ```
//! use netsim::snap::{SnapReader, SnapWriter, SNAP_VERSION};
//!
//! let mut w = SnapWriter::new();
//! w.u64(42);
//! w.f64(0.1 + 0.2);
//! w.bytes(b"trailer");
//! let buf = w.finish();
//!
//! let mut r = SnapReader::new(&buf).unwrap();
//! assert_eq!(r.u64().unwrap(), 42);
//! assert_eq!(r.f64().unwrap(), 0.1 + 0.2);
//! assert_eq!(r.bytes().unwrap(), b"trailer");
//! r.finish().unwrap();
//! ```

/// Current snapshot layout version; bump on any field-sequence change.
///
/// History: v1 — initial layout; v2 — scheduler-zoo fields (global
/// `v_time`/`v_cycle`/`v_served`, per-VC DRR deficit), best-effort
/// source fractional-gap carry, and workload policer state; v3 —
/// `RunningStats` non-finite sample counter and per-stream real-time
/// message latency maxima (the delay-bound audit's observations).
pub const SNAP_VERSION: u32 = 3;

const MAGIC: [u8; 4] = *b"MWSN";
const HEADER_LEN: usize = 4 + 4 + 8 + 8;

/// Why a snapshot failed to load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The buffer does not start with the snapshot magic.
    BadMagic,
    /// The snapshot was written by an incompatible layout version.
    BadVersion {
        /// Version found in the header.
        found: u32,
    },
    /// The header-declared payload length disagrees with the buffer.
    BadLength {
        /// Length declared in the header.
        declared: u64,
        /// Payload bytes actually present.
        actual: u64,
    },
    /// The payload checksum does not match the header.
    BadChecksum,
    /// A read ran past the end of the payload.
    Underrun,
    /// The payload had bytes left after the final field was read.
    TrailingBytes {
        /// Unread payload bytes.
        remaining: usize,
    },
    /// A field held a value the reader cannot map back (e.g. an enum tag).
    BadValue(&'static str),
}

impl std::fmt::Display for SnapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            SnapError::BadVersion { found } => {
                write!(f, "snapshot version {found} != supported {SNAP_VERSION}")
            }
            SnapError::BadLength { declared, actual } => {
                write!(
                    f,
                    "snapshot declares {declared} payload bytes, found {actual}"
                )
            }
            SnapError::BadChecksum => write!(f, "snapshot checksum mismatch"),
            SnapError::Underrun => write!(f, "snapshot payload ended mid-field"),
            SnapError::TrailingBytes { remaining } => {
                write!(f, "snapshot has {remaining} unread trailing bytes")
            }
            SnapError::BadValue(what) => write!(f, "snapshot field out of range: {what}"),
        }
    }
}

impl std::error::Error for SnapError {}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Serialises a field sequence into a checksummed snapshot buffer.
#[derive(Debug, Default)]
pub struct SnapWriter {
    payload: Vec<u8>,
}

impl SnapWriter {
    /// Creates an empty writer.
    pub fn new() -> SnapWriter {
        SnapWriter::default()
    }

    /// Appends a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.payload.push(v);
    }

    /// Appends a `u32` little-endian.
    pub fn u32(&mut self, v: u32) {
        self.payload.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` little-endian.
    pub fn u64(&mut self, v: u64) {
        self.payload.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends an `f64` as its raw IEEE-754 bits.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Appends a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.payload.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Appends an `Option` tag byte, then `f(self)` if `Some`.
    pub fn option<T>(&mut self, v: Option<T>, f: impl FnOnce(&mut SnapWriter, T)) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                f(self, x);
            }
        }
    }

    /// Finalises the snapshot: header (magic, version, length, FNV-1a
    /// checksum) followed by the payload.
    pub fn finish(self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&SNAP_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a(&self.payload).to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }
}

/// Validates a snapshot buffer and reads its field sequence back.
#[derive(Debug)]
pub struct SnapReader<'a> {
    payload: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Validates magic, version, length and checksum, and positions the
    /// reader at the start of the payload.
    ///
    /// # Errors
    ///
    /// Returns the specific [`SnapError`] for any header or integrity
    /// failure.
    pub fn new(buf: &'a [u8]) -> Result<SnapReader<'a>, SnapError> {
        if buf.len() < HEADER_LEN || buf[..4] != MAGIC {
            return Err(SnapError::BadMagic);
        }
        let version = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes"));
        if version != SNAP_VERSION {
            return Err(SnapError::BadVersion { found: version });
        }
        let declared = u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes"));
        let payload = &buf[HEADER_LEN..];
        if declared != payload.len() as u64 {
            return Err(SnapError::BadLength {
                declared,
                actual: payload.len() as u64,
            });
        }
        let check = u64::from_le_bytes(buf[16..24].try_into().expect("8 bytes"));
        if fnv1a(payload) != check {
            return Err(SnapError::BadChecksum);
        }
        Ok(SnapReader { payload, pos: 0 })
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.payload.len() - self.pos < n {
            return Err(SnapError::Underrun);
        }
        let s = &self.payload[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a `usize` (stored as `u64`).
    ///
    /// # Errors
    ///
    /// [`SnapError::BadValue`] if the value does not fit a `usize`.
    pub fn usize(&mut self) -> Result<usize, SnapError> {
        usize::try_from(self.u64()?).map_err(|_| SnapError::BadValue("usize overflow"))
    }

    /// Reads an `f64` from its raw bits.
    pub fn f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `bool`.
    ///
    /// # Errors
    ///
    /// [`SnapError::BadValue`] on any byte other than 0 or 1.
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapError::BadValue("bool tag")),
        }
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let n = self.usize()?;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`SnapError::BadValue`] if the bytes are not valid UTF-8.
    pub fn str(&mut self) -> Result<String, SnapError> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| SnapError::BadValue("utf-8 string"))
    }

    /// Reads an `Option` tag byte, then `f(self)` if it was `Some`.
    ///
    /// # Errors
    ///
    /// [`SnapError::BadValue`] on any tag other than 0 or 1, or whatever
    /// `f` returns.
    pub fn option<T>(
        &mut self,
        f: impl FnOnce(&mut SnapReader<'a>) -> Result<T, SnapError>,
    ) -> Result<Option<T>, SnapError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(f(self)?)),
            _ => Err(SnapError::BadValue("option tag")),
        }
    }

    /// Asserts the whole payload has been consumed.
    ///
    /// # Errors
    ///
    /// [`SnapError::TrailingBytes`] if any payload bytes remain unread.
    pub fn finish(self) -> Result<(), SnapError> {
        let remaining = self.payload.len() - self.pos;
        if remaining != 0 {
            return Err(SnapError::TrailingBytes { remaining });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX);
        w.usize(12345);
        w.f64(-0.0);
        w.f64(f64::NAN);
        w.bool(true);
        w.bytes(&[1, 2, 3]);
        w.str("déjà");
        w.option(Some(9u64), |w, v| w.u64(v));
        w.option(None::<u64>, |w, v| w.u64(v));
        w.finish()
    }

    #[test]
    fn round_trip_is_exact() {
        let buf = sample();
        let mut r = SnapReader::new(&buf).unwrap();
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.usize().unwrap(), 12345);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.f64().unwrap().to_bits(), f64::NAN.to_bits());
        assert!(r.bool().unwrap());
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        assert_eq!(r.str().unwrap(), "déjà");
        assert_eq!(r.option(|r| r.u64()).unwrap(), Some(9));
        assert_eq!(r.option(|r| r.u64()).unwrap(), None);
        r.finish().unwrap();
    }

    #[test]
    fn deterministic_bytes() {
        assert_eq!(sample(), sample());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = sample();
        buf[0] ^= 0xFF;
        assert_eq!(SnapReader::new(&buf).unwrap_err(), SnapError::BadMagic);
        assert_eq!(SnapReader::new(&[]).unwrap_err(), SnapError::BadMagic);
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = sample();
        buf[4] = 0xFE;
        assert!(matches!(
            SnapReader::new(&buf).unwrap_err(),
            SnapError::BadVersion { .. }
        ));
    }

    #[test]
    fn truncation_rejected() {
        let buf = sample();
        let cut = &buf[..buf.len() - 1];
        assert!(matches!(
            SnapReader::new(cut).unwrap_err(),
            SnapError::BadLength { .. }
        ));
    }

    #[test]
    fn corruption_rejected() {
        let mut buf = sample();
        let last = buf.len() - 1;
        buf[last] ^= 0x01;
        assert_eq!(SnapReader::new(&buf).unwrap_err(), SnapError::BadChecksum);
    }

    #[test]
    fn underrun_and_trailing_detected() {
        let mut w = SnapWriter::new();
        w.u32(5);
        let buf = w.finish();
        let mut r = SnapReader::new(&buf).unwrap();
        assert_eq!(r.u64().unwrap_err(), SnapError::Underrun);

        let mut w = SnapWriter::new();
        w.u64(5);
        let buf = w.finish();
        let mut r = SnapReader::new(&buf).unwrap();
        assert_eq!(r.u32().unwrap(), 5);
        assert_eq!(
            r.finish().unwrap_err(),
            SnapError::TrailingBytes { remaining: 4 }
        );
    }
}
