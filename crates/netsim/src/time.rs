//! Simulation time: integer router cycles and the cycle ↔ wall-clock mapping.
//!
//! All simulators in this workspace advance an integer cycle counter. One
//! cycle is the *flit time*: the time the physical link needs to transfer a
//! single flit. For the paper's canonical configuration (32-bit flits on a
//! 400 Mbps link) that is 80 ns; the PCS comparison uses 100 Mbps links,
//! i.e. 320 ns cycles.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in (or span of) simulation time, measured in router cycles.
///
/// `Cycles` is a thin newtype over `u64` so that cycle counts cannot be
/// accidentally mixed with other integers (flit counts, byte counts, …).
///
/// # Example
///
/// ```
/// use netsim::Cycles;
/// let a = Cycles(10);
/// let b = a + Cycles(5);
/// assert_eq!(b, Cycles(15));
/// assert_eq!(b - a, Cycles(5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(pub u64);

impl Cycles {
    /// The zero point of simulated time.
    pub const ZERO: Cycles = Cycles(0);

    /// Largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: Cycles = Cycles(u64::MAX);

    /// Returns the raw cycle count.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }

    /// Saturating addition; `MAX` is sticky so "infinite" deadlines stay
    /// infinite.
    #[inline]
    pub fn saturating_add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction, clamping at zero.
    #[inline]
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// Cycle count as `f64`, for statistics.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }
}

impl Add for Cycles {
    type Output = Cycles;
    #[inline]
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    #[inline]
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    #[inline]
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl SubAssign for Cycles {
    #[inline]
    fn sub_assign(&mut self, rhs: Cycles) {
        self.0 -= rhs.0;
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, Add::add)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

impl From<u64> for Cycles {
    fn from(v: u64) -> Cycles {
        Cycles(v)
    }
}

/// Conversion between router cycles and wall-clock time.
///
/// A `TimeBase` is defined by the physical-link bandwidth and the flit
/// width; one cycle transfers exactly one flit.
///
/// # Example
///
/// ```
/// use netsim::{Cycles, TimeBase};
/// // The paper's canonical link: 400 Mbps, 32-bit flits → 80 ns cycles.
/// let tb = TimeBase::from_link(400e6, 32);
/// assert_eq!(tb.ns_per_cycle(), 80.0);
/// // A 33 ms MPEG-2 frame interval:
/// let frame = tb.cycles_from_ms(33.0);
/// assert_eq!(frame, Cycles(412_500));
/// assert!((tb.cycles_to_ms(frame) - 33.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeBase {
    ns_per_cycle: f64,
}

impl TimeBase {
    /// Creates a time base from a link bandwidth in bits/second and a flit
    /// width in bits.
    ///
    /// # Panics
    ///
    /// Panics if `link_bps` or `flit_bits` is zero/non-positive.
    pub fn from_link(link_bps: f64, flit_bits: u32) -> TimeBase {
        assert!(link_bps > 0.0, "link bandwidth must be positive");
        assert!(flit_bits > 0, "flit width must be positive");
        TimeBase {
            ns_per_cycle: f64::from(flit_bits) / link_bps * 1e9,
        }
    }

    /// Creates a time base directly from a cycle duration in nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is not positive.
    pub fn from_ns_per_cycle(ns: f64) -> TimeBase {
        assert!(ns > 0.0, "cycle time must be positive");
        TimeBase { ns_per_cycle: ns }
    }

    /// Nanoseconds per cycle.
    #[inline]
    pub fn ns_per_cycle(self) -> f64 {
        self.ns_per_cycle
    }

    /// Link flit rate in flits/second (the inverse of the cycle time).
    #[inline]
    pub fn flits_per_second(self) -> f64 {
        1e9 / self.ns_per_cycle
    }

    /// Converts a wall-clock duration in seconds to whole cycles (rounded).
    #[inline]
    pub fn cycles_from_secs(self, secs: f64) -> Cycles {
        Cycles((secs * 1e9 / self.ns_per_cycle).round() as u64)
    }

    /// Converts a wall-clock duration in milliseconds to whole cycles.
    #[inline]
    pub fn cycles_from_ms(self, ms: f64) -> Cycles {
        self.cycles_from_secs(ms * 1e-3)
    }

    /// Converts a wall-clock duration in microseconds to whole cycles.
    #[inline]
    pub fn cycles_from_us(self, us: f64) -> Cycles {
        self.cycles_from_secs(us * 1e-6)
    }

    /// Converts cycles to seconds.
    #[inline]
    pub fn cycles_to_secs(self, c: Cycles) -> f64 {
        c.as_f64() * self.ns_per_cycle * 1e-9
    }

    /// Converts cycles to milliseconds.
    #[inline]
    pub fn cycles_to_ms(self, c: Cycles) -> f64 {
        c.as_f64() * self.ns_per_cycle * 1e-6
    }

    /// Converts cycles to microseconds.
    #[inline]
    pub fn cycles_to_us(self, c: Cycles) -> f64 {
        c.as_f64() * self.ns_per_cycle * 1e-3
    }

    /// The number of cycles a rate of `flits_per_sec` corresponds to between
    /// consecutive flit services — i.e. the Virtual Clock `Vtick` for a
    /// stream with that bandwidth, expressed in cycles (fractional).
    ///
    /// # Panics
    ///
    /// Panics if `flits_per_sec` is not positive.
    #[inline]
    pub fn vtick_cycles(self, flits_per_sec: f64) -> f64 {
        assert!(flits_per_sec > 0.0, "flit rate must be positive");
        self.flits_per_second() / flits_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_arithmetic() {
        let a = Cycles(7);
        let b = Cycles(3);
        assert_eq!(a + b, Cycles(10));
        assert_eq!(a - b, Cycles(4));
        let mut c = a;
        c += b;
        assert_eq!(c, Cycles(10));
        c -= Cycles(1);
        assert_eq!(c, Cycles(9));
        assert_eq!(vec![a, b].into_iter().sum::<Cycles>(), Cycles(10));
    }

    #[test]
    fn saturation_is_sticky_at_max() {
        assert_eq!(Cycles::MAX.saturating_add(Cycles(5)), Cycles::MAX);
        assert_eq!(Cycles(3).saturating_sub(Cycles(5)), Cycles::ZERO);
    }

    #[test]
    fn display_shows_unit() {
        assert_eq!(Cycles(42).to_string(), "42cy");
    }

    #[test]
    fn timebase_400mbps() {
        let tb = TimeBase::from_link(400e6, 32);
        assert_eq!(tb.ns_per_cycle(), 80.0);
        assert_eq!(tb.flits_per_second(), 12_500_000.0);
        assert_eq!(tb.cycles_from_ms(33.0), Cycles(412_500));
        assert!((tb.cycles_to_ms(Cycles(412_500)) - 33.0).abs() < 1e-9);
    }

    #[test]
    fn timebase_100mbps() {
        let tb = TimeBase::from_link(100e6, 32);
        assert_eq!(tb.ns_per_cycle(), 320.0);
    }

    #[test]
    fn vtick_for_4mbps_stream_on_400mbps_link() {
        // A 4 Mbps stream is 125_000 flits/s of 32-bit flits; the link moves
        // 12.5 M flits/s, so the stream deserves one flit every 100 cycles.
        let tb = TimeBase::from_link(400e6, 32);
        let vtick = tb.vtick_cycles(4e6 / 32.0);
        assert!((vtick - 100.0).abs() < 1e-9);
    }

    #[test]
    fn roundtrip_us() {
        let tb = TimeBase::from_link(400e6, 32);
        let c = tb.cycles_from_us(165.0);
        assert!((tb.cycles_to_us(c) - 165.0).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "link bandwidth must be positive")]
    fn zero_bandwidth_panics() {
        let _ = TimeBase::from_link(0.0, 32);
    }
}
