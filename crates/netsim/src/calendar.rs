//! A future-event calendar: a stable min-heap of `(time, payload)` pairs.
//!
//! The wormhole and PCS simulators are cycle-driven, but traffic injection
//! is naturally event-driven (a VBR source emits one message every ~165 µs).
//! The [`Calendar`] bridges the two: the main loop pops every event due at
//! the current cycle, and when the network is idle it can skip the clock
//! straight to the next event.

use std::collections::BinaryHeap;

use crate::time::Cycles;

/// A pending event inside the heap. Ordering is reversed (min-heap) and tied
/// on a sequence number so that events scheduled for the same cycle pop in
/// insertion order (stability matters for reproducibility).
struct Entry<T> {
    at: Cycles,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse for a min-heap on (at, seq).
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A stable future-event list ordered by cycle.
///
/// # Example
///
/// ```
/// use netsim::{Calendar, Cycles};
///
/// let mut cal = Calendar::new();
/// cal.schedule(Cycles(20), 'b');
/// cal.schedule(Cycles(10), 'a');
/// cal.schedule(Cycles(10), 'c'); // same cycle: preserves insertion order
///
/// assert_eq!(cal.next_at(), Some(Cycles(10)));
/// assert_eq!(cal.pop_due(Cycles(10)), Some((Cycles(10), 'a')));
/// assert_eq!(cal.pop_due(Cycles(10)), Some((Cycles(10), 'c')));
/// assert_eq!(cal.pop_due(Cycles(10)), None);
/// assert_eq!(cal.len(), 1);
/// ```
#[derive(Default)]
pub struct Calendar<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> Calendar<T> {
    /// Creates an empty calendar.
    pub fn new() -> Calendar<T> {
        Calendar {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty calendar with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Calendar<T> {
        Calendar {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at cycle `at`.
    pub fn schedule(&mut self, at: Cycles, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// The cycle of the earliest pending event, if any.
    pub fn next_at(&self) -> Option<Cycles> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pops the earliest event if it is due at or before `now`.
    ///
    /// Call in a loop to drain every event due this cycle.
    pub fn pop_due(&mut self, now: Cycles) -> Option<(Cycles, T)> {
        if self.heap.peek().is_some_and(|e| e.at <= now) {
            let e = self.heap.pop().expect("peeked entry must pop");
            Some((e.at, e.payload))
        } else {
            None
        }
    }

    /// Pops the earliest event unconditionally.
    pub fn pop(&mut self) -> Option<(Cycles, T)> {
        self.heap.pop().map(|e| (e.at, e.payload))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Every pending entry as `(at, seq, payload)`, sorted by `(at, seq)`
    /// — i.e. in pop order. For checkpointing.
    pub fn snapshot_entries(&self) -> Vec<(Cycles, u64, &T)> {
        let mut out: Vec<(Cycles, u64, &T)> = self
            .heap
            .iter()
            .map(|e| (e.at, e.seq, &e.payload))
            .collect();
        out.sort_by_key(|&(at, seq, _)| (at, seq));
        out
    }

    /// The sequence number the next [`Calendar::schedule`] will assign.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Rebuilds a calendar from checkpointed entries, preserving the original
    /// sequence numbers (and therefore the exact pop order).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if any entry's `seq` is `>= next_seq`, which
    /// would let a later [`Calendar::schedule`] collide with it.
    pub fn from_snapshot(entries: Vec<(Cycles, u64, T)>, next_seq: u64) -> Calendar<T> {
        let mut heap = BinaryHeap::with_capacity(entries.len());
        for (at, seq, payload) in entries {
            debug_assert!(seq < next_seq, "entry seq {seq} >= next_seq {next_seq}");
            heap.push(Entry { at, seq, payload });
        }
        Calendar { heap, next_seq }
    }
}

impl<T> std::fmt::Debug for Calendar<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Calendar")
            .field("pending", &self.heap.len())
            .field("next_at", &self.next_at())
            .finish()
    }
}

impl<T> Extend<(Cycles, T)> for Calendar<T> {
    fn extend<I: IntoIterator<Item = (Cycles, T)>>(&mut self, iter: I) {
        for (at, payload) in iter {
            self.schedule(at, payload);
        }
    }
}

impl<T> FromIterator<(Cycles, T)> for Calendar<T> {
    fn from_iter<I: IntoIterator<Item = (Cycles, T)>>(iter: I) -> Calendar<T> {
        let mut cal = Calendar::new();
        cal.extend(iter);
        cal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut cal = Calendar::new();
        cal.schedule(Cycles(30), 3);
        cal.schedule(Cycles(10), 1);
        cal.schedule(Cycles(20), 2);
        assert_eq!(cal.pop(), Some((Cycles(10), 1)));
        assert_eq!(cal.pop(), Some((Cycles(20), 2)));
        assert_eq!(cal.pop(), Some((Cycles(30), 3)));
        assert_eq!(cal.pop(), None);
    }

    #[test]
    fn same_cycle_is_fifo() {
        let mut cal = Calendar::new();
        for i in 0..100 {
            cal.schedule(Cycles(5), i);
        }
        for i in 0..100 {
            assert_eq!(cal.pop_due(Cycles(5)), Some((Cycles(5), i)));
        }
    }

    #[test]
    fn pop_due_respects_now() {
        let mut cal = Calendar::new();
        cal.schedule(Cycles(10), ());
        assert_eq!(cal.pop_due(Cycles(9)), None);
        assert_eq!(cal.pop_due(Cycles(10)), Some((Cycles(10), ())));
    }

    #[test]
    fn next_at_and_len() {
        let mut cal = Calendar::new();
        assert!(cal.is_empty());
        assert_eq!(cal.next_at(), None);
        cal.schedule(Cycles(7), "x");
        assert_eq!(cal.next_at(), Some(Cycles(7)));
        assert_eq!(cal.len(), 1);
        cal.clear();
        assert!(cal.is_empty());
    }

    #[test]
    fn snapshot_round_trip_preserves_pop_order() {
        let mut cal = Calendar::new();
        cal.schedule(Cycles(9), 'c');
        cal.schedule(Cycles(4), 'a');
        cal.schedule(Cycles(4), 'b');
        let _ = cal.pop(); // consume 'a' so seqs are non-contiguous
        let entries: Vec<(Cycles, u64, char)> = cal
            .snapshot_entries()
            .into_iter()
            .map(|(at, seq, p)| (at, seq, *p))
            .collect();
        let mut rebuilt = Calendar::from_snapshot(entries, cal.next_seq());
        rebuilt.schedule(Cycles(4), 'd'); // new events sort after old same-cycle ones
        assert_eq!(rebuilt.pop(), Some((Cycles(4), 'b')));
        assert_eq!(rebuilt.pop(), Some((Cycles(4), 'd')));
        assert_eq!(rebuilt.pop(), Some((Cycles(9), 'c')));
    }

    #[test]
    fn from_iterator_collects() {
        let cal: Calendar<u32> = vec![(Cycles(2), 2), (Cycles(1), 1)].into_iter().collect();
        assert_eq!(cal.next_at(), Some(Cycles(1)));
        assert_eq!(cal.len(), 2);
    }
}
