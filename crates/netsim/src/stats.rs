//! Online statistics: Welford mean/variance, histograms and percentiles.
//!
//! The paper reports, for every experiment, the *mean frame delivery
//! interval* (d̄) and its *standard deviation* (σ_d), plus average latency
//! for best-effort traffic. [`RunningStats`] accumulates those in a single
//! pass without storing samples; [`Histogram`] supports percentile queries
//! for the extended analyses.

use crate::snap::{SnapError, SnapReader, SnapWriter};

/// Single-pass mean / variance / extrema accumulator (Welford's algorithm).
///
/// # Example
///
/// ```
/// use netsim::RunningStats;
///
/// let mut s = RunningStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert!((s.std_dev() - 2.138089935).abs() < 1e-6); // sample std-dev
/// assert_eq!(s.min(), 2.0);
/// assert_eq!(s.max(), 9.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    non_finite: u64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> RunningStats {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            non_finite: 0,
        }
    }

    /// Adds one sample.
    ///
    /// Non-finite samples (`NaN`, `±∞`) are tallied separately via
    /// [`RunningStats::non_finite`] and excluded from the moments — a NaN
    /// would poison `mean`/`m2` forever while `f64::min`/`max` silently
    /// *drop* it, leaving a NaN mean next to finite extrema.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            self.non_finite += 1;
            return;
        }
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        self.non_finite += other.non_finite;
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            let non_finite = self.non_finite;
            *self = *other;
            self.non_finite = non_finite;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Whether no samples have been pushed.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Non-finite samples (`NaN`, `±∞`) rejected by [`RunningStats::push`].
    pub fn non_finite(&self) -> u64 {
        self.non_finite
    }

    /// Arithmetic mean; `NaN` if empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Sample variance (n−1 denominator); `NaN` if fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation; `NaN` if fewer than two samples, except
    /// that a single sample reports `0.0` (a lone frame interval has no
    /// jitter, which is what the experiment tables want to print).
    pub fn std_dev(&self) -> f64 {
        match self.n {
            0 => f64::NAN,
            1 => 0.0,
            _ => self.variance().sqrt(),
        }
    }

    /// Smallest sample; `NaN` if empty.
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest sample; `NaN` if empty.
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Serialises the accumulator into a snapshot.
    pub fn save(&self, w: &mut SnapWriter) {
        w.u64(self.n);
        w.f64(self.mean);
        w.f64(self.m2);
        w.f64(self.min);
        w.f64(self.max);
        w.u64(self.non_finite);
    }

    /// Restores an accumulator saved by [`RunningStats::save`].
    ///
    /// # Errors
    ///
    /// Propagates snapshot decoding errors.
    pub fn load(r: &mut SnapReader<'_>) -> Result<RunningStats, SnapError> {
        Ok(RunningStats {
            n: r.u64()?,
            mean: r.f64()?,
            m2: r.f64()?,
            min: r.f64()?,
            max: r.f64()?,
            non_finite: r.u64()?,
        })
    }
}

impl Extend<f64> for RunningStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> RunningStats {
        let mut s = RunningStats::new();
        s.extend(iter);
        s
    }
}

/// A fixed-width bucket histogram over `[lo, hi)` with overflow/underflow
/// buckets, supporting percentile queries.
///
/// # Example
///
/// ```
/// use netsim::Histogram;
///
/// let mut h = Histogram::new(0.0, 100.0, 10);
/// for x in 0..100 {
///     h.record(x as f64);
/// }
/// assert_eq!(h.count(), 100);
/// let p50 = h.percentile(50.0);
/// assert!((40.0..=60.0).contains(&p50));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    non_finite: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `n` equal-width buckets.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `n == 0`.
    pub fn new(lo: f64, hi: f64, n: usize) -> Histogram {
        assert!(lo < hi, "empty histogram range");
        assert!(n > 0, "need at least one bucket");
        Histogram {
            lo,
            hi,
            buckets: vec![0; n],
            underflow: 0,
            overflow: 0,
            non_finite: 0,
            count: 0,
        }
    }

    /// Records one sample.
    ///
    /// Non-finite samples (`NaN`, `±∞`) are tallied separately via
    /// [`Histogram::non_finite`] and excluded from [`Histogram::count`]
    /// and percentiles — `NaN as usize` is `0`, so filing them into
    /// bucket 0 would silently skew the low percentiles.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            self.non_finite += 1;
            return;
        }
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.buckets.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            let idx = idx.min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Total samples recorded (including under/overflow).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Samples below the histogram range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the histogram range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Non-finite samples (`NaN`, `±∞`) rejected by [`Histogram::record`].
    pub fn non_finite(&self) -> u64 {
        self.non_finite
    }

    /// The bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Approximate percentile (0–100) by linear interpolation within the
    /// containing bucket.
    ///
    /// The out-of-range buckets clamp rather than extrapolate: a target
    /// rank that falls among the underflow samples reports `lo`, and one
    /// that falls among the overflow samples reports `hi` — so with any
    /// overflow at all, `percentile(100.0)` is exactly `hi` regardless of
    /// how far beyond the range the samples actually were. Callers that
    /// need to detect the clamp should check [`Histogram::overflow`] /
    /// [`Histogram::underflow`] (or compare against [`Histogram::hi`]).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]` or the histogram is empty.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0,100]");
        assert!(self.count > 0, "empty histogram");
        let target = (p / 100.0 * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = self.underflow;
        if seen >= target {
            return self.lo;
        }
        let w = (self.hi - self.lo) / self.buckets.len() as f64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if seen + c >= target {
                // Reaching here with `seen < target` forces `c >= target - seen
                // >= 1`; an empty bucket satisfying the branch would mean the
                // running tally is corrupt, so assert instead of masking it.
                debug_assert!(c > 0, "empty bucket cannot contain the target rank");
                let into = (target - seen) as f64 / c as f64;
                return self.lo + (i as f64 + into) * w;
            }
            seen += c;
        }
        // The target rank lies among the overflow samples: clamp to `hi`.
        debug_assert!(seen + self.overflow >= target, "count/bucket tally desync");
        self.hi
    }

    /// Lower bound of the bucketed range.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound of the bucketed range (the value overflow percentiles
    /// clamp to).
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Serialises the histogram into a snapshot.
    pub fn save(&self, w: &mut SnapWriter) {
        w.f64(self.lo);
        w.f64(self.hi);
        w.usize(self.buckets.len());
        for &b in &self.buckets {
            w.u64(b);
        }
        w.u64(self.underflow);
        w.u64(self.overflow);
        w.u64(self.non_finite);
        w.u64(self.count);
    }

    /// Restores a histogram saved by [`Histogram::save`].
    ///
    /// # Errors
    ///
    /// Propagates snapshot decoding errors; rejects an empty bucket vector
    /// or an inverted range.
    pub fn load(r: &mut SnapReader<'_>) -> Result<Histogram, SnapError> {
        let lo = r.f64()?;
        let hi = r.f64()?;
        if lo.partial_cmp(&hi) != Some(std::cmp::Ordering::Less) {
            return Err(SnapError::BadValue("histogram range"));
        }
        let n = r.usize()?;
        if n == 0 {
            return Err(SnapError::BadValue("histogram bucket count"));
        }
        let mut buckets = Vec::with_capacity(n);
        for _ in 0..n {
            buckets.push(r.u64()?);
        }
        Ok(Histogram {
            lo,
            hi,
            buckets,
            underflow: r.u64()?,
            overflow: r.u64()?,
            non_finite: r.u64()?,
            count: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_nan() {
        let s = RunningStats::new();
        assert!(s.mean().is_nan());
        assert!(s.std_dev().is_nan());
        assert!(s.min().is_nan());
        assert_eq!(s.count(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn single_sample() {
        let s: RunningStats = [42.0].into_iter().collect();
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
    }

    #[test]
    fn welford_matches_two_pass() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64).collect();
        let s: RunningStats = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-9);
        assert!((s.variance() - var).abs() < 1e-6);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..500).map(|i| (i as f64).sin() * 10.0).collect();
        let (a, b) = xs.split_at(200);
        let mut sa: RunningStats = a.iter().copied().collect();
        let sb: RunningStats = b.iter().copied().collect();
        let all: RunningStats = xs.iter().copied().collect();
        sa.merge(&sb);
        assert_eq!(sa.count(), all.count());
        assert!((sa.mean() - all.mean()).abs() < 1e-9);
        assert!((sa.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(sa.min(), all.min());
        assert_eq!(sa.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: RunningStats = [1.0, 2.0].into_iter().collect();
        let before = s;
        s.merge(&RunningStats::new());
        assert_eq!(s, before);
        let mut e = RunningStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn non_finite_samples_do_not_poison_stats() {
        // Regression: push() used to fold NaN into mean/m2 forever (the
        // Welford recurrences propagate it) while f64::min/max silently
        // *dropped* it — a NaN mean next to finite extrema.
        let mut s = RunningStats::new();
        s.push(2.0);
        s.push(f64::NAN);
        s.push(f64::INFINITY);
        s.push(f64::NEG_INFINITY);
        s.push(4.0);
        assert_eq!(s.count(), 2, "non-finite samples must not count");
        assert_eq!(s.non_finite(), 3);
        assert_eq!(s.mean(), 3.0, "mean must stay finite");
        assert!(s.variance().is_finite());
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 4.0);
    }

    #[test]
    fn merge_threads_non_finite_counts() {
        let mut a = RunningStats::new();
        a.push(f64::NAN);
        a.push(1.0);
        let mut b = RunningStats::new();
        b.push(f64::INFINITY);
        b.push(3.0);
        a.merge(&b);
        assert_eq!(a.non_finite(), 2);
        assert_eq!(a.mean(), 2.0);
        // Merging into an empty accumulator keeps its rejected tally.
        let mut e = RunningStats::new();
        e.push(f64::NAN);
        e.merge(&b);
        assert_eq!(e.non_finite(), 2);
        assert_eq!(e.count(), 1);
        assert_eq!(e.mean(), 3.0);
        // …and merging an empty-but-poisoned side still carries its tally.
        let mut c = RunningStats::new();
        c.push(5.0);
        let mut poisoned = RunningStats::new();
        poisoned.push(f64::NAN);
        c.merge(&poisoned);
        assert_eq!(c.non_finite(), 1);
        assert_eq!(c.mean(), 5.0);
    }

    #[test]
    fn non_finite_count_round_trips_through_snapshot() {
        use crate::snap::{SnapReader, SnapWriter};
        let mut s = RunningStats::new();
        s.push(1.0);
        s.push(f64::NAN);
        let mut w = SnapWriter::new();
        s.save(&mut w);
        let buf = w.finish();
        let mut r = SnapReader::new(&buf).unwrap();
        let s2 = RunningStats::load(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(s, s2);
        assert_eq!(s2.non_finite(), 1);
    }

    #[test]
    fn histogram_bucket_placement() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(-1.0);
        h.record(0.0);
        h.record(9.999);
        h.record(10.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[9], 1);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn histogram_percentiles_of_uniform() {
        let mut h = Histogram::new(0.0, 1000.0, 100);
        for i in 0..1000 {
            h.record(i as f64);
        }
        for &(p, expect) in &[(10.0, 100.0), (50.0, 500.0), (90.0, 900.0)] {
            let got = h.percentile(p);
            assert!((got - expect).abs() < 20.0, "p{p}: got {got}");
        }
    }

    #[test]
    #[should_panic(expected = "empty histogram")]
    fn percentile_of_empty_panics() {
        let h = Histogram::new(0.0, 1.0, 4);
        let _ = h.percentile(50.0);
    }

    #[test]
    fn overflow_percentiles_clamp_to_hi() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(5.0);
        h.record(100.0);
        h.record(2000.0);
        // Ranks falling among the overflow samples report exactly `hi`,
        // however far beyond the range the samples were.
        assert_eq!(h.percentile(100.0), h.hi());
        assert_eq!(h.percentile(90.0), h.hi());
        assert_eq!(h.overflow(), 2);
        // The in-range rank still interpolates inside its bucket.
        let p33 = h.percentile(33.0);
        assert!((5.0..=6.0).contains(&p33), "p33 = {p33}");
    }

    #[test]
    fn stats_and_histogram_snapshot_round_trip() {
        use crate::snap::{SnapReader, SnapWriter};
        let s: RunningStats = [1.5, -2.0, 7.25, 0.0].into_iter().collect();
        let mut h = Histogram::new(0.0, 10.0, 8);
        for x in [-3.0, 0.5, 5.0, 9.9, 42.0, f64::NAN] {
            h.record(x);
        }
        let mut w = SnapWriter::new();
        s.save(&mut w);
        h.save(&mut w);
        let buf = w.finish();
        let mut r = SnapReader::new(&buf).unwrap();
        let s2 = RunningStats::load(&mut r).unwrap();
        let h2 = Histogram::load(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(s, s2);
        assert_eq!(h, h2);
    }

    #[test]
    fn histogram_excludes_non_finite_samples() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(f64::NEG_INFINITY);
        // NaN must not land in bucket 0 and must not count as a sample.
        assert_eq!(h.buckets()[0], 0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
        assert_eq!(h.non_finite(), 3);
        // Percentiles only see the finite samples.
        h.record(5.0);
        h.record(f64::NAN);
        assert_eq!(h.count(), 1);
        assert_eq!(h.non_finite(), 4);
        let p50 = h.percentile(50.0);
        assert!((5.0..=6.0).contains(&p50), "p50 = {p50}");
    }
}
