//! Telemetry sinks: an observability hook shared by every simulator.
//!
//! A [`TelemetrySink`] receives [`FlitEvent`]s — one per flit lifecycle
//! step (inject / route / arbitrate / deliver) — from any simulator that
//! supports tracing. The default [`NoopSink`] reports
//! [`TelemetrySink::is_enabled`] `false`; simulators cache that flag and
//! guard every event emission behind a plain branch, so a disabled sink
//! costs nothing on the hot path. [`JsonlSink`] buffers one JSON object
//! per line (JSONL), suitable for offline analysis of arbitration
//! decisions.
//!
//! This crate sits below the network-type crates, so events carry raw
//! integer identifiers rather than typed ids.
//!
//! # Example
//!
//! ```
//! use netsim::telemetry::{FlitEvent, FlitEventKind, JsonlSink, TelemetrySink};
//!
//! let mut sink = JsonlSink::new();
//! assert!(sink.is_enabled());
//! sink.record(&FlitEvent {
//!     cycle: 7,
//!     kind: FlitEventKind::Inject,
//!     router: None,
//!     port: 3,
//!     vc: 1,
//!     stream: 12,
//!     msg: 99,
//!     real_time: true,
//! });
//! let text = String::from_utf8(sink.into_bytes()).unwrap();
//! assert!(text.starts_with("{\"cycle\":7,\"event\":\"inject\""));
//! ```

/// The lifecycle step a [`FlitEvent`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlitEventKind {
    /// A flit entered a network-interface injection queue.
    Inject,
    /// A head flit was routed: an output port and VC were granted.
    Route,
    /// A flit won its multiplexer arbitration and moved (e.g. crossed the
    /// crossbar).
    Arbitrate,
    /// A flit reached its destination endpoint.
    Deliver,
}

impl FlitEventKind {
    /// The lowercase JSON label for this kind.
    pub fn label(self) -> &'static str {
        match self {
            FlitEventKind::Inject => "inject",
            FlitEventKind::Route => "route",
            FlitEventKind::Arbitrate => "arbitrate",
            FlitEventKind::Deliver => "deliver",
        }
    }
}

/// One flit lifecycle event.
///
/// Identifiers are raw integers (this crate sits below the typed network
/// crates): `router` is `None` for endpoint-side events (inject/deliver),
/// where `port` holds the node id instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlitEvent {
    /// Simulation cycle the event happened on.
    pub cycle: u64,
    /// Lifecycle step.
    pub kind: FlitEventKind,
    /// Router id, or `None` for endpoint events.
    pub router: Option<u32>,
    /// Port (router events) or node id (endpoint events).
    pub port: u32,
    /// Virtual channel involved.
    pub vc: u32,
    /// Stream the flit belongs to.
    pub stream: u32,
    /// Message the flit belongs to.
    pub msg: u64,
    /// Whether the flit is real-time (VBR/CBR) rather than best-effort.
    pub real_time: bool,
}

/// Receiver of flit lifecycle events.
///
/// Simulators cache [`TelemetrySink::is_enabled`] once per run and emit
/// events only when it is `true`, so sinks never see a partial stream and
/// a disabled sink adds no per-flit work.
pub trait TelemetrySink {
    /// Whether the simulator should generate events at all.
    fn is_enabled(&self) -> bool {
        false
    }

    /// Receives one event. The default implementation discards it.
    fn record(&mut self, event: &FlitEvent) {
        let _ = event;
    }
}

/// The default sink: disabled, discards everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl TelemetrySink for NoopSink {}

/// Buffers events as JSON Lines (one compact JSON object per line).
///
/// All fields are integers, strings or booleans, so the output is always
/// valid JSON. The buffer is in memory; callers write it out themselves,
/// which keeps parallel sweeps deterministic (each task traces into its
/// own buffer and the harness concatenates them in task order).
#[derive(Debug, Clone, Default)]
pub struct JsonlSink {
    buf: Vec<u8>,
    events: u64,
}

impl JsonlSink {
    /// Creates an empty sink.
    pub fn new() -> JsonlSink {
        JsonlSink::default()
    }

    /// Number of events recorded.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// The buffered JSONL bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// A view of the buffered JSONL bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }
}

impl TelemetrySink for JsonlSink {
    fn is_enabled(&self) -> bool {
        true
    }

    fn record(&mut self, ev: &FlitEvent) {
        use std::io::Write as _;
        self.events += 1;
        let _ = write!(
            self.buf,
            "{{\"cycle\":{},\"event\":\"{}\",",
            ev.cycle,
            ev.kind.label()
        );
        match ev.router {
            Some(r) => {
                let _ = write!(self.buf, "\"router\":{r},");
            }
            None => {
                let _ = write!(self.buf, "\"router\":null,");
            }
        }
        let _ = writeln!(
            self.buf,
            "\"port\":{},\"vc\":{},\"stream\":{},\"msg\":{},\"class\":\"{}\"}}",
            ev.port,
            ev.vc,
            ev.stream,
            ev.msg,
            if ev.real_time { "rt" } else { "be" }
        );
    }
}

/// Buffers events in memory for later replay into another sink.
///
/// The deterministic parallel stepper gives each worker its own
/// `BufferSink`; after the phase barrier the coordinator drains the
/// buffers into the real sink in a fixed participant order, which is what
/// keeps a traced parallel run byte-identical to the sequential one.
#[derive(Debug, Clone, Default)]
pub struct BufferSink {
    enabled: bool,
    events: Vec<FlitEvent>,
}

impl BufferSink {
    /// Creates an empty buffer; `enabled` mirrors the real sink's
    /// [`TelemetrySink::is_enabled`] so simulators guard emission the
    /// same way they would against the real sink.
    pub fn new(enabled: bool) -> BufferSink {
        BufferSink {
            enabled,
            events: Vec::new(),
        }
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the buffer holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Replays every buffered event into `sink` in recording order and
    /// clears the buffer (the backing allocation is kept for reuse).
    pub fn drain_into(&mut self, sink: &mut dyn TelemetrySink) {
        for ev in self.events.drain(..) {
            sink.record(&ev);
        }
    }
}

impl TelemetrySink for BufferSink {
    fn is_enabled(&self) -> bool {
        self.enabled
    }

    fn record(&mut self, event: &FlitEvent) {
        self.events.push(*event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(kind: FlitEventKind) -> FlitEvent {
        FlitEvent {
            cycle: 42,
            kind,
            router: Some(1),
            port: 2,
            vc: 3,
            stream: 4,
            msg: 5,
            real_time: false,
        }
    }

    #[test]
    fn noop_sink_is_disabled_and_discards() {
        let mut s = NoopSink;
        assert!(!s.is_enabled());
        s.record(&event(FlitEventKind::Route)); // must not panic
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let mut s = JsonlSink::new();
        s.record(&event(FlitEventKind::Route));
        s.record(&event(FlitEventKind::Deliver));
        assert_eq!(s.events(), 2);
        let text = String::from_utf8(s.into_bytes()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"event\":\"route\""));
        assert!(lines[1].contains("\"event\":\"deliver\""));
        assert!(lines[0].contains("\"router\":1"));
        assert!(lines[0].contains("\"class\":\"be\""));
    }

    #[test]
    fn endpoint_events_have_null_router() {
        let mut s = JsonlSink::new();
        let mut ev = event(FlitEventKind::Inject);
        ev.router = None;
        ev.real_time = true;
        s.record(&ev);
        let text = String::from_utf8(s.into_bytes()).unwrap();
        assert!(text.contains("\"router\":null"));
        assert!(text.contains("\"class\":\"rt\""));
    }

    #[test]
    fn buffer_sink_replays_in_order() {
        let mut buf = BufferSink::new(true);
        assert!(buf.is_enabled());
        assert!(buf.is_empty());
        buf.record(&event(FlitEventKind::Route));
        buf.record(&event(FlitEventKind::Arbitrate));
        assert_eq!(buf.len(), 2);
        // Replaying into a JsonlSink matches recording the events there
        // directly.
        let mut direct = JsonlSink::new();
        direct.record(&event(FlitEventKind::Route));
        direct.record(&event(FlitEventKind::Arbitrate));
        let mut replayed = JsonlSink::new();
        buf.drain_into(&mut replayed);
        assert!(buf.is_empty());
        assert_eq!(replayed.as_bytes(), direct.as_bytes());
    }

    #[test]
    fn buffer_sink_mirrors_enabled_flag() {
        assert!(!BufferSink::new(false).is_enabled());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(FlitEventKind::Inject.label(), "inject");
        assert_eq!(FlitEventKind::Route.label(), "route");
        assert_eq!(FlitEventKind::Arbitrate.label(), "arbitrate");
        assert_eq!(FlitEventKind::Deliver.label(), "deliver");
    }
}
