//! Audit sink: structured flow-control invariant violations.
//!
//! The audit layer (enabled per run, mirroring [`telemetry`]'s
//! free-when-off design) verifies wormhole flow-control invariants —
//! credit conservation, flit conservation, worm ordering — and files every
//! violation into an [`AuditLog`]. Like telemetry, this crate sits below
//! the typed network crates, so violations carry raw integer identifiers.
//!
//! The log stores at most [`AuditLog::MAX_STORED`] violations verbatim (a
//! broken invariant typically re-fires on every audit pass; keeping the
//! first few is what a human needs) but counts all of them in
//! [`AuditLog::total`].
//!
//! [`telemetry`]: crate::telemetry
//!
//! # Example
//!
//! ```
//! use netsim::audit::{AuditLog, Violation, ViolationKind};
//!
//! let mut log = AuditLog::new();
//! assert!(log.is_clean());
//! log.record(Violation {
//!     cycle: 512,
//!     router: Some(1),
//!     port: 2,
//!     vc: 0,
//!     kind: ViolationKind::CreditConservation,
//!     detail: "5 credits + 16 buffered > 20 capacity".into(),
//! });
//! assert_eq!(log.total(), 1);
//! assert!(log.violations()[0].to_string().contains("credit-conservation"));
//! ```

use std::fmt;

use crate::snap::{SnapError, SnapReader, SnapWriter};

/// The invariant a [`Violation`] breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// Per-VC credits + in-flight flits/credits + downstream occupancy no
    /// longer sum to the downstream buffer capacity: a credit was minted or
    /// lost rather than matched to a freed slot.
    CreditConservation,
    /// A sender holds more credits for a VC than the downstream buffer has
    /// slots.
    CreditOverflow,
    /// Flits in flight no longer match the sum of queue, link and buffer
    /// occupancy: a flit was duplicated or dropped inside the network.
    FlitConservation,
    /// A VC buffer's flit sequence is not a well-formed run of worms
    /// (head→body→tail, no interleaving).
    WormOrder,
    /// An output staging queue grew beyond its configured capacity.
    StagingOverflow,
    /// An input VC holds a grant on an output VC that has no recorded
    /// owner, or one owned by a different message.
    GrantWithoutOwner,
    /// An incrementally maintained active set (pending heads, granted
    /// connections, staged output VCs, resident-flit counter) disagrees
    /// with the buffer state it summarizes.
    ActiveSetDesync,
}

impl ViolationKind {
    /// The stable lowercase label for this kind (used in JSON output).
    pub fn label(self) -> &'static str {
        match self {
            ViolationKind::CreditConservation => "credit-conservation",
            ViolationKind::CreditOverflow => "credit-overflow",
            ViolationKind::FlitConservation => "flit-conservation",
            ViolationKind::WormOrder => "worm-order",
            ViolationKind::StagingOverflow => "staging-overflow",
            ViolationKind::GrantWithoutOwner => "grant-without-owner",
            ViolationKind::ActiveSetDesync => "active-set-desync",
        }
    }

    fn to_tag(self) -> u8 {
        match self {
            ViolationKind::CreditConservation => 0,
            ViolationKind::CreditOverflow => 1,
            ViolationKind::FlitConservation => 2,
            ViolationKind::WormOrder => 3,
            ViolationKind::StagingOverflow => 4,
            ViolationKind::GrantWithoutOwner => 5,
            ViolationKind::ActiveSetDesync => 6,
        }
    }

    fn from_tag(tag: u8) -> Result<ViolationKind, SnapError> {
        Ok(match tag {
            0 => ViolationKind::CreditConservation,
            1 => ViolationKind::CreditOverflow,
            2 => ViolationKind::FlitConservation,
            3 => ViolationKind::WormOrder,
            4 => ViolationKind::StagingOverflow,
            5 => ViolationKind::GrantWithoutOwner,
            6 => ViolationKind::ActiveSetDesync,
            _ => return Err(SnapError::BadValue("violation kind tag")),
        })
    }
}

/// One observed invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Simulation cycle the audit pass observed the violation on.
    pub cycle: u64,
    /// Router id, or `None` for endpoint/injection-side violations.
    pub router: Option<u32>,
    /// Port (router) or node id (endpoint).
    pub port: u32,
    /// Virtual channel involved (0 when the violation is not per-VC).
    pub vc: u32,
    /// Which invariant broke.
    pub kind: ViolationKind,
    /// Human-readable specifics (observed vs. expected values).
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.router {
            Some(r) => write!(
                f,
                "[cycle {}] {} at router {} port {} vc {}: {}",
                self.cycle,
                self.kind.label(),
                r,
                self.port,
                self.vc,
                self.detail
            ),
            None => write!(
                f,
                "[cycle {}] {} at node {} vc {}: {}",
                self.cycle,
                self.kind.label(),
                self.port,
                self.vc,
                self.detail
            ),
        }
    }
}

/// Accumulates [`Violation`]s across a run.
#[derive(Debug, Clone, Default)]
pub struct AuditLog {
    violations: Vec<Violation>,
    total: u64,
}

impl AuditLog {
    /// Violations stored verbatim; beyond this only [`AuditLog::total`]
    /// keeps counting.
    pub const MAX_STORED: usize = 64;

    /// Creates an empty log.
    pub fn new() -> AuditLog {
        AuditLog::default()
    }

    /// Files one violation.
    pub fn record(&mut self, v: Violation) {
        self.total += 1;
        if self.violations.len() < AuditLog::MAX_STORED {
            self.violations.push(v);
        }
    }

    /// Total violations observed, including ones beyond the storage cap.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Whether no violation has been observed.
    pub fn is_clean(&self) -> bool {
        self.total == 0
    }

    /// The stored violations (first [`AuditLog::MAX_STORED`] observed).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Serialises the log into a snapshot.
    pub fn save(&self, w: &mut SnapWriter) {
        w.u64(self.total);
        w.usize(self.violations.len());
        for v in &self.violations {
            w.u64(v.cycle);
            w.option(v.router, |w, r| w.u32(r));
            w.u32(v.port);
            w.u32(v.vc);
            w.u8(v.kind.to_tag());
            w.str(&v.detail);
        }
    }

    /// Restores a log saved by [`AuditLog::save`].
    ///
    /// # Errors
    ///
    /// Propagates snapshot decoding errors.
    pub fn load(r: &mut SnapReader<'_>) -> Result<AuditLog, SnapError> {
        let total = r.u64()?;
        let n = r.usize()?;
        if n > AuditLog::MAX_STORED {
            return Err(SnapError::BadValue("stored violation count"));
        }
        let mut violations = Vec::with_capacity(n);
        for _ in 0..n {
            violations.push(Violation {
                cycle: r.u64()?,
                router: r.option(|r| r.u32())?,
                port: r.u32()?,
                vc: r.u32()?,
                kind: ViolationKind::from_tag(r.u8()?)?,
                detail: r.str()?,
            });
        }
        Ok(AuditLog { violations, total })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violation(cycle: u64) -> Violation {
        Violation {
            cycle,
            router: Some(3),
            port: 1,
            vc: 2,
            kind: ViolationKind::CreditOverflow,
            detail: "21 credits for a 20-slot buffer".into(),
        }
    }

    #[test]
    fn empty_log_is_clean() {
        let log = AuditLog::new();
        assert!(log.is_clean());
        assert_eq!(log.total(), 0);
        assert!(log.violations().is_empty());
    }

    #[test]
    fn records_and_counts() {
        let mut log = AuditLog::new();
        log.record(violation(10));
        log.record(violation(11));
        assert!(!log.is_clean());
        assert_eq!(log.total(), 2);
        assert_eq!(log.violations().len(), 2);
        assert_eq!(log.violations()[0].cycle, 10);
    }

    #[test]
    fn storage_caps_but_total_keeps_counting() {
        let mut log = AuditLog::new();
        for c in 0..200 {
            log.record(violation(c));
        }
        assert_eq!(log.total(), 200);
        assert_eq!(log.violations().len(), AuditLog::MAX_STORED);
        assert_eq!(log.violations().last().unwrap().cycle, 63);
    }

    #[test]
    fn display_includes_site_and_kind() {
        let text = violation(99).to_string();
        assert!(text.contains("cycle 99"));
        assert!(text.contains("credit-overflow"));
        assert!(text.contains("router 3"));
        let endpoint = Violation {
            router: None,
            ..violation(7)
        };
        assert!(endpoint.to_string().contains("node 1"));
    }

    #[test]
    fn snapshot_round_trip_preserves_log() {
        use crate::snap::{SnapReader, SnapWriter};
        let mut log = AuditLog::new();
        for c in 0..70 {
            log.record(violation(c));
        }
        log.record(Violation {
            router: None,
            kind: ViolationKind::ActiveSetDesync,
            ..violation(71)
        });
        let mut w = SnapWriter::new();
        log.save(&mut w);
        let buf = w.finish();
        let mut r = SnapReader::new(&buf).unwrap();
        let back = AuditLog::load(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.total(), log.total());
        assert_eq!(back.violations(), log.violations());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(
            ViolationKind::CreditConservation.label(),
            "credit-conservation"
        );
        assert_eq!(ViolationKind::FlitConservation.label(), "flit-conservation");
        assert_eq!(ViolationKind::WormOrder.label(), "worm-order");
        assert_eq!(
            ViolationKind::GrantWithoutOwner.label(),
            "grant-without-owner"
        );
        assert_eq!(ViolationKind::ActiveSetDesync.label(), "active-set-desync");
    }
}
