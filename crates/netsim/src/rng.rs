//! Seedable, reproducible random numbers for simulation experiments.
//!
//! Every experiment in the reproduction is driven by a single `u64` seed so
//! that a reported table can be regenerated bit-for-bit. [`SimRng`] wraps
//! `rand`'s `StdRng` with the handful of draws the simulators need and a
//! cheap [`SimRng::fork`] for giving each traffic source an independent but
//! derived stream.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A deterministic random-number source.
///
/// # Example
///
/// ```
/// use netsim::SimRng;
/// let mut a = SimRng::seed_from(7);
/// let mut b = SimRng::seed_from(7);
/// assert_eq!(a.range_u64(0, 100), b.range_u64(0, 100));
/// ```
#[derive(Debug)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> SimRng {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// The raw generator state, for checkpointing.
    pub fn state(&self) -> [u64; 4] {
        self.inner.state()
    }

    /// Rebuilds a generator from a previously captured [`SimRng::state`].
    ///
    /// # Panics
    ///
    /// Panics if the state is all-zero (not producible by seeding).
    pub fn from_state(s: [u64; 4]) -> SimRng {
        SimRng {
            inner: StdRng::from_state(s),
        }
    }

    /// Derives an independent child generator.
    ///
    /// The child is seeded from the parent's stream, so distinct calls give
    /// distinct children while the whole tree stays a pure function of the
    /// root seed.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from(self.inner.random())
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        self.inner.random_range(lo..hi)
    }

    /// Uniform index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot draw an index from an empty range");
        self.inner.random_range(0..n)
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is not finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        assert!(lo < hi, "empty range [{lo}, {hi})");
        self.inner.random_range(lo..hi)
    }

    /// Uniform `f64` in the open interval `(0, 1]` — safe as input to `ln()`.
    pub fn unit_open(&mut self) -> f64 {
        1.0 - self.inner.random::<f64>()
    }

    /// A Bernoulli draw with probability `p` of `true`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        self.inner.random::<f64>() < p
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Uniform index in `[0, n)` excluding `not`; used for "random
    /// destination other than myself".
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `not >= n`.
    pub fn index_excluding(&mut self, n: usize, not: usize) -> usize {
        assert!(n >= 2, "need at least two choices to exclude one");
        assert!(not < n, "excluded index out of range");
        let r = self.index(n - 1);
        if r >= not {
            r + 1
        } else {
            r
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(123);
        let mut b = SimRng::seed_from(123);
        for _ in 0..100 {
            assert_eq!(a.range_u64(0, 1_000_000), b.range_u64(0, 1_000_000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let va: Vec<u64> = (0..10).map(|_| a.range_u64(0, u64::MAX - 1)).collect();
        let vb: Vec<u64> = (0..10).map(|_| b.range_u64(0, u64::MAX - 1)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn forks_are_deterministic_and_distinct() {
        let mut root1 = SimRng::seed_from(9);
        let mut root2 = SimRng::seed_from(9);
        let mut c1a = root1.fork();
        let mut c1b = root1.fork();
        let mut c2a = root2.fork();
        assert_eq!(c1a.range_u64(0, 1000), c2a.range_u64(0, 1000));
        // Sibling forks diverge.
        let xa: Vec<u64> = (0..8).map(|_| c1a.range_u64(0, 1 << 62)).collect();
        let xb: Vec<u64> = (0..8).map(|_| c1b.range_u64(0, 1 << 62)).collect();
        assert_ne!(xa, xb);
    }

    #[test]
    fn index_excluding_never_returns_excluded() {
        let mut rng = SimRng::seed_from(5);
        for _ in 0..1000 {
            let v = rng.index_excluding(8, 3);
            assert_ne!(v, 3);
            assert!(v < 8);
        }
    }

    #[test]
    fn unit_open_in_range() {
        let mut rng = SimRng::seed_from(11);
        for _ in 0..1000 {
            let u = rng.unit_open();
            assert!(u > 0.0 && u <= 1.0);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SimRng::seed_from(1);
        let _ = rng.range_u64(5, 5);
    }

    #[test]
    fn state_round_trip_resumes_the_stream() {
        let mut rng = SimRng::seed_from(77);
        for _ in 0..37 {
            rng.range_u64(0, 1 << 40);
        }
        let mut resumed = SimRng::from_state(rng.state());
        for _ in 0..100 {
            assert_eq!(rng.range_u64(0, 1 << 40), resumed.range_u64(0, 1 << 40));
        }
    }
}
