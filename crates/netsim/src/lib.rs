//! Deterministic cycle-level simulation substrate for the MediaWorm study.
//!
//! This crate provides the building blocks that every simulator in the
//! workspace shares:
//!
//! * [`Cycles`] and [`TimeBase`] — an integer cycle clock plus the mapping
//!   between router cycles and wall-clock time (one cycle is the time one
//!   flit needs on the physical link, e.g. 80 ns for a 32-bit flit on a
//!   400 Mbps link).
//! * [`Calendar`] — a monotonic future-event list used for traffic
//!   injection and any other timed callback.
//! * [`SimRng`] — a seedable random-number generator wrapper so every
//!   experiment is reproducible from a single `u64` seed.
//! * [`dist`] — the probability distributions the paper's workload needs
//!   (normal frame sizes, exponential backoff), implemented in-tree on top
//!   of `rand` alone.
//! * [`stats`] — online mean/variance (Welford), histograms and percentile
//!   helpers used to compute the paper's d̄ / σ_d metrics.
//! * [`telemetry`] — the [`TelemetrySink`] trait plus the no-op and JSONL
//!   sinks that the simulators feed flit lifecycle events into.
//! * [`audit`] — the [`AuditLog`] of flow-control invariant violations
//!   that the simulators' audit mode files findings into.
//! * [`par`] — the raw shared-slice / shared-cell views the deterministic
//!   parallel stepper partitions its state through.
//! * [`snap`] — the versioned, checksummed binary codec that deterministic
//!   checkpoint/restore serialises simulation state through.
//!
//! # Example
//!
//! ```
//! use netsim::{Calendar, Cycles, SimRng, TimeBase};
//!
//! let tb = TimeBase::from_link(400_000_000.0, 32); // 400 Mbps, 32-bit flits
//! assert_eq!(tb.ns_per_cycle(), 80.0);
//!
//! let mut cal: Calendar<&str> = Calendar::new();
//! cal.schedule(Cycles(10), "second");
//! cal.schedule(Cycles(5), "first");
//! assert_eq!(cal.pop_due(Cycles(7)), Some((Cycles(5), "first")));
//! assert_eq!(cal.pop_due(Cycles(7)), None);
//!
//! let mut rng = SimRng::seed_from(42);
//! let x = rng.range_f64(0.0, 1.0);
//! assert!((0.0..1.0).contains(&x));
//! ```

#![warn(missing_docs)]

pub mod audit;
pub mod calendar;
pub mod dist;
pub mod par;
pub mod rng;
pub mod snap;
pub mod stats;
pub mod telemetry;
pub mod time;

pub use audit::{AuditLog, Violation, ViolationKind};
pub use calendar::Calendar;
pub use rng::SimRng;
pub use snap::{SnapError, SnapReader, SnapWriter};
pub use stats::{Histogram, RunningStats};
pub use telemetry::{FlitEvent, FlitEventKind, JsonlSink, NoopSink, TelemetrySink};
pub use time::{Cycles, TimeBase};
