//! Probability distributions used by the paper's workload model.
//!
//! The workspace's dependency policy allows `rand` but not `rand_distr`, so
//! the few distributions the MediaWorm workload needs are implemented here:
//!
//! * [`Normal`] — Box–Muller transform; MPEG-2 VBR frame sizes are
//!   N(16 666 B, 3 333 B) in the paper.
//! * [`Exponential`] — inverse-CDF; used for Poisson best-effort arrivals
//!   and PCS retry backoff.
//! * [`UniformRange`] — a reusable uniform `[lo, hi)` sampler.

use crate::rng::SimRng;

/// A sampled distribution over `f64`.
///
/// The trait is object-safe so workload builders can hold
/// `Box<dyn Distribution>` for configurable traffic models.
pub trait Distribution: std::fmt::Debug {
    /// Draws one sample.
    fn sample(&self, rng: &mut SimRng) -> f64;

    /// The distribution's mean, used for rate accounting.
    fn mean(&self) -> f64;
}

/// Normal (Gaussian) distribution via the Box–Muller transform.
///
/// # Example
///
/// ```
/// use netsim::dist::{Distribution, Normal};
/// use netsim::SimRng;
///
/// // The paper's MPEG-2 frame-size model.
/// let frames = Normal::new(16_666.0, 3_333.0);
/// let mut rng = SimRng::seed_from(1);
/// let size = frames.sample(&mut rng);
/// assert!(size.is_finite());
/// assert_eq!(frames.mean(), 16_666.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution with the given mean and standard
    /// deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or either parameter is not finite.
    pub fn new(mean: f64, std_dev: f64) -> Normal {
        assert!(
            mean.is_finite() && std_dev.is_finite(),
            "parameters must be finite"
        );
        assert!(std_dev >= 0.0, "standard deviation must be non-negative");
        Normal { mean, std_dev }
    }

    /// The standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

/// One standard-normal variate from two uniforms via Box–Muller.
///
/// `u1` is clamped away from zero before the `ln()` so a zero uniform
/// cannot produce `ln(0) → -inf` (and, scaled, a NaN). [`SimRng::unit_open`]
/// already draws from `(0, 1]`, but this function accepts the full closed
/// unit square so callers with other uniform sources (or a literal `0.0`)
/// get a finite variate instead of an infinity.
///
/// The cosine branch deterministically discards the second Box–Muller
/// variate: every call consumes exactly the two uniforms it is given, which
/// keeps RNG-stream consumption per [`Normal::sample`] call fixed (two
/// draws), a property the reproducibility tests pin.
pub fn box_muller(u1: f64, u2: f64) -> f64 {
    let u1 = u1.max(f64::MIN_POSITIVE);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

impl Distribution for Normal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        // Box–Muller: exactly two independent uniforms → one standard
        // normal. (The second normal is discarded; simplicity over a
        // cached value keeps the sampler stateless and `&self`.)
        let u1 = rng.unit_open();
        let u2 = rng.unit_open();
        self.mean + self.std_dev * box_muller(u1, u2)
    }

    fn mean(&self) -> f64 {
        self.mean
    }
}

/// Exponential distribution with the given mean, via inverse CDF.
///
/// # Example
///
/// ```
/// use netsim::dist::{Distribution, Exponential};
/// use netsim::SimRng;
///
/// let gaps = Exponential::new(100.0);
/// let mut rng = SimRng::seed_from(2);
/// assert!(gaps.sample(&mut rng) >= 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not strictly positive and finite.
    pub fn new(mean: f64) -> Exponential {
        assert!(mean.is_finite() && mean > 0.0, "mean must be positive");
        Exponential { mean }
    }
}

impl Distribution for Exponential {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        -self.mean * rng.unit_open().ln()
    }

    fn mean(&self) -> f64 {
        self.mean
    }
}

/// Uniform distribution on `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformRange {
    lo: f64,
    hi: f64,
}

impl UniformRange {
    /// Creates a uniform distribution on `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or the bounds are not finite.
    pub fn new(lo: f64, hi: f64) -> UniformRange {
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        assert!(lo < hi, "empty range");
        UniformRange { lo, hi }
    }
}

impl Distribution for UniformRange {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        rng.range_f64(self.lo, self.hi)
    }

    fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }
}

/// A degenerate distribution that always returns the same value; used for
/// CBR traffic, whose frame size is the constant 16 666 bytes in the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constant(pub f64);

impl Distribution for Constant {
    fn sample(&self, _rng: &mut SimRng) -> f64 {
        self.0
    }

    fn mean(&self) -> f64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stats(d: &dyn Distribution, n: usize, seed: u64) -> (f64, f64) {
        let mut rng = SimRng::seed_from(seed);
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        (mean, var.sqrt())
    }

    #[test]
    fn normal_matches_parameters() {
        let d = Normal::new(16_666.0, 3_333.0);
        let (mean, sd) = sample_stats(&d, 200_000, 42);
        assert!((mean - 16_666.0).abs() < 50.0, "mean={mean}");
        assert!((sd - 3_333.0).abs() < 50.0, "sd={sd}");
    }

    #[test]
    fn normal_zero_sd_is_constant() {
        let d = Normal::new(5.0, 0.0);
        let mut rng = SimRng::seed_from(1);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 5.0);
        }
    }

    #[test]
    fn exponential_matches_mean() {
        let d = Exponential::new(250.0);
        let (mean, _) = sample_stats(&d, 200_000, 7);
        assert!((mean - 250.0).abs() < 5.0, "mean={mean}");
    }

    #[test]
    fn exponential_is_non_negative() {
        let d = Exponential::new(1.0);
        let mut rng = SimRng::seed_from(3);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn uniform_stays_in_range() {
        let d = UniformRange::new(10.0, 20.0);
        let mut rng = SimRng::seed_from(4);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((10.0..20.0).contains(&x));
        }
        assert_eq!(d.mean(), 15.0);
    }

    #[test]
    fn constant_is_constant() {
        let d = Constant(3.5);
        let mut rng = SimRng::seed_from(5);
        assert_eq!(d.sample(&mut rng), 3.5);
        assert_eq!(d.mean(), 3.5);
    }

    #[test]
    fn trait_objects_work() {
        let ds: Vec<Box<dyn Distribution>> = vec![
            Box::new(Normal::new(0.0, 1.0)),
            Box::new(Exponential::new(1.0)),
            Box::new(Constant(1.0)),
        ];
        let mut rng = SimRng::seed_from(6);
        for d in &ds {
            let _ = d.sample(&mut rng);
        }
    }

    #[test]
    #[should_panic(expected = "standard deviation must be non-negative")]
    fn negative_sd_panics() {
        let _ = Normal::new(0.0, -1.0);
    }

    #[test]
    fn box_muller_is_finite_on_zero_uniform() {
        // A zero first uniform hits ln(0) = -inf without the clamp; the
        // guarded transform must stay finite over the whole closed square.
        assert!(box_muller(0.0, 0.0).is_finite());
        assert!(box_muller(0.0, 0.25).is_finite());
        assert!(box_muller(0.0, 1.0).is_finite());
        // The clamp maps 0 to the smallest positive double, the most
        // extreme (but finite) tail value the transform can produce.
        assert_eq!(box_muller(0.0, 1.0), box_muller(f64::MIN_POSITIVE, 1.0));
        // Interior points are untouched by the guard.
        let z = box_muller(0.5, 0.5);
        assert!(z.is_finite());
        assert_eq!(
            z,
            (-2.0f64 * 0.5f64.ln()).sqrt() * (std::f64::consts::TAU * 0.5).cos()
        );
    }

    #[test]
    fn normal_sample_consumes_exactly_two_uniforms() {
        // Pin RNG-stream consumption: each sample() call must draw exactly
        // two uniforms (the second Box–Muller variate is discarded, never
        // cached), so a same-seeded generator that skips 2·k uniforms sits
        // at the same stream position as one that sampled k normals.
        let d = Normal::new(16_666.0, 3_333.0);
        let mut sampled = SimRng::seed_from(99);
        let mut skipped = SimRng::seed_from(99);
        for k in 0..5 {
            let _ = d.sample(&mut sampled);
            let _ = (skipped.unit_open(), skipped.unit_open());
            assert_eq!(
                sampled.range_u64(0, u64::MAX - 1),
                skipped.range_u64(0, u64::MAX - 1),
                "stream positions diverged after {} samples",
                k + 1
            );
        }
    }

    #[test]
    fn normal_sample_matches_manual_box_muller() {
        // sample() must be exactly mean + sd · box_muller(u1, u2) on the
        // two uniforms it draws, bit-for-bit.
        let d = Normal::new(100.0, 10.0);
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..10 {
            let x = d.sample(&mut a);
            let (u1, u2) = (b.unit_open(), b.unit_open());
            assert_eq!(x.to_bits(), (100.0 + 10.0 * box_muller(u1, u2)).to_bits());
        }
    }
}
