//! A minimal JSON document builder for machine-readable reports.
//!
//! The workspace is fully offline (no serde), so the bench harness builds
//! its `BENCH_<name>.json` files from this hand-rolled tree. Two rules
//! keep the output well-formed and deterministic:
//!
//! * **No NaN/Infinity ever**: [`Json::num`] maps non-finite floats to
//!   `null` (JSON has no NaN literal), so empty trackers can never poison
//!   a report.
//! * **Insertion order is preserved**: objects are ordered vectors, not
//!   hash maps, so the same inputs always serialize to the same bytes.
//!
//! # Example
//!
//! ```
//! use metrics::Json;
//!
//! let doc = Json::obj([
//!     ("name", Json::str("fig5")),
//!     ("mean_us", Json::num(42.5)),
//!     ("empty", Json::num(f64::NAN)), // → null
//! ]);
//! assert_eq!(doc.to_string(), r#"{"name":"fig5","mean_us":42.5,"empty":null}"#);
//! ```

use std::fmt;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i64),
    /// An unsigned integer (counters can exceed `i64`).
    Uint(u64),
    /// A finite float. Use [`Json::num`] to construct safely.
    Num(f64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A float value, mapping NaN/±Infinity to `null`.
    pub fn num(x: f64) -> Json {
        if x.is_finite() {
            Json::Num(x)
        } else {
            Json::Null
        }
    }

    /// An optional float: `None` and non-finite both become `null`.
    pub fn opt_num(x: Option<f64>) -> Json {
        match x {
            Some(v) => Json::num(v),
            None => Json::Null,
        }
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// An array from values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Appends a key/value pair (panics if `self` is not an object).
    pub fn push(&mut self, key: impl Into<String>, value: Json) {
        match self {
            Json::Obj(pairs) => pairs.push((key.into(), value)),
            _ => panic!("Json::push on a non-object"),
        }
    }
}

fn escape(s: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(i) => write!(f, "{i}"),
            Json::Uint(u) => write!(f, "{u}"),
            Json::Num(x) => {
                debug_assert!(x.is_finite(), "Json::Num must be finite; use Json::num");
                if x.is_finite() {
                    // `{}` on f64 always produces a valid JSON number
                    // (e.g. "42.5", "1e300"), never "inf"/"NaN" for
                    // finite inputs.
                    write!(f, "{x}")
                } else {
                    f.write_str("null")
                }
            }
            Json::Str(s) => escape(s, f),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape(k, f)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_serialize() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::Int(-3).to_string(), "-3");
        assert_eq!(Json::Uint(u64::MAX).to_string(), "18446744073709551615");
        assert_eq!(Json::num(2.5).to_string(), "2.5");
        assert_eq!(Json::str("hi").to_string(), "\"hi\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::num(f64::NAN).to_string(), "null");
        assert_eq!(Json::num(f64::INFINITY).to_string(), "null");
        assert_eq!(Json::num(f64::NEG_INFINITY).to_string(), "null");
        assert_eq!(Json::opt_num(None).to_string(), "null");
        assert_eq!(Json::opt_num(Some(f64::NAN)).to_string(), "null");
        assert_eq!(Json::opt_num(Some(1.0)).to_string(), "1");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(Json::str("a\"b\\c\nd").to_string(), r#""a\"b\\c\nd""#);
        assert_eq!(Json::str("\u{1}").to_string(), "\"\\u0001\"");
    }

    #[test]
    fn objects_preserve_insertion_order() {
        let mut doc = Json::obj([("z", Json::Int(1))]);
        doc.push("a", Json::Int(2));
        assert_eq!(doc.to_string(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn arrays_and_nesting() {
        let doc = Json::arr([
            Json::obj([("k", Json::Null)]),
            Json::arr([Json::Int(1), Json::Int(2)]),
        ]);
        assert_eq!(doc.to_string(), r#"[{"k":null},[1,2]]"#);
    }
}
