//! Best-effort message latency tracking.

use netsim::snap::{SnapError, SnapReader, SnapWriter};
use netsim::{Cycles, RunningStats, TimeBase};

/// Accumulates message latencies (creation → tail delivery) and reports the
/// paper's "average latency for best-effort traffic" in microseconds.
///
/// # Example
///
/// ```
/// use metrics::LatencyTracker;
/// use netsim::{Cycles, TimeBase};
///
/// let tb = TimeBase::from_link(400e6, 32); // 80 ns cycles
/// let mut t = LatencyTracker::new(tb);
/// t.record(Cycles(0), Cycles(125)); // 10 µs
/// t.record(Cycles(100), Cycles(350)); // 20 µs
/// assert!((t.mean_us() - 15.0).abs() < 1e-9);
/// assert_eq!(t.count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct LatencyTracker {
    timebase: TimeBase,
    stats: RunningStats,
    warmup_end: Cycles,
    censored: u64,
}

impl LatencyTracker {
    /// Creates a tracker; `timebase` converts cycles to microseconds.
    pub fn new(timebase: TimeBase) -> LatencyTracker {
        LatencyTracker {
            timebase,
            stats: RunningStats::new(),
            warmup_end: Cycles::ZERO,
            censored: 0,
        }
    }

    /// Ignores messages *created* before `at` (their queueing time belongs
    /// to the warm-up transient).
    pub fn set_warmup_end(&mut self, at: Cycles) {
        self.warmup_end = at;
    }

    /// Records one message delivered at `delivered` that was created at
    /// `created`.
    ///
    /// # Panics
    ///
    /// Panics if `delivered < created`.
    pub fn record(&mut self, created: Cycles, delivered: Cycles) {
        assert!(delivered >= created, "delivery before creation");
        if created < self.warmup_end {
            return;
        }
        self.stats
            .push(self.timebase.cycles_to_us(delivered - created));
    }

    /// Mean latency in microseconds (`NaN` if no samples).
    ///
    /// Prefer [`LatencyTracker::mean_us_opt`] anywhere the value is
    /// serialized or merged — a raw NaN silently poisons downstream
    /// aggregates and is not valid JSON.
    pub fn mean_us(&self) -> f64 {
        self.stats.mean()
    }

    /// Mean latency in microseconds, `None` with zero samples.
    pub fn mean_us_opt(&self) -> Option<f64> {
        finite(self.stats.mean())
    }

    /// Standard deviation of latency in microseconds.
    pub fn std_us(&self) -> f64 {
        self.stats.std_dev()
    }

    /// Standard deviation in microseconds, `None` with fewer than two
    /// samples (where the estimator is undefined — unlike
    /// [`LatencyTracker::std_us`], which reports a lone sample as `0.0`
    /// for the tables).
    pub fn std_us_opt(&self) -> Option<f64> {
        if self.stats.count() < 2 {
            return None;
        }
        finite(self.stats.std_dev())
    }

    /// Largest observed latency in microseconds.
    pub fn max_us(&self) -> f64 {
        self.stats.max()
    }

    /// Largest observed latency in microseconds, `None` with zero samples.
    pub fn max_us_opt(&self) -> Option<f64> {
        finite(self.stats.max())
    }

    /// Number of recorded messages.
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// Registers `n` right-censored observations: messages whose delivery
    /// the end of the run cut off, so their (unknown, lower-bounded)
    /// latencies are *absent* from every statistic this tracker reports.
    ///
    /// Censored observations never enter the mean/σ/max — recording a
    /// made-up value would bias the statistics the other way — but keeping
    /// an explicit count lets reports say "mean of N delivered, M
    /// truncated" instead of silently presenting a biased tail.
    pub fn note_censored(&mut self, n: u64) {
        self.censored += n;
    }

    /// Observations known to be missing from the sample (end-of-run
    /// truncation); see [`LatencyTracker::note_censored`].
    pub fn censored(&self) -> u64 {
        self.censored
    }

    /// Serialises the tracker's accumulated state into a snapshot (the
    /// time base is construction-time configuration and is not written).
    pub fn save(&self, w: &mut SnapWriter) {
        self.stats.save(w);
        w.u64(self.warmup_end.0);
        w.u64(self.censored);
    }

    /// Restores state saved by [`LatencyTracker::save`] into this
    /// freshly-constructed tracker.
    ///
    /// # Errors
    ///
    /// Propagates snapshot decoding errors.
    pub fn load_into(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.stats = RunningStats::load(r)?;
        self.warmup_end = Cycles(r.u64()?);
        self.censored = r.u64()?;
        Ok(())
    }
}

/// `Some(x)` only for finite values: empty-tracker NaN and the ±∞ that
/// seed min/max registers both map to `None`.
fn finite(x: f64) -> Option<f64> {
    x.is_finite().then_some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tb() -> TimeBase {
        TimeBase::from_link(400e6, 32)
    }

    #[test]
    fn mean_of_known_latencies() {
        let mut t = LatencyTracker::new(tb());
        // 125 cycles at 80 ns = 10 µs.
        t.record(Cycles(0), Cycles(125));
        t.record(Cycles(0), Cycles(375));
        assert!((t.mean_us() - 20.0).abs() < 1e-9);
        assert!((t.max_us() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn warmup_filters_by_creation_time() {
        let mut t = LatencyTracker::new(tb());
        t.set_warmup_end(Cycles(1000));
        t.record(Cycles(999), Cycles(2000)); // created in warm-up: dropped
        t.record(Cycles(1000), Cycles(1125)); // counted
        assert_eq!(t.count(), 1);
        assert!((t.mean_us() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn empty_tracker_reports_nan() {
        let t = LatencyTracker::new(tb());
        assert!(t.mean_us().is_nan());
        assert_eq!(t.count(), 0);
    }

    #[test]
    fn empty_tracker_opt_accessors_are_none() {
        let t = LatencyTracker::new(tb());
        assert_eq!(t.mean_us_opt(), None);
        assert_eq!(t.std_us_opt(), None);
        assert_eq!(t.max_us_opt(), None);
    }

    #[test]
    fn opt_accessors_match_raw_when_populated() {
        let mut t = LatencyTracker::new(tb());
        t.record(Cycles(0), Cycles(125));
        // One sample: mean/max defined, std still undefined.
        assert_eq!(t.mean_us_opt(), Some(t.mean_us()));
        assert_eq!(t.max_us_opt(), Some(t.max_us()));
        assert_eq!(t.std_us_opt(), None);
        t.record(Cycles(0), Cycles(375));
        assert_eq!(t.std_us_opt(), Some(t.std_us()));
    }

    #[test]
    #[should_panic(expected = "delivery before creation")]
    fn negative_latency_panics() {
        let mut t = LatencyTracker::new(tb());
        t.record(Cycles(10), Cycles(5));
    }

    #[test]
    fn censored_observations_are_counted_but_not_averaged() {
        // Drain-window regression: truncated messages must be visible in
        // censored() without perturbing any delivered-message statistic.
        let mut t = LatencyTracker::new(tb());
        t.record(Cycles(0), Cycles(125)); // 10 µs
        t.record(Cycles(0), Cycles(375)); // 30 µs
        let (mean, count) = (t.mean_us(), t.count());
        t.note_censored(5);
        t.note_censored(2);
        assert_eq!(t.censored(), 7);
        assert_eq!(t.count(), count, "censoring must not add samples");
        assert_eq!(
            t.mean_us().to_bits(),
            mean.to_bits(),
            "censoring must not move the mean"
        );
        assert_eq!(LatencyTracker::new(tb()).censored(), 0);
    }
}
