//! Output metrics for the MediaWorm experiments.
//!
//! The paper evaluates every configuration with three numbers (§4.1):
//!
//! * **mean frame delivery interval** d̄ — the average time between the
//!   deliveries of two successive frames of a stream at its destination
//!   (33 ms ≙ jitter-free 30 frames/s MPEG-2);
//! * **standard deviation of the delivery interval** σ_d — σ_d ≈ 0 together
//!   with d̄ ≈ 33 ms means jitter-free delivery;
//! * **average latency of best-effort traffic** in microseconds.
//!
//! [`DeliveryTracker`] accumulates the first two, [`LatencyTracker`] the
//! third, and [`report`] renders the paper-style text tables the experiment
//! binaries print.

#![warn(missing_docs)]

pub mod delivery;
pub mod json;
pub mod latency;
pub mod report;

pub use delivery::{DeliveryTracker, JitterSummary};
pub use json::Json;
pub use latency::LatencyTracker;
pub use report::Table;
