//! Frame delivery interval (jitter) tracking.

use flitnet::StreamId;
use netsim::snap::{SnapError, SnapReader, SnapWriter};
use netsim::{Cycles, Histogram, RunningStats, TimeBase};

/// Aggregated jitter results for a set of real-time streams.
///
/// All values are in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JitterSummary {
    /// Mean frame delivery interval d̄.
    pub mean_ms: f64,
    /// Standard deviation of the delivery interval σ_d.
    pub std_ms: f64,
    /// Largest observed interval.
    pub max_ms: f64,
    /// 99th-percentile interval (histogram estimate; `NaN` if empty).
    pub p99_ms: f64,
    /// Number of intervals that entered the statistics.
    pub intervals: u64,
    /// Number of frame deliveries observed (including each stream's first).
    pub frames: u64,
}

impl JitterSummary {
    /// Whether delivery is jitter-free in the paper's sense: the mean
    /// interval tracks the source frame interval within `tol_ms` and the
    /// deviation is below `tol_ms`.
    pub fn is_jitter_free(&self, source_interval_ms: f64, tol_ms: f64) -> bool {
        (self.mean_ms - source_interval_ms).abs() <= tol_ms && self.std_ms <= tol_ms
    }

    /// Whether no interval was measured (all statistics undefined).
    pub fn is_empty(&self) -> bool {
        self.intervals == 0
    }

    /// Mean interval, `None` when undefined (no intervals measured).
    pub fn mean_ms_opt(&self) -> Option<f64> {
        finite(self.mean_ms)
    }

    /// Interval standard deviation, `None` when undefined (fewer than two
    /// intervals — unlike the raw `std_ms`, which reports a lone interval
    /// as `0.0` for the tables).
    pub fn std_ms_opt(&self) -> Option<f64> {
        if self.intervals < 2 {
            return None;
        }
        finite(self.std_ms)
    }

    /// Largest interval, `None` when undefined.
    pub fn max_ms_opt(&self) -> Option<f64> {
        finite(self.max_ms)
    }

    /// 99th-percentile interval, `None` when undefined.
    pub fn p99_ms_opt(&self) -> Option<f64> {
        finite(self.p99_ms)
    }
}

/// `Some(x)` only for finite values: empty-tracker NaN and the ±∞ that
/// seed min/max registers both map to `None`.
fn finite(x: f64) -> Option<f64> {
    x.is_finite().then_some(x)
}

/// Records frame-completion times per stream and accumulates the
/// between-frame intervals.
///
/// The delivery interval is "the difference between the delivery times of
/// two successive frames at the destination" (§4.1). Intervals are pooled
/// across all tracked streams, matching the per-configuration d̄/σ_d the
/// paper plots.
///
/// A warm-up boundary may be set; intervals whose *later* frame completes
/// before the boundary are discarded, and the first interval measured
/// across the boundary is also discarded (its earlier frame belongs to the
/// warm-up regime).
///
/// # Example
///
/// ```
/// use metrics::DeliveryTracker;
/// use flitnet::StreamId;
/// use netsim::{Cycles, TimeBase};
///
/// let tb = TimeBase::from_link(400e6, 32);
/// let frame = tb.cycles_from_ms(33.0).get();
/// let mut t = DeliveryTracker::new(tb);
/// for k in 0..10 {
///     t.record_frame(StreamId(0), Cycles(k * frame));
/// }
/// let s = t.summary();
/// assert_eq!(s.intervals, 9);
/// assert!((s.mean_ms - 33.0).abs() < 1e-9);
/// assert!(s.std_ms.abs() < 1e-9);
/// assert!(s.is_jitter_free(33.0, 0.5));
/// ```
#[derive(Debug, Clone)]
pub struct DeliveryTracker {
    timebase: TimeBase,
    /// Last completion per stream (dense by stream id).
    last: Vec<Option<Cycles>>,
    intervals: RunningStats,
    /// Per-stream interval statistics (dense by stream id).
    per_stream: Vec<RunningStats>,
    /// Interval histogram in milliseconds, for percentile estimates.
    histogram: Histogram,
    frames: u64,
    warmup_end: Cycles,
}

impl DeliveryTracker {
    /// Creates a tracker; `timebase` converts cycles to milliseconds.
    pub fn new(timebase: TimeBase) -> DeliveryTracker {
        DeliveryTracker {
            timebase,
            last: Vec::new(),
            intervals: RunningStats::new(),
            per_stream: Vec::new(),
            // 0–330 ms covers ten frame intervals; overflow still counts.
            histogram: Histogram::new(0.0, 330.0, 660),
            frames: 0,
            warmup_end: Cycles::ZERO,
        }
    }

    /// Discards statistics for frames completing before `at`, and the first
    /// interval spanning the boundary.
    pub fn set_warmup_end(&mut self, at: Cycles) {
        self.warmup_end = at;
    }

    /// Records that `stream` completed a frame at cycle `at`.
    ///
    /// Out-of-order completions (earlier than the stream's previous frame)
    /// are a simulator bug and panic.
    pub fn record_frame(&mut self, stream: StreamId, at: Cycles) {
        let idx = stream.index();
        if idx >= self.last.len() {
            self.last.resize(idx + 1, None);
        }
        if at >= self.warmup_end {
            self.frames += 1;
        }
        if let Some(prev) = self.last[idx] {
            assert!(at >= prev, "frame completions must be monotonic per stream");
            if prev >= self.warmup_end {
                let ms = self.timebase.cycles_to_ms(at - prev);
                self.intervals.push(ms);
                self.histogram.record(ms);
                if idx >= self.per_stream.len() {
                    self.per_stream.resize_with(idx + 1, RunningStats::new);
                }
                self.per_stream[idx].push(ms);
            }
        }
        self.last[idx] = Some(at);
    }

    /// Number of streams that have delivered at least one frame.
    pub fn streams_seen(&self) -> usize {
        self.last.iter().filter(|l| l.is_some()).count()
    }

    /// The pooled jitter summary.
    pub fn summary(&self) -> JitterSummary {
        JitterSummary {
            mean_ms: self.intervals.mean(),
            std_ms: self.intervals.std_dev(),
            max_ms: self.intervals.max(),
            p99_ms: if self.intervals.count() == 0 {
                f64::NAN
            } else {
                self.histogram.percentile(99.0)
            },
            intervals: self.intervals.count(),
            frames: self.frames,
        }
    }

    /// Per-stream interval statistics (dense by stream id; streams with no
    /// measured interval report empty stats).
    pub fn per_stream(&self) -> &[RunningStats] {
        &self.per_stream
    }

    /// The stream with the worst (largest) mean delivery interval, with
    /// that mean in milliseconds — the user-facing "who is starving"
    /// question. `None` before any interval is measured.
    pub fn worst_stream(&self) -> Option<(StreamId, f64)> {
        self.per_stream
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.is_empty())
            .map(|(i, s)| (StreamId(i as u32), s.mean()))
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Serialises the tracker's accumulated state into a snapshot (the
    /// time base is construction-time configuration and is not written).
    pub fn save(&self, w: &mut SnapWriter) {
        w.usize(self.last.len());
        for &l in &self.last {
            w.option(l, |w, at| w.u64(at.0));
        }
        self.intervals.save(w);
        w.usize(self.per_stream.len());
        for s in &self.per_stream {
            s.save(w);
        }
        self.histogram.save(w);
        w.u64(self.frames);
        w.u64(self.warmup_end.0);
    }

    /// Restores state saved by [`DeliveryTracker::save`] into this
    /// freshly-constructed tracker.
    ///
    /// # Errors
    ///
    /// Propagates snapshot decoding errors.
    pub fn load_into(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n = r.usize()?;
        self.last.clear();
        for _ in 0..n {
            self.last.push(r.option(|r| r.u64().map(Cycles))?);
        }
        self.intervals = RunningStats::load(r)?;
        let n = r.usize()?;
        self.per_stream.clear();
        for _ in 0..n {
            self.per_stream.push(RunningStats::load(r)?);
        }
        self.histogram = Histogram::load(r)?;
        self.frames = r.u64()?;
        self.warmup_end = Cycles(r.u64()?);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tb() -> TimeBase {
        TimeBase::from_link(400e6, 32)
    }

    #[test]
    fn steady_stream_has_zero_jitter() {
        let mut t = DeliveryTracker::new(tb());
        let frame = tb().cycles_from_ms(33.0).get();
        for k in 0..100u64 {
            t.record_frame(StreamId(3), Cycles(k * frame));
        }
        let s = t.summary();
        assert_eq!(s.intervals, 99);
        assert_eq!(s.frames, 100);
        assert!((s.mean_ms - 33.0).abs() < 1e-9);
        assert!(s.std_ms < 1e-9);
    }

    #[test]
    fn jittery_stream_has_positive_sigma() {
        let mut t = DeliveryTracker::new(tb());
        let frame = tb().cycles_from_ms(33.0).get();
        let mut at = 0u64;
        for k in 0..100u64 {
            at += if k % 2 == 0 {
                frame / 2
            } else {
                frame + frame / 2
            };
            t.record_frame(StreamId(0), Cycles(at));
        }
        let s = t.summary();
        assert!((s.mean_ms - 33.0).abs() < 0.5);
        assert!(s.std_ms > 10.0);
        assert!(!s.is_jitter_free(33.0, 1.0));
    }

    #[test]
    fn pools_across_streams() {
        let mut t = DeliveryTracker::new(tb());
        let frame = tb().cycles_from_ms(33.0).get();
        for s in 0..4u32 {
            for k in 0..10u64 {
                // Offset each stream so completions interleave.
                t.record_frame(StreamId(s), Cycles(k * frame + u64::from(s) * 1000));
            }
        }
        let sum = t.summary();
        assert_eq!(sum.intervals, 4 * 9);
        assert_eq!(t.streams_seen(), 4);
        assert!((sum.mean_ms - 33.0).abs() < 1e-9);
    }

    #[test]
    fn warmup_discards_early_intervals() {
        let mut t = DeliveryTracker::new(tb());
        let frame = tb().cycles_from_ms(33.0).get();
        t.set_warmup_end(Cycles(5 * frame));
        for k in 0..10u64 {
            t.record_frame(StreamId(0), Cycles(k * frame));
        }
        let s = t.summary();
        // Frames at 5..10 count; intervals only where the earlier frame is
        // past warm-up: (5,6),(6,7),(7,8),(8,9) = 4.
        assert_eq!(s.frames, 5);
        assert_eq!(s.intervals, 4);
    }

    #[test]
    fn percentiles_and_worst_stream() {
        let mut t = DeliveryTracker::new(tb());
        let frame = tb().cycles_from_ms(33.0).get();
        // Stream 0: steady. Stream 1: every interval stretched by 10 %.
        for k in 0..50u64 {
            t.record_frame(StreamId(0), Cycles(k * frame));
            t.record_frame(StreamId(1), Cycles(k * frame * 11 / 10));
        }
        let (worst, mean) = t.worst_stream().expect("streams measured");
        assert_eq!(worst, StreamId(1));
        assert!(mean > 33.0);
        let s = t.summary();
        assert!(s.p99_ms >= s.mean_ms - 0.5);
        assert_eq!(t.per_stream().len(), 2);
        assert_eq!(t.per_stream()[0].count(), 49);
    }

    #[test]
    fn empty_summary_has_nan_percentile() {
        let t = DeliveryTracker::new(tb());
        assert!(t.summary().p99_ms.is_nan());
        assert!(t.worst_stream().is_none());
    }

    #[test]
    fn empty_summary_opt_accessors_are_none() {
        let s = DeliveryTracker::new(tb()).summary();
        assert!(s.is_empty());
        assert_eq!(s.mean_ms_opt(), None);
        assert_eq!(s.std_ms_opt(), None);
        assert_eq!(s.max_ms_opt(), None);
        assert_eq!(s.p99_ms_opt(), None);
    }

    #[test]
    fn populated_summary_opt_accessors_match_raw() {
        let mut t = DeliveryTracker::new(tb());
        let frame = tb().cycles_from_ms(33.0).get();
        for k in 0..10u64 {
            t.record_frame(StreamId(0), Cycles(k * frame));
        }
        let s = t.summary();
        assert!(!s.is_empty());
        assert_eq!(s.mean_ms_opt(), Some(s.mean_ms));
        assert_eq!(s.std_ms_opt(), Some(s.std_ms));
        assert_eq!(s.max_ms_opt(), Some(s.max_ms));
        assert_eq!(s.p99_ms_opt(), Some(s.p99_ms));
    }

    #[test]
    #[should_panic(expected = "monotonic")]
    fn out_of_order_panics() {
        let mut t = DeliveryTracker::new(tb());
        t.record_frame(StreamId(0), Cycles(100));
        t.record_frame(StreamId(0), Cycles(50));
    }
}
