//! Plain-text result tables in the style of the paper's tables.

use std::fmt;

/// A simple fixed-width text table.
///
/// # Example
///
/// ```
/// use metrics::Table;
///
/// let mut t = Table::new(["load", "d (ms)", "sigma_d (ms)"]);
/// t.row(["0.60", "33.0", "0.0"]);
/// t.row(["0.90", "35.2", "4.7"]);
/// let s = t.to_string();
/// assert!(s.contains("load"));
/// assert!(s.contains("35.2"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> Table
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
            title: None,
        }
    }

    /// Sets a caption printed above the table.
    pub fn with_title(mut self, title: impl Into<String>) -> Table {
        self.title = Some(title.into());
        self
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Table
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row has {} cells but the table has {} columns",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Formats a float with three significant decimals, mapping `NaN` to
    /// `"-"` (used for saturated / absent measurements, like the paper's
    /// "Sat." cells).
    pub fn num(x: f64) -> String {
        if x.is_nan() {
            "-".to_string()
        } else {
            format!("{x:.3}")
        }
    }

    /// Formats a float like [`Table::num`] but prints `"Sat."` for
    /// non-finite values, matching the paper's Table 2.
    pub fn num_or_sat(x: f64) -> String {
        if x.is_finite() {
            format!("{x:.1}")
        } else {
            "Sat.".to_string()
        }
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        if let Some(title) = &self.title {
            writeln!(f, "{title}")?;
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["a", "bbbb"]).with_title("T");
        t.row(["1", "2"]);
        t.row(["333", "4"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "T");
        assert!(lines[1].contains('a') && lines[1].contains("bbbb"));
        assert!(lines[2].starts_with('-'));
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    fn num_formats() {
        assert_eq!(Table::num(1.23456), "1.235");
        assert_eq!(Table::num(f64::NAN), "-");
        assert_eq!(Table::num_or_sat(12.34), "12.3");
        assert_eq!(Table::num_or_sat(f64::INFINITY), "Sat.");
        assert_eq!(Table::num_or_sat(f64::NAN), "Sat.");
    }

    #[test]
    #[should_panic(expected = "cells but the table has")]
    fn mismatched_row_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }
}
