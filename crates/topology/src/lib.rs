//! Cluster interconnect topologies for the MediaWorm study.
//!
//! The paper evaluates a single 8-port switch and a 2×2 *fat-mesh* — a
//! 4-switch mesh in which each neighbouring pair of switches is connected by
//! **two** parallel physical links ("fat pipes", §3.4), with the remaining
//! ports attached to endpoints. This crate describes such topologies and
//! precomputes deterministic route tables:
//!
//! * [`Topology::single_switch`] — one `n`-port crossbar, `n` endpoints.
//! * [`Topology::fat_mesh`] — a `w×h` mesh with `fat` parallel links per
//!   neighbour pair and a configurable number of endpoints per switch
//!   (`fat_mesh(2, 2, 2, 4)` is the paper's network).
//! * [`Topology::mesh`] — the thin (fat = 1) special case.
//!
//! Routing is deterministic dimension-ordered XY. Where a hop has several
//! parallel links, [`Topology::route`] returns *all* candidate output ports
//! and the router picks one "based on the current load", exactly as §3.4
//! prescribes.

#![warn(missing_docs)]

mod builder;
mod route;

pub use builder::{PortTarget, RouterSpec};
pub use route::RouteTable;

use flitnet::{NodeId, PortId, RouterId, VcSel};

/// A described interconnect: routers, their port wiring, endpoint
/// attachments and a precomputed deterministic route table.
///
/// # Example
///
/// ```
/// use topo::Topology;
/// use flitnet::{NodeId, RouterId};
///
/// // The paper's single 8-port switch…
/// let single = Topology::single_switch(8);
/// assert_eq!(single.router_count(), 1);
/// assert_eq!(single.node_count(), 8);
///
/// // …and its 2×2 fat-mesh (two links per neighbour pair, 4 endpoints
/// // per switch → 8 ports per router, 16 endpoints).
/// let fat = Topology::fat_mesh(2, 2, 2, 4);
/// assert_eq!(fat.router_count(), 4);
/// assert_eq!(fat.node_count(), 16);
/// assert_eq!(fat.ports_of(RouterId(0)), 8);
/// ```
#[derive(Debug, Clone)]
pub struct Topology {
    routers: Vec<RouterSpec>,
    /// For each node: the (router, port) it attaches to.
    attachments: Vec<(RouterId, PortId)>,
    routes: RouteTable,
    name: String,
    /// Per-(router, dest) dateline VC restriction; `None` on topologies
    /// without wrap links (everything except the torus).
    vc_sel: Option<Vec<Vec<VcSel>>>,
}

impl Topology {
    /// A single switch with `ports` ports, each attached to one endpoint.
    ///
    /// # Panics
    ///
    /// Panics if `ports == 0`.
    pub fn single_switch(ports: u32) -> Topology {
        builder::single_switch(ports)
    }

    /// A `w × h` mesh of switches with `fat` parallel links between each
    /// neighbouring pair and `endpoints` endpoints per switch.
    ///
    /// Router `(x, y)` has id `y·w + x`. Ports are laid out neighbour links
    /// first (−X, +X, −Y, +Y in that order, `fat` consecutive ports per
    /// present neighbour), then endpoint ports.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero, `fat == 0`, or `endpoints == 0`.
    pub fn fat_mesh(w: u32, h: u32, fat: u32, endpoints: u32) -> Topology {
        builder::fat_mesh(w, h, fat, endpoints)
    }

    /// A thin `w × h` mesh (one link per neighbour pair).
    pub fn mesh(w: u32, h: u32, endpoints: u32) -> Topology {
        builder::fat_mesh(w, h, 1, endpoints)
    }

    /// A `w × h` torus (a mesh whose rows and columns wrap around) with
    /// `endpoints` endpoints per switch.
    ///
    /// Router `(x, y)` has id `y·w + x`; ports 0–3 are the −X, +X, −Y, +Y
    /// neighbour links, then the endpoint ports. Routing is
    /// shortest-direction dimension-ordered XY (ties at distance `k/2` go
    /// in the positive direction). The wrap links would close
    /// channel-dependency cycles around each ring, so every hop carries a
    /// dateline VC restriction (see [`Topology::vc_sel`]): a worm whose
    /// remaining path in the current dimension still crosses the wrap link
    /// must allocate from the lower half of its class's VC range, and from
    /// the upper half afterwards. Lower channels hand over to upper
    /// channels exactly once (at the wrap hop) and upper channels never
    /// use a wrap link, so the dependency order is acyclic. Simulators
    /// honouring the restriction need ≥ 2 VCs per populated traffic class.
    ///
    /// # Panics
    ///
    /// Panics if `w < 3` or `h < 3` (below that the wrap link duplicates
    /// the mesh link) or `endpoints == 0`.
    pub fn torus(w: u32, h: u32, endpoints: u32) -> Topology {
        builder::torus(w, h, endpoints)
    }

    /// A two-level fat-tree: `leaves` leaf switches (each with
    /// `endpoints` endpoints) fully connected to `roots` root switches —
    /// the other "fat topology" the paper names in §3.4. Up-links are
    /// load-balanced (any root reaches any leaf); routing is the
    /// deadlock-free up/down scheme.
    ///
    /// # Panics
    ///
    /// Panics if `leaves < 2`, `roots == 0`, or `endpoints == 0`.
    pub fn fat_tree(leaves: u32, roots: u32, endpoints: u32) -> Topology {
        builder::fat_tree(leaves, roots, endpoints)
    }

    /// A unidirectional ring of `n` switches with `endpoints` endpoints
    /// each: port 0 is the clockwise out-link, port 1 the in-link from the
    /// counter-clockwise neighbour, and all traffic routes clockwise.
    ///
    /// With a single VC lane this closes the classic channel-dependency
    /// cycle around the ring — the topology is **deliberately
    /// deadlock-prone** (no dateline VC scheme) and exists to exercise the
    /// core crate's progress watchdog; do not use it for performance
    /// studies.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `endpoints == 0`.
    pub fn ring(n: u32, endpoints: u32) -> Topology {
        builder::ring(n, endpoints)
    }

    /// Human-readable topology name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of routers.
    pub fn router_count(&self) -> usize {
        self.routers.len()
    }

    /// Number of endpoints.
    pub fn node_count(&self) -> usize {
        self.attachments.len()
    }

    /// Number of ports on router `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn ports_of(&self, r: RouterId) -> u32 {
        self.routers[r.index()].ports.len() as u32
    }

    /// What router `r`'s port `p` connects to.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `p` is out of range.
    pub fn target_of(&self, r: RouterId, p: PortId) -> PortTarget {
        self.routers[r.index()].ports[p.index()]
    }

    /// The `(router, port)` a node attaches to.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn attachment(&self, node: NodeId) -> (RouterId, PortId) {
        self.attachments[node.index()]
    }

    /// Candidate output ports at router `at` for traffic to `dest`
    /// (deterministic XY; several ports only where parallel fat links
    /// exist).
    ///
    /// # Panics
    ///
    /// Panics if `at` or `dest` is out of range.
    pub fn route(&self, at: RouterId, dest: NodeId) -> &[PortId] {
        self.routes.candidates(at, dest)
    }

    /// The dateline VC restriction for the hop router `at` takes toward
    /// `dest` — [`VcSel::Any`] everywhere except on tori (see
    /// [`Topology::torus`]).
    ///
    /// # Panics
    ///
    /// Panics if `at` or `dest` is out of range (only on topologies that
    /// carry a table; others return `Any` unconditionally).
    pub fn vc_sel(&self, at: RouterId, dest: NodeId) -> VcSel {
        match &self.vc_sel {
            Some(t) => t[at.index()][dest.index()],
            None => VcSel::Any,
        }
    }

    /// [`Topology::route`] and [`Topology::vc_sel`] in one call — what a
    /// router's VC allocator consumes per head flit.
    pub fn route_sel(&self, at: RouterId, dest: NodeId) -> (&[PortId], VcSel) {
        (self.routes.candidates(at, dest), self.vc_sel(at, dest))
    }

    /// Whether this topology carries a dateline VC discipline (tori).
    /// Simulators honouring it need at least two VCs per populated
    /// traffic class, or the lower dateline half is empty.
    pub fn has_datelines(&self) -> bool {
        self.vc_sel.is_some()
    }

    /// Number of router-to-router hops between two endpoints.
    pub fn hops(&self, src: NodeId, dest: NodeId) -> u32 {
        let (mut at, _) = self.attachment(src);
        let (goal, _) = self.attachment(dest);
        let mut hops = 0;
        while at != goal {
            let port = self.route(at, dest)[0];
            match self.target_of(at, port) {
                PortTarget::Router { router, .. } => at = router,
                PortTarget::Node(_) => unreachable!("route led to a node before the goal router"),
            }
            hops += 1;
            assert!(hops <= self.router_count() as u32, "routing loop");
        }
        hops
    }

    /// Iterates over all router specs.
    pub fn routers(&self) -> impl Iterator<Item = (RouterId, &RouterSpec)> {
        self.routers
            .iter()
            .enumerate()
            .map(|(i, s)| (RouterId(i as u32), s))
    }

    pub(crate) fn from_parts(
        name: String,
        routers: Vec<RouterSpec>,
        attachments: Vec<(RouterId, PortId)>,
        routes: RouteTable,
    ) -> Topology {
        Topology {
            routers,
            attachments,
            routes,
            name,
            vc_sel: None,
        }
    }

    /// Attaches a per-(router, dest) dateline table (torus builder only).
    pub(crate) fn with_vc_sel(mut self, table: Vec<Vec<VcSel>>) -> Topology {
        assert_eq!(table.len(), self.routers.len());
        self.vc_sel = Some(table);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_switch_wiring() {
        let t = Topology::single_switch(8);
        assert_eq!(t.router_count(), 1);
        assert_eq!(t.node_count(), 8);
        for n in 0..8 {
            let (r, p) = t.attachment(NodeId(n));
            assert_eq!(r, RouterId(0));
            assert_eq!(p, PortId(n));
            assert_eq!(t.target_of(r, p), PortTarget::Node(NodeId(n)));
        }
    }

    #[test]
    fn single_switch_routes_to_attachment_port() {
        let t = Topology::single_switch(8);
        for n in 0..8 {
            let ports = t.route(RouterId(0), NodeId(n));
            assert_eq!(ports, &[PortId(n)]);
        }
    }

    #[test]
    fn paper_fat_mesh_shape() {
        let t = Topology::fat_mesh(2, 2, 2, 4);
        assert_eq!(t.router_count(), 4);
        assert_eq!(t.node_count(), 16);
        // Each router: 2 neighbours × 2 fat links + 4 endpoints = 8 ports.
        for r in 0..4 {
            assert_eq!(t.ports_of(RouterId(r)), 8);
        }
    }

    #[test]
    fn fat_mesh_parallel_links_offer_two_candidates() {
        let t = Topology::fat_mesh(2, 2, 2, 4);
        // Node 8 lives on router 2 (y=1, x=0). From router 0, X is equal,
        // so we go +Y over two parallel links.
        let (r, _) = t.attachment(NodeId(8));
        assert_eq!(r, RouterId(2));
        let cands = t.route(RouterId(0), NodeId(8));
        assert_eq!(cands.len(), 2);
        for p in cands {
            match t.target_of(RouterId(0), *p) {
                PortTarget::Router { router, .. } => assert_eq!(router, RouterId(2)),
                PortTarget::Node(_) => panic!("expected router link"),
            }
        }
    }

    #[test]
    fn fat_mesh_local_delivery_uses_endpoint_port() {
        let t = Topology::fat_mesh(2, 2, 2, 4);
        let (r, p) = t.attachment(NodeId(5));
        let cands = t.route(r, NodeId(5));
        assert_eq!(cands, &[p]);
    }

    #[test]
    fn xy_routing_goes_x_first() {
        let t = Topology::fat_mesh(2, 2, 2, 4);
        // Node 12 is on router 3 (x=1, y=1); from router 0 the first hop
        // must be in X, i.e. to router 1.
        let cands = t.route(RouterId(0), NodeId(12));
        for p in cands {
            match t.target_of(RouterId(0), *p) {
                PortTarget::Router { router, .. } => assert_eq!(router, RouterId(1)),
                PortTarget::Node(_) => panic!("expected router link"),
            }
        }
    }

    #[test]
    fn hops_in_fat_mesh() {
        let t = Topology::fat_mesh(2, 2, 2, 4);
        assert_eq!(t.hops(NodeId(0), NodeId(1)), 0); // same router
        assert_eq!(t.hops(NodeId(0), NodeId(4)), 1); // adjacent router
        assert_eq!(t.hops(NodeId(0), NodeId(12)), 2); // diagonal
    }

    #[test]
    fn links_are_bidirectional_pairs() {
        let t = Topology::fat_mesh(2, 2, 2, 4);
        for (rid, spec) in t.routers() {
            for (pidx, target) in spec.ports.iter().enumerate() {
                if let PortTarget::Router { router, port } = target {
                    // The far end must point back at us.
                    match t.target_of(*router, *port) {
                        PortTarget::Router {
                            router: back_r,
                            port: back_p,
                        } => {
                            assert_eq!(back_r, rid);
                            assert_eq!(back_p, PortId(pidx as u32));
                        }
                        PortTarget::Node(_) => panic!("asymmetric wiring"),
                    }
                }
            }
        }
    }

    #[test]
    fn larger_mesh_routes_terminate() {
        let t = Topology::fat_mesh(4, 3, 2, 2);
        let n = t.node_count();
        for s in 0..n {
            for d in 0..n {
                if s == d {
                    continue;
                }
                // hops() asserts against routing loops internally.
                let _ = t.hops(NodeId(s as u32), NodeId(d as u32));
            }
        }
    }

    #[test]
    fn fat_tree_shape_and_routes() {
        // 4 leaves × 2 roots × 2 endpoints.
        let t = Topology::fat_tree(4, 2, 2);
        assert_eq!(t.router_count(), 6);
        assert_eq!(t.node_count(), 8);
        // Leaf ports: 2 up + 2 endpoints; root ports: 4 down.
        assert_eq!(t.ports_of(RouterId(0)), 4);
        assert_eq!(t.ports_of(RouterId(4)), 4);
        // Cross-leaf traffic from leaf 0 can go up via either root.
        let cands = t.route(RouterId(0), NodeId(7)); // node 7 on leaf 3
        assert_eq!(cands.len(), 2);
        for p in cands {
            match t.target_of(RouterId(0), *p) {
                PortTarget::Router { router, .. } => assert!(router.get() >= 4),
                PortTarget::Node(_) => panic!("expected an up-link"),
            }
        }
        // At a root, exactly one down candidate.
        let down = t.route(RouterId(4), NodeId(7));
        assert_eq!(down.len(), 1);
        // Local traffic stays on the leaf.
        assert_eq!(t.hops(NodeId(0), NodeId(1)), 0);
        assert_eq!(t.hops(NodeId(0), NodeId(7)), 2);
    }

    #[test]
    fn fat_tree_wiring_is_symmetric() {
        let t = Topology::fat_tree(3, 2, 1);
        for (rid, spec) in t.routers() {
            for (pidx, target) in spec.ports.iter().enumerate() {
                if let PortTarget::Router { router, port } = target {
                    match t.target_of(*router, *port) {
                        PortTarget::Router {
                            router: br,
                            port: bp,
                        } => {
                            assert_eq!(br, rid);
                            assert_eq!(bp, PortId(pidx as u32));
                        }
                        PortTarget::Node(_) => panic!("asymmetric wiring"),
                    }
                }
            }
        }
    }

    #[test]
    fn ring_shape_and_clockwise_routes() {
        let t = Topology::ring(3, 2);
        assert_eq!(t.router_count(), 3);
        assert_eq!(t.node_count(), 6);
        for r in 0..3 {
            assert_eq!(t.ports_of(RouterId(r)), 4);
            // Port 0 goes clockwise, arriving on the neighbour's port 1.
            assert_eq!(
                t.target_of(RouterId(r), PortId(0)),
                PortTarget::Router {
                    router: RouterId((r + 1) % 3),
                    port: PortId(1),
                }
            );
        }
        // Wiring symmetry.
        for (rid, spec) in t.routers() {
            for (pidx, target) in spec.ports.iter().enumerate() {
                if let PortTarget::Router { router, port } = target {
                    match t.target_of(*router, *port) {
                        PortTarget::Router {
                            router: br,
                            port: bp,
                        } => {
                            assert_eq!(br, rid);
                            assert_eq!(bp, PortId(pidx as u32));
                        }
                        PortTarget::Node(_) => panic!("asymmetric wiring"),
                    }
                }
            }
        }
        // All remote traffic leaves on port 0 (clockwise only), even when
        // counter-clockwise would be shorter; local traffic ejects.
        let cands = t.route(RouterId(1), NodeId(0)); // node 0 is on router 0
        assert_eq!(cands, &[PortId(0)]);
        let (r, p) = t.attachment(NodeId(3));
        assert_eq!(t.route(r, NodeId(3)), &[p]);
        // Going all the way round: router 0 → node on router 2 takes 2 hops.
        assert_eq!(t.hops(NodeId(0), NodeId(4)), 2);
    }

    #[test]
    fn thin_mesh_offers_single_candidates() {
        let t = Topology::mesh(3, 3, 1);
        for (rid, _) in t.routers() {
            for d in 0..t.node_count() {
                let c = t.route(rid, NodeId(d as u32));
                assert_eq!(c.len(), 1);
            }
        }
    }

    #[test]
    fn torus_shape_and_symmetric_wiring() {
        let t = Topology::torus(4, 4, 1);
        assert_eq!(t.router_count(), 16);
        assert_eq!(t.node_count(), 16);
        for (rid, spec) in t.routers() {
            assert_eq!(spec.ports.len(), 5); // 4 neighbours + 1 endpoint
            for (pidx, target) in spec.ports.iter().enumerate() {
                if let PortTarget::Router { router, port } = target {
                    match t.target_of(*router, *port) {
                        PortTarget::Router {
                            router: br,
                            port: bp,
                        } => {
                            assert_eq!(br, rid);
                            assert_eq!(bp, PortId(pidx as u32));
                        }
                        PortTarget::Node(_) => panic!("asymmetric wiring"),
                    }
                }
            }
        }
    }

    #[test]
    fn torus_routes_take_the_wrap_shortcut() {
        let t = Topology::torus(4, 4, 1);
        // (0,0) → (3,0) is one −X wrap hop, not three mesh hops.
        assert_eq!(t.hops(NodeId(0), NodeId(3)), 1);
        // (0,0) → (0,3) likewise in Y.
        assert_eq!(t.hops(NodeId(0), NodeId(12)), 1);
        // (0,0) → (2,2): two ties broken positively, 2 + 2 hops.
        assert_eq!(t.hops(NodeId(0), NodeId(10)), 4);
        // Every pair terminates (hops() asserts against loops).
        for s in 0..16 {
            for d in 0..16 {
                let _ = t.hops(NodeId(s), NodeId(d));
            }
        }
    }

    #[test]
    fn torus_tie_breaks_positive() {
        let t = Topology::torus(4, 4, 1);
        // x = 0 → x = 2 is distance 2 both ways; the tie goes +X.
        let p = t.route(RouterId(0), NodeId(2))[0];
        match t.target_of(RouterId(0), p) {
            PortTarget::Router { router, .. } => assert_eq!(router, RouterId(1)),
            PortTarget::Node(_) => panic!("expected router link"),
        }
    }

    #[test]
    fn torus_dateline_sel_flips_at_the_wrap() {
        let t = Topology::torus(4, 4, 1);
        assert!(t.has_datelines());
        // x = 3 → x = 1 goes +X through the wrap: Lower until the wrap
        // hop, Upper after it (x = 0 → x = 1 no longer wraps).
        assert_eq!(t.vc_sel(RouterId(3), NodeId(1)), VcSel::Lower);
        assert_eq!(t.vc_sel(RouterId(0), NodeId(1)), VcSel::Upper);
        // x = 1 → x = 3 is the positive tie with no wrap: Upper all the way.
        assert_eq!(t.vc_sel(RouterId(1), NodeId(3)), VcSel::Upper);
        assert_eq!(t.vc_sel(RouterId(2), NodeId(3)), VcSel::Upper);
        // Ejection is unrestricted.
        assert_eq!(t.vc_sel(RouterId(3), NodeId(3)), VcSel::Any);
        // A −X route that wraps: x = 1 → x = 3 is a tie (positive), but
        // x = 0 → x = 3 is one negative hop through the wrap.
        assert_eq!(t.vc_sel(RouterId(0), NodeId(3)), VcSel::Lower);
    }

    #[test]
    fn torus_upper_channels_never_use_wrap_links() {
        // The acyclicity argument's load-bearing clause, checked
        // exhaustively: any hop routed on a wrap link must be Lower.
        let t = Topology::torus(4, 3, 1);
        for (rid, _) in t.routers() {
            for d in 0..t.node_count() {
                let dest = NodeId(d as u32);
                let (goal, _) = t.attachment(dest);
                if rid == goal {
                    continue;
                }
                let p = t.route(rid, dest)[0];
                let PortTarget::Router { router: next, .. } = t.target_of(rid, p) else {
                    panic!("transit hop must use a router link");
                };
                // A wrap hop moves between ring ends (|Δ| = k - 1).
                let (x, y) = (rid.get() % 4, rid.get() / 4);
                let (nx, ny) = (next.get() % 4, next.get() / 4);
                let wrap_hop = x.abs_diff(nx) == 3 || y.abs_diff(ny) == 2;
                if wrap_hop {
                    assert_eq!(
                        t.vc_sel(rid, dest),
                        VcSel::Lower,
                        "wrap hop {rid} → {next} for dest {d} must be Lower"
                    );
                }
            }
        }
    }

    #[test]
    fn meshes_have_no_datelines() {
        let t = Topology::mesh(3, 3, 1);
        assert!(!t.has_datelines());
        assert_eq!(t.vc_sel(RouterId(0), NodeId(8)), VcSel::Any);
        let (ports, sel) = t.route_sel(RouterId(0), NodeId(8));
        assert_eq!(ports, t.route(RouterId(0), NodeId(8)));
        assert_eq!(sel, VcSel::Any);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn degenerate_torus_rejected() {
        let _ = Topology::torus(2, 4, 1);
    }
}
