//! Construction of the supported topologies.

use flitnet::{NodeId, PortId, RouterId, VcSel};

use crate::route::RouteTable;
use crate::Topology;

/// What the far end of a router port is wired to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortTarget {
    /// An inter-switch link to `port` of `router` (full duplex; the far end
    /// points back symmetrically).
    Router {
        /// Neighbouring router.
        router: RouterId,
        /// Port on the neighbouring router.
        port: PortId,
    },
    /// An endpoint attachment: this port both receives the node's injected
    /// flits and ejects flits destined to it.
    Node(NodeId),
}

/// One router's wiring: what each of its ports connects to.
#[derive(Debug, Clone)]
pub struct RouterSpec {
    /// Port targets, indexed by [`PortId`].
    pub ports: Vec<PortTarget>,
}

pub(crate) fn single_switch(ports: u32) -> Topology {
    assert!(ports > 0, "a switch needs at least one port");
    let spec = RouterSpec {
        ports: (0..ports).map(|p| PortTarget::Node(NodeId(p))).collect(),
    };
    let attachments: Vec<(RouterId, PortId)> =
        (0..ports).map(|p| (RouterId(0), PortId(p))).collect();
    let routers = vec![spec];
    let routes = RouteTable::build(&routers, &attachments, |_at, _dest| unreachable!());
    Topology::from_parts(
        format!("single-switch-{ports}"),
        routers,
        attachments,
        routes,
    )
}

/// A unidirectional-routing ring of `n` switches, `endpoints` endpoints
/// per switch. Router `r`'s port 0 is the clockwise out-link to router
/// `(r+1) mod n` (arriving on its port 1); ports `2..2+endpoints` carry
/// the endpoints. All traffic routes clockwise, so worms crossing several
/// switches close a channel-dependency cycle around the ring — the ring is
/// deliberately deadlock-prone (no dateline VC scheme) and exists to
/// validate the progress watchdog.
pub(crate) fn ring(n: u32, endpoints: u32) -> Topology {
    assert!(n >= 2, "a ring needs at least two switches");
    assert!(endpoints >= 1, "each switch needs at least one endpoint");

    let mut specs: Vec<RouterSpec> = Vec::with_capacity(n as usize);
    let mut attachments = Vec::with_capacity((n * endpoints) as usize);
    for r in 0..n {
        let mut ports = Vec::with_capacity((2 + endpoints) as usize);
        // Port 0: clockwise out-link; port 1: the link from the
        // counter-clockwise neighbour.
        ports.push(PortTarget::Router {
            router: RouterId((r + 1) % n),
            port: PortId(1),
        });
        ports.push(PortTarget::Router {
            router: RouterId((r + n - 1) % n),
            port: PortId(0),
        });
        for e in 0..endpoints {
            let node = NodeId(r * endpoints + e);
            ports.push(PortTarget::Node(node));
            attachments.push((RouterId(r), PortId(2 + e)));
        }
        specs.push(RouterSpec { ports });
    }

    let routes = RouteTable::build(&specs, &attachments, move |at, _goal| {
        RouterId((at.get() + 1) % n)
    });

    Topology::from_parts(format!("ring-{n}-e{endpoints}"), specs, attachments, routes)
}

/// Grid coordinates of router `r` in a `w`-wide mesh.
fn coords(r: RouterId, w: u32) -> (u32, u32) {
    (r.get() % w, r.get() / w)
}

/// A two-level fat-tree: `leaves` leaf switches each carrying `endpoints`
/// endpoints, fully connected to `roots` root switches (one link per
/// leaf–root pair). Traffic between leaves goes *up* to any root (the
/// router load-balances across the up-links) and *down* to the
/// destination leaf — the deadlock-free up/down routing of fat-trees.
///
/// Leaf `l` has router id `l`; root `k` has id `leaves + k`. Leaf ports:
/// `0..roots` are up-links (port `k` to root `k`), then the endpoints.
/// Root ports: `0..leaves`, port `l` to leaf `l`.
pub(crate) fn fat_tree(leaves: u32, roots: u32, endpoints: u32) -> Topology {
    assert!(leaves >= 2, "a fat-tree needs at least two leaf switches");
    assert!(roots >= 1, "a fat-tree needs at least one root switch");
    assert!(endpoints >= 1, "each leaf needs at least one endpoint");

    let mut specs: Vec<RouterSpec> = Vec::with_capacity((leaves + roots) as usize);
    // Leaves.
    for l in 0..leaves {
        let mut ports = Vec::with_capacity((roots + endpoints) as usize);
        for k in 0..roots {
            ports.push(PortTarget::Router {
                router: RouterId(leaves + k),
                port: PortId(l),
            });
        }
        for e in 0..endpoints {
            ports.push(PortTarget::Node(NodeId(l * endpoints + e)));
        }
        specs.push(RouterSpec { ports });
    }
    // Roots.
    for k in 0..roots {
        let ports = (0..leaves)
            .map(|l| PortTarget::Router {
                router: RouterId(l),
                port: PortId(k),
            })
            .collect();
        let _ = k;
        specs.push(RouterSpec { ports });
    }

    let mut attachments = Vec::with_capacity((leaves * endpoints) as usize);
    for l in 0..leaves {
        for e in 0..endpoints {
            attachments.push((RouterId(l), PortId(roots + e)));
        }
    }

    let routes = RouteTable::build_multipath(&specs, &attachments, move |at, goal| {
        if at.get() < leaves {
            // At a leaf, any root works (adaptive up).
            (0..roots).map(|k| RouterId(leaves + k)).collect()
        } else {
            // At a root, go down to the goal leaf.
            vec![goal]
        }
    });

    Topology::from_parts(
        format!("fat-tree-l{leaves}-r{roots}-e{endpoints}"),
        specs,
        attachments,
        routes,
    )
}

/// Whether a worm at ring position `a` headed for `g` should step in the
/// positive direction in a ring of `k` routers (shortest way; the tie at
/// distance `k/2` goes positive so routing stays deterministic).
fn ring_positive(a: u32, g: u32, k: u32) -> bool {
    debug_assert_ne!(a, g);
    let fwd = (g + k - a) % k;
    let bwd = (a + k - g) % k;
    fwd <= bwd
}

/// Dateline VC restriction for the remaining path from ring position `a`
/// to `g`: [`VcSel::Lower`] while the path (including the current hop)
/// still crosses the ring's wrap link, [`VcSel::Upper`] once it no longer
/// does. See [`Topology::torus`] for the acyclicity argument.
fn dateline_sel(a: u32, g: u32, k: u32) -> VcSel {
    let wraps = if ring_positive(a, g, k) {
        g < a // moving +: we pass the (k-1) → 0 edge iff the goal is behind us
    } else {
        g > a // moving −: we pass the 0 → (k-1) edge iff the goal is ahead
    };
    if wraps {
        VcSel::Lower
    } else {
        VcSel::Upper
    }
}

/// A `w × h` torus: the mesh with wrap links. Ports 0–3 are −X, +X, −Y,
/// +Y, then the endpoints. Routing is shortest-direction dimension-ordered
/// XY and every hop carries a dateline VC restriction.
pub(crate) fn torus(w: u32, h: u32, endpoints: u32) -> Topology {
    assert!(
        w >= 3 && h >= 3,
        "torus dimensions must be at least 3 (below that the wrap link duplicates the mesh link)"
    );
    assert!(endpoints > 0, "each switch needs at least one endpoint");

    let rid = |x: u32, y: u32| RouterId(y * w + x);
    let router_count = (w * h) as usize;

    let mut specs: Vec<RouterSpec> = Vec::with_capacity(router_count);
    let mut attachments = Vec::with_capacity(router_count * endpoints as usize);
    for r in 0..router_count as u32 {
        let (x, y) = coords(RouterId(r), w);
        let mut ports = Vec::with_capacity((4 + endpoints) as usize);
        // Symmetric wiring: our −X port lands on the neighbour's +X port
        // and vice versa; same for Y.
        ports.push(PortTarget::Router {
            router: rid((x + w - 1) % w, y),
            port: PortId(1),
        });
        ports.push(PortTarget::Router {
            router: rid((x + 1) % w, y),
            port: PortId(0),
        });
        ports.push(PortTarget::Router {
            router: rid(x, (y + h - 1) % h),
            port: PortId(3),
        });
        ports.push(PortTarget::Router {
            router: rid(x, (y + 1) % h),
            port: PortId(2),
        });
        for e in 0..endpoints {
            ports.push(PortTarget::Node(NodeId(r * endpoints + e)));
            attachments.push((RouterId(r), PortId(4 + e)));
        }
        specs.push(RouterSpec { ports });
    }

    let next_router = move |at: RouterId, goal: RouterId| -> RouterId {
        let (ax, ay) = coords(at, w);
        let (gx, gy) = coords(goal, w);
        if ax != gx {
            if ring_positive(ax, gx, w) {
                rid((ax + 1) % w, ay)
            } else {
                rid((ax + w - 1) % w, ay)
            }
        } else if ring_positive(ay, gy, h) {
            rid(ax, (ay + 1) % h)
        } else {
            rid(ax, (ay + h - 1) % h)
        }
    };

    let routes = RouteTable::build(&specs, &attachments, next_router);

    // Dateline table: the restriction depends only on the current router's
    // position and the goal position in the dimension being routed.
    let mut vc_sel = vec![vec![VcSel::Any; attachments.len()]; router_count];
    for (r, row) in vc_sel.iter_mut().enumerate() {
        let (x, y) = coords(RouterId(r as u32), w);
        for (d, sel) in row.iter_mut().enumerate() {
            let (goal, _) = attachments[d];
            let (gx, gy) = coords(goal, w);
            *sel = if (x, y) == (gx, gy) {
                VcSel::Any // ejection: the endpoint channel ends every dependency chain
            } else if x != gx {
                dateline_sel(x, gx, w)
            } else {
                dateline_sel(y, gy, h)
            };
        }
    }

    Topology::from_parts(
        format!("torus-{w}x{h}-e{endpoints}"),
        specs,
        attachments,
        routes,
    )
    .with_vc_sel(vc_sel)
}

pub(crate) fn fat_mesh(w: u32, h: u32, fat: u32, endpoints: u32) -> Topology {
    assert!(w > 0 && h > 0, "mesh dimensions must be positive");
    assert!(fat > 0, "fat width must be at least one link");
    assert!(endpoints > 0, "each switch needs at least one endpoint");

    let rid = |x: u32, y: u32| RouterId(y * w + x);
    let router_count = (w * h) as usize;

    // Neighbour order: -X, +X, -Y, +Y. Each present neighbour contributes
    // `fat` consecutive ports. Endpoint ports follow.
    let neighbours = |x: u32, y: u32| -> Vec<RouterId> {
        let mut v = Vec::new();
        if x > 0 {
            v.push(rid(x - 1, y));
        }
        if x + 1 < w {
            v.push(rid(x + 1, y));
        }
        if y > 0 {
            v.push(rid(x, y - 1));
        }
        if y + 1 < h {
            v.push(rid(x, y + 1));
        }
        v
    };

    // First pass: assign port ranges.
    // port_base[r][neighbour] = first port index of the fat bundle to that
    // neighbour.
    let mut specs: Vec<RouterSpec> = Vec::with_capacity(router_count);
    let mut bundle_base: Vec<Vec<(RouterId, u32)>> = Vec::with_capacity(router_count);
    for r in 0..router_count as u32 {
        let (x, y) = coords(RouterId(r), w);
        let ns = neighbours(x, y);
        let mut bases = Vec::with_capacity(ns.len());
        let mut next = 0u32;
        for n in &ns {
            bases.push((*n, next));
            next += fat;
        }
        let total_ports = next + endpoints;
        specs.push(RouterSpec {
            // Placeholder targets; wired below.
            ports: vec![PortTarget::Node(NodeId(0)); total_ports as usize],
        });
        bundle_base.push(bases);
    }

    let base_to = |r: RouterId, n: RouterId| -> u32 {
        bundle_base[r.index()]
            .iter()
            .find(|(nn, _)| *nn == n)
            .map(|(_, b)| *b)
            .expect("neighbour bundle must exist")
    };

    // Second pass: wire neighbour bundles symmetrically (lane k ↔ lane k).
    for r in 0..router_count as u32 {
        let r = RouterId(r);
        let (x, y) = coords(r, w);
        for n in neighbours(x, y) {
            let my_base = base_to(r, n);
            let their_base = base_to(n, r);
            for k in 0..fat {
                specs[r.index()].ports[(my_base + k) as usize] = PortTarget::Router {
                    router: n,
                    port: PortId(their_base + k),
                };
            }
        }
    }

    // Endpoint attachments.
    let mut attachments = Vec::with_capacity(router_count * endpoints as usize);
    for r in 0..router_count as u32 {
        let r = RouterId(r);
        let (x, y) = coords(r, w);
        let link_ports = neighbours(x, y).len() as u32 * fat;
        for e in 0..endpoints {
            let node = NodeId(r.get() * endpoints + e);
            let port = PortId(link_ports + e);
            specs[r.index()].ports[port.index()] = PortTarget::Node(node);
            attachments.push((r, port));
        }
    }

    // XY routing: next router toward the destination's router.
    let next_router = move |at: RouterId, goal: RouterId| -> RouterId {
        let (ax, ay) = coords(at, w);
        let (gx, gy) = coords(goal, w);
        if ax < gx {
            rid(ax + 1, ay)
        } else if ax > gx {
            rid(ax - 1, ay)
        } else if ay < gy {
            rid(ax, ay + 1)
        } else {
            rid(ax, ay - 1)
        }
    };

    let attachments_for_routes = attachments.clone();
    let routes = RouteTable::build(&specs, &attachments_for_routes, move |at, dest_router| {
        next_router(at, dest_router)
    });

    Topology::from_parts(
        format!("fat-mesh-{w}x{h}-fat{fat}-e{endpoints}"),
        specs,
        attachments,
        routes,
    )
}
