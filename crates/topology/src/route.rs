//! Precomputed deterministic route tables.
//!
//! For every `(router, destination node)` pair the table stores the set of
//! candidate output ports. With deterministic XY routing the *next router*
//! is unique, but a fat topology may reach it over several parallel links —
//! the router picks among those by instantaneous load (§3.4), so all lanes
//! are listed.

use flitnet::{NodeId, PortId, RouterId};

use crate::builder::{PortTarget, RouterSpec};

/// Candidate output ports for every `(router, dest-node)` pair.
#[derive(Debug, Clone)]
pub struct RouteTable {
    /// `table[router][node]` → candidate ports.
    table: Vec<Vec<Vec<PortId>>>,
}

impl RouteTable {
    /// Builds a table from router wiring, endpoint attachments, and a
    /// next-router function implementing the deterministic routing
    /// algorithm. `next_router(at, goal_router)` is only consulted when
    /// `at != goal_router` (single-switch topologies never call it).
    pub fn build<F>(
        specs: &[RouterSpec],
        attachments: &[(RouterId, PortId)],
        next_router: F,
    ) -> RouteTable
    where
        F: Fn(RouterId, RouterId) -> RouterId,
    {
        let mut table = Vec::with_capacity(specs.len());
        for (r, spec) in specs.iter().enumerate() {
            let at = RouterId(r as u32);
            let mut per_node = Vec::with_capacity(attachments.len());
            for (node, (goal_router, goal_port)) in attachments.iter().enumerate() {
                let _ = NodeId(node as u32);
                let candidates = if at == *goal_router {
                    vec![*goal_port]
                } else {
                    let next = next_router(at, *goal_router);
                    assert_ne!(next, at, "next_router must make progress");
                    let lanes: Vec<PortId> = spec
                        .ports
                        .iter()
                        .enumerate()
                        .filter_map(|(p, t)| match t {
                            PortTarget::Router { router, .. } if *router == next => {
                                Some(PortId(p as u32))
                            }
                            _ => None,
                        })
                        .collect();
                    assert!(
                        !lanes.is_empty(),
                        "no link from {at} toward {next}: topology/routing mismatch"
                    );
                    lanes
                };
                per_node.push(candidates);
            }
            table.push(per_node);
        }
        RouteTable { table }
    }

    /// Builds a table where a hop may have candidates toward *several*
    /// next routers (e.g. a fat-tree's up-links): `next_routers(at, goal)`
    /// returns every acceptable next router, and all lanes toward any of
    /// them become candidates.
    ///
    /// # Panics
    ///
    /// Panics if some `(at, goal)` pair with `at != goal` yields no
    /// candidate ports.
    pub fn build_multipath<F>(
        specs: &[RouterSpec],
        attachments: &[(RouterId, PortId)],
        next_routers: F,
    ) -> RouteTable
    where
        F: Fn(RouterId, RouterId) -> Vec<RouterId>,
    {
        let mut table = Vec::with_capacity(specs.len());
        for (r, spec) in specs.iter().enumerate() {
            let at = RouterId(r as u32);
            let mut per_node = Vec::with_capacity(attachments.len());
            for (goal_router, goal_port) in attachments.iter() {
                let candidates = if at == *goal_router {
                    vec![*goal_port]
                } else {
                    let nexts = next_routers(at, *goal_router);
                    assert!(!nexts.is_empty(), "next_routers must make progress");
                    let lanes: Vec<PortId> = spec
                        .ports
                        .iter()
                        .enumerate()
                        .filter_map(|(p, t)| match t {
                            PortTarget::Router { router, .. } if nexts.contains(router) => {
                                Some(PortId(p as u32))
                            }
                            _ => None,
                        })
                        .collect();
                    assert!(
                        !lanes.is_empty(),
                        "no link from {at} toward any of the next routers"
                    );
                    lanes
                };
                per_node.push(candidates);
            }
            table.push(per_node);
        }
        RouteTable { table }
    }

    /// The candidate output ports at `at` for traffic to `dest`.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn candidates(&self, at: RouterId, dest: NodeId) -> &[PortId] {
        &self.table[at.index()][dest.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_router_table() {
        let specs = vec![RouterSpec {
            ports: vec![PortTarget::Node(NodeId(0)), PortTarget::Node(NodeId(1))],
        }];
        let attachments = vec![(RouterId(0), PortId(0)), (RouterId(0), PortId(1))];
        let t = RouteTable::build(&specs, &attachments, |_, _| unreachable!());
        assert_eq!(t.candidates(RouterId(0), NodeId(0)), &[PortId(0)]);
        assert_eq!(t.candidates(RouterId(0), NodeId(1)), &[PortId(1)]);
    }

    #[test]
    fn two_router_line_with_fat_links() {
        // r0 ports: 0,1 → r1 (fat bundle); 2 → node0.
        // r1 ports: 0,1 → r0; 2 → node1.
        let specs = vec![
            RouterSpec {
                ports: vec![
                    PortTarget::Router {
                        router: RouterId(1),
                        port: PortId(0),
                    },
                    PortTarget::Router {
                        router: RouterId(1),
                        port: PortId(1),
                    },
                    PortTarget::Node(NodeId(0)),
                ],
            },
            RouterSpec {
                ports: vec![
                    PortTarget::Router {
                        router: RouterId(0),
                        port: PortId(0),
                    },
                    PortTarget::Router {
                        router: RouterId(0),
                        port: PortId(1),
                    },
                    PortTarget::Node(NodeId(1)),
                ],
            },
        ];
        let attachments = vec![(RouterId(0), PortId(2)), (RouterId(1), PortId(2))];
        let t = RouteTable::build(&specs, &attachments, |at, goal| {
            assert_ne!(at, goal);
            goal
        });
        assert_eq!(
            t.candidates(RouterId(0), NodeId(1)),
            &[PortId(0), PortId(1)]
        );
        assert_eq!(t.candidates(RouterId(1), NodeId(1)), &[PortId(2)]);
    }
}
