//! Criterion micro-benchmarks for the simulator's hot paths.
//!
//! These are engineering benchmarks (how fast is the simulator), not the
//! paper's experiments — those live in `src/bin/` (fig3…fig9, table2,
//! table3) and print the paper's tables.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use flitnet::{Flit, FlitKind, FrameId, MsgId, NodeId, StreamId, TrafficClass, VcId, VcPartition};
use mediaworm::{MuxScheduler, Network, RouterConfig, SchedulerKind};
use netsim::dist::{Distribution, Normal};
use netsim::{Calendar, Cycles, SimRng};
use topo::Topology;
use traffic::{StreamClass, WorkloadBuilder};

fn flit(vtick: f64) -> Flit {
    Flit {
        kind: FlitKind::Head,
        stream: StreamId(0),
        msg: MsgId(0),
        frame: FrameId(0),
        seq_in_msg: 0,
        msg_len: 20,
        msg_seq_in_frame: 0,
        msgs_in_frame: 1,
        dest: NodeId(0),
        vc: VcId(0),
        out_vc: VcId(0),
        vtick,
        class: TrafficClass::Vbr,
        created_at: Cycles(0),
    }
}

fn bench_scheduler(c: &mut Criterion) {
    let mut g = c.benchmark_group("virtual_clock_scheduler");
    for kind in [SchedulerKind::VirtualClock, SchedulerKind::Fifo] {
        g.bench_function(format!("{kind:?}_arrival_choose_service_16vc"), |b| {
            let mut s = MuxScheduler::new(kind, 16);
            // Keep every VC backlogged so `choose` scans a full mux point.
            for v in 0..16 {
                for _ in 0..4 {
                    s.on_arrival(v, Cycles(0), &flit(100.0));
                }
            }
            let mut eligible = [true; 16];
            let mut vc = 0usize;
            b.iter(|| {
                s.on_arrival(vc, Cycles(1), &flit(100.0));
                for (v, e) in eligible.iter_mut().enumerate() {
                    *e = s.pending(v) > 0;
                }
                let pick = s.choose(black_box(&eligible)).expect("eligible");
                s.on_service(pick);
                vc = (vc + 1) % 16;
            });
        });
    }
    g.finish();
}

fn bench_calendar(c: &mut Criterion) {
    c.bench_function("calendar_schedule_pop_1k", |b| {
        b.iter_batched(
            || {
                let mut rng = SimRng::seed_from(1);
                let times: Vec<u64> = (0..1000).map(|_| rng.range_u64(0, 1_000_000)).collect();
                times
            },
            |times| {
                let mut cal = Calendar::new();
                for (i, t) in times.iter().enumerate() {
                    cal.schedule(Cycles(*t), i);
                }
                let mut out = 0usize;
                while let Some((_, v)) = cal.pop() {
                    out = out.wrapping_add(v);
                }
                black_box(out)
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_normal(c: &mut Criterion) {
    c.bench_function("normal_sample", |b| {
        let d = Normal::new(16_666.0, 3_333.0);
        let mut rng = SimRng::seed_from(2);
        b.iter(|| black_box(d.sample(&mut rng)));
    });
}

fn bench_router_cycle(c: &mut Criterion) {
    let mut g = c.benchmark_group("network_cycle");
    g.sample_size(20);
    for &load in &[0.5, 0.9] {
        g.bench_function(format!("single_switch_load_{load}"), |b| {
            b.iter_batched(
                || {
                    let topology = Topology::single_switch(8);
                    let wl = WorkloadBuilder::new(8, VcPartition::all_real_time(16))
                        .load(load)
                        .mix(100.0, 0.0)
                        .real_time_class(StreamClass::Vbr)
                        .seed(3)
                        .build();
                    let mut net = Network::new(&topology, wl, &RouterConfig::default());
                    // Warm into a busy region.
                    let tb = net.timebase();
                    net.run_until(tb.cycles_from_ms(2.0));
                    net
                },
                |mut net| {
                    // Simulate 10k cycles of steady state.
                    let end = net.now() + Cycles(10_000);
                    net.run_until(end);
                    black_box(net.delivered_flits())
                },
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

fn busy_network(load: f64) -> Network {
    let topology = Topology::single_switch(8);
    let wl = WorkloadBuilder::new(8, VcPartition::all_real_time(16))
        .load(load)
        .mix(100.0, 0.0)
        .real_time_class(StreamClass::Vbr)
        .seed(3)
        .build();
    let mut net = Network::new(&topology, wl, &RouterConfig::default());
    let tb = net.timebase();
    net.run_until(tb.cycles_from_ms(2.0));
    net
}

/// The no-op telemetry sink must cost nothing measurable on the hot path:
/// compare `run_until` (internally a NoopSink run) against an explicitly
/// wired NoopSink and against full JSONL tracing.
fn bench_telemetry(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry");
    g.sample_size(20);
    g.bench_function("untraced_10k_cycles", |b| {
        b.iter_batched(
            || busy_network(0.9),
            |mut net| {
                let end = net.now() + Cycles(10_000);
                net.run_until(end);
                black_box(net.delivered_flits())
            },
            BatchSize::SmallInput,
        );
    });
    g.bench_function("noop_sink_10k_cycles", |b| {
        b.iter_batched(
            || busy_network(0.9),
            |mut net| {
                let end = net.now() + Cycles(10_000);
                net.run_until_with(end, &mut netsim::NoopSink);
                black_box(net.delivered_flits())
            },
            BatchSize::SmallInput,
        );
    });
    g.bench_function("jsonl_sink_10k_cycles", |b| {
        b.iter_batched(
            || busy_network(0.9),
            |mut net| {
                let mut sink = netsim::JsonlSink::new();
                let end = net.now() + Cycles(10_000);
                net.run_until_with(end, &mut sink);
                black_box((net.delivered_flits(), sink.events()))
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

/// A fig. 3-configured network (16-VC switch, 80:20 mix) warmed into
/// steady state — the configuration whose scan cost the occupancy-driven
/// active sets attack.
fn fig3_network(load: f64) -> Network {
    let topology = Topology::single_switch(8);
    let wl = WorkloadBuilder::new(8, VcPartition::from_mix(16, 80.0, 20.0))
        .load(load)
        .mix(80.0, 20.0)
        .real_time_class(StreamClass::Vbr)
        .seed(3)
        .build();
    let mut net = Network::new(&topology, wl, &RouterConfig::default());
    let tb = net.timebase();
    net.run_until(tb.cycles_from_ms(2.0));
    net
}

/// Occupancy-driven stepping vs. the full-scan reference on the fig. 3
/// configuration: per-cycle work should track flits in flight, not
/// ports × VCs, so `active` must beat `reference` — most visibly at 16
/// VCs under high load.
fn bench_net_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("net_step");
    g.sample_size(20);
    for &load in &[0.3, 0.96] {
        g.bench_function(format!("active_fig3_load_{load}_10k_cycles"), |b| {
            b.iter_batched(
                || fig3_network(load),
                |mut net| {
                    let end = net.now() + Cycles(10_000);
                    net.run_until(end);
                    black_box(net.delivered_flits())
                },
                BatchSize::SmallInput,
            );
        });
        g.bench_function(format!("reference_fig3_load_{load}_10k_cycles"), |b| {
            b.iter_batched(
                || fig3_network(load),
                |mut net| {
                    let end = net.now() + Cycles(10_000);
                    net.run_until_reference(end);
                    black_box(net.delivered_flits())
                },
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

/// [`fig3_network`] with token-bucket shaping at the NIs and a choice of
/// horizon skipping, for the quiescence-skip pair of the `net_step`
/// group.
fn fig3_shaped_network(load: f64, skipping: bool) -> Network {
    let topology = Topology::single_switch(8);
    let wl = WorkloadBuilder::new(8, VcPartition::from_mix(16, 80.0, 20.0))
        .load(load)
        .mix(80.0, 20.0)
        .real_time_class(StreamClass::Vbr)
        .policing(traffic::PolicingMode::Shape)
        .seed(3)
        .build();
    let mut net = Network::new(&topology, wl, &RouterConfig::default());
    let tb = net.timebase();
    net.run_until(tb.cycles_from_ms(2.0));
    net.set_horizon_skipping(skipping);
    net
}

/// The quiescence-skip pair: a low-load point and a shaped point where
/// most cycles are skippable, each stepped with the horizon driver and
/// with the legacy idle-jump-only stepper. Tracks the skip path so a
/// regression that stops cycles from being skipped shows up as these
/// benches collapsing toward their `legacy` counterparts.
fn bench_net_step_skip(c: &mut Criterion) {
    let mut g = c.benchmark_group("net_step");
    g.sample_size(20);
    for (label, shaped) in [("low_load", false), ("shaped", true)] {
        for (mode, skipping) in [("horizon", true), ("legacy", false)] {
            g.bench_function(format!("{mode}_fig3_{label}_0.3_10k_cycles"), |b| {
                b.iter_batched(
                    || {
                        if shaped {
                            fig3_shaped_network(0.3, skipping)
                        } else {
                            let mut net = fig3_network(0.3);
                            net.set_horizon_skipping(skipping);
                            net
                        }
                    },
                    |mut net| {
                        let end = net.now() + Cycles(10_000);
                        net.run_until(end);
                        black_box(net.delivered_flits())
                    },
                    BatchSize::SmallInput,
                );
            });
        }
    }
    g.finish();
}

/// An 8x8 mesh (64 nodes, 4 VCs) warmed into steady state, for the
/// threads axis of the `net_step` group.
fn mesh_network(load: f64) -> Network {
    let topology = Topology::mesh(8, 8, 1);
    let wl = WorkloadBuilder::new(topology.node_count(), VcPartition::from_mix(4, 80.0, 20.0))
        .load(load)
        .mix(80.0, 20.0)
        .real_time_class(StreamClass::Vbr)
        .seed(3)
        .build();
    let mut net = Network::new(&topology, wl, &RouterConfig::new(4));
    let tb = net.timebase();
    net.run_until(tb.cycles_from_ms(0.5));
    net
}

/// Threads axis on an 8x8 mesh: sequential stepping vs. the
/// deterministic barrier-phased parallel stepper at 2 and 4 workers.
/// On a single-core host the >1-thread points measure the barrier
/// overhead, not a speedup.
fn bench_net_step_threads(c: &mut Criterion) {
    let mut g = c.benchmark_group("net_step");
    g.sample_size(10);
    for &threads in &[1usize, 2, 4] {
        g.bench_function(
            format!("mesh8x8_load_0.4_threads_{threads}_5k_cycles"),
            |b| {
                b.iter_batched(
                    || mesh_network(0.4),
                    |mut net| {
                        let end = net.now() + Cycles(5_000);
                        if threads <= 1 {
                            net.run_until(end);
                        } else {
                            net.run_until_parallel(end, threads);
                        }
                        black_box(net.delivered_flits())
                    },
                    BatchSize::SmallInput,
                );
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_scheduler,
    bench_calendar,
    bench_normal,
    bench_router_cycle,
    bench_net_step,
    bench_net_step_skip,
    bench_net_step_threads,
    bench_telemetry
);
criterion_main!(benches);
