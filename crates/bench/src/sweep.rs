//! Parallel sweep execution for the experiment binaries.
//!
//! Every figure/table of the paper is a *sweep*: a list of independent
//! simulation points (load × mix × router config) whose results fill a
//! table. [`SweepRunner`] fans such a list across a pool of scoped
//! threads, capped by `--jobs N` / the `MEDIAWORM_JOBS` environment
//! variable (default: all available cores).
//!
//! # Determinism
//!
//! Results are **bit-identical at any job count**:
//!
//! * each task's RNG seed is derived from `(base_seed, task_index)` alone
//!   via [`derive_seed`] — never from which worker ran it or when;
//! * results land in a slot indexed by the task, so output order equals
//!   input order regardless of completion order;
//! * replicated runs reduce through [`RunningStats::merge`] in replica
//!   index order (parallel Welford is deterministic for a fixed merge
//!   order, not for an arbitrary one).
//!
//! # Sharding
//!
//! `--shard i/n` partitions a sweep's task list across `n` independent
//! processes (or machines): shard `i` owns exactly the tasks whose index
//! is `≡ i (mod n)`. The partition depends only on the index, so every
//! shard derives the same per-task seeds it would in a monolithic run,
//! and the shards' results — tagged with their global indices — merge
//! back into the byte-identical monolithic report (see
//! [`crate::merge_shards`]).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use netsim::RunningStats;

use crate::RunArgs;

/// The splitmix64 output finalizer.
fn splitmix_finalize(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the RNG seed for sweep task `index` from the sweep's base
/// seed. A splitmix64 finalizer over the pair: adjacent indices give
/// statistically independent streams, and the result depends only on
/// `(base_seed, index)` — not on scheduling.
///
/// The base seed is finalized *before* the index is mixed in. Combining
/// them linearly in one pre-image (`base + index·M`) made structurally
/// related pairs collide exactly — `(b, i)` and `(b + M, i − 1)` produced
/// identical seeds, so two sweeps with related `--seed` values silently
/// shared replica streams. Avalanching the base first leaves no linear
/// relation for the index term to cancel.
pub fn derive_seed(base_seed: u64, index: u64) -> u64 {
    let h = splitmix_finalize(base_seed.wrapping_add(0x9E37_79B9_7F4A_7C15));
    splitmix_finalize(h.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// One unit of sweep work: which point, and the seed to run it with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepTask {
    /// Position in the sweep's task list (also the result slot).
    pub index: usize,
    /// Seed derived from `(base_seed, index)`; see [`derive_seed`].
    pub seed: u64,
}

/// Fans independent simulation points across worker threads.
///
/// # Example
///
/// ```
/// use mediaworm_bench::sweep::SweepRunner;
///
/// let runner = SweepRunner::new(4, 42);
/// let squares = runner.map(8, |task| (task.index * task.index, task.seed));
/// // Input order is preserved and seeds depend only on the index, so the
/// // same call with 1 job gives the identical vector.
/// assert_eq!(squares, SweepRunner::new(1, 42).map(8, |t| (t.index * t.index, t.seed)));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SweepRunner {
    jobs: usize,
    base_seed: u64,
    /// `(index, count)` of the shard this runner owns; `(0, 1)` is the
    /// whole sweep.
    shard: (usize, usize),
}

impl SweepRunner {
    /// A runner using at most `jobs` worker threads and deriving task
    /// seeds from `base_seed`.
    ///
    /// # Panics
    ///
    /// Panics if `jobs` is zero.
    pub fn new(jobs: usize, base_seed: u64) -> SweepRunner {
        assert!(jobs >= 1, "a sweep needs at least one worker");
        SweepRunner {
            jobs,
            base_seed,
            shard: (0, 1),
        }
    }

    /// A runner configured from the command-line arguments: job count
    /// from `--jobs` / `MEDIAWORM_JOBS` / available parallelism, base
    /// seed from `--seed`, shard from `--shard i/n`.
    pub fn from_args(args: &RunArgs) -> SweepRunner {
        SweepRunner::new(args.effective_jobs(), args.seed).with_shard(args.shard.unwrap_or((0, 1)))
    }

    /// This runner restricted to shard `(index, count)`: it owns the
    /// tasks whose index is `≡ index (mod count)`.
    ///
    /// # Panics
    ///
    /// Panics unless `index < count`.
    pub fn with_shard(self, shard: (usize, usize)) -> SweepRunner {
        assert!(
            shard.0 < shard.1,
            "shard index {} out of range for {} shards",
            shard.0,
            shard.1
        );
        SweepRunner { shard, ..self }
    }

    /// The worker-thread cap.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The base seed task seeds are derived from.
    pub fn base_seed(&self) -> u64 {
        self.base_seed
    }

    /// Whether this runner's shard owns task `index`.
    pub fn owns(&self, index: usize) -> bool {
        index % self.shard.1 == self.shard.0
    }

    /// Runs every one of `count` tasks through `f` — ignoring the shard —
    /// and returns the results in task order.
    ///
    /// Workers self-schedule off a shared atomic counter, so an expensive
    /// point does not hold up the queue behind it. `f` must not rely on
    /// execution order — only on its [`SweepTask`]. Shard-aware sweeps go
    /// through [`SweepRunner::map_sharded`]; this is the unsharded path
    /// (replica statistics, callers that need every result present).
    pub fn map<T, F>(&self, count: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(SweepTask) -> T + Sync,
    {
        let full = SweepRunner {
            shard: (0, 1),
            ..*self
        };
        full.map_sharded(count, f)
            .into_iter()
            .map(|slot| slot.expect("every sweep task stores its result"))
            .collect()
    }

    /// Runs the tasks this runner's shard owns through `f` and returns a
    /// `count`-length vector with the owned results in their global task
    /// slots and `None` everywhere else.
    ///
    /// Seeds and slot positions are the monolithic sweep's — a task
    /// computes identical bits no matter how many shards the sweep was
    /// split into.
    pub fn map_sharded<T, F>(&self, count: usize, f: F) -> Vec<Option<T>>
    where
        T: Send,
        F: Fn(SweepTask) -> T + Sync,
    {
        let task = |index: usize| SweepTask {
            index,
            seed: derive_seed(self.base_seed, index as u64),
        };
        let owned: Vec<usize> = (0..count).filter(|&i| self.owns(i)).collect();
        let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
        let workers = self.jobs.min(owned.len());
        if workers <= 1 {
            for &i in &owned {
                slots[i] = Some(f(task(i)));
            }
            return slots;
        }
        let slots = Mutex::new(slots);
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= owned.len() {
                        break;
                    }
                    let i = owned[k];
                    let value = f(task(i));
                    slots.lock().expect("sweep slots poisoned")[i] = Some(value);
                });
            }
        });
        slots.into_inner().expect("sweep slots poisoned")
    }

    /// Runs `points × replicas` tasks through `f` and merges each point's
    /// replica statistics with [`RunningStats::merge`], always in replica
    /// index order. `f` receives `(point, replica, seed)`; the seed is
    /// derived from the flat task index `point * replicas + replica`.
    pub fn run_stats<F>(&self, points: usize, replicas: usize, f: F) -> Vec<RunningStats>
    where
        F: Fn(usize, usize, u64) -> RunningStats + Sync,
    {
        assert!(replicas >= 1, "each point needs at least one replica");
        let per_task = self.map(points * replicas, |t| {
            f(t.index / replicas, t.index % replicas, t.seed)
        });
        per_task
            .chunks(replicas)
            .map(|chunk| {
                let mut acc = RunningStats::new();
                for s in chunk {
                    acc.merge(s);
                }
                acc
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_input_order() {
        let r = SweepRunner::new(8, 7);
        let out = r.map(100, |t| t.index * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn seeds_depend_only_on_index() {
        let a = SweepRunner::new(1, 42).map(16, |t| t.seed);
        let b = SweepRunner::new(8, 42).map(16, |t| t.seed);
        assert_eq!(a, b);
        // All distinct (splitmix64 is a bijection, but check the mix too).
        let set: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(set.len(), a.len());
    }

    #[test]
    fn different_base_seeds_give_different_streams() {
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
        assert_ne!(derive_seed(1, 0), derive_seed(1, 1));
    }

    #[test]
    fn structurally_related_pairs_do_not_collide() {
        // Regression: with the old linear pre-image `base + index·M`,
        // (b, i) and (b + M, i − 1) collided exactly for every b and i.
        const M: u64 = 0xBF58_476D_1CE4_E5B9;
        for b in [0u64, 1, 42, 0xDEAD_BEEF, u64::MAX / 2] {
            for i in 1u64..8 {
                assert_ne!(
                    derive_seed(b, i),
                    derive_seed(b.wrapping_add(M), i - 1),
                    "b={b} i={i}"
                );
            }
        }
        // Same trap for the golden-ratio constant now used on the index.
        const G: u64 = 0x9E37_79B9_7F4A_7C15;
        for i in 1u64..8 {
            assert_ne!(derive_seed(7, i), derive_seed(7u64.wrapping_add(G), i - 1));
        }
    }

    #[test]
    fn cross_pair_grid_is_collision_free() {
        // 64 bases × 64 indices: every (base, index) pair gets a distinct
        // seed, including across bases (cross-pair, not just per-sweep).
        let mut seen = std::collections::HashSet::new();
        for b in 0u64..64 {
            for i in 0u64..64 {
                assert!(
                    seen.insert(derive_seed(b * 0x10_0001, i)),
                    "collision at b={b} i={i}"
                );
            }
        }
    }

    #[test]
    fn zero_tasks_is_fine() {
        let r = SweepRunner::new(4, 0);
        let out: Vec<u64> = r.map(0, |t| t.seed);
        assert!(out.is_empty());
    }

    #[test]
    fn run_stats_merges_in_replica_order_bit_identically() {
        // Irrational-ish samples so float merge order would show up.
        let sample = |p: usize, rep: usize, seed: u64| {
            let mut s = RunningStats::new();
            for k in 0..50 {
                let x = ((seed % 1000) as f64).sqrt()
                    + (p as f64 * 0.37 + rep as f64 * 0.11 + k as f64).sin();
                s.push(x);
            }
            s
        };
        let seq = SweepRunner::new(1, 99).run_stats(6, 4, sample);
        let par = SweepRunner::new(8, 99).run_stats(6, 4, sample);
        assert_eq!(seq.len(), 6);
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.count(), b.count());
            assert_eq!(a.mean().to_bits(), b.mean().to_bits());
            assert_eq!(a.variance().to_bits(), b.variance().to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_jobs_panics() {
        let _ = SweepRunner::new(0, 0);
    }

    #[test]
    fn shards_partition_the_task_list_exactly() {
        let n = 3;
        let count = 10;
        let mut seen = vec![0usize; count];
        for i in 0..n {
            let r = SweepRunner::new(2, 42).with_shard((i, n));
            for (idx, slot) in r.map_sharded(count, |t| t.index).into_iter().enumerate() {
                match slot {
                    Some(v) => {
                        assert_eq!(v, idx);
                        assert!(r.owns(idx));
                        seen[idx] += 1;
                    }
                    None => assert!(!r.owns(idx)),
                }
            }
        }
        // Every task computed by exactly one shard.
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn sharded_seeds_match_the_monolithic_sweep() {
        let mono = SweepRunner::new(1, 42).map(12, |t| t.seed);
        for i in 0..4 {
            let shard = SweepRunner::new(4, 42).with_shard((i, 4));
            for (idx, slot) in shard.map_sharded(12, |t| t.seed).into_iter().enumerate() {
                if let Some(seed) = slot {
                    assert_eq!(seed, mono[idx], "task {idx} on shard {i}/4");
                }
            }
        }
    }

    #[test]
    fn map_ignores_the_shard() {
        let full = SweepRunner::new(2, 7)
            .with_shard((1, 3))
            .map(9, |t| t.index);
        assert_eq!(full, (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn shard_owning_no_tasks_returns_all_none() {
        let r = SweepRunner::new(4, 0).with_shard((5, 8));
        let out = r.map_sharded(3, |t| t.index);
        assert_eq!(out, vec![None, None, None]);
    }

    #[test]
    #[should_panic(expected = "shard index 2 out of range for 2 shards")]
    fn shard_index_must_be_in_range() {
        let _ = SweepRunner::new(1, 0).with_shard((2, 2));
    }
}
