//! Shared experiment harness for the MediaWorm reproduction binaries.
//!
//! Every table and figure of the paper has a binary in `src/bin/` that
//! builds the right workload/topology/router configuration, runs the
//! simulation, and prints the same rows or series the paper reports. This
//! library holds what they share: the command-line knobs ([`RunArgs`]),
//! the single-point runners ([`run_single_switch`], [`run_fat_mesh`]), and
//! formatting helpers.
//!
//! # Conventions
//!
//! * All binaries accept `--quick` (shorter measurement window for smoke
//!   runs), `--seed <u64>`, `--warmup <secs>` and `--measure <secs>`.
//! * Results print as plain-text tables; `EXPERIMENTS.md` records the
//!   paper-vs-measured comparison.

#![warn(missing_docs)]

pub mod experiments;

use flitnet::VcPartition;
use mediaworm::{sim, RouterConfig, SimOutcome};
use topo::Topology;
use traffic::{StreamClass, WorkloadBuilder, WorkloadSpec};

/// Command-line arguments shared by all experiment binaries.
#[derive(Debug, Clone)]
pub struct RunArgs {
    /// Shorter windows for smoke runs.
    pub quick: bool,
    /// Base RNG seed.
    pub seed: u64,
    /// Warm-up window in simulated seconds.
    pub warmup_secs: f64,
    /// Measurement window in simulated seconds.
    pub measure_secs: f64,
}

impl RunArgs {
    /// Parses `std::env::args()`. Unknown flags abort with a usage
    /// message.
    pub fn from_env() -> RunArgs {
        let mut args = RunArgs::default();
        let mut it = std::env::args().skip(1);
        let mut explicit_windows = false;
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => args.quick = true,
                "--seed" => {
                    args.seed = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--seed needs a u64"));
                }
                "--warmup" => {
                    args.warmup_secs = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--warmup needs seconds"));
                    explicit_windows = true;
                }
                "--measure" => {
                    args.measure_secs = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--measure needs seconds"));
                    explicit_windows = true;
                }
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag {other}")),
            }
        }
        if args.quick && !explicit_windows {
            args.warmup_secs = 0.05;
            args.measure_secs = 0.15;
        }
        args
    }

    /// The `(warmup, measure)` windows in seconds.
    pub fn windows(&self) -> (f64, f64) {
        (self.warmup_secs, self.measure_secs)
    }
}

impl Default for RunArgs {
    fn default() -> RunArgs {
        RunArgs {
            quick: false,
            seed: 42,
            warmup_secs: 0.1,
            measure_secs: 0.4,
        }
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!("usage: <experiment> [--quick] [--seed N] [--warmup SECS] [--measure SECS]");
    std::process::exit(2);
}

/// Parameters for one simulation point.
#[derive(Debug, Clone)]
pub struct Point {
    /// Total input load as a fraction of link bandwidth.
    pub load: f64,
    /// Real-time share of the mix.
    pub mix_x: f64,
    /// Best-effort share of the mix.
    pub mix_y: f64,
    /// VBR or CBR for the real-time component.
    pub class: StreamClass,
    /// Router configuration.
    pub router: RouterConfig,
    /// Physical workload parameters.
    pub spec: WorkloadSpec,
}

impl Point {
    /// A paper-default point: VBR, Table 1 spec, 16-VC Virtual Clock
    /// router.
    pub fn new(load: f64, mix_x: f64, mix_y: f64) -> Point {
        Point {
            load,
            mix_x,
            mix_y,
            class: StreamClass::Vbr,
            router: RouterConfig::default(),
            spec: WorkloadSpec::paper_default(),
        }
    }

    /// The VC partition the point's mix implies.
    pub fn partition(&self) -> VcPartition {
        if self.mix_y == 0.0 {
            VcPartition::all_real_time(self.router.vcs_per_pc())
        } else {
            VcPartition::from_mix(self.router.vcs_per_pc(), self.mix_x, self.mix_y)
        }
    }

    /// Runs this point over `topology`.
    pub fn run_on(&self, topology: &Topology, args: &RunArgs) -> SimOutcome {
        let workload = WorkloadBuilder::new(topology.node_count(), self.partition())
            .spec(self.spec.clone())
            .load(self.load)
            .mix(self.mix_x, self.mix_y)
            .real_time_class(self.class)
            .seed(args.seed)
            .build();
        let (w, m) = args.windows();
        sim::run(topology, workload, &self.router, w, m)
    }
}

/// Runs one point on the paper's 8-port single switch.
pub fn run_single_switch(point: &Point, args: &RunArgs) -> SimOutcome {
    point.run_on(&Topology::single_switch(8), args)
}

/// Runs one point on the paper's 2×2 fat-mesh (two parallel links per
/// neighbour pair, 4 endpoints per switch).
pub fn run_fat_mesh(point: &Point, args: &RunArgs) -> SimOutcome {
    point.run_on(&Topology::fat_mesh(2, 2, 2, 4), args)
}

/// Formats a jitter pair `(d̄, σ_d)` in milliseconds.
pub fn fmt_jitter(outcome: &SimOutcome) -> (String, String) {
    (
        format!("{:.2}", outcome.jitter.mean_ms),
        format!("{:.2}", outcome.jitter.std_ms),
    )
}

/// Prints the standard experiment header.
pub fn banner(title: &str, args: &RunArgs) {
    println!("== {title} ==");
    println!(
        "   (seed {}, warm-up {:.0} ms, measure {:.0} ms{})",
        args.seed,
        args.warmup_secs * 1e3,
        args.measure_secs * 1e3,
        if args.quick { ", quick mode" } else { "" }
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_args_are_sane() {
        let a = RunArgs::default();
        assert!(a.warmup_secs > 0.0 && a.measure_secs > 0.0);
        assert!(!a.quick);
    }

    #[test]
    fn point_partition_handles_pure_real_time() {
        let p = Point::new(0.8, 100.0, 0.0);
        assert_eq!(p.partition().best_effort_count(), 0);
        let q = Point::new(0.8, 80.0, 20.0);
        assert!(q.partition().best_effort_count() > 0);
    }

    #[test]
    fn quick_single_switch_point_runs() {
        let args = RunArgs {
            quick: true,
            seed: 7,
            warmup_secs: 0.02,
            measure_secs: 0.05,
        };
        let out = run_single_switch(&Point::new(0.4, 100.0, 0.0), &args);
        assert!(out.jitter.intervals > 0);
    }
}
