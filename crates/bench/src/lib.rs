//! Shared experiment harness for the MediaWorm reproduction binaries.
//!
//! Every table and figure of the paper has a binary in `src/bin/` that
//! builds the right workload/topology/router configuration, runs the
//! simulation, and prints the same rows or series the paper reports. This
//! library holds what they share: the command-line knobs ([`RunArgs`]),
//! the single-point runners ([`run_single_switch`], [`run_fat_mesh`]), and
//! formatting helpers.
//!
//! # Conventions
//!
//! * All binaries accept `--quick` (shorter measurement window for smoke
//!   runs), `--seed <u64>`, `--warmup <secs>`, `--measure <secs>` and
//!   `--jobs <N>` (worker threads for the sweep; also settable via the
//!   `MEDIAWORM_JOBS` environment variable, default: all available
//!   cores). Results are bit-identical at any job count — see
//!   [`sweep`].
//! * Results print as plain-text tables; `EXPERIMENTS.md` records the
//!   paper-vs-measured comparison.

#![warn(missing_docs)]

pub mod experiments;
pub mod perf;
pub mod sweep;

use std::path::PathBuf;

use flitnet::VcPartition;
use mediaworm::{sim, RouterConfig, SimOpts, SimOutcome};
use metrics::{Json, Table};
use topo::Topology;
use traffic::{StreamClass, WorkloadBuilder, WorkloadSpec};

/// Command-line arguments shared by all experiment binaries.
#[derive(Debug, Clone)]
pub struct RunArgs {
    /// Shorter windows for smoke runs.
    pub quick: bool,
    /// Base RNG seed.
    pub seed: u64,
    /// Warm-up window in simulated seconds.
    pub warmup_secs: f64,
    /// Measurement window in simulated seconds.
    pub measure_secs: f64,
    /// Worker-thread cap for sweeps (`--jobs`); `None` falls back to
    /// `MEDIAWORM_JOBS`, then to the machine's available parallelism
    /// divided by the per-point thread count (so jobs × threads stays
    /// within the core budget).
    pub jobs: Option<usize>,
    /// Threads stepping each simulated network (`--threads`); `None`
    /// falls back to `MEDIAWORM_THREADS`, then to 1 (sequential).
    /// Results are bit-identical at any thread count.
    pub threads: Option<usize>,
    /// Also write machine-readable results to `BENCH_<name>.json`.
    pub json: bool,
    /// Record a JSONL flit-event trace of every simulated point to this
    /// path. Traces are large; combine with `--quick`.
    pub trace: Option<PathBuf>,
    /// Run every point with the flow-control invariant audit enabled
    /// (`--audit`); violation counts land in the per-point JSON records.
    pub audit: bool,
}

impl RunArgs {
    /// Parses `std::env::args()`. Unknown flags abort with a usage
    /// message.
    pub fn from_env() -> RunArgs {
        let mut args = RunArgs::default();
        let mut it = std::env::args().skip(1);
        let mut explicit_windows = false;
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => args.quick = true,
                "--seed" => {
                    args.seed = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--seed needs a u64"));
                }
                "--warmup" => {
                    args.warmup_secs = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--warmup needs seconds"));
                    explicit_windows = true;
                }
                "--measure" => {
                    args.measure_secs = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--measure needs seconds"));
                    explicit_windows = true;
                }
                "--jobs" => {
                    let n: usize = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--jobs needs a positive count"));
                    if n == 0 {
                        usage("--jobs needs a positive count");
                    }
                    args.jobs = Some(n);
                }
                "--threads" => {
                    let n: usize = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--threads needs a positive count"));
                    if n == 0 {
                        usage("--threads needs a positive count");
                    }
                    args.threads = Some(n);
                }
                "--json" => args.json = true,
                "--audit" => args.audit = true,
                "--trace" => {
                    args.trace = Some(PathBuf::from(
                        it.next().unwrap_or_else(|| usage("--trace needs a path")),
                    ));
                }
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag {other}")),
            }
        }
        if args.quick && !explicit_windows {
            args.warmup_secs = 0.05;
            args.measure_secs = 0.15;
        }
        args
    }

    /// The `(warmup, measure)` windows in seconds.
    pub fn windows(&self) -> (f64, f64) {
        (self.warmup_secs, self.measure_secs)
    }

    /// The sweep worker count: `--jobs`, else `MEDIAWORM_JOBS`, else the
    /// machine's available parallelism divided by
    /// [`RunArgs::effective_threads`] — the two axes compose, so the
    /// default keeps jobs × threads within the core count (always at
    /// least 1 of each).
    pub fn effective_jobs(&self) -> usize {
        if let Some(n) = self.jobs {
            return n.max(1);
        }
        if let Some(n) = std::env::var("MEDIAWORM_JOBS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
        {
            return n;
        }
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        (cores / self.effective_threads()).max(1)
    }

    /// Threads stepping each simulated network: `--threads`, else
    /// `MEDIAWORM_THREADS`, else 1 (the sequential stepper).
    pub fn effective_threads(&self) -> usize {
        if let Some(n) = self.threads {
            return n.max(1);
        }
        std::env::var("MEDIAWORM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(1)
    }

    /// The [`SimOpts`] these args imply: the standard watchdog always,
    /// plus the invariant audit when `--audit` was given, on
    /// [`RunArgs::effective_threads`] stepping threads.
    pub fn sim_opts(&self) -> SimOpts {
        let base = if self.audit {
            SimOpts::audited()
        } else {
            SimOpts::standard()
        };
        base.threads(self.effective_threads())
    }
}

impl Default for RunArgs {
    fn default() -> RunArgs {
        RunArgs {
            quick: false,
            seed: 42,
            warmup_secs: 0.1,
            measure_secs: 0.4,
            jobs: None,
            threads: None,
            json: false,
            trace: None,
            audit: false,
        }
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: <experiment> [--quick] [--seed N] [--warmup SECS] [--measure SECS] [--jobs N] \
         [--threads N] [--json] [--audit] [--trace PATH]"
    );
    std::process::exit(2);
}

/// Parameters for one simulation point.
#[derive(Debug, Clone)]
pub struct Point {
    /// Total input load as a fraction of link bandwidth.
    pub load: f64,
    /// Real-time share of the mix.
    pub mix_x: f64,
    /// Best-effort share of the mix.
    pub mix_y: f64,
    /// VBR or CBR for the real-time component.
    pub class: StreamClass,
    /// Router configuration.
    pub router: RouterConfig,
    /// Physical workload parameters.
    pub spec: WorkloadSpec,
}

impl Point {
    /// A paper-default point: VBR, Table 1 spec, 16-VC Virtual Clock
    /// router.
    pub fn new(load: f64, mix_x: f64, mix_y: f64) -> Point {
        Point {
            load,
            mix_x,
            mix_y,
            class: StreamClass::Vbr,
            router: RouterConfig::default(),
            spec: WorkloadSpec::paper_default(),
        }
    }

    /// The VC partition the point's mix implies.
    pub fn partition(&self) -> VcPartition {
        if self.mix_y == 0.0 {
            VcPartition::all_real_time(self.router.vcs_per_pc())
        } else {
            VcPartition::from_mix(self.router.vcs_per_pc(), self.mix_x, self.mix_y)
        }
    }

    /// Runs this point over `topology` with the args' base seed.
    pub fn run_on(&self, topology: &Topology, args: &RunArgs) -> SimOutcome {
        self.run_on_seeded(topology, args, args.seed)
    }

    /// Runs this point over `topology` with an explicit workload seed
    /// (sweeps derive one per task; see [`sweep`]).
    pub fn run_on_seeded(&self, topology: &Topology, args: &RunArgs, seed: u64) -> SimOutcome {
        let workload = self.workload(topology, seed);
        let (w, m) = args.windows();
        sim::run_opts(topology, workload, &self.router, w, m, args.sim_opts())
    }

    /// [`Point::run_on_seeded`] recording a JSONL flit-event trace,
    /// returned alongside the outcome.
    pub fn run_on_seeded_traced(
        &self,
        topology: &Topology,
        args: &RunArgs,
        seed: u64,
    ) -> (SimOutcome, Vec<u8>) {
        let workload = self.workload(topology, seed);
        let (w, m) = args.windows();
        sim::run_opts_traced(topology, workload, &self.router, w, m, args.sim_opts())
    }

    fn workload(&self, topology: &Topology, seed: u64) -> traffic::Workload {
        WorkloadBuilder::new(topology.node_count(), self.partition())
            .spec(self.spec.clone())
            .load(self.load)
            .mix(self.mix_x, self.mix_y)
            .real_time_class(self.class)
            .seed(seed)
            .build()
    }
}

/// Runs one point on the paper's 8-port single switch.
pub fn run_single_switch(point: &Point, args: &RunArgs) -> SimOutcome {
    point.run_on(&Topology::single_switch(8), args)
}

/// [`run_single_switch`] with an explicit workload seed.
pub fn run_single_switch_seeded(point: &Point, args: &RunArgs, seed: u64) -> SimOutcome {
    point.run_on_seeded(&Topology::single_switch(8), args, seed)
}

/// Runs one point on the paper's 2×2 fat-mesh (two parallel links per
/// neighbour pair, 4 endpoints per switch).
pub fn run_fat_mesh(point: &Point, args: &RunArgs) -> SimOutcome {
    point.run_on(&Topology::fat_mesh(2, 2, 2, 4), args)
}

/// [`run_fat_mesh`] with an explicit workload seed.
pub fn run_fat_mesh_seeded(point: &Point, args: &RunArgs, seed: u64) -> SimOutcome {
    point.run_on_seeded(&Topology::fat_mesh(2, 2, 2, 4), args, seed)
}

/// [`run_single_switch_seeded`] with a JSONL flit-event trace.
pub fn run_single_switch_traced(point: &Point, args: &RunArgs, seed: u64) -> (SimOutcome, Vec<u8>) {
    point.run_on_seeded_traced(&Topology::single_switch(8), args, seed)
}

/// [`run_fat_mesh_seeded`] with a JSONL flit-event trace.
pub fn run_fat_mesh_traced(point: &Point, args: &RunArgs, seed: u64) -> (SimOutcome, Vec<u8>) {
    point.run_on_seeded_traced(&Topology::fat_mesh(2, 2, 2, 4), args, seed)
}

/// The full result of one experiment: the printed table plus the
/// machine-readable per-point records, simulated-cycle accounting and
/// (when tracing was requested) the concatenated flit-event trace.
#[derive(Debug, Clone)]
pub struct ExperimentRun {
    /// Short machine-friendly name (`fig3`, `table2`, ...); names the
    /// `BENCH_<name>.json` output file.
    pub name: &'static str,
    /// The paper-style text table the experiment printed.
    pub table: Table,
    /// One JSON object per simulated point, in sweep (task) order.
    pub points: Vec<Json>,
    /// Total simulated cycles across every point of the sweep.
    pub sim_cycles: u64,
    /// Concatenated JSONL flit-event trace, point order; empty unless
    /// `--trace` was given (PCS points do not produce trace events).
    pub trace: Vec<u8>,
}

impl ExperimentRun {
    /// The machine-readable document `--json` writes: experiment name,
    /// per-point results, and throughput (wall-clock seconds, simulated
    /// cycles, cycles per second).
    pub fn to_json(&self, wall_secs: f64) -> Json {
        let cycles_per_sec = (wall_secs > 0.0).then(|| self.sim_cycles as f64 / wall_secs);
        Json::obj([
            ("experiment", Json::str(self.name)),
            ("results", Json::arr(self.points.iter().cloned())),
            (
                "throughput",
                Json::obj([
                    ("wall_secs", Json::num(wall_secs)),
                    ("sim_cycles", Json::Uint(self.sim_cycles)),
                    ("cycles_per_sec", Json::opt_num(cycles_per_sec)),
                ]),
            ),
        ])
    }
}

/// Runs one experiment and handles its `--json` / `--trace` outputs: the
/// standard `main` body of every experiment binary. Returns the run so
/// callers (`repro-all`) can collect the tables.
pub fn run_experiment(args: &RunArgs, f: fn(&RunArgs) -> ExperimentRun) -> ExperimentRun {
    let started = std::time::Instant::now();
    let run = f(args);
    let wall_secs = started.elapsed().as_secs_f64();
    if args.json {
        let path = format!("BENCH_{}.json", run.name);
        let doc = format!("{}\n", run.to_json(wall_secs));
        std::fs::write(&path, doc).expect("write json results");
        println!("json results written to {path}");
    }
    if let Some(path) = &args.trace {
        std::fs::write(path, &run.trace).expect("write flit trace");
        println!(
            "flit trace ({} bytes) written to {}",
            run.trace.len(),
            path.display()
        );
    }
    run
}

/// Formats a jitter pair `(d̄, σ_d)` in milliseconds.
pub fn fmt_jitter(outcome: &SimOutcome) -> (String, String) {
    (
        format!("{:.2}", outcome.jitter.mean_ms),
        format!("{:.2}", outcome.jitter.std_ms),
    )
}

/// Prints the standard experiment header.
pub fn banner(title: &str, args: &RunArgs) {
    println!("== {title} ==");
    println!(
        "   (seed {}, warm-up {:.0} ms, measure {:.0} ms{})",
        args.seed,
        args.warmup_secs * 1e3,
        args.measure_secs * 1e3,
        if args.quick { ", quick mode" } else { "" }
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_args_are_sane() {
        let a = RunArgs::default();
        assert!(a.warmup_secs > 0.0 && a.measure_secs > 0.0);
        assert!(!a.quick);
    }

    #[test]
    fn point_partition_handles_pure_real_time() {
        let p = Point::new(0.8, 100.0, 0.0);
        assert_eq!(p.partition().best_effort_count(), 0);
        let q = Point::new(0.8, 80.0, 20.0);
        assert!(q.partition().best_effort_count() > 0);
    }

    #[test]
    fn quick_single_switch_point_runs() {
        let args = RunArgs {
            quick: true,
            seed: 7,
            warmup_secs: 0.02,
            measure_secs: 0.05,
            jobs: Some(1),
            ..RunArgs::default()
        };
        let out = run_single_switch(&Point::new(0.4, 100.0, 0.0), &args);
        assert!(out.jitter.intervals > 0);
    }

    #[test]
    fn run_args_parse_defaults_exclude_json_and_trace() {
        let a = RunArgs::default();
        assert!(!a.json);
        assert!(a.trace.is_none());
    }

    #[test]
    fn experiment_json_handles_zero_wall_time() {
        let run = ExperimentRun {
            name: "unit",
            table: Table::new(["a"]),
            points: Vec::new(),
            sim_cycles: 100,
            trace: Vec::new(),
        };
        let doc = run.to_json(0.0).to_string();
        assert!(doc.contains("\"cycles_per_sec\":null"));
        assert!(!doc.contains("NaN"));
    }
}
