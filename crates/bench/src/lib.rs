//! Shared experiment harness for the MediaWorm reproduction binaries.
//!
//! Every table and figure of the paper has a binary in `src/bin/` that
//! builds the right workload/topology/router configuration, runs the
//! simulation, and prints the same rows or series the paper reports. This
//! library holds what they share: the command-line knobs ([`RunArgs`]),
//! the single-point runners ([`run_single_switch`], [`run_fat_mesh`]), and
//! formatting helpers.
//!
//! # Conventions
//!
//! * All binaries accept `--quick` (shorter measurement window for smoke
//!   runs), `--seed <u64>`, `--warmup <secs>`, `--measure <secs>` and
//!   `--jobs <N>` (worker threads for the sweep; also settable via the
//!   `MEDIAWORM_JOBS` environment variable, default: all available
//!   cores). Results are bit-identical at any job count — see
//!   [`sweep`].
//! * Sweeps shard and resume: `--shard i/n` runs only the tasks owned by
//!   shard `i` of `n` and writes `BENCH_<name>.shard<i>of<n>.json`;
//!   [`merge_shards`] (or the `merge-shards` binary) recombines the shard
//!   files into the byte-stable monolithic report. `--checkpoint N`
//!   snapshots each in-flight point every `N` simulated cycles under
//!   `target/bench/state/`, and `--resume` restores from those snapshots,
//!   continuing interrupted points bit-identically.
//! * `--json` writes machine-readable results to
//!   `target/bench/BENCH_<name>.json` by default; `--json PATH` places
//!   the file explicitly.
//! * Results print as plain-text tables; `EXPERIMENTS.md` records the
//!   paper-vs-measured comparison.

#![warn(missing_docs)]

pub mod experiments;
pub mod perf;
pub mod sweep;

use std::io;
use std::path::{Path, PathBuf};

use flitnet::VcPartition;
use mediaworm::{sim, RouterConfig, SchedulerKind, SimOpts, SimOutcome};
use metrics::{Json, Table};
use topo::Topology;
use traffic::{PolicingMode, StreamClass, WorkloadBuilder, WorkloadSpec};

/// Command-line arguments shared by all experiment binaries.
#[derive(Debug, Clone)]
pub struct RunArgs {
    /// Shorter windows for smoke runs.
    pub quick: bool,
    /// Base RNG seed.
    pub seed: u64,
    /// Warm-up window in simulated seconds.
    pub warmup_secs: f64,
    /// Measurement window in simulated seconds.
    pub measure_secs: f64,
    /// Worker-thread cap for sweeps (`--jobs`); `None` falls back to
    /// `MEDIAWORM_JOBS`, then to the machine's available parallelism
    /// divided by the per-point thread count (so jobs × threads stays
    /// within the core budget).
    pub jobs: Option<usize>,
    /// Threads stepping each simulated network (`--threads`); `None`
    /// falls back to `MEDIAWORM_THREADS`, then to 1 (sequential).
    /// Results are bit-identical at any thread count.
    pub threads: Option<usize>,
    /// Also write machine-readable results to `BENCH_<name>.json` (under
    /// `target/bench/` unless [`RunArgs::json_path`] places it).
    pub json: bool,
    /// Explicit output path for the JSON results (`--json PATH`); implies
    /// [`RunArgs::json`].
    pub json_path: Option<PathBuf>,
    /// `(index, count)` from `--shard i/n`: run only the sweep tasks this
    /// shard owns (task index `≡ i (mod n)`) and tag the JSON output with
    /// the shard coordinates so [`merge_shards`] can recombine the
    /// reports. `None` runs the whole sweep.
    pub shard: Option<(usize, usize)>,
    /// Cycles between point checkpoints (`--checkpoint N`). `None` leaves
    /// periodic checkpointing off unless `--resume` asks for the default
    /// cadence; see [`RunArgs::checkpoint_cycles`].
    pub checkpoint: Option<u64>,
    /// Resume interrupted points from their snapshots under
    /// `target/bench/state/` (`--resume`). Restored runs are bit-identical
    /// to uninterrupted ones.
    pub resume: bool,
    /// Record a JSONL flit-event trace of every simulated point to this
    /// path. Traces are large; combine with `--quick`.
    pub trace: Option<PathBuf>,
    /// Run every point with the flow-control invariant audit enabled
    /// (`--audit`); violation counts land in the per-point JSON records.
    pub audit: bool,
    /// Run every point with the network-calculus delay-bound audit
    /// enabled (`--bounds`): each real-time stream's analytic worst-case
    /// latency is checked against the observed maximum, and the
    /// per-stream bounds land in the per-point JSON records. Only
    /// feedforward topologies (the single switch, meshes) have bounds;
    /// a point on a torus aborts with a typed error.
    pub bounds: bool,
    /// `--schedulers LIST`: restrict matrix experiments (`ablation_sched`)
    /// to these disciplines (comma-separated: `vc`, `fifo`, `rr`, `wfq`,
    /// `drr`, `scfq`). `None` runs the full set. Note that per-point seeds
    /// derive from the task index *within the selected grid*, so a
    /// filtered run is bit-identical to itself at any `--jobs`/`--shard`
    /// setting but is not a row-subset of the full matrix.
    pub schedulers: Option<Vec<SchedulerKind>>,
    /// `--policing LIST`: restrict matrix experiments to these NI policing
    /// modes (comma-separated: `off`, `shape`, `demote`). `None` runs all.
    pub policing: Option<Vec<PolicingMode>>,
    /// `--loads LIST`: restrict matrix experiments to these input loads
    /// (comma-separated fractions). `None` runs the experiment's default
    /// load grid.
    pub loads: Option<Vec<f64>>,
    /// `--skip-only` (perf binary): measure and emit only the
    /// quiescence-skip section, so CI can gate on `cycles_skipped > 0`
    /// without paying for the full throughput harness.
    pub skip_only: bool,
}

impl RunArgs {
    /// Parses `std::env::args()`. Unknown flags abort with a usage
    /// message.
    pub fn from_env() -> RunArgs {
        RunArgs::from_argv(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (no binary name). Invalid flags
    /// abort with a usage message, exactly like [`RunArgs::from_env`].
    pub fn from_argv(argv: impl IntoIterator<Item = String>) -> RunArgs {
        let mut args = RunArgs::default();
        let mut it = argv.into_iter().peekable();
        let mut explicit_windows = false;
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => args.quick = true,
                "--seed" => {
                    args.seed = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--seed needs a u64"));
                }
                "--warmup" => {
                    args.warmup_secs = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--warmup needs seconds"));
                    explicit_windows = true;
                }
                "--measure" => {
                    args.measure_secs = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--measure needs seconds"));
                    explicit_windows = true;
                }
                "--jobs" => {
                    let n: usize = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--jobs needs a positive count"));
                    if n == 0 {
                        usage("--jobs needs a positive count");
                    }
                    args.jobs = Some(n);
                }
                "--threads" => {
                    let n: usize = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--threads needs a positive count"));
                    if n == 0 {
                        usage("--threads needs a positive count");
                    }
                    args.threads = Some(n);
                }
                "--json" => {
                    args.json = true;
                    if it.peek().is_some_and(|next| !next.starts_with("--")) {
                        args.json_path = it.next().map(PathBuf::from);
                    }
                }
                "--shard" => {
                    let spec = it.next().unwrap_or_else(|| usage("--shard needs i/n"));
                    args.shard = Some(
                        parse_shard(&spec).unwrap_or_else(|| usage("--shard needs i/n with i < n")),
                    );
                }
                "--checkpoint" => {
                    args.checkpoint = Some(
                        it.next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| usage("--checkpoint needs a cycle count")),
                    );
                }
                "--resume" => args.resume = true,
                "--audit" => args.audit = true,
                "--bounds" => args.bounds = true,
                "--skip-only" => args.skip_only = true,
                "--schedulers" => {
                    let list = it
                        .next()
                        .unwrap_or_else(|| usage("--schedulers needs a list"));
                    let kinds: Vec<SchedulerKind> = list
                        .split(',')
                        .map(|s| {
                            parse_scheduler_kind(s).unwrap_or_else(|| {
                                usage(&format!(
                                    "unknown scheduler {s:?} (vc|fifo|rr|wfq|drr|scfq)"
                                ))
                            })
                        })
                        .collect();
                    if kinds.is_empty() {
                        usage("--schedulers needs a non-empty list");
                    }
                    args.schedulers = Some(kinds);
                }
                "--policing" => {
                    let list = it
                        .next()
                        .unwrap_or_else(|| usage("--policing needs a list"));
                    let modes: Vec<PolicingMode> = list
                        .split(',')
                        .map(|s| s.parse().unwrap_or_else(|e: String| usage(&e)))
                        .collect();
                    if modes.is_empty() {
                        usage("--policing needs a non-empty list");
                    }
                    args.policing = Some(modes);
                }
                "--loads" => {
                    let list = it.next().unwrap_or_else(|| usage("--loads needs a list"));
                    let loads: Vec<f64> = list
                        .split(',')
                        .map(|s| {
                            s.trim()
                                .parse()
                                .ok()
                                .filter(|&l: &f64| l > 0.0 && l <= 1.5)
                                .unwrap_or_else(|| {
                                    usage(&format!("bad load {s:?} (fraction in (0, 1.5])"))
                                })
                        })
                        .collect();
                    if loads.is_empty() {
                        usage("--loads needs a non-empty list");
                    }
                    args.loads = Some(loads);
                }
                "--trace" => {
                    args.trace = Some(PathBuf::from(
                        it.next().unwrap_or_else(|| usage("--trace needs a path")),
                    ));
                }
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag {other}")),
            }
        }
        if args.quick && !explicit_windows {
            args.warmup_secs = 0.05;
            args.measure_secs = 0.15;
        }
        args
    }

    /// The `(warmup, measure)` windows in seconds.
    pub fn windows(&self) -> (f64, f64) {
        (self.warmup_secs, self.measure_secs)
    }

    /// The sweep worker count: `--jobs`, else `MEDIAWORM_JOBS`, else the
    /// machine's available parallelism divided by
    /// [`RunArgs::effective_threads`] — the two axes compose, so the
    /// default keeps jobs × threads within the core count (always at
    /// least 1 of each).
    pub fn effective_jobs(&self) -> usize {
        if let Some(n) = self.jobs {
            return n.max(1);
        }
        if let Some(n) = std::env::var("MEDIAWORM_JOBS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
        {
            return n;
        }
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        (cores / self.effective_threads()).max(1)
    }

    /// Threads stepping each simulated network: `--threads`, else
    /// `MEDIAWORM_THREADS`, else 1 (the sequential stepper).
    pub fn effective_threads(&self) -> usize {
        if let Some(n) = self.threads {
            return n.max(1);
        }
        std::env::var("MEDIAWORM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(1)
    }

    /// The [`SimOpts`] these args imply: the standard watchdog always,
    /// plus the invariant audit when `--audit` was given and the
    /// delay-bound audit when `--bounds` was given, on
    /// [`RunArgs::effective_threads`] stepping threads.
    pub fn sim_opts(&self) -> SimOpts {
        let mut opts = if self.audit {
            SimOpts::audited()
        } else {
            SimOpts::standard()
        };
        if self.bounds {
            opts = opts.bounds();
        }
        opts.threads(self.effective_threads())
    }

    /// The checkpoint cadence in simulated cycles, if points should
    /// checkpoint at all: `--checkpoint N` wins, and bare `--resume`
    /// implies the default cadence of one million cycles (so a resumed
    /// sweep keeps writing the snapshots it will need next time).
    pub fn checkpoint_cycles(&self) -> Option<u64> {
        match self.checkpoint {
            Some(n) => Some(n),
            None if self.resume => Some(DEFAULT_CHECKPOINT_CYCLES),
            None => None,
        }
    }

    /// Where the JSON results of experiment `name` go: `--json PATH` if
    /// given, else `target/bench/BENCH_<name>.json` — suffixed
    /// `.shard<i>of<n>` when this run is one shard of a sweep.
    pub fn out_path(&self, name: &str) -> PathBuf {
        match &self.json_path {
            Some(p) => p.clone(),
            None => PathBuf::from(BENCH_DIR).join(shard_file_name(name, self.shard)),
        }
    }
}

/// Default directory for machine-readable bench artifacts.
pub const BENCH_DIR: &str = "target/bench";

/// Checkpoint cadence `--resume` implies when `--checkpoint` is absent.
const DEFAULT_CHECKPOINT_CYCLES: u64 = 1_000_000;

/// The file name shard `shard` of experiment `name` writes.
fn shard_file_name(name: &str, shard: Option<(usize, usize)>) -> String {
    match shard {
        Some((i, n)) => format!("BENCH_{name}.shard{i}of{n}.json"),
        None => format!("BENCH_{name}.json"),
    }
}

/// Parses the `i/n` of `--shard i/n`; `None` if malformed or `i >= n`.
fn parse_shard(spec: &str) -> Option<(usize, usize)> {
    let (i, n) = spec.split_once('/')?;
    let i: usize = i.trim().parse().ok()?;
    let n: usize = n.trim().parse().ok()?;
    (i < n).then_some((i, n))
}

impl Default for RunArgs {
    fn default() -> RunArgs {
        RunArgs {
            quick: false,
            seed: 42,
            warmup_secs: 0.1,
            measure_secs: 0.4,
            jobs: None,
            threads: None,
            json: false,
            json_path: None,
            shard: None,
            checkpoint: None,
            resume: false,
            trace: None,
            audit: false,
            bounds: false,
            schedulers: None,
            policing: None,
            loads: None,
            skip_only: false,
        }
    }
}

/// Parses a scheduler name for `--schedulers` (case-insensitive, with
/// the short aliases the ablation docs use).
pub fn parse_scheduler_kind(s: &str) -> Option<SchedulerKind> {
    match s.trim().to_ascii_lowercase().as_str() {
        "vc" | "virtualclock" | "virtual_clock" => Some(SchedulerKind::VirtualClock),
        "fifo" => Some(SchedulerKind::Fifo),
        "rr" | "roundrobin" | "round_robin" => Some(SchedulerKind::RoundRobin),
        "wfq" => Some(SchedulerKind::Wfq),
        "drr" => Some(SchedulerKind::Drr),
        "scfq" => Some(SchedulerKind::Scfq),
        _ => None,
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: <experiment> [--quick] [--seed N] [--warmup SECS] [--measure SECS] [--jobs N] \
         [--threads N] [--json [PATH]] [--shard I/N] [--checkpoint CYCLES] [--resume] \
         [--audit] [--bounds] [--trace PATH] [--schedulers LIST] [--policing LIST] \
         [--loads LIST] [--skip-only]"
    );
    std::process::exit(2);
}

/// Parameters for one simulation point.
#[derive(Debug, Clone)]
pub struct Point {
    /// Total input load as a fraction of link bandwidth.
    pub load: f64,
    /// Real-time share of the mix.
    pub mix_x: f64,
    /// Best-effort share of the mix.
    pub mix_y: f64,
    /// VBR or CBR for the real-time component.
    pub class: StreamClass,
    /// Router configuration.
    pub router: RouterConfig,
    /// NI policing mode for the real-time streams.
    pub policing: PolicingMode,
    /// Physical workload parameters.
    pub spec: WorkloadSpec,
}

impl Point {
    /// A paper-default point: VBR, Table 1 spec, 16-VC Virtual Clock
    /// router.
    pub fn new(load: f64, mix_x: f64, mix_y: f64) -> Point {
        Point {
            load,
            mix_x,
            mix_y,
            class: StreamClass::Vbr,
            router: RouterConfig::default(),
            policing: PolicingMode::Off,
            spec: WorkloadSpec::paper_default(),
        }
    }

    /// The VC partition the point's mix implies.
    pub fn partition(&self) -> VcPartition {
        if self.mix_y == 0.0 {
            VcPartition::all_real_time(self.router.vcs_per_pc())
        } else {
            VcPartition::from_mix(self.router.vcs_per_pc(), self.mix_x, self.mix_y)
        }
    }

    /// Runs this point over `topology` with the args' base seed.
    pub fn run_on(&self, topology: &Topology, args: &RunArgs) -> SimOutcome {
        self.run_on_seeded(topology, args, args.seed)
    }

    /// Runs this point over `topology` with an explicit workload seed
    /// (sweeps derive one per task; see [`sweep`]).
    ///
    /// When the args ask for checkpointing ([`RunArgs::checkpoint_cycles`]),
    /// the run snapshots periodically to a point-specific file under
    /// `target/bench/state/` and — with `--resume` — restores from it
    /// first. Checkpointed, resumed and plain runs all produce identical
    /// bits.
    pub fn run_on_seeded(&self, topology: &Topology, args: &RunArgs, seed: u64) -> SimOutcome {
        let workload = self.workload(topology, seed);
        let (w, m) = args.windows();
        match self.checkpoint_opts(topology, args, seed) {
            None => sim::run_opts(topology, workload, &self.router, w, m, args.sim_opts()),
            Some(ckpt) => sim::run_checkpointed(
                topology,
                workload,
                &self.router,
                w,
                m,
                args.sim_opts(),
                &ckpt,
            )
            .expect("point checkpoint I/O"),
        }
    }

    /// [`Point::run_on_seeded`] recording a JSONL flit-event trace,
    /// returned alongside the outcome.
    pub fn run_on_seeded_traced(
        &self,
        topology: &Topology,
        args: &RunArgs,
        seed: u64,
    ) -> (SimOutcome, Vec<u8>) {
        let workload = self.workload(topology, seed);
        let (w, m) = args.windows();
        match self.checkpoint_opts(topology, args, seed) {
            None => sim::run_opts_traced(topology, workload, &self.router, w, m, args.sim_opts()),
            Some(ckpt) => sim::run_checkpointed_traced(
                topology,
                workload,
                &self.router,
                w,
                m,
                args.sim_opts(),
                &ckpt,
            )
            .expect("point checkpoint I/O"),
        }
    }

    /// The checkpoint configuration these args imply for this point, if
    /// any. The snapshot file name hashes everything that defines the
    /// run — topology, point parameters, seed and windows — so distinct
    /// points never share state and a resumed sweep finds exactly the
    /// snapshots its own interrupted points wrote.
    fn checkpoint_opts(
        &self,
        topology: &Topology,
        args: &RunArgs,
        seed: u64,
    ) -> Option<sim::CheckpointOpts> {
        let interval_cycles = args.checkpoint_cycles()?;
        Some(sim::CheckpointOpts {
            interval_cycles,
            path: self.state_path(topology, args, seed),
            resume: args.resume,
        })
    }

    /// `target/bench/state/point-<hash>.snap` for this (point, seed) run:
    /// where a checkpointed run keeps its snapshot until it completes.
    pub fn state_path(&self, topology: &Topology, args: &RunArgs, seed: u64) -> PathBuf {
        let key = format!(
            "{:?}|{:?}|{seed}|{}|{}",
            topology,
            self,
            args.warmup_secs.to_bits(),
            args.measure_secs.to_bits()
        );
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        PathBuf::from(BENCH_DIR)
            .join("state")
            .join(format!("point-{h:016x}.snap"))
    }

    /// The [`traffic::Workload`] this point implies over `topology` with
    /// `seed` — exactly what the runners simulate. Public so tooling and
    /// tests can reconstruct a point's network state.
    pub fn workload(&self, topology: &Topology, seed: u64) -> traffic::Workload {
        WorkloadBuilder::new(topology.node_count(), self.partition())
            .spec(self.spec.clone())
            .load(self.load)
            .mix(self.mix_x, self.mix_y)
            .real_time_class(self.class)
            .seed(seed)
            .policing(self.policing)
            .build()
    }
}

/// Runs one point on the paper's 8-port single switch.
pub fn run_single_switch(point: &Point, args: &RunArgs) -> SimOutcome {
    point.run_on(&Topology::single_switch(8), args)
}

/// [`run_single_switch`] with an explicit workload seed.
pub fn run_single_switch_seeded(point: &Point, args: &RunArgs, seed: u64) -> SimOutcome {
    point.run_on_seeded(&Topology::single_switch(8), args, seed)
}

/// Runs one point on the paper's 2×2 fat-mesh (two parallel links per
/// neighbour pair, 4 endpoints per switch).
pub fn run_fat_mesh(point: &Point, args: &RunArgs) -> SimOutcome {
    point.run_on(&Topology::fat_mesh(2, 2, 2, 4), args)
}

/// [`run_fat_mesh`] with an explicit workload seed.
pub fn run_fat_mesh_seeded(point: &Point, args: &RunArgs, seed: u64) -> SimOutcome {
    point.run_on_seeded(&Topology::fat_mesh(2, 2, 2, 4), args, seed)
}

/// [`run_single_switch_seeded`] with a JSONL flit-event trace.
pub fn run_single_switch_traced(point: &Point, args: &RunArgs, seed: u64) -> (SimOutcome, Vec<u8>) {
    point.run_on_seeded_traced(&Topology::single_switch(8), args, seed)
}

/// [`run_fat_mesh_seeded`] with a JSONL flit-event trace.
pub fn run_fat_mesh_traced(point: &Point, args: &RunArgs, seed: u64) -> (SimOutcome, Vec<u8>) {
    point.run_on_seeded_traced(&Topology::fat_mesh(2, 2, 2, 4), args, seed)
}

/// The full result of one experiment: the printed table plus the
/// machine-readable per-point records, simulated-cycle accounting and
/// (when tracing was requested) the concatenated flit-event trace.
#[derive(Debug, Clone)]
pub struct ExperimentRun {
    /// Short machine-friendly name (`fig3`, `table2`, ...); names the
    /// `BENCH_<name>.json` output file.
    pub name: &'static str,
    /// The paper-style text table the experiment printed.
    pub table: Table,
    /// One JSON object per simulated point, in sweep (task) order.
    pub points: Vec<Json>,
    /// Total simulated cycles across every point of the sweep.
    pub sim_cycles: u64,
    /// Concatenated JSONL flit-event trace, point order; empty unless
    /// `--trace` was given (PCS points do not produce trace events).
    pub trace: Vec<u8>,
}

impl ExperimentRun {
    /// The machine-readable document `--json` writes: experiment name,
    /// per-point results, and throughput (wall-clock seconds, simulated
    /// cycles, cycles per second).
    pub fn to_json(&self, wall_secs: f64) -> Json {
        let cycles_per_sec = (wall_secs > 0.0).then(|| self.sim_cycles as f64 / wall_secs);
        Json::obj([
            ("experiment", Json::str(self.name)),
            ("results", Json::arr(self.points.iter().cloned())),
            (
                "throughput",
                Json::obj([
                    ("wall_secs", Json::num(wall_secs)),
                    ("sim_cycles", Json::Uint(self.sim_cycles)),
                    ("cycles_per_sec", Json::opt_num(cycles_per_sec)),
                ]),
            ),
        ])
    }

    /// The shard variant of [`ExperimentRun::to_json`]: the same
    /// per-point records (each tagged with its global task index by the
    /// experiment), plus the shard coordinates [`merge_shards`] needs to
    /// recombine the reports.
    pub fn to_shard_json(&self, wall_secs: f64, shard: (usize, usize)) -> Json {
        let cycles_per_sec = (wall_secs > 0.0).then(|| self.sim_cycles as f64 / wall_secs);
        Json::obj([
            ("experiment", Json::str(self.name)),
            (
                "shard",
                Json::obj([
                    ("index", Json::Uint(shard.0 as u64)),
                    ("count", Json::Uint(shard.1 as u64)),
                ]),
            ),
            ("results", Json::arr(self.points.iter().cloned())),
            (
                "throughput",
                Json::obj([
                    ("wall_secs", Json::num(wall_secs)),
                    ("sim_cycles", Json::Uint(self.sim_cycles)),
                    ("cycles_per_sec", Json::opt_num(cycles_per_sec)),
                ]),
            ),
        ])
    }
}

/// Runs one experiment and handles its `--json` / `--trace` outputs: the
/// standard `main` body of every experiment binary. Returns the run so
/// callers (`repro-all`) can collect the tables.
pub fn run_experiment(args: &RunArgs, f: fn(&RunArgs) -> ExperimentRun) -> ExperimentRun {
    let started = std::time::Instant::now();
    let run = f(args);
    let wall_secs = started.elapsed().as_secs_f64();
    if args.json {
        let path = write_json_results(args, &run, wall_secs).expect("write json results");
        println!("json results written to {}", path.display());
    }
    if let Some(path) = &args.trace {
        std::fs::write(path, &run.trace).expect("write flit trace");
        println!(
            "flit trace ({} bytes) written to {}",
            run.trace.len(),
            path.display()
        );
    }
    run
}

/// Writes `run`'s machine-readable document where the args route it
/// ([`RunArgs::out_path`], shard-suffixed under a shard) and returns the
/// path. Shared by [`run_experiment`] and `repro-all`.
pub fn write_json_results(
    args: &RunArgs,
    run: &ExperimentRun,
    wall_secs: f64,
) -> io::Result<PathBuf> {
    let path = args.out_path(run.name);
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent)?;
    }
    let doc = match args.shard {
        Some(shard) => run.to_shard_json(wall_secs, shard),
        None => run.to_json(wall_secs),
    };
    std::fs::write(&path, format!("{doc}\n"))?;
    Ok(path)
}

/// Merges the `BENCH_<name>.shard<i>of<count>.json` files in `dir` into
/// the monolithic `BENCH_<name>.json` there and returns its path.
///
/// The merged document is canonical and byte-stable: records appear in
/// global task-index order exactly as the shards wrote them, simulated
/// cycles add up, and the wall-clock throughput fields are `null` (the
/// shards ran on different clocks, so only simulated work is meaningful).
/// Merging the same sweep split into any number of shards therefore
/// yields identical bytes.
///
/// Errors with [`io::ErrorKind::InvalidData`] if a shard file names the
/// wrong experiment or shard, lacks its results, or the shards' records
/// do not cover every task index exactly once.
pub fn merge_shards(name: &str, dir: &Path, count: usize) -> io::Result<PathBuf> {
    assert!(count >= 1, "a merge needs at least one shard");
    let invalid = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let mut records: Vec<(u64, String)> = Vec::new();
    let mut sim_cycles: u64 = 0;
    for i in 0..count {
        let path = dir.join(shard_file_name(name, Some((i, count))));
        let doc = std::fs::read_to_string(&path)?;
        let bad = |msg: &str| invalid(format!("{}: {msg}", path.display()));
        if !doc.contains(&format!("\"experiment\":\"{name}\"")) {
            return Err(bad("names a different experiment"));
        }
        if !doc.contains(&format!("\"shard\":{{\"index\":{i},\"count\":{count}}}")) {
            return Err(bad("carries different shard coordinates"));
        }
        let results = json_array(&doc, "results").ok_or_else(|| bad("has no results array"))?;
        for rec in json_split_top(results) {
            let idx =
                json_uint(rec, "index").ok_or_else(|| bad("has a record without an index"))?;
            records.push((idx, rec.to_string()));
        }
        sim_cycles += json_uint(&doc, "sim_cycles").ok_or_else(|| bad("has no sim_cycles"))?;
    }
    records.sort_by_key(|&(idx, _)| idx);
    for (expect, &(idx, _)) in records.iter().enumerate() {
        if idx != expect as u64 {
            return Err(invalid(format!(
                "BENCH_{name} shards: task index {expect} is missing or duplicated"
            )));
        }
    }
    let body: Vec<String> = records.into_iter().map(|(_, r)| r).collect();
    let doc = format!(
        "{{\"experiment\":\"{name}\",\"results\":[{}],\"throughput\":{{\"wall_secs\":null,\
         \"sim_cycles\":{sim_cycles},\"cycles_per_sec\":null}}}}\n",
        body.join(",")
    );
    let out = dir.join(shard_file_name(name, None));
    std::fs::write(&out, doc)?;
    Ok(out)
}

/// The raw text inside the first `"<key>":[...]` array of a compact JSON
/// document (the serializer's own whitespace-free output; strings and
/// nesting are tracked, insignificant whitespace is not handled).
fn json_array<'a>(doc: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":[");
    let start = doc.find(&needle)? + needle.len();
    let mut depth = 1i32;
    let mut in_str = false;
    let mut escape = false;
    for (off, &b) in doc.as_bytes()[start..].iter().enumerate() {
        if escape {
            escape = false;
            continue;
        }
        match b {
            b'\\' if in_str => escape = true,
            b'"' => in_str = !in_str,
            _ if in_str => {}
            b'[' | b'{' => depth += 1,
            b']' | b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&doc[start..start + off]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Splits the inside of a compact JSON array at its top-level commas.
fn json_split_top(inner: &str) -> Vec<&str> {
    let mut out = Vec::new();
    if inner.is_empty() {
        return out;
    }
    let mut depth = 0i32;
    let mut in_str = false;
    let mut escape = false;
    let mut start = 0usize;
    for (off, &b) in inner.as_bytes().iter().enumerate() {
        if escape {
            escape = false;
            continue;
        }
        match b {
            b'\\' if in_str => escape = true,
            b'"' => in_str = !in_str,
            _ if in_str => {}
            b'[' | b'{' => depth += 1,
            b']' | b'}' => depth -= 1,
            b',' if depth == 0 => {
                out.push(&inner[start..off]);
                start = off + 1;
            }
            _ => {}
        }
    }
    out.push(&inner[start..]);
    out
}

/// The first `"<key>":<digits>` value in a compact JSON document.
fn json_uint(doc: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let start = doc.find(&needle)? + needle.len();
    let digits = doc[start..]
        .find(|c: char| !c.is_ascii_digit())
        .map_or(&doc[start..], |end| &doc[start..start + end]);
    digits.parse().ok()
}

/// Formats a jitter pair `(d̄, σ_d)` in milliseconds.
pub fn fmt_jitter(outcome: &SimOutcome) -> (String, String) {
    (
        format!("{:.2}", outcome.jitter.mean_ms),
        format!("{:.2}", outcome.jitter.std_ms),
    )
}

/// Prints the standard experiment header.
pub fn banner(title: &str, args: &RunArgs) {
    println!("== {title} ==");
    println!(
        "   (seed {}, warm-up {:.0} ms, measure {:.0} ms{})",
        args.seed,
        args.warmup_secs * 1e3,
        args.measure_secs * 1e3,
        if args.quick { ", quick mode" } else { "" }
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_args_are_sane() {
        let a = RunArgs::default();
        assert!(a.warmup_secs > 0.0 && a.measure_secs > 0.0);
        assert!(!a.quick);
    }

    #[test]
    fn point_partition_handles_pure_real_time() {
        let p = Point::new(0.8, 100.0, 0.0);
        assert_eq!(p.partition().best_effort_count(), 0);
        let q = Point::new(0.8, 80.0, 20.0);
        assert!(q.partition().best_effort_count() > 0);
    }

    #[test]
    fn quick_single_switch_point_runs() {
        let args = RunArgs {
            quick: true,
            seed: 7,
            warmup_secs: 0.02,
            measure_secs: 0.05,
            jobs: Some(1),
            ..RunArgs::default()
        };
        let out = run_single_switch(&Point::new(0.4, 100.0, 0.0), &args);
        assert!(out.jitter.intervals > 0);
    }

    #[test]
    fn run_args_parse_defaults_exclude_json_and_trace() {
        let a = RunArgs::default();
        assert!(!a.json);
        assert!(a.trace.is_none());
    }

    fn argv(flags: &[&str]) -> RunArgs {
        RunArgs::from_argv(flags.iter().map(|s| s.to_string()))
    }

    #[test]
    fn shard_checkpoint_and_resume_flags_parse() {
        let a = argv(&["--shard", "2/5", "--checkpoint", "50000", "--resume"]);
        assert_eq!(a.shard, Some((2, 5)));
        assert_eq!(a.checkpoint, Some(50_000));
        assert!(a.resume);
        assert_eq!(a.checkpoint_cycles(), Some(50_000));
    }

    #[test]
    fn resume_alone_implies_the_default_cadence() {
        let a = argv(&["--resume"]);
        assert_eq!(a.checkpoint_cycles(), Some(DEFAULT_CHECKPOINT_CYCLES));
        assert_eq!(argv(&[]).checkpoint_cycles(), None);
    }

    #[test]
    fn json_takes_an_optional_path() {
        let bare = argv(&["--json", "--audit"]);
        assert!(bare.json && bare.json_path.is_none());
        assert_eq!(
            bare.out_path("fig3"),
            PathBuf::from("target/bench/BENCH_fig3.json")
        );
        let placed = argv(&["--json", "out/results.json"]);
        assert!(placed.json);
        assert_eq!(placed.out_path("fig3"), PathBuf::from("out/results.json"));
    }

    #[test]
    fn sharded_runs_write_shard_suffixed_files() {
        let a = argv(&["--json", "--shard", "1/4"]);
        assert_eq!(
            a.out_path("table2"),
            PathBuf::from("target/bench/BENCH_table2.shard1of4.json")
        );
    }

    #[test]
    fn matrix_filter_flags_parse_lists_and_aliases() {
        let a = argv(&[
            "--schedulers",
            "wfq,drr,scfq",
            "--policing",
            "off,shape",
            "--loads",
            "0.8,0.96",
        ]);
        assert_eq!(
            a.schedulers,
            Some(vec![
                SchedulerKind::Wfq,
                SchedulerKind::Drr,
                SchedulerKind::Scfq
            ])
        );
        assert_eq!(
            a.policing,
            Some(vec![PolicingMode::Off, PolicingMode::Shape])
        );
        assert_eq!(a.loads, Some(vec![0.8, 0.96]));
        assert_eq!(
            parse_scheduler_kind("VirtualClock"),
            Some(SchedulerKind::VirtualClock)
        );
        assert_eq!(
            parse_scheduler_kind("round_robin"),
            Some(SchedulerKind::RoundRobin)
        );
        assert_eq!(parse_scheduler_kind("bogus"), None);
    }

    #[test]
    fn bounds_flag_parses_and_reaches_sim_opts() {
        let a = argv(&["--bounds"]);
        assert!(a.bounds);
        assert!(a.sim_opts().bounds);
        let b = argv(&["--audit"]);
        assert!(!b.bounds);
        assert!(!b.sim_opts().bounds);
    }

    #[test]
    fn shard_spec_rejects_out_of_range_and_garbage() {
        assert_eq!(parse_shard("0/1"), Some((0, 1)));
        assert_eq!(parse_shard("3/4"), Some((3, 4)));
        assert_eq!(parse_shard("4/4"), None);
        assert_eq!(parse_shard("1"), None);
        assert_eq!(parse_shard("a/b"), None);
    }

    #[test]
    fn state_paths_distinguish_points_seeds_and_windows() {
        let topo = Topology::single_switch(8);
        let args = RunArgs::default();
        let p = Point::new(0.4, 80.0, 20.0);
        let q = Point::new(0.5, 80.0, 20.0);
        let base = p.state_path(&topo, &args, 1);
        assert_ne!(base, q.state_path(&topo, &args, 1));
        assert_ne!(base, p.state_path(&topo, &args, 2));
        let mut wide = args.clone();
        wide.measure_secs *= 2.0;
        assert_ne!(base, p.state_path(&topo, &wide, 1));
        assert_eq!(base, p.state_path(&topo, &args, 1));
        assert!(base.starts_with("target/bench/state"));
    }

    #[test]
    fn json_scanner_extracts_arrays_records_and_uints() {
        let doc = r#"{"experiment":"x","results":[{"index":0,"s":"a,{]"},{"index":1,"v":[1,2]}],"throughput":{"sim_cycles":42}}"#;
        let inner = json_array(doc, "results").unwrap();
        let recs = json_split_top(inner);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0], r#"{"index":0,"s":"a,{]"}"#);
        assert_eq!(recs[1], r#"{"index":1,"v":[1,2]}"#);
        assert_eq!(json_uint(recs[1], "index"), Some(1));
        assert_eq!(json_uint(doc, "sim_cycles"), Some(42));
        assert!(json_array(doc, "missing").is_none());
        assert!(json_split_top("").is_empty());
    }

    #[test]
    fn merge_rejects_incomplete_shard_sets() {
        let dir = std::env::temp_dir().join("mediaworm-merge-incomplete-test");
        std::fs::create_dir_all(&dir).unwrap();
        // Two shards that both claim index 0 (and no index 1).
        for i in 0..2usize {
            let doc = format!(
                "{{\"experiment\":\"unit\",\"shard\":{{\"index\":{i},\"count\":2}},\
                 \"results\":[{{\"index\":0,\"v\":{i}}}],\
                 \"throughput\":{{\"wall_secs\":0.1,\"sim_cycles\":10,\"cycles_per_sec\":100}}}}\n"
            );
            std::fs::write(dir.join(format!("BENCH_unit.shard{i}of2.json")), doc).unwrap();
        }
        let err = merge_shards("unit", &dir, 2).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn merge_produces_the_canonical_report() {
        let dir = std::env::temp_dir().join("mediaworm-merge-canonical-test");
        std::fs::create_dir_all(&dir).unwrap();
        for (i, (indices, cycles)) in [(vec![0u64, 2], 30u64), (vec![1], 12)].iter().enumerate() {
            let recs: Vec<String> = indices
                .iter()
                .map(|idx| format!("{{\"index\":{idx},\"v\":{}}}", idx * 10))
                .collect();
            let doc = format!(
                "{{\"experiment\":\"unit\",\"shard\":{{\"index\":{i},\"count\":2}},\
                 \"results\":[{}],\
                 \"throughput\":{{\"wall_secs\":0.5,\"sim_cycles\":{cycles},\
                 \"cycles_per_sec\":1.0}}}}\n",
                recs.join(",")
            );
            std::fs::write(dir.join(format!("BENCH_unit.shard{i}of2.json")), doc).unwrap();
        }
        let out = merge_shards("unit", &dir, 2).unwrap();
        let merged = std::fs::read_to_string(out).unwrap();
        assert_eq!(
            merged,
            "{\"experiment\":\"unit\",\"results\":[{\"index\":0,\"v\":0},{\"index\":1,\"v\":10},\
             {\"index\":2,\"v\":20}],\"throughput\":{\"wall_secs\":null,\"sim_cycles\":42,\
             \"cycles_per_sec\":null}}\n"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn experiment_json_handles_zero_wall_time() {
        let run = ExperimentRun {
            name: "unit",
            table: Table::new(["a"]),
            points: Vec::new(),
            sim_cycles: 100,
            trace: Vec::new(),
        };
        let doc = run.to_json(0.0).to_string();
        assert!(doc.contains("\"cycles_per_sec\":null"));
        assert!(!doc.contains("NaN"));
    }
}
