//! Simulator-throughput harness (the `perf` binary / CI perf-smoke job).
//!
//! Times the things the ROADMAP's "as fast as the hardware allows" goal
//! cares about and writes them to `BENCH_perf.json`:
//!
//! * **Stepping throughput** (`net_step`): simulated cycles per wall-clock
//!   second of a fig. 3-configured network (8-port switch, 16 VCs, 80:20
//!   mix) at a low and a high load point, for both the occupancy-driven
//!   active-set stepping and the full-scan reference — plus the
//!   active/reference speedup at each load.
//! * **Threads axis** (`net_step_mesh` / `threads_speedup`): cycles per
//!   second of an 8x8-mesh run through the deterministic parallel stepper
//!   at 1, 2 and 4 worker threads, with the host core count recorded so
//!   the ratios can be read honestly.
//! * **Sweep throughput**: wall-clock and cycles/second of the standard
//!   fig. 3 sweep through the parallel harness, exactly as `--json` runs
//!   report it.
//! * **Snapshot cost** (`snapshot`): how long `Network::snapshot` and
//!   `Network::restore` take on a warmed fig. 3 network and how many
//!   bytes the snapshot is — the per-checkpoint price `--checkpoint`
//!   pays.
//! * **Quiescence skip** (`skip`): at a low-load point and under
//!   `--policing shape`, the stepped-vs-skipped cycle split of the
//!   horizon driver and its wall-clock speedup over the legacy
//!   idle-jump-only stepper. `--skip-only` emits just this section.
//!
//! The numbers are hardware-dependent; the point of recording them per CI
//! run is the *trend* (and the speedup ratio, which is dimensionless).

use std::time::Instant;

use flitnet::VcPartition;
use mediaworm::{Network, RouterConfig, SkipStats};
use metrics::Json;
use netsim::Cycles;
use topo::Topology;
use traffic::{PolicingMode, StreamClass, WorkloadBuilder};

use crate::{experiments, RunArgs};

/// One timed stepping measurement.
#[derive(Debug, Clone)]
pub struct StepTiming {
    /// Offered load of the point.
    pub load: f64,
    /// `"active"` (occupancy-driven) or `"reference"` (full scan).
    pub mode: &'static str,
    /// Worker threads used for the window (1 = sequential stepping).
    pub threads: usize,
    /// Simulated cycles covered by the timed window.
    pub cycles: u64,
    /// Wall-clock seconds the window took.
    pub wall_secs: f64,
}

impl StepTiming {
    /// Simulated cycles per wall-clock second.
    pub fn cycles_per_sec(&self) -> f64 {
        self.cycles as f64 / self.wall_secs.max(1e-12)
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("load", Json::num(self.load)),
            ("mode", Json::str(self.mode)),
            ("threads", Json::Uint(self.threads as u64)),
            ("cycles", Json::Uint(self.cycles)),
            ("wall_secs", Json::num(self.wall_secs)),
            ("cycles_per_sec", Json::num(self.cycles_per_sec())),
        ])
    }
}

/// A fig. 3-configured network (16-VC Virtual Clock switch, 80:20 mix)
/// with the given NI policing mode and router config, at cycle zero —
/// the restore target shape.
fn fig3_network_cfg(load: f64, seed: u64, policing: PolicingMode, cfg: &RouterConfig) -> Network {
    let topology = Topology::single_switch(8);
    let wl = WorkloadBuilder::new(8, VcPartition::from_mix(16, 80.0, 20.0))
        .load(load)
        .mix(80.0, 20.0)
        .real_time_class(StreamClass::Vbr)
        .policing(policing)
        .seed(seed)
        .build();
    Network::new(&topology, wl, cfg)
}

/// [`fig3_network_cfg`] with the paper's Table 1 router defaults.
fn fig3_network_policed(load: f64, seed: u64, policing: PolicingMode) -> Network {
    fig3_network_cfg(load, seed, policing, &RouterConfig::default())
}

/// The wire-dominated router variant of the skip section: 64-cycle links
/// against 4-flit buffers, so the credit round trip dwarfs the per-VC
/// credit supply and a sparse message spends most of its life parked
/// mid-wire or credit-blocked. The legacy all-idle jump can never fire
/// inside a message here (`flits_in_flight > 0` throughout), which is
/// exactly the regime the quiescence horizon exists for.
fn wire_dominated_config() -> RouterConfig {
    RouterConfig::default().link_latency(64).buf_flits(4)
}

/// [`fig3_network_policed`] with policing off.
fn fig3_network_cold(load: f64, seed: u64) -> Network {
    fig3_network_policed(load, seed, PolicingMode::Off)
}

/// [`fig3_network_cold`] warmed 2 simulated ms into a busy steady state.
fn fig3_network(load: f64, seed: u64) -> Network {
    let mut net = fig3_network_cold(load, seed);
    let tb = net.timebase();
    net.run_until(tb.cycles_from_ms(2.0));
    net
}

/// Times `cycles` of steady-state stepping at `load` in the given mode.
fn time_stepping(load: f64, seed: u64, cycles: u64, reference: bool) -> StepTiming {
    let mut net = fig3_network(load, seed);
    let end = net.now() + Cycles(cycles);
    let started = Instant::now();
    if reference {
        net.run_until_reference(end);
    } else {
        net.run_until(end);
    }
    let wall_secs = started.elapsed().as_secs_f64();
    std::hint::black_box(net.delivered_flits());
    StepTiming {
        load,
        mode: if reference { "reference" } else { "active" },
        threads: 1,
        cycles,
        wall_secs,
    }
}

/// An 8x8 mesh (64 nodes, 4 VCs) warmed 0.5 simulated ms into steady
/// state, for the threads-axis stepping measurements.
fn mesh_network(load: f64, seed: u64) -> Network {
    let topology = Topology::mesh(8, 8, 1);
    let wl = WorkloadBuilder::new(topology.node_count(), VcPartition::from_mix(4, 80.0, 20.0))
        .load(load)
        .mix(80.0, 20.0)
        .real_time_class(StreamClass::Vbr)
        .seed(seed)
        .build();
    let mut net = Network::new(&topology, wl, &RouterConfig::new(4));
    let tb = net.timebase();
    net.run_until(tb.cycles_from_ms(0.5));
    net
}

/// Times `cycles` of steady-state 8x8-mesh stepping with `threads`
/// workers (1 = the sequential active-set path).
fn time_mesh_stepping(load: f64, seed: u64, cycles: u64, threads: usize) -> StepTiming {
    let mut net = mesh_network(load, seed);
    let end = net.now() + Cycles(cycles);
    let started = Instant::now();
    if threads <= 1 {
        net.run_until(end);
    } else {
        net.run_until_parallel(end, threads);
    }
    let wall_secs = started.elapsed().as_secs_f64();
    std::hint::black_box(net.delivered_flits());
    StepTiming {
        load,
        mode: "mesh-8x8",
        threads,
        cycles,
        wall_secs,
    }
}

/// One quiescence-skip measurement: the same warmed fig. 3 point stepped
/// over the same window with horizon skipping on and (legacy all-idle
/// jump only) off, plus the skip counters of the horizon run.
#[derive(Debug, Clone)]
pub struct SkipTiming {
    /// Offered load of the point.
    pub load: f64,
    /// NI policing mode label (`"off"` / `"shape"` / `"demote"`).
    pub policing: &'static str,
    /// Router-config label: `"table1"` (paper defaults) or `"wire64"`
    /// (64-cycle under-credited links).
    pub config: &'static str,
    /// Simulated cycles covered by the timed window.
    pub cycles: u64,
    /// Wall-clock seconds with horizon skipping enabled.
    pub horizon_secs: f64,
    /// Wall-clock seconds with the legacy idle-jump-only stepper.
    pub active_secs: f64,
    /// Skip counters of the horizon run's measured window.
    pub skip: SkipStats,
}

impl SkipTiming {
    /// Wall-clock speedup of the horizon path over the legacy active
    /// stepper on this window.
    pub fn horizon_over_active(&self) -> f64 {
        self.active_secs / self.horizon_secs.max(1e-12)
    }

    fn to_json(&self) -> Json {
        let mut o = Json::obj([
            ("load", Json::num(self.load)),
            ("policing", Json::str(self.policing)),
            ("config", Json::str(self.config)),
            ("cycles", Json::Uint(self.cycles)),
        ]);
        o.push("horizon_secs", Json::num(self.horizon_secs));
        o.push("active_secs", Json::num(self.active_secs));
        o.push("horizon_over_active", Json::num(self.horizon_over_active()));
        o.push("skip", self.skip.to_json());
        o
    }
}

/// Times `cycles` of steady-state stepping at a fig. 3 point twice — with
/// horizon skipping and with the legacy idle-jump-only stepper — and
/// checks the two runs simulate identical bits while they're at it.
fn time_skip(
    load: f64,
    seed: u64,
    cycles: u64,
    policing: PolicingMode,
    label: &'static str,
    cfg: &RouterConfig,
    config: &'static str,
) -> SkipTiming {
    // Warm one network with the (end-clamped) horizon driver and
    // snapshot it: every timed repeat restores the same image, so both
    // modes measure the exact same window from the exact same state and
    // a repeat costs a restore, not a fresh 2 ms warm-up.
    let mut warm = fig3_network_cfg(load, seed, policing, cfg);
    let tb = warm.timebase();
    warm.run_until(tb.cycles_from_ms(2.0));
    let image = warm.snapshot();
    let end = warm.now() + Cycles(cycles);

    let run = |skipping: bool| {
        let mut net = fig3_network_cfg(load, seed, policing, cfg);
        net.restore(&image)
            .expect("skip-timing image must restore into its own configuration");
        net.set_horizon_skipping(skipping);
        net.reset_skip_stats();
        let started = Instant::now();
        net.run_until(end);
        let secs = started.elapsed().as_secs_f64();
        std::hint::black_box(net.delivered_flits());
        (secs, net)
    };

    // Interleave the modes and keep the best window of each: scheduler
    // noise on shared CI hosts dwarfs the per-window difference, and the
    // minimum is the standard noise-robust throughput estimator.
    const REPEATS: usize = 5;
    let mut horizon_secs = f64::INFINITY;
    let mut active_secs = f64::INFINITY;
    let mut pair = None;
    for _ in 0..REPEATS {
        let (h_secs, h_net) = run(true);
        let (a_secs, a_net) = run(false);
        horizon_secs = horizon_secs.min(h_secs);
        active_secs = active_secs.min(a_secs);
        pair = Some((h_net, a_net));
    }
    let (horizon, active) = pair.expect("at least one repeat ran");
    assert_eq!(
        (horizon.injected_msgs(), horizon.delivered_msgs()),
        (active.injected_msgs(), active.delivered_msgs()),
        "horizon and legacy stepping must simulate the same run"
    );
    SkipTiming {
        load,
        policing: label,
        config,
        cycles,
        horizon_secs,
        active_secs,
        skip: horizon.skip_stats(),
    }
}

/// Measures the `skip` section: skip effectiveness and horizon-over-active
/// wall-clock speedup at a low-load point and a shaped point.
fn run_skip_section(args: &RunArgs, cycles: u64) -> Vec<SkipTiming> {
    let table1 = RouterConfig::default();
    let wire64 = wire_dominated_config();
    let mut skips = Vec::new();
    for (load, policing, label, cfg, config) in [
        (0.3, PolicingMode::Off, "off", &table1, "table1"),
        (0.3, PolicingMode::Shape, "shape", &table1, "table1"),
        (0.6, PolicingMode::Shape, "shape", &table1, "table1"),
        (0.05, PolicingMode::Off, "off", &wire64, "wire64"),
    ] {
        let t = time_skip(load, args.seed, cycles, policing, label, cfg, config);
        println!(
            "   skip @ load {load:.2}/{label}/{config}: {:.1}% skipped | {} jumps | horizon {:>9.0} cyc/s | active {:>9.0} cyc/s | {:.2}x",
            t.skip.skip_ratio() * 100.0,
            t.skip.horizon_jumps,
            t.cycles as f64 / t.horizon_secs.max(1e-12),
            t.cycles as f64 / t.active_secs.max(1e-12),
            t.horizon_over_active(),
        );
        skips.push(t);
    }
    skips
}

/// Cost of one checkpoint on a warmed fig. 3 network: snapshot time,
/// restore time (into a freshly built identical network) and the snapshot
/// size in bytes.
#[derive(Debug, Clone)]
pub struct SnapshotCost {
    /// Offered load of the measured network.
    pub load: f64,
    /// Serialized snapshot size in bytes.
    pub bytes: usize,
    /// Wall-clock seconds one `Network::snapshot` call took.
    pub snapshot_secs: f64,
    /// Wall-clock seconds one `Network::restore` call took.
    pub restore_secs: f64,
}

impl SnapshotCost {
    fn to_json(&self) -> Json {
        Json::obj([
            ("load", Json::num(self.load)),
            ("bytes", Json::Uint(self.bytes as u64)),
            ("snapshot_secs", Json::num(self.snapshot_secs)),
            ("restore_secs", Json::num(self.restore_secs)),
        ])
    }
}

/// Measures the snapshot/restore round trip on a warmed fig. 3 network
/// at `load`.
fn time_snapshot(load: f64, seed: u64) -> SnapshotCost {
    let net = fig3_network(load, seed);
    let started = Instant::now();
    let bytes = net.snapshot();
    let snapshot_secs = started.elapsed().as_secs_f64();
    // Restore targets a freshly built network from the same inputs, as
    // `--resume` does.
    let mut fresh = fig3_network_cold(load, seed);
    let started = Instant::now();
    fresh
        .restore(&bytes)
        .expect("perf snapshot must restore into its own configuration");
    let restore_secs = started.elapsed().as_secs_f64();
    std::hint::black_box(fresh.now());
    SnapshotCost {
        load,
        bytes: bytes.len(),
        snapshot_secs,
        restore_secs,
    }
}

/// Runs the full perf harness and returns the `BENCH_perf.json` document.
///
/// Honors `--quick` (shorter stepping windows and the quick sweep),
/// `--seed` and `--jobs`. Prints a human-readable summary as it goes.
pub fn run_perf(args: &RunArgs) -> Json {
    let cycles: u64 = if args.quick { 100_000 } else { 400_000 };
    // The skip section compares two drivers whose per-cycle costs differ
    // by nanoseconds; it needs windows long enough to rise above timer
    // and scheduler noise.
    let skip_cycles: u64 = if args.quick { 1_000_000 } else { 4_000_000 };
    println!("== simulator throughput (perf) ==");
    println!(
        "   fig3 config: 8-port switch, 16 VCs, 80:20 mix, seed {}",
        args.seed
    );
    println!();

    if args.skip_only {
        // `--skip-only`: just the quiescence-skip section, for CI gates
        // that assert skip effectiveness without paying for the full
        // harness.
        let skips = run_skip_section(args, skip_cycles);
        return Json::obj([
            ("experiment", Json::str("perf")),
            ("skip", Json::arr(skips.iter().map(SkipTiming::to_json))),
        ]);
    }

    let mut timings: Vec<StepTiming> = Vec::new();
    let mut speedups: Vec<(f64, f64)> = Vec::new();
    for &load in &[0.3, 0.96] {
        let active = time_stepping(load, args.seed, cycles, false);
        let reference = time_stepping(load, args.seed, cycles, true);
        let speedup = active.cycles_per_sec() / reference.cycles_per_sec();
        println!(
            "   load {load:.2}: active {:>10.0} cyc/s | reference {:>10.0} cyc/s | speedup {speedup:.2}x",
            active.cycles_per_sec(),
            reference.cycles_per_sec(),
        );
        speedups.push((load, speedup));
        timings.push(active);
        timings.push(reference);
    }
    println!();

    // Threads axis: the deterministic parallel stepper over an 8x8 mesh
    // at 1/2/4 worker threads. The host core count is recorded alongside
    // so the ratios can be read honestly — on a single-core host the
    // barrier handoffs can only add overhead, and the >1-thread points
    // document that cost rather than a speedup.
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mesh_cycles: u64 = if args.quick { 20_000 } else { 80_000 };
    let mesh_load = 0.4;
    println!("   mesh 8x8 threads axis (load {mesh_load:.2}, host cores {host_cores}):");
    let mut mesh_timings: Vec<StepTiming> = Vec::new();
    let mut thread_speedups: Vec<(usize, f64)> = Vec::new();
    for &threads in &[1usize, 2, 4] {
        let t = time_mesh_stepping(mesh_load, args.seed, mesh_cycles, threads);
        let over_one = mesh_timings
            .first()
            .map_or(1.0, |base| t.cycles_per_sec() / base.cycles_per_sec());
        println!(
            "   threads {threads}: {:>10.0} cyc/s | {over_one:.2}x over 1 thread",
            t.cycles_per_sec(),
        );
        thread_speedups.push((threads, over_one));
        mesh_timings.push(t);
    }
    println!();

    // Checkpoint cost: one snapshot/restore round trip per load point.
    let mut snapshot_costs: Vec<SnapshotCost> = Vec::new();
    for &load in &[0.3, 0.96] {
        let c = time_snapshot(load, args.seed);
        println!(
            "   snapshot @ load {load:.2}: {} bytes | save {:.1} us | restore {:.1} us",
            c.bytes,
            c.snapshot_secs * 1e6,
            c.restore_secs * 1e6,
        );
        snapshot_costs.push(c);
    }
    println!();

    // Quiescence-skip effectiveness and horizon-over-active speedup.
    let skips = run_skip_section(args, skip_cycles);
    println!();

    // The standard sweep, timed the same way `--json` runs are.
    let started = Instant::now();
    let sweep = experiments::fig3(args);
    let sweep_secs = started.elapsed().as_secs_f64();
    println!(
        "   fig3 sweep: {} simulated cycles in {:.2} s ({:.0} cyc/s)",
        sweep.sim_cycles,
        sweep_secs,
        sweep.sim_cycles as f64 / sweep_secs.max(1e-12),
    );

    Json::obj([
        ("experiment", Json::str("perf")),
        ("host_cores", Json::Uint(host_cores as u64)),
        (
            "net_step",
            Json::arr(timings.iter().map(StepTiming::to_json)),
        ),
        (
            "speedup",
            Json::arr(speedups.iter().map(|&(load, s)| {
                Json::obj([
                    ("load", Json::num(load)),
                    ("active_over_reference", Json::num(s)),
                ])
            })),
        ),
        (
            "net_step_mesh",
            Json::arr(mesh_timings.iter().map(StepTiming::to_json)),
        ),
        (
            "threads_speedup",
            Json::arr(thread_speedups.iter().map(|&(threads, s)| {
                Json::obj([
                    ("threads", Json::Uint(threads as u64)),
                    ("over_one_thread", Json::num(s)),
                ])
            })),
        ),
        (
            "snapshot",
            Json::arr(snapshot_costs.iter().map(SnapshotCost::to_json)),
        ),
        ("skip", Json::arr(skips.iter().map(SkipTiming::to_json))),
        ("sweep", sweep.to_json(sweep_secs)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_timing_reports_finite_throughput() {
        let t = time_stepping(0.5, 7, 5_000, false);
        assert_eq!(t.cycles, 5_000);
        assert!(t.cycles_per_sec().is_finite() && t.cycles_per_sec() > 0.0);
        let r = time_stepping(0.5, 7, 5_000, true);
        assert_eq!(r.mode, "reference");
        assert!(r.cycles_per_sec() > 0.0);
    }

    #[test]
    fn mesh_threads_timing_runs_the_parallel_path() {
        let t = time_mesh_stepping(0.4, 7, 2_000, 2);
        assert_eq!(t.threads, 2);
        assert_eq!(t.mode, "mesh-8x8");
        assert!(t.cycles_per_sec().is_finite() && t.cycles_per_sec() > 0.0);
    }

    #[test]
    fn snapshot_cost_round_trips_and_reports_bytes() {
        let c = time_snapshot(0.5, 7);
        assert!(c.bytes > 0);
        assert!(c.snapshot_secs >= 0.0 && c.restore_secs >= 0.0);
        let doc = c.to_json().to_string();
        assert!(doc.contains("\"bytes\":"));
        assert!(doc.contains("\"restore_secs\":"));
    }

    #[test]
    fn skip_timing_measures_nonzero_skips_at_low_load() {
        // Load 0.3 leaves the fig. 3 switch quiescent most of the time:
        // the horizon driver must skip cycles there, and both drivers
        // must simulate the same run (time_skip asserts that itself).
        let t = time_skip(
            0.3,
            7,
            50_000,
            PolicingMode::Off,
            "off",
            &RouterConfig::default(),
            "table1",
        );
        assert!(t.skip.cycles_skipped > 0, "no cycles skipped at load 0.3");
        assert!(t.skip.horizon_jumps > 0);
        assert_eq!(t.skip.simulated_cycles(), 50_000);
        assert!(t.horizon_over_active().is_finite());
        let doc = t.to_json().to_string();
        assert!(doc.contains("\"cycles_skipped\":"));
        assert!(doc.contains("\"horizon_over_active\":"));
    }

    #[test]
    fn skip_timing_shaped_point_skips_inter_message_gaps() {
        let t = time_skip(
            0.3,
            7,
            50_000,
            PolicingMode::Shape,
            "shape",
            &RouterConfig::default(),
            "table1",
        );
        assert!(
            t.skip.cycles_skipped > 0,
            "token-bucket shaping must leave skippable gaps"
        );
        assert_eq!(t.policing, "shape");
    }

    #[test]
    fn perf_json_has_the_expected_shape() {
        let t = StepTiming {
            load: 0.96,
            mode: "active",
            threads: 1,
            cycles: 1000,
            wall_secs: 0.5,
        };
        let doc = t.to_json().to_string();
        assert!(doc.contains("\"mode\":\"active\""));
        assert!(doc.contains("\"cycles_per_sec\":2000"));
    }
}
