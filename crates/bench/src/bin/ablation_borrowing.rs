//! Reproduces the paper's ablation_borrowing. See EXPERIMENTS.md.

fn main() {
    let args = mediaworm_bench::RunArgs::from_env();
    let _ =
        mediaworm_bench::run_experiment(&args, mediaworm_bench::experiments::ablation_borrowing);
}
