//! Reproduces the VC-borrowing ablation (paper §6 future work). See
//! EXPERIMENTS.md.

fn main() {
    let args = mediaworm_bench::RunArgs::from_env();
    let _ = mediaworm_bench::experiments::ablation_borrowing(&args);
}
