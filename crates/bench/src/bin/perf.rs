//! Simulator throughput harness (`--perf` mode): times occupancy-driven
//! stepping against the full-scan reference, the standard fig. 3 sweep,
//! and the snapshot/restore round trip, and writes `BENCH_perf.json`
//! under `target/bench/` (or to `--json PATH`). See
//! `mediaworm_bench::perf`.

fn main() {
    let args = mediaworm_bench::RunArgs::from_env();
    let doc = mediaworm_bench::perf::run_perf(&args);
    let path = args.out_path("perf");
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent).expect("create json output directory");
    }
    std::fs::write(&path, format!("{doc}\n")).expect("write perf json");
    println!("json results written to {}", path.display());
}
