//! Simulator throughput harness (`--perf` mode): times occupancy-driven
//! stepping against the full-scan reference and the standard fig. 3
//! sweep, and writes `BENCH_perf.json`. See `mediaworm_bench::perf`.

fn main() {
    let args = mediaworm_bench::RunArgs::from_env();
    let doc = mediaworm_bench::perf::run_perf(&args);
    let path = "BENCH_perf.json";
    std::fs::write(path, format!("{doc}\n")).expect("write perf json");
    println!("json results written to {path}");
}
