//! Runs every table/figure reproduction in sequence and writes a combined
//! report to `repro_report.txt`.

use std::fmt::Write as _;

use mediaworm_bench::{experiments, RunArgs};

fn main() {
    let args = RunArgs::from_env();
    type Experiment = fn(&RunArgs) -> metrics::Table;
    let runs: Vec<(&str, Experiment)> = vec![
        ("Fig 3", experiments::fig3),
        ("Fig 4", experiments::fig4),
        ("Fig 5", experiments::fig5),
        ("Table 2", experiments::table2),
        ("Fig 6", experiments::fig6),
        ("Fig 7", experiments::fig7),
        ("Fig 8", experiments::fig8),
        ("Table 3", experiments::table3),
        ("Fig 9", experiments::fig9),
        ("Ablation: scheduler", experiments::ablation_sched),
        ("Ablation: sched point", experiments::ablation_point),
        ("Ablation: VC borrowing", experiments::ablation_borrowing),
        ("Extension: GOP frames", experiments::gop_sensitivity),
    ];
    let mut report = String::new();
    for (name, f) in runs {
        let started = std::time::Instant::now();
        let table = f(&args);
        let _ = writeln!(
            report,
            "## {name} (wall time {:.1}s)\n\n{table}\n",
            started.elapsed().as_secs_f64()
        );
    }
    std::fs::write("repro_report.txt", &report).expect("write report");
    println!("combined report written to repro_report.txt");
}
