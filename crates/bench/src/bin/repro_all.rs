//! Runs every table/figure reproduction in sequence, writes a combined
//! text report to `repro_report.txt`, and with `--json` additionally
//! writes one `target/bench/BENCH_<name>.json` per experiment (per-point
//! results plus wall-clock / cycles-per-second throughput).
//!
//! With `--trace PATH`, each experiment's flit-event trace is written to
//! `PATH.<name>.jsonl` (experiments that produce no trace — pure PCS
//! sweeps — are skipped).

use std::fmt::Write as _;
use std::path::PathBuf;

use mediaworm_bench::{experiments, write_json_results, ExperimentRun, RunArgs};

fn main() {
    let args = RunArgs::from_env();
    type Experiment = fn(&RunArgs) -> ExperimentRun;
    let runs: Vec<(&str, Experiment)> = vec![
        ("Fig 3", experiments::fig3),
        ("Fig 4", experiments::fig4),
        ("Fig 5", experiments::fig5),
        ("Table 2", experiments::table2),
        ("Fig 6", experiments::fig6),
        ("Fig 7", experiments::fig7),
        ("Fig 8", experiments::fig8),
        ("Table 3", experiments::table3),
        ("Fig 9", experiments::fig9),
        ("Ablation: scheduler", experiments::ablation_sched),
        ("Ablation: sched point", experiments::ablation_point),
        ("Ablation: VC borrowing", experiments::ablation_borrowing),
        ("Extension: GOP frames", experiments::gop_sensitivity),
        ("Extension: delay bounds", experiments::bounds),
    ];
    let mut report = String::new();
    for (title, f) in runs {
        let started = std::time::Instant::now();
        let run = f(&args);
        let wall_secs = started.elapsed().as_secs_f64();
        if args.json {
            let path = write_json_results(&args, &run, wall_secs).expect("write json results");
            println!("json results written to {}", path.display());
        }
        // Each experiment gets its own trace file so they don't clobber
        // one another.
        if let Some(base) = &args.trace {
            if !run.trace.is_empty() {
                let path = PathBuf::from(format!("{}.{}.jsonl", base.display(), run.name));
                std::fs::write(&path, &run.trace).expect("write flit trace");
                println!("flit trace written to {}", path.display());
            }
        }
        let _ = writeln!(
            report,
            "## {title} (wall time {wall_secs:.1}s)\n\n{}\n",
            run.table
        );
    }
    std::fs::write("repro_report.txt", &report).expect("write report");
    println!("combined report written to repro_report.txt");
}
