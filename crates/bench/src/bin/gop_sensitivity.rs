//! Extension experiment: GOP-structured MPEG-2 frames vs the paper's
//! normal frame-size model. See EXPERIMENTS.md.

fn main() {
    let args = mediaworm_bench::RunArgs::from_env();
    let _ = mediaworm_bench::experiments::gop_sensitivity(&args);
}
