//! Reproduces the paper's fig4. See EXPERIMENTS.md.

fn main() {
    let args = mediaworm_bench::RunArgs::from_env();
    let _ = mediaworm_bench::experiments::fig4(&args);
}
