//! One function per table/figure of the paper's evaluation (§5).
//!
//! Every function prints its result table and returns it, so `repro-all`
//! can collect everything into one report. Parameter values mirror the
//! paper exactly; see EXPERIMENTS.md for paper-vs-measured notes.
//!
//! Each experiment is a sweep: it builds its full point list up front,
//! fans the points across a [`SweepRunner`] (capped by `--jobs` /
//! `MEDIAWORM_JOBS`), and assembles the table rows from the ordered
//! results — so the printed output is bit-identical at any job count.

use mediaworm::{CrossbarKind, RouterConfig, SchedPoint, SchedulerKind, SimOutcome};
use metrics::Table;
use pcs_router::PcsConfig;
use traffic::{FrameModel, StreamClass, WorkloadSpec};

use crate::sweep::SweepRunner;
use crate::{banner, run_fat_mesh_seeded, run_single_switch_seeded, Point, RunArgs};

/// The load axis used by the single-switch sweeps (Figs. 3–6).
pub const LOADS: [f64; 5] = [0.6, 0.7, 0.8, 0.9, 0.96];

/// Best-effort latency above which a cell prints as `Sat.` (the paper's
/// Table 2 notation for a saturated best-effort class).
pub const SATURATION_US: f64 = 5_000.0;

fn be_cell(us: f64) -> String {
    if us.is_nan() || us > SATURATION_US {
        "Sat.".to_string()
    } else {
        format!("{us:.1}")
    }
}

/// Fans `points` across the sweep workers on the single switch; results
/// come back in point order.
fn sweep_single_switch(points: &[Point], args: &RunArgs) -> Vec<SimOutcome> {
    SweepRunner::from_args(args).map(points.len(), |task| {
        run_single_switch_seeded(&points[task.index], args, task.seed)
    })
}

/// Fig. 3 — Virtual Clock vs FIFO (16 VCs, 80:20 mix): d̄ and σ_d vs load.
pub fn fig3(args: &RunArgs) -> Table {
    banner("Fig 3: Virtual Clock vs FIFO (16 VCs, mix 80:20)", args);
    let mut t = Table::new(["load", "scheduler", "d (ms)", "sigma_d (ms)"])
        .with_title("Fig 3 — mean delivery interval and deviation, VBR 80:20");
    let mut cells = Vec::new();
    let mut points = Vec::new();
    for &load in &LOADS {
        for kind in [SchedulerKind::VirtualClock, SchedulerKind::Fifo] {
            let mut p = Point::new(load, 80.0, 20.0);
            p.router = RouterConfig::default().scheduler(kind);
            cells.push([format!("{load:.2}"), format!("{kind:?}")]);
            points.push(p);
        }
    }
    for ([load, kind], out) in cells.into_iter().zip(sweep_single_switch(&points, args)) {
        t.row([
            load,
            kind,
            format!("{:.2}", out.jitter.mean_ms),
            format!("{:.2}", out.jitter.std_ms),
        ]);
    }
    println!("{t}");
    t
}

/// Fig. 4 — CBR-only vs VBR-only traffic (16 VCs, 400 Mbps).
pub fn fig4(args: &RunArgs) -> Table {
    banner("Fig 4: CBR vs VBR traffic (16 VCs, 400 Mbps)", args);
    let mut t = Table::new(["load", "class", "d (ms)", "sigma_d (ms)"])
        .with_title("Fig 4 — pure real-time traffic, no best-effort");
    let mut cells = Vec::new();
    let mut points = Vec::new();
    for &load in &LOADS {
        for class in [StreamClass::Cbr, StreamClass::Vbr] {
            let mut p = Point::new(load, 100.0, 0.0);
            p.class = class;
            cells.push([format!("{load:.2}"), format!("{class:?}")]);
            points.push(p);
        }
    }
    for ([load, class], out) in cells.into_iter().zip(sweep_single_switch(&points, args)) {
        t.row([
            load,
            class,
            format!("{:.2}", out.jitter.mean_ms),
            format!("{:.2}", out.jitter.std_ms),
        ]);
    }
    println!("{t}");
    t
}

/// The paper's traffic mixes for Fig. 5 / Table 2.
pub const MIXES: [(f64, f64); 5] = [
    (20.0, 80.0),
    (50.0, 50.0),
    (80.0, 20.0),
    (90.0, 10.0),
    (100.0, 0.0),
];

/// Fig. 5 — mixed traffic: d̄ and σ_d over mix × load (16 VCs).
pub fn fig5(args: &RunArgs) -> Table {
    banner("Fig 5: mixed VBR/best-effort traffic (16 VCs)", args);
    let mut t = Table::new(["mix (x:y)", "load", "d (ms)", "sigma_d (ms)"])
        .with_title("Fig 5 — jitter across traffic mixes");
    let mut cells = Vec::new();
    let mut points = Vec::new();
    for &(x, y) in &MIXES {
        for &load in &LOADS {
            cells.push([format!("{x:.0}:{y:.0}"), format!("{load:.2}")]);
            points.push(Point::new(load, x, y));
        }
    }
    for ([mix, load], out) in cells.into_iter().zip(sweep_single_switch(&points, args)) {
        t.row([
            mix,
            load,
            format!("{:.2}", out.jitter.mean_ms),
            format!("{:.2}", out.jitter.std_ms),
        ]);
    }
    println!("{t}");
    t
}

/// Table 2 — average best-effort latency (µs) over mix × load.
pub fn table2(args: &RunArgs) -> Table {
    banner(
        "Table 2: average best-effort latency (8x8, 16 VCs, 400 Mbps)",
        args,
    );
    let mut t = Table::new(["mix (x:y)", "0.60", "0.70", "0.80", "0.90", "0.96"])
        .with_title("Table 2 — best-effort latency in microseconds");
    let mixes: Vec<(f64, f64)> = MIXES.iter().copied().filter(|(_, y)| *y > 0.0).collect();
    let mut points = Vec::new();
    for &(x, y) in &mixes {
        for &load in &LOADS {
            points.push(Point::new(load, x, y));
        }
    }
    let outs = sweep_single_switch(&points, args);
    for (row, &(x, y)) in mixes.iter().enumerate() {
        let mut cells = vec![format!("{x:.0}:{y:.0}")];
        for col in 0..LOADS.len() {
            cells.push(be_cell(outs[row * LOADS.len() + col].be_mean_latency_us));
        }
        t.row(cells);
    }
    println!("{t}");
    t
}

/// Fig. 6 — impact of VC count and crossbar style (100:0 VBR).
pub fn fig6(args: &RunArgs) -> Table {
    banner(
        "Fig 6: VCs and crossbar capabilities (400 Mbps, 100:0)",
        args,
    );
    let configs: [(&str, RouterConfig); 4] = [
        ("16 VC muxed", RouterConfig::new(16)),
        ("8 VC muxed", RouterConfig::new(8)),
        ("4 VC muxed", RouterConfig::new(4)),
        (
            "4 VC full",
            RouterConfig::new(4).crossbar(CrossbarKind::Full),
        ),
    ];
    let mut t = Table::new(["config", "load", "d (ms)", "sigma_d (ms)"])
        .with_title("Fig 6 — jitter vs VC count / crossbar style");
    let mut cells = Vec::new();
    let mut points = Vec::new();
    for (name, cfg) in &configs {
        for &load in &[0.5, 0.6, 0.7, 0.8, 0.9, 0.96] {
            let mut p = Point::new(load, 100.0, 0.0);
            p.router = cfg.clone();
            cells.push([(*name).to_string(), format!("{load:.2}")]);
            points.push(p);
        }
    }
    for ([name, load], out) in cells.into_iter().zip(sweep_single_switch(&points, args)) {
        t.row([
            name,
            load,
            format!("{:.2}", out.jitter.mean_ms),
            format!("{:.2}", out.jitter.std_ms),
        ]);
    }
    println!("{t}");
    t
}

/// Fig. 7 — effect of message size on jitter (16 VCs).
pub fn fig7(args: &RunArgs) -> Table {
    banner("Fig 7: message size vs jitter (16 VCs)", args);
    let mut t = Table::new(["msg (flits)", "load", "d (ms)", "sigma_d (ms)"])
        .with_title("Fig 7 — jitter vs message size");
    let mut cells = Vec::new();
    let mut points = Vec::new();
    for &size in &[20u32, 40, 80, 160, 2560] {
        for &load in &[0.64, 0.80] {
            let mut p = Point::new(load, 100.0, 0.0);
            p.spec = WorkloadSpec {
                msg_flits: size,
                ..WorkloadSpec::paper_default()
            };
            cells.push([format!("{size}"), format!("{load:.2}")]);
            points.push(p);
        }
    }
    for ([size, load], out) in cells.into_iter().zip(sweep_single_switch(&points, args)) {
        t.row([
            size,
            load,
            format!("{:.2}", out.jitter.mean_ms),
            format!("{:.2}", out.jitter.std_ms),
        ]);
    }
    println!("{t}");
    t
}

/// Fig. 8 — MediaWorm vs the PCS router (8×8, 100 Mbps, 24 VCs).
pub fn fig8(args: &RunArgs) -> Table {
    banner("Fig 8: MediaWorm vs PCS (8x8, 100 Mbps, 24 VCs)", args);
    let mut t = Table::new(["load", "router", "d (ms)", "sigma_d (ms)"])
        .with_title("Fig 8 — wormhole vs pipelined circuit switching");
    let loads = [0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];
    // Task 2i runs MediaWorm at loads[i]; task 2i+1 runs PCS at loads[i].
    let jitter = SweepRunner::from_args(args).map(loads.len() * 2, |task| {
        let load = loads[task.index / 2];
        if task.index % 2 == 0 {
            // MediaWorm at 100 Mbps with 24 VCs.
            let mut p = Point::new(load, 100.0, 0.0);
            p.router = RouterConfig::new(24);
            p.spec = WorkloadSpec::paper_100mbps();
            let worm = run_single_switch_seeded(&p, args, task.seed);
            (worm.jitter.mean_ms, worm.jitter.std_ms)
        } else {
            let (w, m) = args.windows();
            let pcs = pcs_router::sim::run(load, &PcsConfig::paper_default(), w, m, task.seed);
            (pcs.jitter.mean_ms, pcs.jitter.std_ms)
        }
    });
    for (i, &load) in loads.iter().enumerate() {
        for (router, (mean, std)) in [("MediaWorm", jitter[2 * i]), ("PCS", jitter[2 * i + 1])] {
            t.row([
                format!("{load:.2}"),
                router.to_string(),
                format!("{mean:.2}"),
                format!("{std:.2}"),
            ]);
        }
    }
    println!("{t}");
    t
}

/// Table 3 — PCS connection attempts / establishments / drops vs load.
pub fn table3(args: &RunArgs) -> Table {
    banner(
        "Table 3: PCS connection accounting (8x8, 100 Mbps, 24 VCs)",
        args,
    );
    let mut t = Table::new(["load", "offered", "attempts", "established", "dropped"])
        .with_title("Table 3 — attempted, established and dropped connections");
    let loads = [0.37, 0.42, 0.64, 0.67, 0.74, 0.80, 0.87, 0.91];
    let outs = SweepRunner::from_args(args).map(loads.len(), |task| {
        let (w, m) = args.windows();
        let out = pcs_router::sim::run(
            loads[task.index],
            &PcsConfig::paper_default(),
            w,
            m,
            task.seed,
        );
        (out.offered, out.attempts, out.established, out.dropped)
    });
    for (&load, (offered, attempts, established, dropped)) in loads.iter().zip(outs) {
        t.row([
            format!("{load:.2}"),
            format!("{offered}"),
            format!("{attempts}"),
            format!("{established}"),
            format!("{dropped}"),
        ]);
    }
    println!("{t}");
    t
}

/// Fig. 9 — the 2×2 fat-mesh: jitter and best-effort latency over
/// mix × load.
pub fn fig9(args: &RunArgs) -> Table {
    banner("Fig 9: 2x2 fat-mesh (two links per neighbour pair)", args);
    let mut t = Table::new(["mix (x:y)", "load", "d (ms)", "sigma_d (ms)", "BE lat (us)"])
        .with_title("Fig 9 — fat-mesh jitter and best-effort latency");
    let mut cells = Vec::new();
    let mut points = Vec::new();
    for &(x, y) in &[(40.0, 60.0), (60.0, 40.0), (80.0, 20.0)] {
        for &load in &[0.7, 0.8, 0.9] {
            cells.push([format!("{x:.0}:{y:.0}"), format!("{load:.2}")]);
            points.push(Point::new(load, x, y));
        }
    }
    let outs = SweepRunner::from_args(args).map(points.len(), |task| {
        run_fat_mesh_seeded(&points[task.index], args, task.seed)
    });
    for ([mix, load], out) in cells.into_iter().zip(outs) {
        t.row([
            mix,
            load,
            format!("{:.2}", out.jitter.mean_ms),
            format!("{:.2}", out.jitter.std_ms),
            be_cell(out.be_mean_latency_us),
        ]);
    }
    println!("{t}");
    t
}

/// Ablation — the three multiplexer schedulers side by side (extends
/// Fig. 3 with the round-robin scheduler the paper mentions in §6).
pub fn ablation_sched(args: &RunArgs) -> Table {
    banner("Ablation: scheduler disciplines (16 VCs, mix 80:20)", args);
    let mut t = Table::new(["load", "scheduler", "d (ms)", "sigma_d (ms)", "BE lat (us)"])
        .with_title("Ablation — VirtualClock vs FIFO vs RoundRobin");
    let mut cells = Vec::new();
    let mut points = Vec::new();
    for &load in &[0.7, 0.8, 0.9, 0.96] {
        for kind in [
            SchedulerKind::VirtualClock,
            SchedulerKind::Fifo,
            SchedulerKind::RoundRobin,
        ] {
            let mut p = Point::new(load, 80.0, 20.0);
            p.router = RouterConfig::default().scheduler(kind);
            cells.push([format!("{load:.2}"), format!("{kind:?}")]);
            points.push(p);
        }
    }
    for ([load, kind], out) in cells.into_iter().zip(sweep_single_switch(&points, args)) {
        t.row([
            load,
            kind,
            format!("{:.2}", out.jitter.mean_ms),
            format!("{:.2}", out.jitter.std_ms),
            be_cell(out.be_mean_latency_us),
        ]);
    }
    println!("{t}");
    t
}

/// Ablation — Virtual Clock applied at the crossbar input multiplexer
/// (the paper's point A) vs at the VC output multiplexer (point C), both
/// on the multiplexed crossbar. Quantifies the paper's §3.3 argument.
pub fn ablation_point(args: &RunArgs) -> Table {
    banner(
        "Ablation: Virtual Clock at point A vs point C (muxed xbar)",
        args,
    );
    let mut t = Table::new(["load", "point", "d (ms)", "sigma_d (ms)"])
        .with_title("Ablation — QoS scheduling point");
    let mut cells = Vec::new();
    let mut points = Vec::new();
    for &load in &[0.7, 0.8, 0.9, 0.96] {
        for (name, point) in [
            ("A (xbar input)", SchedPoint::CrossbarInput),
            ("C (VC mux)", SchedPoint::VcMux),
        ] {
            let mut p = Point::new(load, 80.0, 20.0);
            p.router = RouterConfig::default().sched_point(point);
            cells.push([format!("{load:.2}"), name.to_string()]);
            points.push(p);
        }
    }
    for ([load, name], out) in cells.into_iter().zip(sweep_single_switch(&points, args)) {
        t.row([
            load,
            name,
            format!("{:.2}", out.jitter.mean_ms),
            format!("{:.2}", out.jitter.std_ms),
        ]);
    }
    println!("{t}");
    t
}

/// Ablation — dynamic VC borrowing (the paper's §6 "dynamically
/// partitioned resources" future-work direction): when its own partition
/// is exhausted, a message may take a free VC of the other class. The
/// interesting question is whether best-effort improves without hurting
/// the real-time class (Virtual Clock still outranks it at point A).
pub fn ablation_borrowing(args: &RunArgs) -> Table {
    banner("Ablation: dynamic VC borrowing (mix 90:10)", args);
    let mut t = Table::new(["load", "borrowing", "d (ms)", "sigma_d (ms)", "BE lat (us)"])
        .with_title("Ablation — static partition vs VC borrowing");
    let mut cells = Vec::new();
    let mut points = Vec::new();
    for &load in &[0.6, 0.7, 0.8, 0.9] {
        for borrowing in [false, true] {
            let mut p = Point::new(load, 90.0, 10.0);
            p.router = RouterConfig::default().vc_borrowing(borrowing);
            cells.push([
                format!("{load:.2}"),
                if borrowing { "on" } else { "off" }.to_string(),
            ]);
            points.push(p);
        }
    }
    for ([load, borrowing], out) in cells.into_iter().zip(sweep_single_switch(&points, args)) {
        t.row([
            load,
            borrowing,
            format!("{:.2}", out.jitter.mean_ms),
            format!("{:.2}", out.jitter.std_ms),
            be_cell(out.be_mean_latency_us),
        ]);
    }
    println!("{t}");
    t
}

/// Extension — GOP-structured VBR vs the paper's normal frame model.
/// Real MPEG-2 alternates large I frames with small B/P frames; at equal
/// mean rate the bursts are harder on the router. This experiment asks
/// how much of the jitter-free region that structure costs.
pub fn gop_sensitivity(args: &RunArgs) -> Table {
    banner("Extension: GOP-structured VBR vs normal frame sizes", args);
    let mut t = Table::new(["load", "frame model", "d (ms)", "sigma_d (ms)"])
        .with_title("Extension — frame-size model sensitivity (100:0 VBR)");
    let mut cells = Vec::new();
    let mut points = Vec::new();
    for &load in &[0.6, 0.7, 0.8, 0.9] {
        for model in [FrameModel::Normal, FrameModel::Gop] {
            let mut p = Point::new(load, 100.0, 0.0);
            p.spec = WorkloadSpec {
                frame_model: model,
                ..WorkloadSpec::paper_default()
            };
            cells.push([format!("{load:.2}"), format!("{model:?}")]);
            points.push(p);
        }
    }
    for ([load, model], out) in cells.into_iter().zip(sweep_single_switch(&points, args)) {
        t.row([
            load,
            model,
            format!("{:.2}", out.jitter.mean_ms),
            format!("{:.2}", out.jitter.std_ms),
        ]);
    }
    println!("{t}");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> RunArgs {
        RunArgs {
            quick: true,
            seed: 11,
            warmup_secs: 0.02,
            measure_secs: 0.04,
            jobs: Some(2),
        }
    }

    #[test]
    fn be_cell_saturates() {
        assert_eq!(be_cell(50.0), "50.0");
        assert_eq!(be_cell(1e6), "Sat.");
        assert_eq!(be_cell(f64::NAN), "Sat.");
    }

    #[test]
    fn table3_rows_match_loads() {
        let t = table3(&quick());
        assert_eq!(t.row_count(), 8);
    }

    #[test]
    fn fig3_produces_full_grid() {
        let t = fig3(&quick());
        assert_eq!(t.row_count(), LOADS.len() * 2);
    }
}
