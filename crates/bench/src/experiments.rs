//! One function per table/figure of the paper's evaluation (§5).
//!
//! Every function prints its result table and returns an
//! [`ExperimentRun`]: the table, one machine-readable JSON record per
//! simulated point, the total simulated cycles (for throughput
//! accounting), and — when `--trace` is active — the concatenated JSONL
//! flit-event trace. `repro-all` collects everything into one report and
//! `--json` serializes each run to `BENCH_<name>.json`. Parameter values
//! mirror the paper exactly; see EXPERIMENTS.md for paper-vs-measured
//! notes.
//!
//! Each experiment is a sweep: it builds its full point list up front,
//! fans the points across a [`SweepRunner`] (capped by `--jobs` /
//! `MEDIAWORM_JOBS`), and assembles the table rows from the ordered
//! results — so the printed output, the JSON records and the trace bytes
//! are bit-identical at any job count.
//!
//! Under `--shard i/n` only the tasks the shard owns are simulated; the
//! table shows that shard's rows and every JSON record carries its global
//! task `index`, which is how [`crate::merge_shards`] later reassembles
//! the monolithic report in order.

use mediaworm::{BoundsReport, CrossbarKind, RouterConfig, SchedPoint, SchedulerKind, SimOutcome};
use metrics::{Json, Table};
use pcs_router::{PcsConfig, PcsOutcome};
use traffic::{FrameModel, PolicingMode, StreamClass, WorkloadSpec};

use crate::sweep::SweepRunner;
use crate::{
    banner, run_fat_mesh_seeded, run_fat_mesh_traced, run_single_switch_seeded,
    run_single_switch_traced, ExperimentRun, Point, RunArgs,
};

/// The load axis used by the single-switch sweeps (Figs. 3–6).
pub const LOADS: [f64; 5] = [0.6, 0.7, 0.8, 0.9, 0.96];

/// Best-effort latency above which a cell prints as `Sat.` (the paper's
/// Table 2 notation for a saturated best-effort class).
pub const SATURATION_US: f64 = 5_000.0;

fn be_cell(us: f64) -> String {
    if us.is_nan() || us > SATURATION_US {
        "Sat.".to_string()
    } else {
        format!("{us:.1}")
    }
}

/// The ordered results of one sweep: outcomes in task-order slots
/// (`None` where another shard owns the task), simulated cycles summed,
/// and the trace bytes concatenated in point order.
struct Sweep {
    outs: Vec<Option<SimOutcome>>,
    cycles: u64,
    trace: Vec<u8>,
}

impl Sweep {
    fn collect(results: Vec<Option<(SimOutcome, Vec<u8>)>>) -> Sweep {
        let mut cycles = 0u64;
        let mut trace = Vec::new();
        let mut outs = Vec::with_capacity(results.len());
        for slot in results {
            outs.push(slot.map(|(out, t)| {
                cycles += out.cycles;
                trace.extend_from_slice(&t);
                out
            }));
        }
        Sweep {
            outs,
            cycles,
            trace,
        }
    }

    /// The outcome of task `index`, if this shard computed it.
    fn get(&self, index: usize) -> Option<&SimOutcome> {
        self.outs.get(index).and_then(Option::as_ref)
    }

    /// Iterates the computed points as `(task index, cell, outcome)`.
    /// Under `--shard` the foreign tasks simply don't appear: the table
    /// shows this shard's rows and each JSON record carries its global
    /// index for the merge step.
    fn zip<'a, C>(
        &'a self,
        cells: &'a [C],
    ) -> impl Iterator<Item = (usize, &'a C, &'a SimOutcome)> {
        cells
            .iter()
            .zip(&self.outs)
            .enumerate()
            .filter_map(|(i, (cell, out))| out.as_ref().map(|o| (i, cell, o)))
    }
}

/// Fans `points` across the sweep workers on the single switch; results
/// come back in point order (the tasks a foreign shard owns stay `None`).
/// Tracing follows `args.trace`.
fn sweep_single_switch(points: &[Point], args: &RunArgs) -> Sweep {
    let traced = args.trace.is_some();
    Sweep::collect(
        SweepRunner::from_args(args).map_sharded(points.len(), |task| {
            let p = &points[task.index];
            if traced {
                run_single_switch_traced(p, args, task.seed)
            } else {
                (run_single_switch_seeded(p, args, task.seed), Vec::new())
            }
        }),
    )
}

/// [`sweep_single_switch`] on the 2×2 fat-mesh.
fn sweep_fat_mesh(points: &[Point], args: &RunArgs) -> Sweep {
    let traced = args.trace.is_some();
    Sweep::collect(
        SweepRunner::from_args(args).map_sharded(points.len(), |task| {
            let p = &points[task.index];
            if traced {
                run_fat_mesh_traced(p, args, task.seed)
            } else {
                (run_fat_mesh_seeded(p, args, task.seed), Vec::new())
            }
        }),
    )
}

/// One point's machine-readable record: its global task index, the sweep
/// labels, then the jitter/latency results (NaN-free: undefined
/// statistics are `null`) and the router telemetry counter totals.
fn point_json(index: usize, labels: &[(&str, &str)], out: &SimOutcome) -> Json {
    let mut o = Json::obj([("index", Json::Uint(index as u64))]);
    for &(k, v) in labels {
        o.push(k, Json::str(v));
    }
    o.push("d_ms", Json::opt_num(out.jitter.mean_ms_opt()));
    o.push("sigma_d_ms", Json::opt_num(out.jitter.std_ms_opt()));
    o.push("intervals", Json::Uint(out.jitter.intervals));
    o.push("be_latency_us", Json::opt_num(out.be_mean_latency_us_opt()));
    o.push("be_msgs", Json::Uint(out.be_msgs));
    o.push("injected_msgs", Json::Uint(out.injected_msgs));
    o.push("delivered_msgs", Json::Uint(out.delivered_msgs));
    o.push("in_flight_at_end", Json::Uint(out.in_flight_at_end));
    o.push("counters", out.counters.to_json());
    o.push("skip", out.skip.to_json());
    o.push("audit_violations", Json::Uint(out.audit_violations));
    o.push(
        "stall",
        out.stall.as_ref().map_or(Json::Null, |s| s.to_json()),
    );
    o
}

/// A PCS point's machine-readable record.
fn pcs_json(index: usize, labels: &[(&str, &str)], out: &PcsOutcome) -> Json {
    let mut o = Json::obj([("index", Json::Uint(index as u64))]);
    for &(k, v) in labels {
        o.push(k, Json::str(v));
    }
    o.push("d_ms", Json::opt_num(out.jitter.mean_ms_opt()));
    o.push("sigma_d_ms", Json::opt_num(out.jitter.std_ms_opt()));
    o.push("offered", Json::Uint(out.offered));
    o.push("attempts", Json::Uint(out.attempts));
    o.push("established", Json::Uint(out.established));
    o.push("dropped", Json::Uint(out.dropped));
    o.push(
        "counters",
        Json::obj([
            ("flits_forwarded", Json::Uint(out.counters.flits_forwarded)),
            ("mux_conflicts", Json::Uint(out.counters.mux_conflicts)),
            (
                "mean_occupancy_flits",
                Json::opt_num(out.counters.mean_occupancy()),
            ),
        ]),
    );
    o.push(
        "stall",
        out.stall.map_or(Json::Null, |s| {
            Json::obj([
                ("cycle", Json::Uint(s.cycle)),
                ("stalled_for", Json::Uint(s.stalled_for)),
                ("flits_in_flight", Json::Uint(s.flits_in_flight)),
            ])
        }),
    );
    o
}

/// Fig. 3 — Virtual Clock vs FIFO (16 VCs, 80:20 mix): d̄ and σ_d vs load.
pub fn fig3(args: &RunArgs) -> ExperimentRun {
    banner("Fig 3: Virtual Clock vs FIFO (16 VCs, mix 80:20)", args);
    let mut t = Table::new(["load", "scheduler", "d (ms)", "sigma_d (ms)"])
        .with_title("Fig 3 — mean delivery interval and deviation, VBR 80:20");
    let mut cells = Vec::new();
    let mut points = Vec::new();
    for &load in &LOADS {
        for kind in [SchedulerKind::VirtualClock, SchedulerKind::Fifo] {
            let mut p = Point::new(load, 80.0, 20.0);
            p.router = RouterConfig::default().scheduler(kind);
            cells.push([format!("{load:.2}"), format!("{kind:?}")]);
            points.push(p);
        }
    }
    let sw = sweep_single_switch(&points, args);
    let mut records = Vec::new();
    for (i, [load, kind], out) in sw.zip(&cells) {
        t.row([
            load.clone(),
            kind.clone(),
            format!("{:.2}", out.jitter.mean_ms),
            format!("{:.2}", out.jitter.std_ms),
        ]);
        records.push(point_json(i, &[("load", load), ("scheduler", kind)], out));
    }
    println!("{t}");
    ExperimentRun {
        name: "fig3",
        table: t,
        points: records,
        sim_cycles: sw.cycles,
        trace: sw.trace,
    }
}

/// Fig. 4 — CBR-only vs VBR-only traffic (16 VCs, 400 Mbps).
pub fn fig4(args: &RunArgs) -> ExperimentRun {
    banner("Fig 4: CBR vs VBR traffic (16 VCs, 400 Mbps)", args);
    let mut t = Table::new(["load", "class", "d (ms)", "sigma_d (ms)"])
        .with_title("Fig 4 — pure real-time traffic, no best-effort");
    let mut cells = Vec::new();
    let mut points = Vec::new();
    for &load in &LOADS {
        for class in [StreamClass::Cbr, StreamClass::Vbr] {
            let mut p = Point::new(load, 100.0, 0.0);
            p.class = class;
            cells.push([format!("{load:.2}"), format!("{class:?}")]);
            points.push(p);
        }
    }
    let sw = sweep_single_switch(&points, args);
    let mut records = Vec::new();
    for (i, [load, class], out) in sw.zip(&cells) {
        t.row([
            load.clone(),
            class.clone(),
            format!("{:.2}", out.jitter.mean_ms),
            format!("{:.2}", out.jitter.std_ms),
        ]);
        records.push(point_json(i, &[("load", load), ("class", class)], out));
    }
    println!("{t}");
    ExperimentRun {
        name: "fig4",
        table: t,
        points: records,
        sim_cycles: sw.cycles,
        trace: sw.trace,
    }
}

/// The paper's traffic mixes for Fig. 5 / Table 2.
pub const MIXES: [(f64, f64); 5] = [
    (20.0, 80.0),
    (50.0, 50.0),
    (80.0, 20.0),
    (90.0, 10.0),
    (100.0, 0.0),
];

/// Fig. 5 — mixed traffic: d̄ and σ_d over mix × load (16 VCs).
pub fn fig5(args: &RunArgs) -> ExperimentRun {
    banner("Fig 5: mixed VBR/best-effort traffic (16 VCs)", args);
    let mut t = Table::new(["mix (x:y)", "load", "d (ms)", "sigma_d (ms)"])
        .with_title("Fig 5 — jitter across traffic mixes");
    let mut cells = Vec::new();
    let mut points = Vec::new();
    for &(x, y) in &MIXES {
        for &load in &LOADS {
            cells.push([format!("{x:.0}:{y:.0}"), format!("{load:.2}")]);
            points.push(Point::new(load, x, y));
        }
    }
    let sw = sweep_single_switch(&points, args);
    let mut records = Vec::new();
    for (i, [mix, load], out) in sw.zip(&cells) {
        t.row([
            mix.clone(),
            load.clone(),
            format!("{:.2}", out.jitter.mean_ms),
            format!("{:.2}", out.jitter.std_ms),
        ]);
        records.push(point_json(i, &[("mix", mix), ("load", load)], out));
    }
    println!("{t}");
    ExperimentRun {
        name: "fig5",
        table: t,
        points: records,
        sim_cycles: sw.cycles,
        trace: sw.trace,
    }
}

/// Table 2 — average best-effort latency (µs) over mix × load.
pub fn table2(args: &RunArgs) -> ExperimentRun {
    banner(
        "Table 2: average best-effort latency (8x8, 16 VCs, 400 Mbps)",
        args,
    );
    let mut t = Table::new(["mix (x:y)", "0.60", "0.70", "0.80", "0.90", "0.96"])
        .with_title("Table 2 — best-effort latency in microseconds");
    let mixes: Vec<(f64, f64)> = MIXES.iter().copied().filter(|(_, y)| *y > 0.0).collect();
    let mut points = Vec::new();
    for &(x, y) in &mixes {
        for &load in &LOADS {
            points.push(Point::new(load, x, y));
        }
    }
    let sw = sweep_single_switch(&points, args);
    let mut records = Vec::new();
    for (row, &(x, y)) in mixes.iter().enumerate() {
        let mix = format!("{x:.0}:{y:.0}");
        let mut cells = vec![mix.clone()];
        for (col, load) in LOADS.iter().enumerate() {
            let index = row * LOADS.len() + col;
            // Cells a foreign shard owns print as "-" in this shard's
            // table; the merged JSON still covers the full grid.
            let Some(out) = sw.get(index) else {
                cells.push("-".to_string());
                continue;
            };
            cells.push(be_cell(out.be_mean_latency_us));
            let load = format!("{load:.2}");
            records.push(point_json(index, &[("mix", &mix), ("load", &load)], out));
        }
        t.row(cells);
    }
    println!("{t}");
    ExperimentRun {
        name: "table2",
        table: t,
        points: records,
        sim_cycles: sw.cycles,
        trace: sw.trace,
    }
}

/// Fig. 6 — impact of VC count and crossbar style (100:0 VBR).
pub fn fig6(args: &RunArgs) -> ExperimentRun {
    banner(
        "Fig 6: VCs and crossbar capabilities (400 Mbps, 100:0)",
        args,
    );
    let configs: [(&str, RouterConfig); 4] = [
        ("16 VC muxed", RouterConfig::new(16)),
        ("8 VC muxed", RouterConfig::new(8)),
        ("4 VC muxed", RouterConfig::new(4)),
        (
            "4 VC full",
            RouterConfig::new(4).crossbar(CrossbarKind::Full),
        ),
    ];
    let mut t = Table::new(["config", "load", "d (ms)", "sigma_d (ms)"])
        .with_title("Fig 6 — jitter vs VC count / crossbar style");
    let mut cells = Vec::new();
    let mut points = Vec::new();
    for (name, cfg) in &configs {
        for &load in &[0.5, 0.6, 0.7, 0.8, 0.9, 0.96] {
            let mut p = Point::new(load, 100.0, 0.0);
            p.router = cfg.clone();
            cells.push([(*name).to_string(), format!("{load:.2}")]);
            points.push(p);
        }
    }
    let sw = sweep_single_switch(&points, args);
    let mut records = Vec::new();
    for (i, [name, load], out) in sw.zip(&cells) {
        t.row([
            name.clone(),
            load.clone(),
            format!("{:.2}", out.jitter.mean_ms),
            format!("{:.2}", out.jitter.std_ms),
        ]);
        records.push(point_json(i, &[("config", name), ("load", load)], out));
    }
    println!("{t}");
    ExperimentRun {
        name: "fig6",
        table: t,
        points: records,
        sim_cycles: sw.cycles,
        trace: sw.trace,
    }
}

/// Fig. 7 — effect of message size on jitter (16 VCs).
pub fn fig7(args: &RunArgs) -> ExperimentRun {
    banner("Fig 7: message size vs jitter (16 VCs)", args);
    let mut t = Table::new(["msg (flits)", "load", "d (ms)", "sigma_d (ms)"])
        .with_title("Fig 7 — jitter vs message size");
    let mut cells = Vec::new();
    let mut points = Vec::new();
    for &size in &[20u32, 40, 80, 160, 2560] {
        for &load in &[0.64, 0.80] {
            let mut p = Point::new(load, 100.0, 0.0);
            p.spec = WorkloadSpec {
                msg_flits: size,
                ..WorkloadSpec::paper_default()
            };
            cells.push([format!("{size}"), format!("{load:.2}")]);
            points.push(p);
        }
    }
    let sw = sweep_single_switch(&points, args);
    let mut records = Vec::new();
    for (i, [size, load], out) in sw.zip(&cells) {
        t.row([
            size.clone(),
            load.clone(),
            format!("{:.2}", out.jitter.mean_ms),
            format!("{:.2}", out.jitter.std_ms),
        ]);
        records.push(point_json(i, &[("msg_flits", size), ("load", load)], out));
    }
    println!("{t}");
    ExperimentRun {
        name: "fig7",
        table: t,
        points: records,
        sim_cycles: sw.cycles,
        trace: sw.trace,
    }
}

/// Fig. 8 — MediaWorm vs the PCS router (8×8, 100 Mbps, 24 VCs).
pub fn fig8(args: &RunArgs) -> ExperimentRun {
    banner("Fig 8: MediaWorm vs PCS (8x8, 100 Mbps, 24 VCs)", args);
    let mut t = Table::new(["load", "router", "d (ms)", "sigma_d (ms)"])
        .with_title("Fig 8 — wormhole vs pipelined circuit switching");
    let loads = [0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];
    let traced = args.trace.is_some();
    /// Per-task result: either a MediaWorm or a PCS point.
    enum Half {
        Worm(Box<SimOutcome>, Vec<u8>),
        Pcs(PcsOutcome),
    }
    // Task 2i runs MediaWorm at loads[i]; task 2i+1 runs PCS at loads[i].
    let halves = SweepRunner::from_args(args).map_sharded(loads.len() * 2, |task| {
        let load = loads[task.index / 2];
        if task.index % 2 == 0 {
            // MediaWorm at 100 Mbps with 24 VCs.
            let mut p = Point::new(load, 100.0, 0.0);
            p.router = RouterConfig::new(24);
            p.spec = WorkloadSpec::paper_100mbps();
            let (out, trace) = if traced {
                run_single_switch_traced(&p, args, task.seed)
            } else {
                (run_single_switch_seeded(&p, args, task.seed), Vec::new())
            };
            Half::Worm(Box::new(out), trace)
        } else {
            let (w, m) = args.windows();
            Half::Pcs(pcs_router::sim::run(
                load,
                &PcsConfig::paper_default(),
                w,
                m,
                task.seed,
            ))
        }
    });
    let mut records = Vec::new();
    let mut cycles = 0u64;
    let mut trace = Vec::new();
    for (i, half) in halves.iter().enumerate() {
        let Some(half) = half else { continue };
        let load = format!("{:.2}", loads[i / 2]);
        let (router, mean, std) = match half {
            Half::Worm(out, t) => {
                cycles += out.cycles;
                trace.extend_from_slice(t);
                records.push(point_json(
                    i,
                    &[("load", &load), ("router", "MediaWorm")],
                    out,
                ));
                ("MediaWorm", out.jitter.mean_ms, out.jitter.std_ms)
            }
            Half::Pcs(out) => {
                cycles += out.cycles;
                records.push(pcs_json(i, &[("load", &load), ("router", "PCS")], out));
                ("PCS", out.jitter.mean_ms, out.jitter.std_ms)
            }
        };
        t.row([
            load,
            router.to_string(),
            format!("{mean:.2}"),
            format!("{std:.2}"),
        ]);
    }
    println!("{t}");
    ExperimentRun {
        name: "fig8",
        table: t,
        points: records,
        sim_cycles: cycles,
        trace,
    }
}

/// Table 3 — PCS connection attempts / establishments / drops vs load.
pub fn table3(args: &RunArgs) -> ExperimentRun {
    banner(
        "Table 3: PCS connection accounting (8x8, 100 Mbps, 24 VCs)",
        args,
    );
    let mut t = Table::new(["load", "offered", "attempts", "established", "dropped"])
        .with_title("Table 3 — attempted, established and dropped connections");
    let loads = [0.37, 0.42, 0.64, 0.67, 0.74, 0.80, 0.87, 0.91];
    let outs = SweepRunner::from_args(args).map_sharded(loads.len(), |task| {
        let (w, m) = args.windows();
        pcs_router::sim::run(
            loads[task.index],
            &PcsConfig::paper_default(),
            w,
            m,
            task.seed,
        )
    });
    let mut records = Vec::new();
    let mut cycles = 0u64;
    for (i, (&load, out)) in loads.iter().zip(&outs).enumerate() {
        let Some(out) = out else { continue };
        cycles += out.cycles;
        let load = format!("{load:.2}");
        records.push(pcs_json(i, &[("load", &load)], out));
        t.row([
            load,
            format!("{}", out.offered),
            format!("{}", out.attempts),
            format!("{}", out.established),
            format!("{}", out.dropped),
        ]);
    }
    println!("{t}");
    ExperimentRun {
        name: "table3",
        table: t,
        points: records,
        sim_cycles: cycles,
        trace: Vec::new(),
    }
}

/// Fig. 9 — the 2×2 fat-mesh: jitter and best-effort latency over
/// mix × load.
pub fn fig9(args: &RunArgs) -> ExperimentRun {
    banner("Fig 9: 2x2 fat-mesh (two links per neighbour pair)", args);
    let mut t = Table::new(["mix (x:y)", "load", "d (ms)", "sigma_d (ms)", "BE lat (us)"])
        .with_title("Fig 9 — fat-mesh jitter and best-effort latency");
    let mut cells = Vec::new();
    let mut points = Vec::new();
    for &(x, y) in &[(40.0, 60.0), (60.0, 40.0), (80.0, 20.0)] {
        for &load in &[0.7, 0.8, 0.9] {
            cells.push([format!("{x:.0}:{y:.0}"), format!("{load:.2}")]);
            points.push(Point::new(load, x, y));
        }
    }
    let sw = sweep_fat_mesh(&points, args);
    let mut records = Vec::new();
    for (i, [mix, load], out) in sw.zip(&cells) {
        t.row([
            mix.clone(),
            load.clone(),
            format!("{:.2}", out.jitter.mean_ms),
            format!("{:.2}", out.jitter.std_ms),
            be_cell(out.be_mean_latency_us),
        ]);
        records.push(point_json(i, &[("mix", mix), ("load", load)], out));
    }
    println!("{t}");
    ExperimentRun {
        name: "fig9",
        table: t,
        points: records,
        sim_cycles: sw.cycles,
        trace: sw.trace,
    }
}

/// The full scheduler zoo, in matrix order.
pub const ALL_SCHEDULERS: [SchedulerKind; 6] = [
    SchedulerKind::VirtualClock,
    SchedulerKind::Fifo,
    SchedulerKind::RoundRobin,
    SchedulerKind::Wfq,
    SchedulerKind::Drr,
    SchedulerKind::Scfq,
];

/// Ablation — the scheduler-discipline zoo crossed with NI policing over
/// the Fig. 3 mix: Virtual Clock, FIFO and round-robin (the paper's
/// §3.3/§6 axis) plus WFQ, DRR and SCFQ, each with policing off, shaping
/// and demotion. `--schedulers`, `--policing` and `--loads` restrict the
/// grid (CI smoke runs a tiny slice); the defaults run the full
/// load × 6 × 3 matrix.
pub fn ablation_sched(args: &RunArgs) -> ExperimentRun {
    banner(
        "Ablation: scheduler x policing matrix (16 VCs, mix 80:20)",
        args,
    );
    let mut t = Table::new([
        "load",
        "scheduler",
        "policing",
        "d (ms)",
        "sigma_d (ms)",
        "BE lat (us)",
    ])
    .with_title("Ablation — scheduler discipline x NI policing");
    let loads: Vec<f64> = args
        .loads
        .clone()
        .unwrap_or_else(|| vec![0.7, 0.8, 0.9, 0.96]);
    let kinds: Vec<SchedulerKind> = args
        .schedulers
        .clone()
        .unwrap_or_else(|| ALL_SCHEDULERS.to_vec());
    let modes: Vec<PolicingMode> = args
        .policing
        .clone()
        .unwrap_or_else(|| PolicingMode::ALL.to_vec());
    let mut cells = Vec::new();
    let mut points = Vec::new();
    for &load in &loads {
        for &kind in &kinds {
            for &mode in &modes {
                let mut p = Point::new(load, 80.0, 20.0);
                p.router = RouterConfig::default().scheduler(kind);
                p.policing = mode;
                cells.push([format!("{load:.2}"), format!("{kind:?}"), mode.to_string()]);
                points.push(p);
            }
        }
    }
    let sw = sweep_single_switch(&points, args);
    let mut records = Vec::new();
    for (i, [load, kind, mode], out) in sw.zip(&cells) {
        t.row([
            load.clone(),
            kind.clone(),
            mode.clone(),
            format!("{:.2}", out.jitter.mean_ms),
            format!("{:.2}", out.jitter.std_ms),
            be_cell(out.be_mean_latency_us),
        ]);
        records.push(point_json(
            i,
            &[("load", load), ("scheduler", kind), ("policing", mode)],
            out,
        ));
    }
    println!("{t}");
    ExperimentRun {
        name: "ablation_sched",
        table: t,
        points: records,
        sim_cycles: sw.cycles,
        trace: sw.trace,
    }
}

/// Compact roll-up of one point's [`BoundsReport`] for the table row and
/// the top of its JSON record (the full per-stream dump rides along
/// under `"bounds"`). All cycle values are `None`-safe: a saturated
/// point, or FIFO with unregulated best-effort, has no finite bounds.
struct BoundsSummary {
    streams: usize,
    bounded: usize,
    bound_max_cycles: Option<f64>,
    observed_max_cycles: Option<f64>,
    tightness_max: Option<f64>,
    violations: usize,
    guaranteed_violations: usize,
}

impl BoundsSummary {
    fn of(report: &BoundsReport) -> BoundsSummary {
        fn fold_max(it: impl Iterator<Item = f64>) -> Option<f64> {
            it.fold(None, |m, v| Some(m.map_or(v, |m| m.max(v))))
        }
        BoundsSummary {
            streams: report.streams.len(),
            bounded: report
                .streams
                .iter()
                .filter(|s| s.bound_cycles.is_some())
                .count(),
            bound_max_cycles: fold_max(report.streams.iter().filter_map(|s| s.bound_cycles)),
            observed_max_cycles: fold_max(
                report.streams.iter().filter_map(|s| s.observed_max_cycles),
            ),
            tightness_max: fold_max(report.streams.iter().filter_map(|s| s.tightness())),
            violations: report.violations.len(),
            guaranteed_violations: report.guaranteed_violations().count(),
        }
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("streams", Json::Uint(self.streams as u64)),
            ("bounded", Json::Uint(self.bounded as u64)),
            ("bound_max_cycles", Json::opt_num(self.bound_max_cycles)),
            (
                "observed_max_cycles",
                Json::opt_num(self.observed_max_cycles),
            ),
            ("tightness_max", Json::opt_num(self.tightness_max)),
            ("violations", Json::Uint(self.violations as u64)),
            (
                "guaranteed_violations",
                Json::Uint(self.guaranteed_violations as u64),
            ),
        ])
    }

    fn cell(v: Option<f64>) -> String {
        v.map_or("-".to_string(), |v| format!("{v:.0}"))
    }
}

/// Extension — the delay-bound audit over the Fig. 3 scheduler × NI
/// policing × load matrix, for CBR and VBR real-time traffic: every
/// point runs with the network-calculus oracle enabled and reports each
/// stream's analytic worst-case latency against the observed maximum
/// (`BENCH_bounds.json` carries the full per-stream bound/observation/
/// tightness records). A violation on a *guaranteed* stream — CBR with
/// policing off, the one case where the arrival envelope is provable —
/// aborts the experiment: that is a simulator bug, not a result.
/// `--schedulers`, `--policing` and `--loads` restrict the grid.
pub fn bounds(args: &RunArgs) -> ExperimentRun {
    banner(
        "Bounds: analytic worst case vs observed (16 VCs, mix 80:20)",
        args,
    );
    let mut t = Table::new([
        "load",
        "scheduler",
        "policing",
        "class",
        "bounded",
        "bound max (cyc)",
        "obs max (cyc)",
        "tightness",
        "viol",
    ])
    .with_title("Delay bounds — network calculus vs simulation");
    let loads: Vec<f64> = args.loads.clone().unwrap_or_else(|| vec![0.7, 0.9]);
    let kinds: Vec<SchedulerKind> = args
        .schedulers
        .clone()
        .unwrap_or_else(|| ALL_SCHEDULERS.to_vec());
    let modes: Vec<PolicingMode> = args
        .policing
        .clone()
        .unwrap_or_else(|| PolicingMode::ALL.to_vec());
    // The audit *is* the experiment: force it on whether or not the
    // caller passed `--bounds`.
    let mut bargs = args.clone();
    bargs.bounds = true;
    let mut cells = Vec::new();
    let mut points = Vec::new();
    for &load in &loads {
        for &kind in &kinds {
            for &mode in &modes {
                for class in [StreamClass::Cbr, StreamClass::Vbr] {
                    let mut p = Point::new(load, 80.0, 20.0);
                    p.router = RouterConfig::default().scheduler(kind);
                    p.policing = mode;
                    p.class = class;
                    cells.push([
                        format!("{load:.2}"),
                        format!("{kind:?}"),
                        mode.to_string(),
                        format!("{class:?}"),
                    ]);
                    points.push(p);
                }
            }
        }
    }
    let sw = sweep_single_switch(&points, &bargs);
    let mut records = Vec::new();
    for (i, [load, kind, mode, class], out) in sw.zip(&cells) {
        let report = out.bounds.as_ref().expect("bounds audit enabled");
        let s = BoundsSummary::of(report);
        assert_eq!(
            s.guaranteed_violations, 0,
            "{load} {kind} {mode} {class}: a guaranteed stream exceeded its \
             analytic bound — simulator bug: {:?}",
            report.violations
        );
        t.row([
            load.clone(),
            kind.clone(),
            mode.clone(),
            class.clone(),
            format!("{}/{}", s.bounded, s.streams),
            BoundsSummary::cell(s.bound_max_cycles),
            BoundsSummary::cell(s.observed_max_cycles),
            s.tightness_max
                .map_or("-".to_string(), |v| format!("{v:.3}")),
            format!("{}", s.violations),
        ]);
        let mut rec = point_json(
            i,
            &[
                ("load", load),
                ("scheduler", kind),
                ("policing", mode),
                ("class", class),
            ],
            out,
        );
        rec.push("bounds_summary", s.to_json());
        rec.push("bounds", report.to_json());
        records.push(rec);
    }
    println!("{t}");
    ExperimentRun {
        name: "bounds",
        table: t,
        points: records,
        sim_cycles: sw.cycles,
        trace: sw.trace,
    }
}

/// Ablation — Virtual Clock applied at the crossbar input multiplexer
/// (the paper's point A) vs at the VC output multiplexer (point C), both
/// on the multiplexed crossbar. Quantifies the paper's §3.3 argument.
pub fn ablation_point(args: &RunArgs) -> ExperimentRun {
    banner(
        "Ablation: Virtual Clock at point A vs point C (muxed xbar)",
        args,
    );
    let mut t = Table::new(["load", "point", "d (ms)", "sigma_d (ms)"])
        .with_title("Ablation — QoS scheduling point");
    let mut cells = Vec::new();
    let mut points = Vec::new();
    for &load in &[0.7, 0.8, 0.9, 0.96] {
        for (name, point) in [
            ("A (xbar input)", SchedPoint::CrossbarInput),
            ("C (VC mux)", SchedPoint::VcMux),
        ] {
            let mut p = Point::new(load, 80.0, 20.0);
            p.router = RouterConfig::default().sched_point(point);
            cells.push([format!("{load:.2}"), name.to_string()]);
            points.push(p);
        }
    }
    let sw = sweep_single_switch(&points, args);
    let mut records = Vec::new();
    for (i, [load, name], out) in sw.zip(&cells) {
        t.row([
            load.clone(),
            name.clone(),
            format!("{:.2}", out.jitter.mean_ms),
            format!("{:.2}", out.jitter.std_ms),
        ]);
        records.push(point_json(i, &[("load", load), ("sched_point", name)], out));
    }
    println!("{t}");
    ExperimentRun {
        name: "ablation_point",
        table: t,
        points: records,
        sim_cycles: sw.cycles,
        trace: sw.trace,
    }
}

/// Ablation — dynamic VC borrowing (the paper's §6 "dynamically
/// partitioned resources" future-work direction): when its own partition
/// is exhausted, a message may take a free VC of the other class. The
/// interesting question is whether best-effort improves without hurting
/// the real-time class (Virtual Clock still outranks it at point A).
pub fn ablation_borrowing(args: &RunArgs) -> ExperimentRun {
    banner("Ablation: dynamic VC borrowing (mix 90:10)", args);
    let mut t = Table::new(["load", "borrowing", "d (ms)", "sigma_d (ms)", "BE lat (us)"])
        .with_title("Ablation — static partition vs VC borrowing");
    let mut cells = Vec::new();
    let mut points = Vec::new();
    for &load in &[0.6, 0.7, 0.8, 0.9] {
        for borrowing in [false, true] {
            let mut p = Point::new(load, 90.0, 10.0);
            p.router = RouterConfig::default().vc_borrowing(borrowing);
            cells.push([
                format!("{load:.2}"),
                if borrowing { "on" } else { "off" }.to_string(),
            ]);
            points.push(p);
        }
    }
    let sw = sweep_single_switch(&points, args);
    let mut records = Vec::new();
    for (i, [load, borrowing], out) in sw.zip(&cells) {
        t.row([
            load.clone(),
            borrowing.clone(),
            format!("{:.2}", out.jitter.mean_ms),
            format!("{:.2}", out.jitter.std_ms),
            be_cell(out.be_mean_latency_us),
        ]);
        records.push(point_json(
            i,
            &[("load", load), ("borrowing", borrowing)],
            out,
        ));
    }
    println!("{t}");
    ExperimentRun {
        name: "ablation_borrowing",
        table: t,
        points: records,
        sim_cycles: sw.cycles,
        trace: sw.trace,
    }
}

/// Extension — GOP-structured VBR vs the paper's normal frame model.
/// Real MPEG-2 alternates large I frames with small B/P frames; at equal
/// mean rate the bursts are harder on the router. This experiment asks
/// how much of the jitter-free region that structure costs.
pub fn gop_sensitivity(args: &RunArgs) -> ExperimentRun {
    banner("Extension: GOP-structured VBR vs normal frame sizes", args);
    let mut t = Table::new(["load", "frame model", "d (ms)", "sigma_d (ms)"])
        .with_title("Extension — frame-size model sensitivity (100:0 VBR)");
    let mut cells = Vec::new();
    let mut points = Vec::new();
    for &load in &[0.6, 0.7, 0.8, 0.9] {
        for model in [FrameModel::Normal, FrameModel::Gop] {
            let mut p = Point::new(load, 100.0, 0.0);
            p.spec = WorkloadSpec {
                frame_model: model,
                ..WorkloadSpec::paper_default()
            };
            cells.push([format!("{load:.2}"), format!("{model:?}")]);
            points.push(p);
        }
    }
    let sw = sweep_single_switch(&points, args);
    let mut records = Vec::new();
    for (i, [load, model], out) in sw.zip(&cells) {
        t.row([
            load.clone(),
            model.clone(),
            format!("{:.2}", out.jitter.mean_ms),
            format!("{:.2}", out.jitter.std_ms),
        ]);
        records.push(point_json(
            i,
            &[("load", load), ("frame_model", model)],
            out,
        ));
    }
    println!("{t}");
    ExperimentRun {
        name: "gop_sensitivity",
        table: t,
        points: records,
        sim_cycles: sw.cycles,
        trace: sw.trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> RunArgs {
        RunArgs {
            quick: true,
            seed: 11,
            warmup_secs: 0.02,
            measure_secs: 0.04,
            jobs: Some(2),
            ..RunArgs::default()
        }
    }

    #[test]
    fn be_cell_saturates() {
        assert_eq!(be_cell(50.0), "50.0");
        assert_eq!(be_cell(1e6), "Sat.");
        assert_eq!(be_cell(f64::NAN), "Sat.");
    }

    #[test]
    fn table3_rows_match_loads() {
        let run = table3(&quick());
        assert_eq!(run.table.row_count(), 8);
        assert_eq!(run.points.len(), 8);
        assert!(run.sim_cycles > 0);
    }

    #[test]
    fn fig3_produces_full_grid() {
        let run = fig3(&quick());
        assert_eq!(run.table.row_count(), LOADS.len() * 2);
        assert_eq!(run.points.len(), LOADS.len() * 2);
    }

    #[test]
    fn sharded_fig3_keeps_global_indices() {
        let full = fig3(&quick());
        let mut shard_args = quick();
        shard_args.shard = Some((1, 2));
        let run = fig3(&shard_args);
        // Shard 1 of 2 owns the odd half of the 10-task grid...
        assert_eq!(run.points.len(), full.points.len() / 2);
        assert_eq!(run.table.row_count(), 5);
        // ...and its records are the byte-identical odd records of the
        // full sweep, global index included.
        for (k, rec) in run.points.iter().enumerate() {
            let expect = &full.points[2 * k + 1];
            assert_eq!(rec.to_string(), expect.to_string());
            assert!(rec
                .to_string()
                .starts_with(&format!("{{\"index\":{}", 2 * k + 1)));
        }
    }

    #[test]
    fn bounds_experiment_reports_per_stream_bounds() {
        let mut args = quick();
        // One cheap slice of the grid: Virtual Clock, policing off and
        // shaping, one load — four points with the CBR/VBR class axis.
        args.schedulers = Some(vec![SchedulerKind::VirtualClock]);
        args.policing = Some(vec![PolicingMode::Off, PolicingMode::Shape]);
        args.loads = Some(vec![0.7]);
        let run = bounds(&args);
        assert_eq!(run.points.len(), 4);
        let doc = run.to_json(1.0).to_string();
        assert!(doc.contains("\"bounds_summary\""));
        assert!(doc.contains("\"tightness\""));
        // The CBR/Off point carries provable envelopes and the sweep
        // asserted none of them were violated; the records must agree.
        assert!(doc.contains("\"guaranteed\":true"));
        assert!(doc.contains("\"guaranteed_violations\":0"));
        assert!(!doc.contains("NaN"), "NaN leaked into JSON: {doc}");
    }

    #[test]
    fn json_document_is_nan_free() {
        let run = fig3(&quick());
        let doc = run.to_json(1.5).to_string();
        assert!(doc.starts_with("{\"experiment\":\"fig3\""));
        assert!(doc.contains("\"throughput\":{\"wall_secs\":1.5"));
        assert!(!doc.contains("NaN"), "NaN leaked into JSON: {doc}");
        assert!(!doc.contains("inf"), "inf leaked into JSON: {doc}");
    }
}
