//! The sweep harness must produce bit-identical results at any job count:
//! seeds derive from the task index alone, results are slotted by index,
//! and replica statistics merge in a fixed order. The telemetry layer must
//! obey the same contract — counters and JSONL traces are assembled in
//! task order, and a disabled (no-op) sink must not change any number.

use mediaworm_bench::sweep::SweepRunner;
use mediaworm_bench::{
    experiments, run_single_switch_seeded, run_single_switch_traced, Point, RunArgs,
};
use netsim::RunningStats;

fn args_with_jobs(jobs: usize) -> RunArgs {
    RunArgs {
        quick: true,
        seed: 42,
        warmup_secs: 0.01,
        measure_secs: 0.03,
        jobs: Some(jobs),
        ..RunArgs::default()
    }
}

fn test_points() -> [Point; 3] {
    [
        Point::new(0.4, 100.0, 0.0),
        Point::new(0.5, 80.0, 20.0),
        Point::new(0.6, 50.0, 50.0),
    ]
}

/// Merged per-point replica stats over a small real Point list.
fn merged_stats(jobs: usize) -> Vec<RunningStats> {
    let args = args_with_jobs(jobs);
    let points = test_points();
    SweepRunner::from_args(&args).run_stats(points.len(), 2, |p, _replica, seed| {
        let out = run_single_switch_seeded(&points[p], &args, seed);
        let mut s = RunningStats::new();
        s.push(out.jitter.mean_ms);
        s.push(out.jitter.std_ms);
        s.push(out.delivered_msgs as f64);
        s
    })
}

#[test]
fn jobs_1_and_jobs_8_merge_to_identical_stats() {
    let sequential = merged_stats(1);
    let parallel = merged_stats(8);
    assert_eq!(sequential.len(), parallel.len());
    for (s, p) in sequential.iter().zip(&parallel) {
        assert_eq!(s.count(), p.count());
        assert_eq!(
            s.mean().to_bits(),
            p.mean().to_bits(),
            "mean must match bit-for-bit"
        );
        assert_eq!(
            s.variance().to_bits(),
            p.variance().to_bits(),
            "variance must match bit-for-bit"
        );
        assert_eq!(s.min().to_bits(), p.min().to_bits());
        assert_eq!(s.max().to_bits(), p.max().to_bits());
    }
}

#[test]
fn fig5_table_is_identical_at_any_job_count() {
    let sequential = format!("{}", experiments::fig5(&args_with_jobs(1)).table);
    let parallel = format!("{}", experiments::fig5(&args_with_jobs(8)).table);
    assert_eq!(sequential, parallel);
}

#[test]
fn json_records_are_identical_at_any_job_count() {
    let sequential = experiments::fig3(&args_with_jobs(1));
    let parallel = experiments::fig3(&args_with_jobs(8));
    assert_eq!(sequential.sim_cycles, parallel.sim_cycles);
    assert_eq!(sequential.points.len(), parallel.points.len());
    for (s, p) in sequential.points.iter().zip(&parallel.points) {
        assert_eq!(s.to_string(), p.to_string(), "per-point JSON must match");
    }
}

#[test]
fn counters_are_identical_at_any_job_count() {
    let points = test_points();
    let collect = |jobs: usize| {
        let args = args_with_jobs(jobs);
        SweepRunner::from_args(&args).map(points.len(), |task| {
            run_single_switch_seeded(&points[task.index], &args, task.seed).counters
        })
    };
    assert_eq!(collect(1), collect(8));
}

#[test]
fn traces_are_bit_identical_at_any_job_count() {
    let points = test_points();
    let collect = |jobs: usize| {
        let args = args_with_jobs(jobs);
        let per_point = SweepRunner::from_args(&args).map(points.len(), |task| {
            run_single_switch_traced(&points[task.index], &args, task.seed).1
        });
        // Concatenated in task order, exactly as the experiments do.
        per_point.concat()
    };
    let sequential = collect(1);
    assert!(!sequential.is_empty(), "traced runs must produce events");
    assert_eq!(sequential, collect(8));
}

#[test]
fn tracing_does_not_change_results() {
    let args = args_with_jobs(2);
    for point in &test_points() {
        let plain = run_single_switch_seeded(point, &args, 7);
        let (traced, trace) = run_single_switch_traced(point, &args, 7);
        assert!(!trace.is_empty());
        assert_eq!(plain.delivered_msgs, traced.delivered_msgs);
        assert_eq!(plain.injected_msgs, traced.injected_msgs);
        assert_eq!(plain.counters, traced.counters);
        assert_eq!(
            plain.jitter.mean_ms.to_bits(),
            traced.jitter.mean_ms.to_bits(),
            "tracing must not perturb the simulation"
        );
    }
}
