//! The sweep harness must produce bit-identical results at any job count:
//! seeds derive from the task index alone, results are slotted by index,
//! and replica statistics merge in a fixed order.

use mediaworm_bench::sweep::SweepRunner;
use mediaworm_bench::{experiments, run_single_switch_seeded, Point, RunArgs};
use netsim::RunningStats;

fn args_with_jobs(jobs: usize) -> RunArgs {
    RunArgs {
        quick: true,
        seed: 42,
        warmup_secs: 0.01,
        measure_secs: 0.03,
        jobs: Some(jobs),
    }
}

/// Merged per-point replica stats over a small real Point list.
fn merged_stats(jobs: usize) -> Vec<RunningStats> {
    let args = args_with_jobs(jobs);
    let points = [
        Point::new(0.4, 100.0, 0.0),
        Point::new(0.5, 80.0, 20.0),
        Point::new(0.6, 50.0, 50.0),
    ];
    SweepRunner::from_args(&args).run_stats(points.len(), 2, |p, _replica, seed| {
        let out = run_single_switch_seeded(&points[p], &args, seed);
        let mut s = RunningStats::new();
        s.push(out.jitter.mean_ms);
        s.push(out.jitter.std_ms);
        s.push(out.delivered_msgs as f64);
        s
    })
}

#[test]
fn jobs_1_and_jobs_8_merge_to_identical_stats() {
    let sequential = merged_stats(1);
    let parallel = merged_stats(8);
    assert_eq!(sequential.len(), parallel.len());
    for (s, p) in sequential.iter().zip(&parallel) {
        assert_eq!(s.count(), p.count());
        assert_eq!(
            s.mean().to_bits(),
            p.mean().to_bits(),
            "mean must match bit-for-bit"
        );
        assert_eq!(
            s.variance().to_bits(),
            p.variance().to_bits(),
            "variance must match bit-for-bit"
        );
        assert_eq!(s.min().to_bits(), p.min().to_bits());
        assert_eq!(s.max().to_bits(), p.max().to_bits());
    }
}

#[test]
fn fig5_table_is_identical_at_any_job_count() {
    let sequential = format!("{}", experiments::fig5(&args_with_jobs(1)));
    let parallel = format!("{}", experiments::fig5(&args_with_jobs(8)));
    assert_eq!(sequential, parallel);
}
