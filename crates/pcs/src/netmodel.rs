//! The PCS single-switch data-path model.
//!
//! Once a circuit is established, its flits see three resources:
//!
//! 1. the **input link** from the source node to the switch (shared by
//!    the node's outgoing circuits, one flit per cycle, Virtual Clock
//!    multiplexing at the negotiated rates),
//! 2. the **switch pipe** — a fixed five-stage latency (no contention:
//!    the circuit was reserved end to end), and
//! 3. the **output link** from the switch to the destination node (shared
//!    by the circuits terminating there, Virtual Clock again).
//!
//! Queues are unbounded: circuit admission bounds the resident rate of
//! every link below its capacity, so queues stay small in any admitted
//! configuration — backpressure hardware would be dead logic here.

use std::collections::{HashMap, VecDeque};

use flitnet::{Flit, NodeId, VcId};
use mediaworm::counters::OCCUPANCY_SAMPLE_PERIOD;
use mediaworm::{MuxScheduler, SchedulerKind};
use metrics::DeliveryTracker;
use netsim::{Cycles, TimeBase};

use crate::config::PcsConfig;

/// Telemetry counters of a [`PcsNetwork`], mirroring the MediaWorm
/// router's counters where PCS has an analogous resource (PCS has no
/// credits, so there is no credit-stall counter).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PcsCounters {
    /// Flits transmitted by the link multiplexers (input + output side).
    pub flits_forwarded: u64,
    /// Link-mux conflicts: one per eligible circuit VC that lost its
    /// transmission cycle.
    pub mux_conflicts: u64,
    /// Occupancy sampling events taken.
    pub occupancy_samples: u64,
    /// Summed sampled queue occupancy (flits) over all links.
    pub occupancy_flits: u64,
}

impl PcsCounters {
    /// Mean sampled queue occupancy in flits, `None` without samples.
    pub fn mean_occupancy(&self) -> Option<f64> {
        (self.occupancy_samples > 0)
            .then(|| self.occupancy_flits as f64 / self.occupancy_samples as f64)
    }
}

/// One physical link shared by up to `vcs` circuits.
#[derive(Debug)]
struct LinkMux {
    queues: Vec<VecDeque<Flit>>,
    sched: MuxScheduler,
    forwarded: u64,
    conflicts: u64,
}

impl LinkMux {
    fn new(vcs: usize) -> LinkMux {
        LinkMux {
            queues: (0..vcs).map(|_| VecDeque::new()).collect(),
            sched: MuxScheduler::new(SchedulerKind::VirtualClock, vcs),
            forwarded: 0,
            conflicts: 0,
        }
    }

    fn enqueue(&mut self, now: Cycles, vc: usize, flit: Flit) {
        self.queues[vc].push_back(flit);
        self.sched.on_arrival(vc, now, &flit);
    }

    fn transmit(&mut self, scratch: &mut [bool]) -> Option<Flit> {
        let mut n_eligible = 0u64;
        for (v, e) in scratch.iter_mut().enumerate() {
            *e = !self.queues[v].is_empty();
            n_eligible += u64::from(*e);
        }
        if n_eligible == 0 {
            return None;
        }
        let v = self.sched.choose(scratch)?;
        let flit = self.queues[v].pop_front().expect("eligible VC has a flit");
        self.sched.on_service(v);
        self.forwarded += 1;
        self.conflicts += n_eligible - 1;
        Some(flit)
    }

    fn occupancy(&self) -> u64 {
        self.queues.iter().map(|q| q.len() as u64).sum()
    }

    fn is_empty(&self) -> bool {
        self.queues.iter().all(VecDeque::is_empty)
    }
}

/// The PCS switch with its attached links and circuit bookkeeping.
///
/// Circuit setup/teardown is driven by [`crate::sim`]; the network model
/// only moves flits of established circuits.
#[derive(Debug)]
pub struct PcsNetwork {
    pipe_latency: Cycles,
    input_links: Vec<LinkMux>,
    output_links: Vec<LinkMux>,
    /// Flits inside the switch pipe: (exit time, destination, flit).
    pipe: VecDeque<(Cycles, NodeId, Flit)>,
    /// VC occupancy per node, input side and output side.
    in_vc_used: Vec<Vec<bool>>,
    out_vc_used: Vec<Vec<bool>>,
    delivery: DeliveryTracker,
    frame_tails: Vec<HashMap<u32, u32>>,
    flits_in_flight: u64,
    delivered_msgs: u64,
    scratch: Vec<bool>,
    /// Occupancy sampling events taken so far.
    occupancy_samples: u64,
    /// Summed sampled queue occupancy across all links.
    occupancy_flits: u64,
    /// Whether each input/output link transmitted a data flit on the most
    /// recent cycle — a probe arriving then is blocked and nacked (§3.5:
    /// deterministic routing, no backtracking).
    in_busy: Vec<bool>,
    out_busy: Vec<bool>,
}

impl PcsNetwork {
    /// Builds the switch model for `cfg`.
    pub fn new(cfg: &PcsConfig, timebase: TimeBase) -> PcsNetwork {
        cfg.validate();
        let vcs = cfg.vcs_per_link as usize;
        PcsNetwork {
            pipe_latency: Cycles(u64::from(cfg.pipe_cycles)),
            input_links: (0..cfg.nodes).map(|_| LinkMux::new(vcs)).collect(),
            output_links: (0..cfg.nodes).map(|_| LinkMux::new(vcs)).collect(),
            pipe: VecDeque::new(),
            in_vc_used: vec![vec![false; vcs]; cfg.nodes],
            out_vc_used: vec![vec![false; vcs]; cfg.nodes],
            delivery: DeliveryTracker::new(timebase),
            frame_tails: Vec::new(),
            flits_in_flight: 0,
            delivered_msgs: 0,
            scratch: vec![false; vcs],
            occupancy_samples: 0,
            occupancy_flits: 0,
            in_busy: vec![false; cfg.nodes],
            out_busy: vec![false; cfg.nodes],
        }
    }

    /// Whether a probe `src → dest` would be blocked by in-flight data
    /// this instant. A blocked probe cannot progress and, without
    /// backtracking, is nacked (§3.5).
    pub fn probe_blocked(&self, src: NodeId, dest: NodeId) -> bool {
        self.in_busy[src.index()] || self.out_busy[dest.index()]
    }

    /// Attempts to reserve a circuit `src → dest`: one free VC on the
    /// source's input link and one on the destination's output link
    /// (deterministic routing, no backtracking — failure means the probe
    /// is nacked and the connection dropped). The caller should first
    /// consult [`PcsNetwork::probe_blocked`]; this method only checks VC
    /// availability.
    ///
    /// Returns the allocated `(input_vc, output_vc)` on success.
    pub fn try_establish(&mut self, src: NodeId, dest: NodeId) -> Option<(VcId, VcId)> {
        let in_vc = self.in_vc_used[src.index()].iter().position(|u| !u)?;
        let out_vc = self.out_vc_used[dest.index()].iter().position(|u| !u)?;
        self.in_vc_used[src.index()][in_vc] = true;
        self.out_vc_used[dest.index()][out_vc] = true;
        Some((VcId(in_vc as u32), VcId(out_vc as u32)))
    }

    /// Releases a circuit's VCs (connection teardown).
    ///
    /// # Panics
    ///
    /// Panics if either VC was not allocated.
    pub fn release(&mut self, src: NodeId, dest: NodeId, in_vc: VcId, out_vc: VcId) {
        let i = &mut self.in_vc_used[src.index()][in_vc.index()];
        assert!(*i, "input VC was not allocated");
        *i = false;
        let o = &mut self.out_vc_used[dest.index()][out_vc.index()];
        assert!(*o, "output VC was not allocated");
        *o = false;
    }

    /// Injects one flit of an established circuit at the source node. The
    /// flit's `vc` field selects the input-link VC; `out_vc` the
    /// output-link VC at the destination.
    pub fn inject(&mut self, now: Cycles, src: NodeId, flit: Flit) {
        self.input_links[src.index()].enqueue(now, flit.vc.index(), flit);
        self.flits_in_flight += 1;
    }

    /// Advances the model by one cycle.
    pub fn step(&mut self, now: Cycles) {
        if now.get().is_multiple_of(OCCUPANCY_SAMPLE_PERIOD) {
            self.occupancy_samples += 1;
            self.occupancy_flits += self
                .input_links
                .iter()
                .chain(&self.output_links)
                .map(LinkMux::occupancy)
                .sum::<u64>();
        }
        // Pipe exits → output link queues.
        while self.pipe.front().is_some_and(|(at, _, _)| *at <= now) {
            let (_, dest, flit) = self.pipe.pop_front().expect("peeked");
            self.output_links[dest.index()].enqueue(now, flit.out_vc.index(), flit);
        }
        // Input links → switch pipe.
        for node in 0..self.input_links.len() {
            let sent = self.input_links[node].transmit(&mut self.scratch);
            self.in_busy[node] = sent.is_some();
            if let Some(flit) = sent {
                self.pipe
                    .push_back((now + self.pipe_latency, flit.dest, flit));
            }
        }
        // Output links → destination sinks.
        for node in 0..self.output_links.len() {
            let sent = self.output_links[node].transmit(&mut self.scratch);
            self.out_busy[node] = sent.is_some();
            if let Some(flit) = sent {
                self.sink(now, flit);
            }
        }
    }

    fn sink(&mut self, now: Cycles, flit: Flit) {
        self.flits_in_flight -= 1;
        if !flit.kind.is_tail() {
            return;
        }
        self.delivered_msgs += 1;
        let s = flit.stream.index();
        if s >= self.frame_tails.len() {
            self.frame_tails.resize_with(s + 1, HashMap::new);
        }
        let tails = self.frame_tails[s].entry(flit.frame.get()).or_insert(0);
        *tails += 1;
        if *tails == flit.msgs_in_frame {
            self.frame_tails[s].remove(&flit.frame.get());
            self.delivery.record_frame(flit.stream, now);
        }
    }

    /// Flits injected but not yet delivered.
    pub fn flits_in_flight(&self) -> u64 {
        self.flits_in_flight
    }

    /// Whether every queue and the pipe are empty.
    pub fn is_idle(&self) -> bool {
        self.flits_in_flight == 0
            && self.pipe.is_empty()
            && self.input_links.iter().all(LinkMux::is_empty)
            && self.output_links.iter().all(LinkMux::is_empty)
    }

    /// Messages fully delivered.
    pub fn delivered_msgs(&self) -> u64 {
        self.delivered_msgs
    }

    /// The frame-delivery (jitter) tracker.
    pub fn delivery(&self) -> &DeliveryTracker {
        &self.delivery
    }

    /// Discards measurements before `at`.
    pub fn set_warmup_end(&mut self, at: Cycles) {
        self.delivery.set_warmup_end(at);
    }

    /// Telemetry counter totals summed over every link multiplexer.
    pub fn counters(&self) -> PcsCounters {
        let mut c = PcsCounters {
            occupancy_samples: self.occupancy_samples,
            occupancy_flits: self.occupancy_flits,
            ..PcsCounters::default()
        };
        for l in self.input_links.iter().chain(&self.output_links) {
            c.flits_forwarded += l.forwarded;
            c.mux_conflicts += l.conflicts;
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flitnet::{FlitKind, FrameId, MsgId, StreamId, TrafficClass};

    fn timebase() -> TimeBase {
        TimeBase::from_link(100e6, 32)
    }

    fn network() -> PcsNetwork {
        PcsNetwork::new(&PcsConfig::paper_default(), timebase())
    }

    fn msg(stream: u32, msg_id: u64, dest: u32, vc_in: u32, vc_out: u32, len: u32) -> Vec<Flit> {
        Flit::flitify(Flit {
            kind: FlitKind::Head,
            stream: StreamId(stream),
            msg: MsgId(msg_id),
            frame: FrameId(0),
            seq_in_msg: 0,
            msg_len: len,
            msg_seq_in_frame: 0,
            msgs_in_frame: 1,
            dest: NodeId(dest),
            vc: VcId(vc_in),
            out_vc: VcId(vc_out),
            vtick: 25.0,
            class: TrafficClass::Vbr,
            created_at: Cycles(0),
        })
    }

    #[test]
    fn establish_until_vcs_exhausted() {
        let mut net = network();
        // 24 circuits into the same destination fill its output link.
        for _ in 0..24 {
            assert!(net.try_establish(NodeId(0), NodeId(1)).is_some());
        }
        assert!(net.try_establish(NodeId(0), NodeId(1)).is_none());
        // A different destination still works? No: node 0's INPUT VCs are
        // also exhausted (24 allocated).
        assert!(net.try_establish(NodeId(0), NodeId(2)).is_none());
        // But another source can still reach node 2.
        assert!(net.try_establish(NodeId(3), NodeId(2)).is_some());
    }

    #[test]
    fn release_returns_capacity() {
        let mut net = network();
        let (i, o) = net.try_establish(NodeId(0), NodeId(1)).unwrap();
        net.release(NodeId(0), NodeId(1), i, o);
        assert!(net.try_establish(NodeId(0), NodeId(1)).is_some());
    }

    #[test]
    fn flits_flow_end_to_end() {
        let mut net = network();
        let (i, o) = net.try_establish(NodeId(0), NodeId(1)).unwrap();
        for f in msg(0, 1, 1, i.get(), o.get(), 20) {
            net.inject(Cycles(0), NodeId(0), f);
        }
        for t in 0..100u64 {
            net.step(Cycles(t));
        }
        assert!(net.is_idle());
        assert_eq!(net.delivered_msgs(), 1);
        assert_eq!(net.delivery().summary().frames, 1);
    }

    #[test]
    fn two_circuits_share_a_link_fairly() {
        let mut net = network();
        let (i1, o1) = net.try_establish(NodeId(0), NodeId(1)).unwrap();
        let (i2, o2) = net.try_establish(NodeId(0), NodeId(1)).unwrap();
        for f in msg(0, 1, 1, i1.get(), o1.get(), 50) {
            net.inject(Cycles(0), NodeId(0), f);
        }
        for f in msg(1, 2, 1, i2.get(), o2.get(), 50) {
            net.inject(Cycles(0), NodeId(0), f);
        }
        // Both circuits have equal Vticks → their delivery completes
        // within a couple of cycles of each other.
        let mut done = Vec::new();
        for t in 0..400u64 {
            net.step(Cycles(t));
            if net.delivered_msgs() as usize > done.len() {
                done.push(t);
            }
        }
        assert_eq!(done.len(), 2);
        assert!(done[1] - done[0] <= 3, "finish times {done:?}");
    }

    #[test]
    fn counters_track_forwarding_and_conflicts() {
        let mut net = network();
        let (i1, o1) = net.try_establish(NodeId(0), NodeId(1)).unwrap();
        let (i2, o2) = net.try_establish(NodeId(0), NodeId(1)).unwrap();
        for f in msg(0, 1, 1, i1.get(), o1.get(), 50) {
            net.inject(Cycles(0), NodeId(0), f);
        }
        for f in msg(1, 2, 1, i2.get(), o2.get(), 50) {
            net.inject(Cycles(0), NodeId(0), f);
        }
        for t in 0..400u64 {
            net.step(Cycles(t));
        }
        let c = net.counters();
        // Every flit crosses one input link and one output link.
        assert_eq!(c.flits_forwarded, 200);
        // Two circuits competed on the shared input link the whole time
        // (the output link drains as fast as it fills, so it rarely has
        // two backlogged VCs at once).
        assert!(c.mux_conflicts >= 90, "conflicts {}", c.mux_conflicts);
        // Cycle 0 is a sampling cycle and the queues held 100 flits then.
        assert!(c.occupancy_samples >= 1);
        assert_eq!(c.mean_occupancy().map(|m| m > 0.0), Some(true));
    }

    #[test]
    fn idle_network_counters_are_empty() {
        let net = network();
        let c = net.counters();
        assert_eq!(c.flits_forwarded, 0);
        assert_eq!(c.mux_conflicts, 0);
        assert_eq!(c.mean_occupancy(), None);
    }

    #[test]
    fn pipe_latency_is_applied() {
        let mut net = network();
        let (i, o) = net.try_establish(NodeId(2), NodeId(5)).unwrap();
        let flits = msg(0, 1, 5, i.get(), o.get(), 1);
        net.inject(Cycles(0), NodeId(2), flits[0]);
        let mut delivered_at = None;
        for t in 0..50u64 {
            net.step(Cycles(t));
            if net.delivered_msgs() == 1 && delivered_at.is_none() {
                delivered_at = Some(t);
            }
        }
        // input link (cycle 0) + 5-cycle pipe + output link ≥ 5.
        assert!(delivered_at.expect("delivered") >= 5);
    }
}
