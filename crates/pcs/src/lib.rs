//! Pipelined circuit switching (PCS) baseline for the MediaWorm study.
//!
//! PCS (Gaughan & Yalamanchili) is the connection-oriented alternative the
//! paper compares MediaWorm against (§3.5, §5.6, Fig. 8, Table 3):
//!
//! * A stream's first flit (the *probe*) must reserve a complete path —
//!   one dedicated virtual channel per link — before any data moves. With
//!   deterministic routing and no backtracking, a probe that finds no free
//!   VC is **dropped** (negative acknowledgment) and the connection
//!   attempt fails.
//! * Once established, the stream's flits are pipelined along the reserved
//!   circuit; the link multiplexers share physical bandwidth among the
//!   resident connections with the Virtual Clock discipline (bandwidth was
//!   negotiated at setup).
//!
//! Because a connection needs a whole VC per link, supporting a loaded
//! 100 Mbps link of 4 Mbps streams takes 24–25 VCs (the paper's Fig. 8
//! configuration), and destinations whose offered streams exceed the VC
//! count can never accept them all — which is exactly how Table 3's large
//! drop counts arise.
//!
//! The model here is the single 8-port switch the paper evaluates:
//! contention exists at the source (input) link, the switch pipe adds the
//! five-stage latency, and the destination (output) link multiplexes the
//! circuits terminating at that node.
//!
//! # Example
//!
//! ```
//! use pcs_router::{PcsConfig, sim};
//!
//! let cfg = PcsConfig::paper_default();
//! let out = sim::run(0.4, &cfg, 0.05, 0.1, 42);
//! assert!(out.established > 0);
//! assert_eq!(out.attempts, out.established + out.dropped);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod netmodel;
pub mod sim;

pub use config::PcsConfig;
pub use netmodel::{PcsCounters, PcsNetwork};
pub use sim::{run, PcsOutcome, PcsStall, PCS_STALL_CYCLES};
