//! PCS experiment driver: connection establishment, retries and jitter
//! measurement.
//!
//! The offered workload is the paper's: `round(load · link / 4 Mbps)` VBR
//! streams per node, destinations uniform. Each stream places its first
//! connection attempt at a random instant inside the setup window; a
//! dropped attempt retries after an exponential backoff (the paper counts
//! attempts and drops but does not specify the retry policy — see
//! DESIGN.md). Connections, once established, last for the whole run
//! ("connections may be dropped only at stream set-up", §4.2.1).

use flitnet::NodeId;
use metrics::JitterSummary;
use netsim::dist::{Distribution, Exponential};
use netsim::{Calendar, Cycles, SimRng};
use traffic::{RealTimeStream, StreamClass};

use crate::config::PcsConfig;
use crate::netmodel::{PcsCounters, PcsNetwork};

/// Result of one PCS run.
#[derive(Debug, Clone, Copy)]
pub struct PcsOutcome {
    /// Frame-delivery jitter of the established streams.
    pub jitter: JitterSummary,
    /// Connection attempts (first tries + retries).
    pub attempts: u64,
    /// Connections established.
    pub established: u64,
    /// Attempts that were nacked (`attempts − established`).
    pub dropped: u64,
    /// Streams offered (distinct connections sought).
    pub offered: u64,
    /// Simulated cycles the run covered (warm-up + measurement).
    pub cycles: u64,
    /// Link-multiplexer telemetry counters over the whole run.
    pub counters: PcsCounters,
    /// Progress-watchdog report, set if the run was cut short because
    /// flits were in flight but nothing moved for [`PCS_STALL_CYCLES`].
    pub stall: Option<PcsStall>,
}

/// Cycles of zero forwarding progress (with flits in flight) after which
/// the PCS driver declares the model stalled and stops the run.
///
/// Pipelined circuits cannot block each other once established, so any
/// trip is a model bug — this is a safety net mirroring the wormhole
/// network's watchdog, not an expected outcome.
pub const PCS_STALL_CYCLES: u64 = 100_000;

/// A stall detected by the PCS progress watchdog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PcsStall {
    /// Cycle at which the stall was declared.
    pub cycle: u64,
    /// Cycles since the last forwarded flit.
    pub stalled_for: u64,
    /// Flits stuck in flight.
    pub flits_in_flight: u64,
}

/// A stream waiting to connect or connected.
#[derive(Debug)]
enum StreamState {
    Waiting,
    Connected(Box<RealTimeStream>),
}

#[derive(Debug)]
enum Event {
    /// Stream `i` tries to establish its circuit.
    Attempt(usize),
    /// Stream `i` injects its staged message.
    Inject(usize),
}

/// Runs the PCS experiment at the given input load.
///
/// # Panics
///
/// Panics if `load` is not in `(0, 1.2]` or a window is not positive.
pub fn run(
    load: f64,
    cfg: &PcsConfig,
    warmup_secs: f64,
    measure_secs: f64,
    seed: u64,
) -> PcsOutcome {
    assert!(load > 0.0 && load <= 1.2, "load must be in (0, 1.2]");
    assert!(
        warmup_secs > 0.0 && measure_secs > 0.0,
        "windows must be positive"
    );
    cfg.validate();
    let tb = cfg.spec.timebase();
    let mut rng = SimRng::seed_from(seed);
    let mut net = PcsNetwork::new(cfg, tb);
    let warmup = tb.cycles_from_secs(warmup_secs);
    let end = tb.cycles_from_secs(warmup_secs + measure_secs);
    net.set_warmup_end(warmup);

    // Offered streams.
    let per_node = (load * cfg.spec.link_bps / cfg.spec.stream_bps).round() as usize;
    let setup_window = tb.cycles_from_ms(cfg.setup_window_ms).get().max(1);
    let backoff = Exponential::new(tb.cycles_from_ms(cfg.retry_backoff_ms).as_f64().max(1.0));

    let mut calendar: Calendar<Event> = Calendar::new();
    let mut streams: Vec<(NodeId, NodeId, StreamState)> = Vec::new();
    let mut staged: Vec<Option<traffic::ScheduledMessage>> = Vec::new();
    for node in 0..cfg.nodes {
        for _ in 0..per_node {
            let dest = NodeId(rng.index_excluding(cfg.nodes, node) as u32);
            let i = streams.len();
            streams.push((NodeId(node as u32), dest, StreamState::Waiting));
            staged.push(None);
            calendar.schedule(Cycles(rng.range_u64(0, setup_window)), Event::Attempt(i));
        }
    }
    let offered = streams.len() as u64;

    let mut attempts = 0u64;
    let mut established = 0u64;
    let mut next_msg_id = 0u64;
    let mut next_stream_id = 0u32;
    // Probe + ack round trip before data may flow.
    let rtt = Cycles(u64::from(cfg.pipe_cycles) * 2 + 2);

    let mut stall = None;
    let mut last_forwarded = 0u64;
    let mut last_progress_at = Cycles::ZERO;
    let mut now = Cycles::ZERO;
    while now < end {
        while let Some((_, ev)) = calendar.pop_due(now) {
            match ev {
                Event::Attempt(i) => {
                    attempts += 1;
                    let (src, dest, _) = streams[i];
                    let reserved = if net.probe_blocked(src, dest) {
                        // The probe met in-flight data on its path and was
                        // nacked.
                        None
                    } else {
                        net.try_establish(src, dest)
                    };
                    if let Some((in_vc, out_vc)) = reserved {
                        established += 1;
                        let sid = flitnet::StreamId(next_stream_id);
                        next_stream_id += 1;
                        let mut s = RealTimeStream::new(
                            &cfg.spec,
                            StreamClass::Vbr,
                            sid,
                            src,
                            dest,
                            in_vc,
                            out_vc,
                            now + rtt,
                        );
                        let msg = s.next_message(&mut rng, &mut next_msg_id);
                        calendar.schedule(msg.at, Event::Inject(i));
                        staged[i] = Some(msg);
                        streams[i].2 = StreamState::Connected(Box::new(s));
                    } else {
                        // Nacked: retry after a randomized backoff.
                        let delay = backoff.sample(&mut rng).max(1.0) as u64;
                        calendar.schedule(now + Cycles(delay), Event::Attempt(i));
                    }
                }
                Event::Inject(i) => {
                    let msg = staged[i].take().expect("staged message");
                    for flit in &msg.flits {
                        net.inject(now, msg.src, *flit);
                    }
                    let StreamState::Connected(s) = &mut streams[i].2 else {
                        unreachable!("inject for an unconnected stream");
                    };
                    let next = s.next_message(&mut rng, &mut next_msg_id);
                    calendar.schedule(next.at, Event::Inject(i));
                    staged[i] = Some(next);
                }
            }
        }
        net.step(now);
        if net.is_idle() {
            last_progress_at = now;
            let next = calendar.next_at().unwrap_or(end);
            now = next.max(now + Cycles(1));
        } else {
            let forwarded = net.counters().flits_forwarded;
            if forwarded != last_forwarded {
                last_forwarded = forwarded;
                last_progress_at = now;
            } else if (now - last_progress_at).get() >= PCS_STALL_CYCLES {
                stall = Some(PcsStall {
                    cycle: now.get(),
                    stalled_for: (now - last_progress_at).get(),
                    flits_in_flight: net.flits_in_flight(),
                });
                break;
            }
            now += Cycles(1);
        }
    }

    PcsOutcome {
        jitter: net.delivery().summary(),
        attempts,
        established,
        dropped: attempts - established,
        offered,
        cycles: end.get(),
        counters: net.counters(),
        stall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_load_eventually_establishes_everything() {
        let out = run(0.4, &PcsConfig::paper_default(), 0.05, 0.3, 1);
        // 0.4 × 25 = 10 streams per node, well under 24 VCs both sides:
        // every stream connects eventually, but probes that meet in-flight
        // data are nacked first (Table 3 shows drops at every load).
        assert_eq!(out.offered, 8 * 10);
        assert_eq!(out.established, out.offered);
        assert_eq!(out.attempts, out.established + out.dropped);
    }

    #[test]
    fn low_load_is_jitter_free() {
        let out = run(0.4, &PcsConfig::paper_default(), 0.08, 0.2, 2);
        assert!(out.jitter.intervals > 50);
        assert!(
            out.jitter.is_jitter_free(33.0, 1.0),
            "d={} σ={}",
            out.jitter.mean_ms,
            out.jitter.std_ms
        );
    }

    #[test]
    fn overload_drops_many_attempts() {
        // 0.9 × 25 ≈ 23 streams per node offered; random destinations
        // oversubscribe some output links beyond their 24 VCs, so those
        // streams retry forever: attempts ≫ established (Table 3's shape).
        let out = run(0.9, &PcsConfig::paper_default(), 0.05, 0.3, 3);
        assert!(out.established < out.offered);
        assert!(
            out.dropped > out.offered,
            "dropped {} vs offered {}",
            out.dropped,
            out.offered
        );
    }

    #[test]
    fn established_never_exceeds_vc_capacity() {
        let cfg = PcsConfig::paper_default();
        let out = run(1.0, &cfg, 0.05, 0.2, 4);
        assert!(out.established <= (cfg.nodes as u64) * u64::from(cfg.vcs_per_link));
    }

    #[test]
    fn accounting_is_consistent() {
        let out = run(0.7, &PcsConfig::paper_default(), 0.05, 0.1, 5);
        assert_eq!(out.attempts, out.established + out.dropped);
        assert!(out.established <= out.offered);
    }

    #[test]
    fn outcome_carries_counters_and_cycles() {
        let out = run(0.5, &PcsConfig::paper_default(), 0.05, 0.1, 6);
        assert!(out.cycles > 0);
        assert!(out.counters.flits_forwarded > 0);
        assert!(out.counters.mean_occupancy().is_some());
    }

    #[test]
    fn watchdog_stays_quiet_across_the_load_range() {
        // Established circuits are pipelined and cannot block each other;
        // a stall would be a model bug, and even past saturation the
        // watchdog must stay quiet.
        for (load, seed) in [(0.4, 7), (0.9, 8), (1.1, 9)] {
            let out = run(load, &PcsConfig::paper_default(), 0.05, 0.1, seed);
            assert_eq!(out.stall, None, "load {load} stalled");
        }
    }
}
