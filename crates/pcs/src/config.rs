//! PCS simulation configuration.

use traffic::WorkloadSpec;

/// Configuration of the PCS single-switch experiment.
///
/// # Example
///
/// ```
/// use pcs_router::PcsConfig;
///
/// let cfg = PcsConfig::paper_default();
/// assert_eq!(cfg.vcs_per_link, 24);
/// assert_eq!(cfg.spec.link_bps, 100e6);
/// ```
#[derive(Debug, Clone)]
pub struct PcsConfig {
    /// Number of endpoints (ports of the switch).
    pub nodes: usize,
    /// Virtual channels per physical link — one per resident connection
    /// (the paper uses 24 on its 100 Mbps links).
    pub vcs_per_link: u32,
    /// Switch pipeline latency in cycles for data flits.
    pub pipe_cycles: u32,
    /// Workload parameters (the PCS comparison runs at 100 Mbps).
    pub spec: WorkloadSpec,
    /// Window over which offered streams place their first connection
    /// attempt, in milliseconds.
    pub setup_window_ms: f64,
    /// Mean exponential backoff before a dropped attempt retries, in
    /// milliseconds.
    pub retry_backoff_ms: f64,
}

impl PcsConfig {
    /// The paper's Fig. 8 / Table 3 configuration: 8×8 switch, 100 Mbps
    /// links, 24 VCs per link.
    pub fn paper_default() -> PcsConfig {
        PcsConfig {
            nodes: 8,
            vcs_per_link: 24,
            pipe_cycles: 5,
            spec: WorkloadSpec::paper_100mbps(),
            setup_window_ms: 60.0,
            retry_backoff_ms: 15.0,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical parameters.
    pub fn validate(&self) {
        assert!(self.nodes >= 2, "need at least two endpoints");
        assert!(self.vcs_per_link > 0, "need at least one VC per link");
        assert!(self.pipe_cycles > 0, "the switch pipe has latency");
        assert!(self.setup_window_ms > 0.0, "setup window must be positive");
        assert!(
            self.retry_backoff_ms > 0.0,
            "retry backoff must be positive"
        );
        self.spec.validate();
    }
}

impl Default for PcsConfig {
    fn default() -> PcsConfig {
        PcsConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_valid() {
        let cfg = PcsConfig::paper_default();
        cfg.validate();
        assert_eq!(cfg.nodes, 8);
        // 24 VCs ≈ the 25 stream capacity of a 100 Mbps link.
        assert_eq!(cfg.spec.streams_per_link(), 25);
    }

    #[test]
    #[should_panic(expected = "at least one VC")]
    fn zero_vcs_rejected() {
        let mut cfg = PcsConfig::paper_default();
        cfg.vcs_per_link = 0;
        cfg.validate();
    }
}
