//! Wormhole-network substrate types shared by the MediaWorm and PCS
//! simulators.
//!
//! The MediaWorm paper studies a flit-level wormhole router; this crate
//! provides the vocabulary that every router model needs:
//!
//! * [`ids`] — strongly-typed identifiers ([`NodeId`], [`PortId`], [`VcId`],
//!   [`StreamId`], [`MsgId`]).
//! * [`TrafficClass`] — the paper's three ATM-style classes (CBR, VBR,
//!   best-effort).
//! * [`Flit`] — the unit of flow control; a head flit carries routing and
//!   bandwidth (`Vtick`) information, middle/tail flits follow the worm.
//! * [`VcBuffer`] — a bounded per-virtual-channel flit FIFO.
//! * [`Link`] — a one-flit-per-cycle pipelined physical channel, plus the
//!   matching [`CreditLink`] for upstream credit returns.
//! * [`VcPartition`] — the paper's static x:y split of the virtual channels
//!   between real-time and best-effort traffic (§4.2.3).

#![warn(missing_docs)]

pub mod class;
pub mod flit;
pub mod ids;
pub mod link;
pub mod partition;
pub mod vcbuf;

pub use class::TrafficClass;
pub use flit::{worm_order_violation, Flit, FlitKind, BEST_EFFORT_VTICK};
pub use ids::{FrameId, MsgId, NodeId, PortId, RouterId, StreamId, VcId};
pub use link::{CreditLink, Link};
pub use partition::{VcPartition, VcSel};
pub use vcbuf::VcBuffer;
