//! The paper's three ATM-style traffic classes.

use std::fmt;

/// Traffic class of a stream or message, following the ATM Forum taxonomy
/// the paper adopts (§1): CBR and VBR need QoS guarantees, ABR (best-effort)
/// does not.
///
/// # Example
///
/// ```
/// use flitnet::TrafficClass;
///
/// assert!(TrafficClass::Vbr.is_real_time());
/// assert!(TrafficClass::Cbr.is_real_time());
/// assert!(!TrafficClass::BestEffort.is_real_time());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TrafficClass {
    /// Constant bit rate — uncompressed audio/video; fixed frame size.
    Cbr,
    /// Variable bit rate — compressed (MPEG-2) video; normally-distributed
    /// frame size in the paper's workload.
    Vbr,
    /// Best-effort (ABR) — everything without real-time requirements.
    BestEffort,
}

impl TrafficClass {
    /// Whether this class carries real-time (QoS-requiring) traffic.
    pub fn is_real_time(self) -> bool {
        matches!(self, TrafficClass::Cbr | TrafficClass::Vbr)
    }

    /// All classes, for iteration in tests and reports.
    pub const ALL: [TrafficClass; 3] = [
        TrafficClass::Cbr,
        TrafficClass::Vbr,
        TrafficClass::BestEffort,
    ];
}

impl fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TrafficClass::Cbr => "CBR",
            TrafficClass::Vbr => "VBR",
            TrafficClass::BestEffort => "best-effort",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_time_split() {
        assert!(TrafficClass::Cbr.is_real_time());
        assert!(TrafficClass::Vbr.is_real_time());
        assert!(!TrafficClass::BestEffort.is_real_time());
    }

    #[test]
    fn all_lists_each_class_once() {
        assert_eq!(TrafficClass::ALL.len(), 3);
        let mut seen = std::collections::HashSet::new();
        for c in TrafficClass::ALL {
            assert!(seen.insert(c));
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(TrafficClass::Cbr.to_string(), "CBR");
        assert_eq!(TrafficClass::Vbr.to_string(), "VBR");
        assert_eq!(TrafficClass::BestEffort.to_string(), "best-effort");
    }
}
