//! Physical channels and credit return paths.
//!
//! A [`Link`] moves at most one flit per cycle with a fixed pipeline
//! latency; the matching [`CreditLink`] carries per-VC buffer credits back
//! upstream with the same latency model. Both are plain delay lines — the
//! *decision* of what to send is the router's job.
//!
//! Both channels store their in-flight payloads in a fixed-capacity ring
//! sized at construction from the latency: a flit channel holds at most
//! one entry per cycle of latency (the bandwidth gate enforces one send
//! per cycle, and due flits drain before new sends within a cycle), and a
//! credit channel holds at most `per_cycle_max` entries per cycle of
//! latency (the crossbar frees at most that many slots per port per
//! cycle). The ring kills the `VecDeque` heap traffic in `deliver` and
//! makes [`Link::earliest_arrival`] a plain head load — the key input to
//! the quiescence-horizon computation in `core::net`.

use netsim::snap::{SnapError, SnapReader, SnapWriter};
use netsim::Cycles;

use crate::flit::Flit;
use crate::ids::VcId;

/// Fixed-capacity FIFO of `(arrival cycle, payload)` pairs.
///
/// Entries are pushed in send order; because both channel types delay by a
/// constant latency, arrival cycles are monotonically non-decreasing and
/// the head is always the earliest arrival.
#[derive(Debug, Clone)]
struct Ring<T> {
    slots: Box<[Option<(Cycles, T)>]>,
    head: usize,
    len: usize,
}

impl<T> Ring<T> {
    fn with_capacity(cap: usize) -> Ring<T> {
        assert!(cap > 0, "ring capacity must be at least one slot");
        Ring {
            slots: (0..cap).map(|_| None).collect(),
            head: 0,
            len: 0,
        }
    }

    fn capacity(&self) -> usize {
        self.slots.len()
    }

    fn len(&self) -> usize {
        self.len
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn push_back(&mut self, at: Cycles, item: T) {
        assert!(
            self.len < self.slots.len(),
            "link ring over capacity: flow control admitted more than \
             latency-bounded traffic"
        );
        let tail = (self.head + self.len) % self.slots.len();
        self.slots[tail] = Some((at, item));
        self.len += 1;
    }

    fn front(&self) -> Option<&(Cycles, T)> {
        if self.len == 0 {
            None
        } else {
            self.slots[self.head].as_ref()
        }
    }

    fn pop_front(&mut self) -> Option<(Cycles, T)> {
        if self.len == 0 {
            return None;
        }
        let entry = self.slots[self.head].take();
        self.head = (self.head + 1) % self.slots.len();
        self.len -= 1;
        entry
    }

    /// Iterates head-to-tail (send order).
    fn iter(&self) -> impl Iterator<Item = &(Cycles, T)> {
        (0..self.len).map(move |i| {
            self.slots[(self.head + i) % self.slots.len()]
                .as_ref()
                .expect("occupied ring slot")
        })
    }
}

/// A one-flit-per-cycle pipelined physical channel.
///
/// # Example
///
/// ```
/// use flitnet::{Flit, FlitKind, Link, TrafficClass};
/// use flitnet::{MsgId, NodeId, StreamId, FrameId, VcId};
/// use netsim::Cycles;
///
/// let mut link = Link::new(Cycles(1));
/// # let f = Flit { kind: FlitKind::HeadTail, stream: StreamId(0), msg: MsgId(0),
/// #   frame: FrameId(0), seq_in_msg: 0, msg_len: 1, msg_seq_in_frame: 0,
/// #   msgs_in_frame: 1, dest: NodeId(0), vc: VcId(0), out_vc: VcId(0), vtick: 1.0,
/// #   class: TrafficClass::Vbr, created_at: Cycles(0) };
/// assert!(link.can_send(Cycles(5)));
/// link.send(Cycles(5), f);
/// assert!(!link.can_send(Cycles(5))); // one flit per cycle
/// assert!(link.recv(Cycles(5)).is_none()); // still in flight
/// assert!(link.recv(Cycles(6)).is_some()); // arrives after latency
/// ```
#[derive(Debug, Clone)]
pub struct Link {
    latency: Cycles,
    in_flight: Ring<Flit>,
    last_send: Option<Cycles>,
}

impl Link {
    /// Creates a link with the given pipeline latency (≥ 1 cycle).
    ///
    /// The in-flight ring holds `latency` slots: the one-send-per-cycle
    /// bandwidth gate bounds occupancy by the latency window.
    ///
    /// # Panics
    ///
    /// Panics if `latency` is zero: a zero-latency link would let a flit
    /// traverse several routers in one cycle.
    pub fn new(latency: Cycles) -> Link {
        assert!(
            latency > Cycles::ZERO,
            "link latency must be at least one cycle"
        );
        Link {
            latency,
            in_flight: Ring::with_capacity(latency.0 as usize),
            last_send: None,
        }
    }

    /// The link's pipeline latency.
    pub fn latency(&self) -> Cycles {
        self.latency
    }

    /// Whether the link can accept a flit this cycle (bandwidth check only;
    /// the sender must separately hold a downstream credit).
    pub fn can_send(&self, now: Cycles) -> bool {
        self.last_send != Some(now)
    }

    /// Puts a flit on the wire at cycle `now`.
    ///
    /// # Panics
    ///
    /// Panics if a flit was already sent this cycle (one flit per cycle).
    pub fn send(&mut self, now: Cycles, flit: Flit) {
        assert!(self.can_send(now), "link bandwidth exceeded at {now}");
        self.last_send = Some(now);
        self.in_flight.push_back(now + self.latency, flit);
    }

    /// Takes the flit arriving at cycle `now`, if any.
    pub fn recv(&mut self, now: Cycles) -> Option<Flit> {
        if self.in_flight.front().is_some_and(|(at, _)| *at <= now) {
            Some(self.in_flight.pop_front().expect("peeked entry").1)
        } else {
            None
        }
    }

    /// Number of flits currently on the wire.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Whether any flit is on the wire (used for idle detection).
    pub fn is_idle(&self) -> bool {
        self.in_flight.is_empty()
    }

    /// The arrival cycle of the earliest in-flight flit, if any.
    ///
    /// Entries arrive in send order and the delay is constant, so the
    /// head of the ring is always the minimum — this is an O(1) load,
    /// cheap enough to scan across every active link when computing the
    /// quiescence horizon.
    pub fn earliest_arrival(&self) -> Option<Cycles> {
        self.in_flight.front().map(|&(at, _)| at)
    }

    /// Iterates over the flits currently on the wire, in send order.
    ///
    /// Read-only visibility for the audit layer's conservation checks;
    /// the router/NI hot path never calls this.
    pub fn iter_in_flight(&self) -> impl Iterator<Item = &Flit> {
        self.in_flight.iter().map(|(_, f)| f)
    }

    /// Serialises the wire state (in-flight flits with their arrival
    /// cycles, plus the bandwidth-gate timestamp) into a snapshot.
    pub fn save(&self, w: &mut SnapWriter) {
        w.option(self.last_send, |w, at| w.u64(at.0));
        w.usize(self.in_flight.len());
        for (at, f) in self.in_flight.iter() {
            w.u64(at.0);
            f.save(w);
        }
    }

    /// Restores wire state saved by [`Link::save`] into this (idle) link.
    ///
    /// # Errors
    ///
    /// Propagates snapshot decoding errors; rejects snapshots claiming
    /// more in-flight flits than the latency-bounded ring can hold.
    ///
    /// # Panics
    ///
    /// Panics if the link is not idle.
    pub fn load_into(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        assert!(
            self.in_flight.is_empty(),
            "restore target link must be idle"
        );
        self.last_send = r.option(|r| r.u64().map(Cycles))?;
        let n = r.usize()?;
        if n > self.in_flight.capacity() {
            return Err(SnapError::BadValue("link in-flight count over capacity"));
        }
        for _ in 0..n {
            let at = Cycles(r.u64()?);
            self.in_flight.push_back(at, Flit::load(r)?);
        }
        Ok(())
    }
}

/// The upstream credit-return path paired with a [`Link`].
///
/// When a downstream input VC buffer frees a slot, a credit for that VC
/// travels back with the link's latency.
#[derive(Debug, Clone)]
pub struct CreditLink {
    latency: Cycles,
    in_flight: Ring<VcId>,
}

impl CreditLink {
    /// Creates a credit path with the given latency (≥ 1 cycle).
    ///
    /// `per_cycle_max` bounds how many credits the downstream component
    /// can return in a single cycle (for a router input port that is the
    /// VC count — a full crossbar can drain one flit per VC per cycle);
    /// the in-flight ring holds `per_cycle_max * latency` slots.
    ///
    /// # Panics
    ///
    /// Panics if `latency` is zero: credits must take as long to return
    /// as flits take to travel, or flow control turns instantaneous.
    /// Panics if `per_cycle_max` is zero.
    pub fn new(latency: Cycles, per_cycle_max: usize) -> CreditLink {
        assert!(
            latency > Cycles::ZERO,
            "credit link latency must be at least one cycle"
        );
        assert!(
            per_cycle_max > 0,
            "credit link per-cycle maximum must be at least one"
        );
        CreditLink {
            latency,
            in_flight: Ring::with_capacity(per_cycle_max * latency.0 as usize),
        }
    }

    /// Sends one credit for `vc` at cycle `now`.
    pub fn send(&mut self, now: Cycles, vc: VcId) {
        self.in_flight.push_back(now + self.latency, vc);
    }

    /// Takes the next credit arriving at or before `now`, if any. Call in a
    /// loop to drain all due credits (multiple VCs may return credits in the
    /// same cycle).
    pub fn recv(&mut self, now: Cycles) -> Option<VcId> {
        if self.in_flight.front().is_some_and(|(at, _)| *at <= now) {
            Some(self.in_flight.pop_front().expect("peeked entry").1)
        } else {
            None
        }
    }

    /// Whether no credits are in flight.
    pub fn is_idle(&self) -> bool {
        self.in_flight.is_empty()
    }

    /// Number of credits currently in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// The arrival cycle of the earliest in-flight credit, if any (O(1):
    /// constant delay keeps the ring sorted by arrival).
    pub fn earliest_arrival(&self) -> Option<Cycles> {
        self.in_flight.front().map(|&(at, _)| at)
    }

    /// Iterates over the VCs of the credits currently in flight.
    ///
    /// Read-only visibility for the audit layer's conservation checks.
    pub fn iter_in_flight(&self) -> impl Iterator<Item = VcId> + '_ {
        self.in_flight.iter().map(|&(_, vc)| vc)
    }

    /// Serialises the in-flight credits into a snapshot.
    pub fn save(&self, w: &mut SnapWriter) {
        w.usize(self.in_flight.len());
        for &(at, vc) in self.in_flight.iter() {
            w.u64(at.0);
            w.u32(vc.0);
        }
    }

    /// Restores credits saved by [`CreditLink::save`] into this (idle)
    /// credit path.
    ///
    /// # Errors
    ///
    /// Propagates snapshot decoding errors; rejects snapshots claiming
    /// more in-flight credits than the ring can hold.
    ///
    /// # Panics
    ///
    /// Panics if the credit path is not idle.
    pub fn load_into(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        assert!(
            self.in_flight.is_empty(),
            "restore target credit link must be idle"
        );
        let n = r.usize()?;
        if n > self.in_flight.capacity() {
            return Err(SnapError::BadValue(
                "credit link in-flight count over capacity",
            ));
        }
        for _ in 0..n {
            let at = Cycles(r.u64()?);
            self.in_flight.push_back(at, VcId(r.u32()?));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::FlitKind;
    use crate::ids::{FrameId, MsgId, NodeId, StreamId};
    use crate::TrafficClass;

    fn flit(seq: u32) -> Flit {
        Flit {
            kind: FlitKind::Body,
            stream: StreamId(0),
            msg: MsgId(0),
            frame: FrameId(0),
            seq_in_msg: seq,
            msg_len: 10,
            msg_seq_in_frame: 0,
            msgs_in_frame: 1,
            dest: NodeId(0),
            vc: VcId(0),
            out_vc: VcId(0),
            vtick: 1.0,
            class: TrafficClass::Vbr,
            created_at: Cycles(0),
        }
    }

    #[test]
    fn delivers_after_latency() {
        let mut link = Link::new(Cycles(3));
        link.send(Cycles(10), flit(0));
        assert!(link.recv(Cycles(12)).is_none());
        assert_eq!(link.recv(Cycles(13)).unwrap().seq_in_msg, 0);
        assert!(link.is_idle());
    }

    #[test]
    fn preserves_order_across_cycles() {
        let mut link = Link::new(Cycles(1));
        link.send(Cycles(0), flit(0));
        assert_eq!(link.recv(Cycles(1)).unwrap().seq_in_msg, 0);
        link.send(Cycles(1), flit(1));
        assert_eq!(link.recv(Cycles(2)).unwrap().seq_in_msg, 1);
    }

    #[test]
    fn one_flit_per_cycle() {
        let mut link = Link::new(Cycles(1));
        link.send(Cycles(0), flit(0));
        assert!(!link.can_send(Cycles(0)));
        assert!(link.can_send(Cycles(1)));
    }

    #[test]
    #[should_panic(expected = "bandwidth exceeded")]
    fn double_send_panics() {
        let mut link = Link::new(Cycles(1));
        link.send(Cycles(0), flit(0));
        link.send(Cycles(0), flit(1));
    }

    #[test]
    #[should_panic(expected = "credit link latency")]
    fn zero_latency_credit_link_panics() {
        let _ = CreditLink::new(Cycles(0), 1);
    }

    #[test]
    fn credits_round_trip() {
        let mut credits = CreditLink::new(Cycles(1), 4);
        credits.send(Cycles(5), VcId(3));
        credits.send(Cycles(5), VcId(1));
        assert!(credits.recv(Cycles(5)).is_none());
        assert_eq!(credits.recv(Cycles(6)), Some(VcId(3)));
        assert_eq!(credits.recv(Cycles(6)), Some(VcId(1)));
        assert!(credits.recv(Cycles(6)).is_none());
        assert!(credits.is_idle());
    }

    #[test]
    fn in_flight_counts() {
        let mut link = Link::new(Cycles(5));
        link.send(Cycles(0), flit(0));
        link.send(Cycles(1), flit(1));
        assert_eq!(link.in_flight(), 2);
        let _ = link.recv(Cycles(5));
        assert_eq!(link.in_flight(), 1);
    }

    #[test]
    fn audit_iterators_see_in_flight_state() {
        let mut link = Link::new(Cycles(5));
        link.send(Cycles(0), flit(0));
        link.send(Cycles(1), flit(1));
        let seqs: Vec<u32> = link.iter_in_flight().map(|f| f.seq_in_msg).collect();
        assert_eq!(seqs, vec![0, 1]);

        let mut credits = CreditLink::new(Cycles(2), 4);
        credits.send(Cycles(0), VcId(3));
        credits.send(Cycles(0), VcId(1));
        assert_eq!(credits.in_flight(), 2);
        let vcs: Vec<VcId> = credits.iter_in_flight().collect();
        assert_eq!(vcs, vec![VcId(3), VcId(1)]);
    }

    #[test]
    fn earliest_arrival_tracks_head() {
        let mut link = Link::new(Cycles(3));
        assert_eq!(link.earliest_arrival(), None);
        link.send(Cycles(10), flit(0));
        link.send(Cycles(11), flit(1));
        assert_eq!(link.earliest_arrival(), Some(Cycles(13)));
        let _ = link.recv(Cycles(13));
        assert_eq!(link.earliest_arrival(), Some(Cycles(14)));

        let mut credits = CreditLink::new(Cycles(2), 1);
        assert_eq!(credits.earliest_arrival(), None);
        credits.send(Cycles(4), VcId(0));
        assert_eq!(credits.earliest_arrival(), Some(Cycles(6)));
    }

    #[test]
    fn ring_wraps_under_sustained_traffic() {
        // Saturate a latency-3 link for many cycles so the ring head wraps
        // repeatedly; order and arrival cycles must stay exact.
        let mut link = Link::new(Cycles(3));
        let mut next_rx = 0u32;
        for t in 0..100u64 {
            // Deliveries drain before sends within a cycle, exactly as the
            // network steps links — that order is what bounds the ring.
            if let Some(f) = link.recv(Cycles(t)) {
                assert_eq!(f.seq_in_msg, next_rx);
                next_rx += 1;
            }
            link.send(Cycles(t), flit(t as u32));
        }
        assert_eq!(link.in_flight(), 3);
        for t in 100..103u64 {
            let f = link.recv(Cycles(t)).expect("drain tail");
            assert_eq!(f.seq_in_msg, next_rx);
            next_rx += 1;
        }
        assert!(link.is_idle());
        assert_eq!(next_rx, 100);
    }

    #[test]
    fn credit_ring_holds_per_cycle_burst_times_latency() {
        // 4 credits per cycle for `latency` cycles is the worst case the
        // ring is sized for; it must hold them all without panicking.
        let mut credits = CreditLink::new(Cycles(2), 4);
        for t in 0..2u64 {
            for v in 0..4u32 {
                credits.send(Cycles(t), VcId(v));
            }
        }
        assert_eq!(credits.in_flight(), 8);
        let mut got = 0;
        for t in 2..4u64 {
            while credits.recv(Cycles(t)).is_some() {
                got += 1;
            }
        }
        assert_eq!(got, 8);
    }

    #[test]
    fn overfull_link_snapshot_is_rejected() {
        // A latency-1 link can hold one flit; a snapshot claiming two
        // must be rejected as corrupt, not grow the ring.
        let mut donor = Link::new(Cycles(2));
        donor.send(Cycles(0), flit(0));
        donor.send(Cycles(1), flit(1));
        let mut w = SnapWriter::new();
        donor.save(&mut w);
        let bytes = w.finish();
        let mut target = Link::new(Cycles(1));
        let mut r = SnapReader::new(&bytes).unwrap();
        assert!(matches!(
            target.load_into(&mut r),
            Err(SnapError::BadValue(_))
        ));
    }
}
