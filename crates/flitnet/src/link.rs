//! Physical channels and credit return paths.
//!
//! A [`Link`] moves at most one flit per cycle with a fixed pipeline
//! latency; the matching [`CreditLink`] carries per-VC buffer credits back
//! upstream with the same latency model. Both are plain delay lines — the
//! *decision* of what to send is the router's job.

use std::collections::VecDeque;

use netsim::snap::{SnapError, SnapReader, SnapWriter};
use netsim::Cycles;

use crate::flit::Flit;
use crate::ids::VcId;

/// A one-flit-per-cycle pipelined physical channel.
///
/// # Example
///
/// ```
/// use flitnet::{Flit, FlitKind, Link, TrafficClass};
/// use flitnet::{MsgId, NodeId, StreamId, FrameId, VcId};
/// use netsim::Cycles;
///
/// let mut link = Link::new(Cycles(1));
/// # let f = Flit { kind: FlitKind::HeadTail, stream: StreamId(0), msg: MsgId(0),
/// #   frame: FrameId(0), seq_in_msg: 0, msg_len: 1, msg_seq_in_frame: 0,
/// #   msgs_in_frame: 1, dest: NodeId(0), vc: VcId(0), out_vc: VcId(0), vtick: 1.0,
/// #   class: TrafficClass::Vbr, created_at: Cycles(0) };
/// assert!(link.can_send(Cycles(5)));
/// link.send(Cycles(5), f);
/// assert!(!link.can_send(Cycles(5))); // one flit per cycle
/// assert!(link.recv(Cycles(5)).is_none()); // still in flight
/// assert!(link.recv(Cycles(6)).is_some()); // arrives after latency
/// ```
#[derive(Debug, Clone)]
pub struct Link {
    latency: Cycles,
    in_flight: VecDeque<(Cycles, Flit)>,
    last_send: Option<Cycles>,
}

impl Link {
    /// Creates a link with the given pipeline latency (≥ 1 cycle).
    ///
    /// # Panics
    ///
    /// Panics if `latency` is zero: a zero-latency link would let a flit
    /// traverse several routers in one cycle.
    pub fn new(latency: Cycles) -> Link {
        assert!(
            latency > Cycles::ZERO,
            "link latency must be at least one cycle"
        );
        Link {
            latency,
            in_flight: VecDeque::new(),
            last_send: None,
        }
    }

    /// The link's pipeline latency.
    pub fn latency(&self) -> Cycles {
        self.latency
    }

    /// Whether the link can accept a flit this cycle (bandwidth check only;
    /// the sender must separately hold a downstream credit).
    pub fn can_send(&self, now: Cycles) -> bool {
        self.last_send != Some(now)
    }

    /// Puts a flit on the wire at cycle `now`.
    ///
    /// # Panics
    ///
    /// Panics if a flit was already sent this cycle (one flit per cycle).
    pub fn send(&mut self, now: Cycles, flit: Flit) {
        assert!(self.can_send(now), "link bandwidth exceeded at {now}");
        self.last_send = Some(now);
        self.in_flight.push_back((now + self.latency, flit));
    }

    /// Takes the flit arriving at cycle `now`, if any.
    pub fn recv(&mut self, now: Cycles) -> Option<Flit> {
        if self.in_flight.front().is_some_and(|(at, _)| *at <= now) {
            Some(self.in_flight.pop_front().expect("peeked entry").1)
        } else {
            None
        }
    }

    /// Number of flits currently on the wire.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Whether any flit is on the wire (used for idle detection).
    pub fn is_idle(&self) -> bool {
        self.in_flight.is_empty()
    }

    /// Iterates over the flits currently on the wire, in send order.
    ///
    /// Read-only visibility for the audit layer's conservation checks;
    /// the router/NI hot path never calls this.
    pub fn iter_in_flight(&self) -> impl Iterator<Item = &Flit> {
        self.in_flight.iter().map(|(_, f)| f)
    }

    /// Serialises the wire state (in-flight flits with their arrival
    /// cycles, plus the bandwidth-gate timestamp) into a snapshot.
    pub fn save(&self, w: &mut SnapWriter) {
        w.option(self.last_send, |w, at| w.u64(at.0));
        w.usize(self.in_flight.len());
        for (at, f) in &self.in_flight {
            w.u64(at.0);
            f.save(w);
        }
    }

    /// Restores wire state saved by [`Link::save`] into this (idle) link.
    ///
    /// # Errors
    ///
    /// Propagates snapshot decoding errors.
    ///
    /// # Panics
    ///
    /// Panics if the link is not idle.
    pub fn load_into(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        assert!(
            self.in_flight.is_empty(),
            "restore target link must be idle"
        );
        self.last_send = r.option(|r| r.u64().map(Cycles))?;
        let n = r.usize()?;
        for _ in 0..n {
            let at = Cycles(r.u64()?);
            self.in_flight.push_back((at, Flit::load(r)?));
        }
        Ok(())
    }
}

/// The upstream credit-return path paired with a [`Link`].
///
/// When a downstream input VC buffer frees a slot, a credit for that VC
/// travels back with the link's latency.
#[derive(Debug, Clone)]
pub struct CreditLink {
    latency: Cycles,
    in_flight: VecDeque<(Cycles, VcId)>,
}

impl CreditLink {
    /// Creates a credit path with the given latency (≥ 1 cycle).
    ///
    /// # Panics
    ///
    /// Panics if `latency` is zero: credits must take as long to return
    /// as flits take to travel, or flow control turns instantaneous.
    pub fn new(latency: Cycles) -> CreditLink {
        assert!(
            latency > Cycles::ZERO,
            "credit link latency must be at least one cycle"
        );
        CreditLink {
            latency,
            in_flight: VecDeque::new(),
        }
    }

    /// Sends one credit for `vc` at cycle `now`.
    pub fn send(&mut self, now: Cycles, vc: VcId) {
        self.in_flight.push_back((now + self.latency, vc));
    }

    /// Takes the next credit arriving at or before `now`, if any. Call in a
    /// loop to drain all due credits (multiple VCs may return credits in the
    /// same cycle).
    pub fn recv(&mut self, now: Cycles) -> Option<VcId> {
        if self.in_flight.front().is_some_and(|(at, _)| *at <= now) {
            Some(self.in_flight.pop_front().expect("peeked entry").1)
        } else {
            None
        }
    }

    /// Whether no credits are in flight.
    pub fn is_idle(&self) -> bool {
        self.in_flight.is_empty()
    }

    /// Number of credits currently in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Iterates over the VCs of the credits currently in flight.
    ///
    /// Read-only visibility for the audit layer's conservation checks.
    pub fn iter_in_flight(&self) -> impl Iterator<Item = VcId> + '_ {
        self.in_flight.iter().map(|(_, vc)| *vc)
    }

    /// Serialises the in-flight credits into a snapshot.
    pub fn save(&self, w: &mut SnapWriter) {
        w.usize(self.in_flight.len());
        for &(at, vc) in &self.in_flight {
            w.u64(at.0);
            w.u32(vc.0);
        }
    }

    /// Restores credits saved by [`CreditLink::save`] into this (idle)
    /// credit path.
    ///
    /// # Errors
    ///
    /// Propagates snapshot decoding errors.
    ///
    /// # Panics
    ///
    /// Panics if the credit path is not idle.
    pub fn load_into(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        assert!(
            self.in_flight.is_empty(),
            "restore target credit link must be idle"
        );
        let n = r.usize()?;
        for _ in 0..n {
            let at = Cycles(r.u64()?);
            self.in_flight.push_back((at, VcId(r.u32()?)));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::FlitKind;
    use crate::ids::{FrameId, MsgId, NodeId, StreamId};
    use crate::TrafficClass;

    fn flit(seq: u32) -> Flit {
        Flit {
            kind: FlitKind::Body,
            stream: StreamId(0),
            msg: MsgId(0),
            frame: FrameId(0),
            seq_in_msg: seq,
            msg_len: 10,
            msg_seq_in_frame: 0,
            msgs_in_frame: 1,
            dest: NodeId(0),
            vc: VcId(0),
            out_vc: VcId(0),
            vtick: 1.0,
            class: TrafficClass::Vbr,
            created_at: Cycles(0),
        }
    }

    #[test]
    fn delivers_after_latency() {
        let mut link = Link::new(Cycles(3));
        link.send(Cycles(10), flit(0));
        assert!(link.recv(Cycles(12)).is_none());
        assert_eq!(link.recv(Cycles(13)).unwrap().seq_in_msg, 0);
        assert!(link.is_idle());
    }

    #[test]
    fn preserves_order_across_cycles() {
        let mut link = Link::new(Cycles(1));
        link.send(Cycles(0), flit(0));
        link.send(Cycles(1), flit(1));
        assert_eq!(link.recv(Cycles(1)).unwrap().seq_in_msg, 0);
        assert_eq!(link.recv(Cycles(2)).unwrap().seq_in_msg, 1);
    }

    #[test]
    fn one_flit_per_cycle() {
        let mut link = Link::new(Cycles(1));
        link.send(Cycles(0), flit(0));
        assert!(!link.can_send(Cycles(0)));
        assert!(link.can_send(Cycles(1)));
    }

    #[test]
    #[should_panic(expected = "bandwidth exceeded")]
    fn double_send_panics() {
        let mut link = Link::new(Cycles(1));
        link.send(Cycles(0), flit(0));
        link.send(Cycles(0), flit(1));
    }

    #[test]
    #[should_panic(expected = "credit link latency")]
    fn zero_latency_credit_link_panics() {
        let _ = CreditLink::new(Cycles(0));
    }

    #[test]
    fn credits_round_trip() {
        let mut credits = CreditLink::new(Cycles(1));
        credits.send(Cycles(5), VcId(3));
        credits.send(Cycles(5), VcId(1));
        assert!(credits.recv(Cycles(5)).is_none());
        assert_eq!(credits.recv(Cycles(6)), Some(VcId(3)));
        assert_eq!(credits.recv(Cycles(6)), Some(VcId(1)));
        assert!(credits.recv(Cycles(6)).is_none());
        assert!(credits.is_idle());
    }

    #[test]
    fn in_flight_counts() {
        let mut link = Link::new(Cycles(5));
        link.send(Cycles(0), flit(0));
        link.send(Cycles(1), flit(1));
        assert_eq!(link.in_flight(), 2);
        let _ = link.recv(Cycles(5));
        assert_eq!(link.in_flight(), 1);
    }

    #[test]
    fn audit_iterators_see_in_flight_state() {
        let mut link = Link::new(Cycles(5));
        link.send(Cycles(0), flit(0));
        link.send(Cycles(1), flit(1));
        let seqs: Vec<u32> = link.iter_in_flight().map(|f| f.seq_in_msg).collect();
        assert_eq!(seqs, vec![0, 1]);

        let mut credits = CreditLink::new(Cycles(2));
        credits.send(Cycles(0), VcId(3));
        credits.send(Cycles(0), VcId(1));
        assert_eq!(credits.in_flight(), 2);
        let vcs: Vec<VcId> = credits.iter_in_flight().collect();
        assert_eq!(vcs, vec![VcId(3), VcId(1)]);
    }
}
