//! Strongly-typed identifiers for network entities.
//!
//! Using newtypes instead of bare `usize`/`u64` prevents the classic
//! simulator bug of indexing a port table with a VC number. Each id derives
//! the full set of comparison traits so it can key maps and sort stably.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $inner:ty, $tag:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub $inner);

        impl $name {
            /// Returns the raw index value.
            #[inline]
            pub fn get(self) -> $inner {
                self.0
            }

            /// Returns the id as a `usize` for table indexing.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl From<$inner> for $name {
            fn from(v: $inner) -> $name {
                $name(v)
            }
        }
    };
}

id_type!(
    /// An endpoint (compute node / network interface) in the cluster.
    NodeId, u32, "n"
);
id_type!(
    /// A router (switch) in the topology.
    RouterId, u32, "r"
);
id_type!(
    /// A physical channel (port) of a router.
    PortId, u32, "p"
);
id_type!(
    /// A virtual channel index within a physical channel.
    VcId, u32, "vc"
);
id_type!(
    /// A traffic stream (one VBR/CBR connection or a best-effort source).
    StreamId, u32, "s"
);
id_type!(
    /// A video frame, numbered per stream.
    FrameId, u32, "f"
);
id_type!(
    /// A message (the wormhole unit that carries a Vtick in its header).
    MsgId, u64, "m"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_are_distinct_types() {
        // This is a compile-time property; the test documents it.
        fn takes_port(_p: PortId) {}
        takes_port(PortId(3));
        // takes_port(VcId(3)); // would not compile
    }

    #[test]
    fn display_includes_tag() {
        assert_eq!(NodeId(4).to_string(), "n4");
        assert_eq!(RouterId(1).to_string(), "r1");
        assert_eq!(PortId(7).to_string(), "p7");
        assert_eq!(VcId(15).to_string(), "vc15");
        assert_eq!(StreamId(9).to_string(), "s9");
        assert_eq!(FrameId(2).to_string(), "f2");
        assert_eq!(MsgId(100).to_string(), "m100");
    }

    #[test]
    fn ids_hash_and_order() {
        let mut set = HashSet::new();
        set.insert(VcId(0));
        set.insert(VcId(1));
        set.insert(VcId(0));
        assert_eq!(set.len(), 2);
        assert!(VcId(0) < VcId(1));
    }

    #[test]
    fn conversions() {
        let p: PortId = 5u32.into();
        assert_eq!(p.get(), 5);
        assert_eq!(p.index(), 5usize);
    }
}
