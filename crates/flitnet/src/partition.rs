//! Static partitioning of virtual channels between traffic classes.
//!
//! The paper (§4.2.3) divides the VCs of every physical channel into two
//! disjoint groups: for a traffic mix `x:y`, a fraction `x/(x+y)` of the VCs
//! is reserved for VBR/CBR traffic and the rest for best-effort. This module
//! implements that split plus the per-VC stream-capacity arithmetic
//! ("6 streams per VC" for 4 Mbps streams on a 400 Mbps / 16 VC link).

use crate::class::TrafficClass;
use crate::ids::VcId;

/// Restriction on which half of a class's VC range a hop may allocate.
///
/// Rings (and therefore tori) need a dateline discipline to keep the
/// channel-dependency graph acyclic: within each traffic class's VC range,
/// the lower half is reserved for hops whose remaining path still crosses
/// the wrap-around link and the upper half for hops past it. Topologies
/// without wrap links use [`VcSel::Any`], which restricts nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VcSel {
    /// No restriction (every topology without datelines).
    Any,
    /// Only the lower half of the class's VC range (path still crosses
    /// the dateline, including the wrap hop itself).
    Lower,
    /// Only the upper half of the class's VC range (path past the
    /// dateline, or one that never crosses it).
    Upper,
}

/// The x:y split of one physical channel's virtual channels.
///
/// # Example
///
/// ```
/// use flitnet::{TrafficClass, VcPartition};
///
/// // 16 VCs, 80:20 real-time : best-effort.
/// let p = VcPartition::from_mix(16, 80.0, 20.0);
/// assert_eq!(p.real_time_count(), 13); // round(16 * 0.8)
/// assert_eq!(p.best_effort_count(), 3);
/// assert!(p.class_of(flitnet::VcId(0)).is_real_time());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VcPartition {
    total: u32,
    real_time: u32,
}

impl VcPartition {
    /// Splits `total` VCs according to the load mix `x:y` (real-time :
    /// best-effort). VCs `0..rt` become real-time, `rt..total` best-effort,
    /// where `rt = round(total · x/(x+y))` — clamped so that a class with
    /// non-zero share keeps at least one VC.
    ///
    /// # Panics
    ///
    /// Panics if `total == 0`, either share is negative, or both are zero.
    pub fn from_mix(total: u32, x: f64, y: f64) -> VcPartition {
        assert!(total > 0, "need at least one VC");
        assert!(x >= 0.0 && y >= 0.0, "shares must be non-negative");
        assert!(x + y > 0.0, "at least one share must be positive");
        let frac = x / (x + y);
        let mut rt = (f64::from(total) * frac).round() as u32;
        if x > 0.0 {
            rt = rt.max(1);
        }
        if y > 0.0 {
            rt = rt.min(total - 1);
        }
        if x == 0.0 {
            rt = 0;
        }
        VcPartition {
            total,
            real_time: rt,
        }
    }

    /// A partition that dedicates every VC to real-time traffic (the
    /// paper's 100:0 experiments).
    pub fn all_real_time(total: u32) -> VcPartition {
        assert!(total > 0, "need at least one VC");
        VcPartition {
            total,
            real_time: total,
        }
    }

    /// Total VCs per physical channel.
    pub fn total(&self) -> u32 {
        self.total
    }

    /// Number of VCs reserved for VBR/CBR.
    pub fn real_time_count(&self) -> u32 {
        self.real_time
    }

    /// Number of VCs reserved for best-effort.
    pub fn best_effort_count(&self) -> u32 {
        self.total - self.real_time
    }

    /// The VC indices available to `class`.
    pub fn vcs_for(&self, class: TrafficClass) -> impl Iterator<Item = VcId> + use<> {
        let (lo, hi) = if class.is_real_time() {
            (0, self.real_time)
        } else {
            (self.real_time, self.total)
        };
        (lo..hi).map(VcId)
    }

    /// How many VCs `class` may use.
    pub fn count_for(&self, class: TrafficClass) -> u32 {
        if class.is_real_time() {
            self.real_time_count()
        } else {
            self.best_effort_count()
        }
    }

    /// Which class a VC belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `vc` is out of range.
    pub fn class_of(&self, vc: VcId) -> TrafficClass {
        assert!(vc.get() < self.total, "VC {vc} out of range");
        if vc.get() < self.real_time {
            TrafficClass::Vbr
        } else {
            TrafficClass::BestEffort
        }
    }

    /// Whether `sel` permits allocating `vc`.
    ///
    /// The halves are computed within the class range of `vc` itself
    /// (`split = lo + (hi - lo) / 2`; `Lower` is `[lo, split)`, `Upper` is
    /// `[split, hi)`), so the dateline discipline composes with the
    /// real-time / best-effort partition instead of cutting across it.
    /// Note that a single-VC class has an *empty* lower half — topologies
    /// with datelines need at least two VCs per populated class.
    ///
    /// # Panics
    ///
    /// Panics if `vc` is out of range.
    pub fn sel_allows(&self, sel: VcSel, vc: VcId) -> bool {
        let (lo, hi) = if self.class_of(vc).is_real_time() {
            (0, self.real_time)
        } else {
            (self.real_time, self.total)
        };
        let split = lo + (hi - lo) / 2;
        match sel {
            VcSel::Any => true,
            VcSel::Lower => vc.get() < split,
            VcSel::Upper => vc.get() >= split,
        }
    }

    /// Maximum simultaneous streams one VC can carry without oversubscribing
    /// its bandwidth share: `⌊(link_bw / total_vcs) / stream_bw⌋`.
    ///
    /// The paper's example: 400 Mbps, 16 VCs, 4 Mbps streams → 6 per VC.
    ///
    /// # Panics
    ///
    /// Panics if either bandwidth is not positive.
    pub fn streams_per_vc(&self, link_bps: f64, stream_bps: f64) -> u32 {
        assert!(
            link_bps > 0.0 && stream_bps > 0.0,
            "bandwidths must be positive"
        );
        ((link_bps / f64::from(self.total)) / stream_bps).floor() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_streams_per_vc() {
        let p = VcPartition::all_real_time(16);
        assert_eq!(p.streams_per_vc(400e6, 4e6), 6);
    }

    #[test]
    fn mix_80_20_of_16() {
        let p = VcPartition::from_mix(16, 80.0, 20.0);
        assert_eq!(p.real_time_count(), 13);
        assert_eq!(p.best_effort_count(), 3);
        assert_eq!(p.total(), 16);
    }

    #[test]
    fn mix_50_50_of_16() {
        let p = VcPartition::from_mix(16, 50.0, 50.0);
        assert_eq!(p.real_time_count(), 8);
        assert_eq!(p.best_effort_count(), 8);
    }

    #[test]
    fn mix_100_0_uses_all_vcs() {
        let p = VcPartition::from_mix(16, 100.0, 0.0);
        assert_eq!(p.real_time_count(), 16);
        assert_eq!(p.best_effort_count(), 0);
    }

    #[test]
    fn mix_0_100_uses_no_rt_vcs() {
        let p = VcPartition::from_mix(8, 0.0, 100.0);
        assert_eq!(p.real_time_count(), 0);
        assert_eq!(p.best_effort_count(), 8);
    }

    #[test]
    fn nonzero_share_keeps_at_least_one_vc() {
        // 99:1 on 4 VCs would round best-effort to zero; the clamp keeps one.
        let p = VcPartition::from_mix(4, 99.0, 1.0);
        assert_eq!(p.best_effort_count(), 1);
        let q = VcPartition::from_mix(4, 1.0, 99.0);
        assert_eq!(q.real_time_count(), 1);
    }

    #[test]
    fn vcs_for_are_disjoint_and_cover() {
        let p = VcPartition::from_mix(16, 80.0, 20.0);
        let rt: Vec<VcId> = p.vcs_for(TrafficClass::Vbr).collect();
        let be: Vec<VcId> = p.vcs_for(TrafficClass::BestEffort).collect();
        assert_eq!(rt.len() + be.len(), 16);
        for vc in &rt {
            assert!(p.class_of(*vc).is_real_time());
        }
        for vc in &be {
            assert!(!p.class_of(*vc).is_real_time());
        }
    }

    #[test]
    fn cbr_and_vbr_share_the_real_time_partition() {
        let p = VcPartition::from_mix(16, 50.0, 50.0);
        let vbr: Vec<VcId> = p.vcs_for(TrafficClass::Vbr).collect();
        let cbr: Vec<VcId> = p.vcs_for(TrafficClass::Cbr).collect();
        assert_eq!(vbr, cbr);
    }

    #[test]
    fn count_for_matches_iterators() {
        let p = VcPartition::from_mix(8, 20.0, 80.0);
        assert_eq!(
            p.count_for(TrafficClass::Vbr) as usize,
            p.vcs_for(TrafficClass::Vbr).count()
        );
        assert_eq!(
            p.count_for(TrafficClass::BestEffort) as usize,
            p.vcs_for(TrafficClass::BestEffort).count()
        );
    }

    #[test]
    fn pcs_configuration_streams_per_vc() {
        // Fig. 8's 100 Mbps / 24 VC configuration: each VC's bandwidth
        // share carries exactly one 4 Mbps stream.
        let p = VcPartition::all_real_time(24);
        assert_eq!(p.streams_per_vc(100e6, 4e6), 1);
    }

    #[test]
    fn single_vc_partition() {
        let p = VcPartition::all_real_time(1);
        assert_eq!(p.real_time_count(), 1);
        assert_eq!(p.vcs_for(TrafficClass::Vbr).count(), 1);
        assert_eq!(p.vcs_for(TrafficClass::BestEffort).count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn class_of_out_of_range_panics() {
        let p = VcPartition::all_real_time(4);
        let _ = p.class_of(VcId(4));
    }

    #[test]
    fn sel_any_allows_everything() {
        let p = VcPartition::from_mix(16, 80.0, 20.0);
        for vc in 0..16 {
            assert!(p.sel_allows(VcSel::Any, VcId(vc)));
        }
    }

    #[test]
    fn sel_halves_partition_each_class_range() {
        // 13 real-time VCs split 6/7, 3 best-effort VCs split 1/2.
        let p = VcPartition::from_mix(16, 80.0, 20.0);
        let lower: Vec<u32> = (0..16)
            .filter(|&v| p.sel_allows(VcSel::Lower, VcId(v)))
            .collect();
        let upper: Vec<u32> = (0..16)
            .filter(|&v| p.sel_allows(VcSel::Upper, VcId(v)))
            .collect();
        assert_eq!(lower, vec![0, 1, 2, 3, 4, 5, 13]);
        assert_eq!(upper, vec![6, 7, 8, 9, 10, 11, 12, 14, 15]);
        // Halves are complementary within every class.
        for vc in 0..16 {
            assert_ne!(
                p.sel_allows(VcSel::Lower, VcId(vc)),
                p.sel_allows(VcSel::Upper, VcId(vc))
            );
        }
    }

    #[test]
    fn sel_lower_is_empty_for_a_single_vc_class() {
        // The documented caveat: one VC cannot be halved, so dateline
        // topologies must provision at least two per populated class.
        let p = VcPartition::all_real_time(1);
        assert!(!p.sel_allows(VcSel::Lower, VcId(0)));
        assert!(p.sel_allows(VcSel::Upper, VcId(0)));
    }

    #[test]
    fn sel_even_split_balances_halves() {
        let p = VcPartition::all_real_time(4);
        let lower = (0..4).filter(|&v| p.sel_allows(VcSel::Lower, VcId(v)));
        let upper = (0..4).filter(|&v| p.sel_allows(VcSel::Upper, VcId(v)));
        assert_eq!(lower.collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(upper.collect::<Vec<_>>(), vec![2, 3]);
    }
}
