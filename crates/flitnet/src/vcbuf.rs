//! Bounded per-virtual-channel flit buffers, stored struct-of-arrays.
//!
//! Each input port of the router holds one [`VcBuffer`] per virtual channel
//! (the paper's configuration: 20-flit buffers). Occupancy is governed by
//! credit-based flow control — the upstream sender only transmits when it
//! holds a credit, so `push` overflowing indicates a protocol bug and
//! panics rather than dropping flits.
//!
//! # Layout
//!
//! The buffer is a fixed-capacity ring with one parallel lane per [`Flit`]
//! field rather than a `VecDeque<Flit>`. Two things want this:
//!
//! * the audit/occupancy scans that read a single field of every buffered
//!   flit (e.g. [`VcBuffer::classes`]) touch one dense lane instead of
//!   striding through 96-byte structs, and
//! * the checkpoint format serialises each lane as a contiguous run, so
//!   the on-disk layout mirrors the in-memory one.
//!
//! The head flit — the only one the router hot path inspects — is
//! memoized in assembled form, so [`VcBuffer::head`] stays a plain
//! reference with no per-access reassembly.

use netsim::snap::{SnapError, SnapReader, SnapWriter};

use crate::class::TrafficClass;
use crate::flit::{Flit, FlitKind};
use crate::ids::{FrameId, MsgId, NodeId, StreamId, VcId};
use netsim::Cycles;

/// Placeholder for unoccupied slots and the empty-buffer head memo.
const VACANT: Flit = Flit {
    kind: FlitKind::HeadTail,
    stream: StreamId(0),
    msg: MsgId(0),
    frame: FrameId(0),
    seq_in_msg: 0,
    msg_len: 1,
    msg_seq_in_frame: 0,
    msgs_in_frame: 1,
    dest: NodeId(0),
    vc: VcId(0),
    out_vc: VcId(0),
    vtick: 0.0,
    class: TrafficClass::BestEffort,
    created_at: Cycles(0),
};

/// A bounded FIFO of flits with a fixed capacity.
///
/// # Example
///
/// ```
/// use flitnet::VcBuffer;
///
/// let buf = VcBuffer::new(20);
/// assert_eq!(buf.capacity(), 20);
/// assert!(buf.is_empty());
/// assert_eq!(buf.free_space(), 20);
/// ```
#[derive(Debug, Clone)]
pub struct VcBuffer {
    cap: usize,
    head: usize,
    len: usize,
    /// The assembled flit at the ring head; [`VACANT`] while empty.
    head_flit: Flit,
    kind: Box<[FlitKind]>,
    stream: Box<[u32]>,
    msg: Box<[u64]>,
    frame: Box<[u32]>,
    seq_in_msg: Box<[u32]>,
    msg_len: Box<[u32]>,
    msg_seq_in_frame: Box<[u32]>,
    msgs_in_frame: Box<[u32]>,
    dest: Box<[u32]>,
    vc: Box<[u32]>,
    out_vc: Box<[u32]>,
    vtick: Box<[f64]>,
    class: Box<[TrafficClass]>,
    created_at: Box<[u64]>,
}

impl VcBuffer {
    /// Creates an empty buffer holding at most `capacity` flits.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> VcBuffer {
        assert!(capacity > 0, "a VC buffer must hold at least one flit");
        VcBuffer {
            cap: capacity,
            head: 0,
            len: 0,
            head_flit: VACANT,
            kind: vec![VACANT.kind; capacity].into_boxed_slice(),
            stream: vec![0; capacity].into_boxed_slice(),
            msg: vec![0; capacity].into_boxed_slice(),
            frame: vec![0; capacity].into_boxed_slice(),
            seq_in_msg: vec![0; capacity].into_boxed_slice(),
            msg_len: vec![0; capacity].into_boxed_slice(),
            msg_seq_in_frame: vec![0; capacity].into_boxed_slice(),
            msgs_in_frame: vec![0; capacity].into_boxed_slice(),
            dest: vec![0; capacity].into_boxed_slice(),
            vc: vec![0; capacity].into_boxed_slice(),
            out_vc: vec![0; capacity].into_boxed_slice(),
            vtick: vec![0.0; capacity].into_boxed_slice(),
            class: vec![VACANT.class; capacity].into_boxed_slice(),
            created_at: vec![0; capacity].into_boxed_slice(),
        }
    }

    /// Maximum number of flits the buffer can hold.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Current number of buffered flits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds no flits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the buffer is at capacity.
    pub fn is_full(&self) -> bool {
        self.len >= self.cap
    }

    /// Remaining space in flits.
    pub fn free_space(&self) -> usize {
        self.cap - self.len
    }

    /// Assembles the flit stored in ring slot `slot`.
    fn get(&self, slot: usize) -> Flit {
        Flit {
            kind: self.kind[slot],
            stream: StreamId(self.stream[slot]),
            msg: MsgId(self.msg[slot]),
            frame: FrameId(self.frame[slot]),
            seq_in_msg: self.seq_in_msg[slot],
            msg_len: self.msg_len[slot],
            msg_seq_in_frame: self.msg_seq_in_frame[slot],
            msgs_in_frame: self.msgs_in_frame[slot],
            dest: NodeId(self.dest[slot]),
            vc: VcId(self.vc[slot]),
            out_vc: VcId(self.out_vc[slot]),
            vtick: self.vtick[slot],
            class: self.class[slot],
            created_at: Cycles(self.created_at[slot]),
        }
    }

    /// Appends a flit.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is full — credit-based flow control must have
    /// prevented the send, so overflow is a simulator bug, not a network
    /// condition.
    pub fn push(&mut self, flit: Flit) {
        assert!(
            !self.is_full(),
            "VC buffer overflow: credit protocol violated (capacity {})",
            self.cap
        );
        let slot = (self.head + self.len) % self.cap;
        self.kind[slot] = flit.kind;
        self.stream[slot] = flit.stream.0;
        self.msg[slot] = flit.msg.0;
        self.frame[slot] = flit.frame.0;
        self.seq_in_msg[slot] = flit.seq_in_msg;
        self.msg_len[slot] = flit.msg_len;
        self.msg_seq_in_frame[slot] = flit.msg_seq_in_frame;
        self.msgs_in_frame[slot] = flit.msgs_in_frame;
        self.dest[slot] = flit.dest.0;
        self.vc[slot] = flit.vc.0;
        self.out_vc[slot] = flit.out_vc.0;
        self.vtick[slot] = flit.vtick;
        self.class[slot] = flit.class;
        self.created_at[slot] = flit.created_at.0;
        if self.len == 0 {
            self.head_flit = flit;
        }
        self.len += 1;
    }

    /// The flit at the head of the FIFO, if any.
    pub fn head(&self) -> Option<&Flit> {
        if self.len == 0 {
            None
        } else {
            Some(&self.head_flit)
        }
    }

    /// Removes and returns the head flit.
    pub fn pop(&mut self) -> Option<Flit> {
        if self.len == 0 {
            return None;
        }
        let popped = self.head_flit;
        self.head = (self.head + 1) % self.cap;
        self.len -= 1;
        self.head_flit = if self.len == 0 {
            VACANT
        } else {
            self.get(self.head)
        };
        Some(popped)
    }

    /// Iterates over buffered flits, head first (assembled by value).
    pub fn iter(&self) -> impl Iterator<Item = Flit> + '_ {
        (0..self.len).map(move |i| self.get((self.head + i) % self.cap))
    }

    /// Iterates over just the traffic classes of the buffered flits, head
    /// first — a single-lane scan for occupancy accounting.
    pub fn classes(&self) -> impl Iterator<Item = TrafficClass> + '_ {
        (0..self.len).map(move |i| self.class[(self.head + i) % self.cap])
    }

    /// Serialises the buffered flits (not the capacity, which is
    /// configuration) into a snapshot.
    pub fn save(&self, w: &mut SnapWriter) {
        w.usize(self.len);
        for f in self.iter() {
            f.save(w);
        }
    }

    /// Restores flits saved by [`VcBuffer::save`] into this (empty) buffer.
    ///
    /// # Errors
    ///
    /// Propagates decoding errors; rejects a flit count beyond capacity.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is not empty.
    pub fn load_into(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        assert!(self.is_empty(), "restore target buffer must be empty");
        let n = r.usize()?;
        if n > self.free_space() {
            return Err(SnapError::BadValue("VC buffer occupancy over capacity"));
        }
        for _ in 0..n {
            self.push(Flit::load(r)?);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flit(seq: u32) -> Flit {
        Flit {
            kind: FlitKind::Body,
            stream: StreamId(0),
            msg: MsgId(0),
            frame: FrameId(0),
            seq_in_msg: seq,
            msg_len: 100,
            msg_seq_in_frame: 0,
            msgs_in_frame: 1,
            dest: NodeId(0),
            vc: VcId(0),
            out_vc: VcId(0),
            vtick: 1.0,
            class: TrafficClass::Vbr,
            created_at: Cycles(0),
        }
    }

    #[test]
    fn fifo_order() {
        let mut buf = VcBuffer::new(4);
        for i in 0..4 {
            buf.push(flit(i));
        }
        assert!(buf.is_full());
        for i in 0..4 {
            assert_eq!(buf.pop().unwrap().seq_in_msg, i);
        }
        assert!(buf.is_empty());
    }

    #[test]
    fn head_peeks_without_removing() {
        let mut buf = VcBuffer::new(2);
        buf.push(flit(9));
        assert_eq!(buf.head().unwrap().seq_in_msg, 9);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn free_space_tracks_occupancy() {
        let mut buf = VcBuffer::new(3);
        assert_eq!(buf.free_space(), 3);
        buf.push(flit(0));
        assert_eq!(buf.free_space(), 2);
        buf.pop();
        assert_eq!(buf.free_space(), 3);
    }

    #[test]
    fn ring_wraparound_preserves_flits_exactly() {
        let mut buf = VcBuffer::new(3);
        // Drive the ring through several full wraps with mixed occupancy.
        let mut next = 0u32;
        let mut expected = std::collections::VecDeque::new();
        for step in 0..20 {
            if step % 3 != 2 && !buf.is_full() {
                let mut f = flit(next);
                f.msg = MsgId(u64::from(next) * 7);
                f.vtick = f64::from(next) + 0.5;
                buf.push(f);
                expected.push_back(f);
                next += 1;
            } else if !buf.is_empty() {
                assert_eq!(buf.pop(), expected.pop_front());
            }
            assert_eq!(buf.head(), expected.front());
            let got: Vec<Flit> = buf.iter().collect();
            let want: Vec<Flit> = expected.iter().copied().collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn classes_scans_one_lane() {
        let mut buf = VcBuffer::new(4);
        let mut cbr = flit(0);
        cbr.class = TrafficClass::Cbr;
        buf.push(cbr);
        buf.push(flit(1));
        let classes: Vec<TrafficClass> = buf.classes().collect();
        assert_eq!(classes, vec![TrafficClass::Cbr, TrafficClass::Vbr]);
    }

    #[test]
    fn snapshot_round_trip_after_wraparound() {
        let mut buf = VcBuffer::new(4);
        for i in 0..4 {
            buf.push(flit(i));
        }
        buf.pop();
        buf.pop();
        buf.push(flit(10)); // wraps
        let mut w = SnapWriter::new();
        buf.save(&mut w);
        let bytes = w.finish();
        let mut restored = VcBuffer::new(4);
        let mut r = SnapReader::new(&bytes).unwrap();
        restored.load_into(&mut r).unwrap();
        r.finish().unwrap();
        let a: Vec<Flit> = buf.iter().collect();
        let b: Vec<Flit> = restored.iter().collect();
        assert_eq!(a, b);
        assert_eq!(restored.head(), buf.head());
        assert_eq!(restored.len(), 3);
    }

    #[test]
    #[should_panic(expected = "credit protocol violated")]
    fn overflow_panics() {
        let mut buf = VcBuffer::new(1);
        buf.push(flit(0));
        buf.push(flit(1));
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn zero_capacity_panics() {
        let _ = VcBuffer::new(0);
    }
}
