//! Bounded per-virtual-channel flit buffers.
//!
//! Each input port of the router holds one [`VcBuffer`] per virtual channel
//! (the paper's configuration: 20-flit buffers). Occupancy is governed by
//! credit-based flow control — the upstream sender only transmits when it
//! holds a credit, so `push` overflowing indicates a protocol bug and
//! panics rather than dropping flits.

use std::collections::VecDeque;

use crate::flit::Flit;

/// A bounded FIFO of flits with a fixed capacity.
///
/// # Example
///
/// ```
/// use flitnet::VcBuffer;
///
/// let buf = VcBuffer::new(20);
/// assert_eq!(buf.capacity(), 20);
/// assert!(buf.is_empty());
/// assert_eq!(buf.free_space(), 20);
/// ```
#[derive(Debug, Clone)]
pub struct VcBuffer {
    flits: VecDeque<Flit>,
    capacity: usize,
}

impl VcBuffer {
    /// Creates an empty buffer holding at most `capacity` flits.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> VcBuffer {
        assert!(capacity > 0, "a VC buffer must hold at least one flit");
        VcBuffer {
            flits: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Maximum number of flits the buffer can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of buffered flits.
    pub fn len(&self) -> usize {
        self.flits.len()
    }

    /// Whether the buffer holds no flits.
    pub fn is_empty(&self) -> bool {
        self.flits.is_empty()
    }

    /// Whether the buffer is at capacity.
    pub fn is_full(&self) -> bool {
        self.flits.len() >= self.capacity
    }

    /// Remaining space in flits.
    pub fn free_space(&self) -> usize {
        self.capacity - self.flits.len()
    }

    /// Appends a flit.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is full — credit-based flow control must have
    /// prevented the send, so overflow is a simulator bug, not a network
    /// condition.
    pub fn push(&mut self, flit: Flit) {
        assert!(
            !self.is_full(),
            "VC buffer overflow: credit protocol violated (capacity {})",
            self.capacity
        );
        self.flits.push_back(flit);
    }

    /// The flit at the head of the FIFO, if any.
    pub fn head(&self) -> Option<&Flit> {
        self.flits.front()
    }

    /// Removes and returns the head flit.
    pub fn pop(&mut self) -> Option<Flit> {
        self.flits.pop_front()
    }

    /// Iterates over buffered flits, head first.
    pub fn iter(&self) -> impl Iterator<Item = &Flit> {
        self.flits.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::FlitKind;
    use crate::ids::{FrameId, MsgId, NodeId, StreamId, VcId};
    use crate::TrafficClass;
    use netsim::Cycles;

    fn flit(seq: u32) -> Flit {
        Flit {
            kind: FlitKind::Body,
            stream: StreamId(0),
            msg: MsgId(0),
            frame: FrameId(0),
            seq_in_msg: seq,
            msg_len: 100,
            msg_seq_in_frame: 0,
            msgs_in_frame: 1,
            dest: NodeId(0),
            vc: VcId(0),
            out_vc: VcId(0),
            vtick: 1.0,
            class: TrafficClass::Vbr,
            created_at: Cycles(0),
        }
    }

    #[test]
    fn fifo_order() {
        let mut buf = VcBuffer::new(4);
        for i in 0..4 {
            buf.push(flit(i));
        }
        assert!(buf.is_full());
        for i in 0..4 {
            assert_eq!(buf.pop().unwrap().seq_in_msg, i);
        }
        assert!(buf.is_empty());
    }

    #[test]
    fn head_peeks_without_removing() {
        let mut buf = VcBuffer::new(2);
        buf.push(flit(9));
        assert_eq!(buf.head().unwrap().seq_in_msg, 9);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn free_space_tracks_occupancy() {
        let mut buf = VcBuffer::new(3);
        assert_eq!(buf.free_space(), 3);
        buf.push(flit(0));
        assert_eq!(buf.free_space(), 2);
        buf.pop();
        assert_eq!(buf.free_space(), 3);
    }

    #[test]
    #[should_panic(expected = "credit protocol violated")]
    fn overflow_panics() {
        let mut buf = VcBuffer::new(1);
        buf.push(flit(0));
        buf.push(flit(1));
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn zero_capacity_panics() {
        let _ = VcBuffer::new(0);
    }
}
