//! Flits: the unit of wormhole flow control.
//!
//! A message is segmented into flits. The *head* flit carries everything a
//! router needs to route and schedule the worm — destination, requested VC,
//! and the Virtual Clock `Vtick` (the stream's negotiated inter-flit service
//! interval, §3.3). Middle and tail flits simply follow the path the head
//! reserved; the tail additionally releases that path.
//!
//! For simulator convenience every [`Flit`] carries the full descriptor (in
//! hardware only the head would); routers must only *act* on head-flit
//! fields at route/arbitration time, which the pipeline model enforces
//! structurally.

use std::borrow::Borrow;

use netsim::snap::{SnapError, SnapReader, SnapWriter};
use netsim::Cycles;

use crate::class::TrafficClass;
use crate::ids::{FrameId, MsgId, NodeId, StreamId, VcId};

/// The `Vtick` value used for best-effort traffic.
///
/// The paper sets best-effort `Vtick = ∞` ("it has the maximum slack"). A
/// genuine `f64::INFINITY` would make every best-effort timestamp equal,
/// destroying FIFO order among best-effort flits, so we use a finite but
/// astronomically large tick (10¹² cycles ≈ 22 hours of simulated time at
/// 400 Mbps): real-time flits always win, and best-effort flits still order
/// among themselves by arrival.
pub const BEST_EFFORT_VTICK: f64 = 1e12;

/// Position of a flit within its message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlitKind {
    /// First flit; carries routing and bandwidth-reservation information.
    Head,
    /// A middle flit; bypasses the routing/arbitration stages.
    Body,
    /// Last flit; releases the resources the head reserved.
    Tail,
    /// Single-flit message: head and tail at once.
    HeadTail,
}

impl FlitKind {
    /// Whether routers must run routing/arbitration for this flit.
    pub fn is_head(self) -> bool {
        matches!(self, FlitKind::Head | FlitKind::HeadTail)
    }

    /// Whether this flit releases the message's reserved path.
    pub fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::HeadTail)
    }
}

/// One flit in flight.
///
/// `Flit` is `Copy` and kept small; simulators move millions of them.
///
/// # Example
///
/// ```
/// use flitnet::{Flit, FlitKind, TrafficClass};
/// use flitnet::{MsgId, NodeId, StreamId, FrameId, VcId};
/// use netsim::Cycles;
///
/// let head = Flit {
///     kind: FlitKind::Head,
///     stream: StreamId(0),
///     msg: MsgId(1),
///     frame: FrameId(0),
///     seq_in_msg: 0,
///     msg_len: 20,
///     msg_seq_in_frame: 0,
///     msgs_in_frame: 208,
///     dest: NodeId(5),
///     vc: VcId(1),
///     out_vc: VcId(3),
///     vtick: 100.0,
///     class: TrafficClass::Vbr,
///     created_at: Cycles(0),
/// };
/// assert!(head.kind.is_head());
/// assert!(!head.kind.is_tail());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Flit {
    /// Head / body / tail position within the message.
    pub kind: FlitKind,
    /// Owning stream.
    pub stream: StreamId,
    /// Globally unique message id.
    pub msg: MsgId,
    /// Frame number within the stream (real-time traffic only; 0 for
    /// best-effort).
    pub frame: FrameId,
    /// Flit index within the message, `0 .. msg_len`.
    pub seq_in_msg: u32,
    /// Message length in flits.
    pub msg_len: u32,
    /// Which message of the frame this is, `0 .. msgs_in_frame`.
    pub msg_seq_in_frame: u32,
    /// Messages constituting the frame (1 for best-effort).
    pub msgs_in_frame: u32,
    /// Destination endpoint.
    pub dest: NodeId,
    /// The virtual channel the flit currently travels on. Set to the
    /// injection-link VC at the source and rewritten by each router when
    /// the flit switches to its granted output VC.
    pub vc: VcId,
    /// The virtual-channel index the stream requests on every downstream
    /// hop (the paper draws input and output VCs uniformly from the class
    /// partition at stream setup, §4.2.1). Routers read this from the head
    /// flit at routing time.
    pub out_vc: VcId,
    /// Virtual Clock tick in cycles/flit ([`BEST_EFFORT_VTICK`] for
    /// best-effort traffic).
    pub vtick: f64,
    /// Traffic class.
    pub class: TrafficClass,
    /// Cycle at which the message was created at the source; used for
    /// best-effort latency accounting.
    pub created_at: Cycles,
}

impl Flit {
    /// Builds the flit sequence for one message.
    ///
    /// Produces `msg_len` flits: a head, `msg_len − 2` bodies and a tail
    /// (or a single [`FlitKind::HeadTail`] when `msg_len == 1`).
    ///
    /// # Panics
    ///
    /// Panics if `template.msg_len == 0`.
    pub fn flitify(template: Flit) -> Vec<Flit> {
        assert!(template.msg_len > 0, "message must have at least one flit");
        let n = template.msg_len;
        (0..n)
            .map(|i| {
                let kind = if n == 1 {
                    FlitKind::HeadTail
                } else if i == 0 {
                    FlitKind::Head
                } else if i == n - 1 {
                    FlitKind::Tail
                } else {
                    FlitKind::Body
                };
                Flit {
                    kind,
                    seq_in_msg: i,
                    ..template
                }
            })
            .collect()
    }

    /// Whether this is the frame's final message (its tail arrival marks
    /// frame delivery).
    pub fn is_last_msg_of_frame(&self) -> bool {
        self.msg_seq_in_frame + 1 == self.msgs_in_frame
    }

    /// Serialises the flit into a snapshot.
    pub fn save(&self, w: &mut SnapWriter) {
        w.u8(match self.kind {
            FlitKind::Head => 0,
            FlitKind::Body => 1,
            FlitKind::Tail => 2,
            FlitKind::HeadTail => 3,
        });
        w.u32(self.stream.0);
        w.u64(self.msg.0);
        w.u32(self.frame.0);
        w.u32(self.seq_in_msg);
        w.u32(self.msg_len);
        w.u32(self.msg_seq_in_frame);
        w.u32(self.msgs_in_frame);
        w.u32(self.dest.0);
        w.u32(self.vc.0);
        w.u32(self.out_vc.0);
        w.f64(self.vtick);
        w.u8(match self.class {
            TrafficClass::Cbr => 0,
            TrafficClass::Vbr => 1,
            TrafficClass::BestEffort => 2,
        });
        w.u64(self.created_at.0);
    }

    /// Restores a flit saved by [`Flit::save`].
    ///
    /// # Errors
    ///
    /// Propagates snapshot decoding errors.
    pub fn load(r: &mut SnapReader<'_>) -> Result<Flit, SnapError> {
        Ok(Flit {
            kind: match r.u8()? {
                0 => FlitKind::Head,
                1 => FlitKind::Body,
                2 => FlitKind::Tail,
                3 => FlitKind::HeadTail,
                _ => return Err(SnapError::BadValue("flit kind tag")),
            },
            stream: StreamId(r.u32()?),
            msg: MsgId(r.u64()?),
            frame: FrameId(r.u32()?),
            seq_in_msg: r.u32()?,
            msg_len: r.u32()?,
            msg_seq_in_frame: r.u32()?,
            msgs_in_frame: r.u32()?,
            dest: NodeId(r.u32()?),
            vc: VcId(r.u32()?),
            out_vc: VcId(r.u32()?),
            vtick: r.f64()?,
            class: match r.u8()? {
                0 => TrafficClass::Cbr,
                1 => TrafficClass::Vbr,
                2 => TrafficClass::BestEffort,
                _ => return Err(SnapError::BadValue("traffic class tag")),
            },
            created_at: Cycles(r.u64()?),
        })
    }
}

/// Checks that a FIFO flit sequence is a well-formed run of worm
/// segments, the core wormhole invariant audited per VC buffer:
///
/// * within a message, `seq_in_msg` increments by one, nothing follows a
///   tail, and no second head appears;
/// * across messages, the earlier message's tail must come before the
///   later message's head (worms never interleave on one VC).
///
/// The sequence may begin mid-message (the head has already moved on) and
/// end mid-message (the tail has not arrived yet). Returns a description
/// of the first violation, or `None` when the sequence is well-formed.
///
/// Items may be owned flits (the struct-of-arrays [`crate::VcBuffer`]
/// assembles them by value) or references.
pub fn worm_order_violation<I>(flits: I) -> Option<String>
where
    I: IntoIterator,
    I::Item: Borrow<Flit>,
{
    let mut prev: Option<Flit> = None;
    for f in flits {
        let f = *f.borrow();
        if let Some(p) = prev {
            if p.msg == f.msg {
                if p.kind.is_tail() {
                    return Some(format!("flit of msg {} follows its own tail", f.msg));
                }
                if f.kind.is_head() {
                    return Some(format!("second head inside msg {}", f.msg));
                }
                if f.seq_in_msg != p.seq_in_msg + 1 {
                    return Some(format!(
                        "msg {} flit sequence jumps {} -> {}",
                        f.msg, p.seq_in_msg, f.seq_in_msg
                    ));
                }
            } else {
                if !p.kind.is_tail() {
                    return Some(format!(
                        "msg {} interleaves into msg {} before its tail",
                        f.msg, p.msg
                    ));
                }
                if !f.kind.is_head() {
                    return Some(format!(
                        "msg {} enters the buffer mid-worm (first flit {:?})",
                        f.msg, f.kind
                    ));
                }
            }
        }
        prev = Some(f);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn template(len: u32) -> Flit {
        Flit {
            kind: FlitKind::Head,
            stream: StreamId(1),
            msg: MsgId(7),
            frame: FrameId(2),
            seq_in_msg: 0,
            msg_len: len,
            msg_seq_in_frame: 3,
            msgs_in_frame: 10,
            dest: NodeId(4),
            vc: VcId(2),
            out_vc: VcId(2),
            vtick: 100.0,
            class: TrafficClass::Vbr,
            created_at: Cycles(55),
        }
    }

    #[test]
    fn flitify_structure() {
        let flits = Flit::flitify(template(20));
        assert_eq!(flits.len(), 20);
        assert_eq!(flits[0].kind, FlitKind::Head);
        assert_eq!(flits[19].kind, FlitKind::Tail);
        for (i, f) in flits.iter().enumerate() {
            assert_eq!(f.seq_in_msg, i as u32);
            if i > 0 && i < 19 {
                assert_eq!(f.kind, FlitKind::Body);
            }
            assert_eq!(f.msg, MsgId(7));
            assert_eq!(f.vtick, 100.0);
        }
    }

    #[test]
    fn flitify_two_flit_message() {
        let flits = Flit::flitify(template(2));
        assert_eq!(flits[0].kind, FlitKind::Head);
        assert_eq!(flits[1].kind, FlitKind::Tail);
    }

    #[test]
    fn flitify_single_flit_message() {
        let flits = Flit::flitify(template(1));
        assert_eq!(flits.len(), 1);
        assert_eq!(flits[0].kind, FlitKind::HeadTail);
        assert!(flits[0].kind.is_head());
        assert!(flits[0].kind.is_tail());
    }

    #[test]
    fn last_message_of_frame() {
        let mut f = template(20);
        assert!(!f.is_last_msg_of_frame());
        f.msg_seq_in_frame = 9;
        assert!(f.is_last_msg_of_frame());
    }

    #[test]
    fn best_effort_vtick_dominates_but_is_finite() {
        assert!(BEST_EFFORT_VTICK.is_finite());
        // Adding it twice must still order later additions after earlier
        // ones (the FIFO-among-best-effort property).
        let a = BEST_EFFORT_VTICK;
        let b = a + BEST_EFFORT_VTICK;
        assert!(b > a);
    }

    #[test]
    fn flit_is_small_enough_to_copy_cheaply() {
        // Guard against accidental growth of the hot-path struct.
        assert!(std::mem::size_of::<Flit>() <= 96);
    }

    #[test]
    fn worm_order_accepts_well_formed_sequences() {
        let a = Flit::flitify(template(3));
        let mut b = Flit::flitify(template(2));
        for f in &mut b {
            f.msg = MsgId(8);
        }
        // Two complete back-to-back worms.
        let seq: Vec<&Flit> = a.iter().chain(b.iter()).collect();
        assert_eq!(worm_order_violation(seq), None);
        // A truncated front (head popped) and a truncated end.
        assert_eq!(worm_order_violation(a[1..].iter()), None);
        assert_eq!(worm_order_violation(a[..2].iter()), None);
        // Empty and single-flit sequences are trivially fine.
        assert_eq!(worm_order_violation(std::iter::empty::<&Flit>()), None);
        assert_eq!(worm_order_violation([&a[1]].into_iter()), None);
        // Owned items work too (the SoA buffer yields flits by value).
        assert_eq!(worm_order_violation(a.iter().copied()), None);
    }

    #[test]
    fn worm_order_rejects_interleaving_and_gaps() {
        let a = Flit::flitify(template(3));
        let mut b = Flit::flitify(template(3));
        for f in &mut b {
            f.msg = MsgId(8);
        }
        // Another worm's head before this worm's tail.
        let interleaved = [&a[0], &a[1], &b[0]];
        assert!(worm_order_violation(interleaved.into_iter())
            .expect("interleaving must be flagged")
            .contains("interleaves"));
        // A sequence gap inside one worm.
        let gapped = [&a[0], &a[2]];
        assert!(worm_order_violation(gapped.into_iter())
            .expect("gap must be flagged")
            .contains("jumps"));
        // A worm continuing after its own tail.
        let mut after_tail = a[2];
        after_tail.kind = FlitKind::Body;
        after_tail.seq_in_msg = 3;
        let ghost = [&a[2], &after_tail];
        assert!(worm_order_violation(ghost.into_iter())
            .expect("post-tail flit must be flagged")
            .contains("tail"));
        // A successor worm starting with a body flit.
        let cut = [&a[2], &b[1]];
        assert!(worm_order_violation(cut.into_iter())
            .expect("mid-worm entry must be flagged")
            .contains("mid-worm"));
    }
}
