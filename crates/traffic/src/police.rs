//! Per-stream token-bucket policing/shaping at the network interface.
//!
//! The [`mediaworm::admission`] controller decides *whether* a stream's
//! negotiated envelope fits the path; nothing in the seed enforced that a
//! source actually *stays inside* the envelope it negotiated. A
//! [`Policer`] closes that gap in front of admission control: every
//! real-time stream gets a token bucket refilled at its negotiated mean
//! rate with one mean frame of burst depth, and each message is checked
//! against it at injection time.
//!
//! Two enforcement actions (plus [`PolicingMode::Off`]):
//!
//! * **Shape** — a non-conforming message is *delayed* until the bucket
//!   covers it. Release times are monotone per source (the bucket's
//!   `updated` watermark never rewinds), so shaped sources still emit
//!   messages in time order. The added delay is charged to the message's
//!   latency: `created_at` is left at the nominal injection time.
//! * **Demote** — a non-conforming message is injected on time but with
//!   its flits' `Vtick` set to [`flitnet::BEST_EFFORT_VTICK`], so
//!   rate-based schedulers (Virtual Clock, WFQ, SCFQ) serve it at
//!   best-effort priority. The *traffic class* (and therefore the VC
//!   partition the message rides on) is deliberately unchanged: demotion
//!   must work in 100:0 mixes where no best-effort VCs exist, and moving
//!   flits across the partition would violate the class routing
//!   invariants. Under the rate-agnostic disciplines (FIFO, round-robin,
//!   DRR) demotion is a no-op by construction — those schedulers never
//!   look at `Vtick`.

use flitnet::BEST_EFFORT_VTICK;
use netsim::snap::{SnapError, SnapReader, SnapWriter};
use netsim::Cycles;

use crate::spec::WorkloadSpec;
use crate::workload::ScheduledMessage;

/// What the network interface does with traffic that exceeds a stream's
/// negotiated rate envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PolicingMode {
    /// No enforcement (the seed's behaviour).
    #[default]
    Off,
    /// Delay non-conforming messages until they conform.
    Shape,
    /// Inject non-conforming messages on time, but at best-effort
    /// scheduling priority.
    Demote,
}

impl PolicingMode {
    /// All modes, in ablation-matrix order.
    pub const ALL: [PolicingMode; 3] =
        [PolicingMode::Off, PolicingMode::Shape, PolicingMode::Demote];
}

impl std::fmt::Display for PolicingMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PolicingMode::Off => "off",
            PolicingMode::Shape => "shape",
            PolicingMode::Demote => "demote",
        })
    }
}

impl std::str::FromStr for PolicingMode {
    type Err = String;

    fn from_str(s: &str) -> Result<PolicingMode, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" => Ok(PolicingMode::Off),
            "shape" => Ok(PolicingMode::Shape),
            "demote" => Ok(PolicingMode::Demote),
            other => Err(format!(
                "unknown policing mode {other:?} (off|shape|demote)"
            )),
        }
    }
}

/// A classic token bucket in flit units.
///
/// Tokens accrue at `rate` flits per cycle up to `depth`; a message of
/// `n` flits conforms when `n` tokens are available.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate: f64,
    depth: f64,
    tokens: f64,
    /// The cycle `tokens` is valid for; never rewinds.
    updated: Cycles,
}

impl TokenBucket {
    /// Creates a bucket that starts full.
    ///
    /// # Panics
    ///
    /// Panics unless `rate` is positive and `depth` is at least one flit.
    pub fn new(rate: f64, depth: f64) -> TokenBucket {
        assert!(rate > 0.0, "token rate must be positive");
        assert!(depth >= 1.0, "bucket must hold at least one flit");
        TokenBucket {
            rate,
            depth,
            tokens: depth,
            updated: Cycles::ZERO,
        }
    }

    fn refill(&mut self, now: Cycles) {
        if now > self.updated {
            let dt = (now.0 - self.updated.0) as f64;
            self.tokens = (self.tokens + dt * self.rate).min(self.depth);
            self.updated = now;
        }
    }

    /// Checks `need` flits at time `at`, consuming tokens only when the
    /// message conforms. Returns `true` on conformance.
    pub fn conforms(&mut self, at: Cycles, need: f64) -> bool {
        self.refill(at);
        if self.tokens >= need {
            self.tokens -= need;
            true
        } else {
            false
        }
    }

    /// Returns the earliest cycle `>= at` at which `need` flits conform,
    /// consuming the tokens there. Successive calls return non-decreasing
    /// times (the watermark never rewinds), so a shaped source keeps
    /// emitting in time order.
    ///
    /// # Panics
    ///
    /// Panics if `need` exceeds the bucket depth (such a message could
    /// never conform).
    pub fn shape(&mut self, at: Cycles, need: f64) -> Cycles {
        assert!(need <= self.depth, "message larger than bucket depth");
        self.refill(at);
        if self.tokens < need {
            let wait = ((need - self.tokens) / self.rate).ceil();
            // Clamp to the bucket depth, exactly like `refill`: `wait` is
            // rounded up to a whole cycle, and banking the fractional
            // remainder of `wait * rate` as bonus tokens let a shaped
            // source's long-run output creep past the σ + ρt envelope
            // (the same envelope the calculus delay bounds assume).
            self.tokens = (self.tokens + wait * self.rate).min(self.depth);
            self.updated += Cycles(wait as u64);
        }
        self.tokens -= need;
        self.updated
    }

    fn save(&self, w: &mut SnapWriter) {
        w.f64(self.tokens);
        w.u64(self.updated.0);
    }

    fn load_into(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.tokens = r.f64()?;
        self.updated = Cycles(r.u64()?);
        Ok(())
    }
}

/// Per-stream policing state for a workload's real-time streams.
#[derive(Debug, Clone)]
pub struct Policer {
    mode: PolicingMode,
    buckets: Vec<TokenBucket>,
}

impl Policer {
    /// Creates a policer for `streams` real-time streams against the
    /// spec's negotiated envelope: tokens at the stream's mean rate
    /// (`stream_bps` as a fraction of the link, i.e. flits per cycle),
    /// burst depth of one mean frame.
    pub fn new(mode: PolicingMode, streams: usize, spec: &WorkloadSpec) -> Policer {
        let buckets = if mode == PolicingMode::Off {
            Vec::new()
        } else {
            let rate = spec.stream_bps / spec.link_bps;
            let depth = (spec.frame_mean_bytes / f64::from(spec.flit_bytes))
                .ceil()
                .max(f64::from(spec.msg_flits));
            (0..streams)
                .map(|_| TokenBucket::new(rate, depth))
                .collect()
        };
        Policer { mode, buckets }
    }

    /// The enforcement action.
    pub fn mode(&self) -> PolicingMode {
        self.mode
    }

    /// Polices stream `stream`'s next message in place.
    ///
    /// # Panics
    ///
    /// Panics if `stream` is out of range while policing is on.
    pub fn apply(&mut self, stream: usize, msg: &mut ScheduledMessage) {
        match self.mode {
            PolicingMode::Off => {}
            PolicingMode::Shape => {
                let need = msg.flits.len() as f64;
                msg.at = self.buckets[stream].shape(msg.at, need);
            }
            PolicingMode::Demote => {
                let need = msg.flits.len() as f64;
                if !self.buckets[stream].conforms(msg.at, need) {
                    for f in &mut msg.flits {
                        f.vtick = BEST_EFFORT_VTICK;
                    }
                }
            }
        }
    }

    /// Serialises the mutable bucket state. The mode and bucket roster
    /// are configuration and are written only as a consistency check.
    pub fn save(&self, w: &mut SnapWriter) {
        w.u8(match self.mode {
            PolicingMode::Off => 0,
            PolicingMode::Shape => 1,
            PolicingMode::Demote => 2,
        });
        w.usize(self.buckets.len());
        for b in &self.buckets {
            b.save(w);
        }
    }

    /// Restores state saved by [`Policer::save`].
    ///
    /// # Errors
    ///
    /// Propagates decoding errors; rejects a snapshot whose mode or
    /// bucket count disagrees with this policer's configuration.
    pub fn load_into(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let tag = r.u8()?;
        let expect = match self.mode {
            PolicingMode::Off => 0,
            PolicingMode::Shape => 1,
            PolicingMode::Demote => 2,
        };
        if tag != expect {
            return Err(SnapError::BadValue("policing mode mismatch"));
        }
        if r.usize()? != self.buckets.len() {
            return Err(SnapError::BadValue("policer bucket count mismatch"));
        }
        for b in &mut self.buckets {
            b.load_into(r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::ScheduledMessage;
    use flitnet::{Flit, FlitKind, FrameId, MsgId, NodeId, StreamId, TrafficClass, VcId};

    fn msg(at: u64, flits: u32) -> ScheduledMessage {
        let template = Flit {
            kind: FlitKind::Head,
            stream: StreamId(0),
            msg: MsgId(0),
            frame: FrameId(0),
            seq_in_msg: 0,
            msg_len: flits,
            msg_seq_in_frame: 0,
            msgs_in_frame: 1,
            dest: NodeId(1),
            vc: VcId(0),
            out_vc: VcId(0),
            vtick: 100.0,
            class: TrafficClass::Vbr,
            created_at: Cycles(at),
        };
        ScheduledMessage {
            at: Cycles(at),
            src: NodeId(0),
            vc_in: VcId(0),
            flits: Flit::flitify(template),
        }
    }

    fn policer(mode: PolicingMode) -> Policer {
        // Paper defaults: 0.01 flits/cycle per stream, ~4167-flit burst.
        Policer::new(mode, 1, &WorkloadSpec::paper_default())
    }

    #[test]
    fn conforming_traffic_passes_untouched() {
        let mut p = policer(PolicingMode::Shape);
        // One 20-flit message every 2000 cycles = exactly the 0.01
        // flits/cycle envelope.
        for k in 0..50u64 {
            let mut m = msg(k * 2_000, 20);
            p.apply(0, &mut m);
            assert_eq!(m.at, Cycles(k * 2_000), "conforming message delayed");
            assert!(m.flits.iter().all(|f| f.vtick == 100.0));
        }
    }

    #[test]
    fn shaping_spaces_a_burst_at_the_token_rate() {
        let mut p = policer(PolicingMode::Shape);
        // Enough back-to-back messages at t=0 to exhaust the 4167-flit
        // burst allowance (208 messages of 20 flits).
        let mut releases = Vec::new();
        for _ in 0..212 {
            let mut m = msg(0, 20);
            p.apply(0, &mut m);
            releases.push(m.at);
        }
        assert_eq!(releases[207], Cycles(0), "burst depth must pass");
        assert!(releases[208] > Cycles(0), "past-burst message must wait");
        // Steady state: one 20-flit message per 20/0.01 = 2000 cycles.
        let spacing = releases[211].0 - releases[210].0;
        assert_eq!(spacing, 2_000, "shaped spacing {spacing}");
        // Monotone release order.
        assert!(releases.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn demote_downgrades_only_nonconforming_messages() {
        let mut p = policer(PolicingMode::Demote);
        let mut demoted = 0;
        for _ in 0..212 {
            let mut m = msg(0, 20);
            p.apply(0, &mut m);
            assert_eq!(m.at, Cycles(0), "demote never delays");
            if m.flits[0].vtick == BEST_EFFORT_VTICK {
                demoted += 1;
                // Class (and therefore VC partition) is untouched.
                assert!(m.flits.iter().all(|f| f.class == TrafficClass::Vbr));
                assert!(m.flits.iter().all(|f| f.vtick == BEST_EFFORT_VTICK));
            }
        }
        assert_eq!(demoted, 4, "208 in-burst messages conform, 4 do not");
    }

    #[test]
    fn off_mode_is_a_no_op() {
        let mut p = policer(PolicingMode::Off);
        let mut m = msg(0, 20);
        let before = m.flits.clone();
        for _ in 0..500 {
            p.apply(0, &mut m);
        }
        assert_eq!(m.at, Cycles(0));
        assert_eq!(m.flits.len(), before.len());
        assert!(m.flits[0].vtick == before[0].vtick);
    }

    #[test]
    fn bucket_state_round_trips_through_snapshot() {
        let mut a = policer(PolicingMode::Shape);
        for k in 0..100u64 {
            let mut m = msg(k * 7, 20);
            a.apply(0, &mut m);
        }
        let mut w = SnapWriter::new();
        a.save(&mut w);
        let buf = w.finish();
        let mut b = policer(PolicingMode::Shape);
        b.load_into(&mut SnapReader::new(&buf).unwrap()).unwrap();
        for k in 100..120u64 {
            let mut ma = msg(k * 7, 20);
            let mut mb = msg(k * 7, 20);
            a.apply(0, &mut ma);
            b.apply(0, &mut mb);
            assert_eq!(ma.at, mb.at, "restored policer diverged");
        }
    }

    #[test]
    fn mode_mismatch_is_rejected() {
        let a = policer(PolicingMode::Shape);
        let mut w = SnapWriter::new();
        a.save(&mut w);
        let buf = w.finish();
        let mut b = policer(PolicingMode::Demote);
        assert!(matches!(
            b.load_into(&mut SnapReader::new(&buf).unwrap()),
            Err(SnapError::BadValue(_))
        ));
    }

    #[test]
    fn parse_and_display_round_trip() {
        for mode in PolicingMode::ALL {
            assert_eq!(mode.to_string().parse::<PolicingMode>(), Ok(mode));
        }
        assert!("bogus".parse::<PolicingMode>().is_err());
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn shaped_output_never_exceeds_sigma_rho_envelope(
            rate in 0.3f64..0.95,
            depth_flits in 4u32..24,
            gaps in proptest::collection::vec(0u64..2, 150..250),
        ) {
            // Regression: `shape` used to bank the fractional remainder of
            // `wait.ceil() * rate` as bonus tokens, letting `tokens` creep
            // past `depth` under a saturated backlog of depth-sized
            // messages (banking needs `need > depth − rate`, so full-depth
            // worms are the worst case). The banked surplus eventually
            // funds an extra early release that breaks the stationary
            // (σ, ρ) envelope — the exact envelope the calculus delay
            // bounds assume `PolicingMode::Shape` enforces.
            let depth = f64::from(depth_flits);
            let mut bucket = TokenBucket::new(rate, depth);
            let mut releases: Vec<(u64, f64)> = Vec::new();
            let mut at = Cycles::ZERO;
            for &gap in &gaps {
                at += Cycles(gap);
                let release = bucket.shape(at, depth);
                releases.push((release.0, depth));
            }
            // σ + ρt must hold over EVERY window, not just from t = 0:
            // the initially-full bucket's slack masks from-zero checks.
            for i in 0..releases.len() {
                let mut out = 0.0;
                for j in i..releases.len() {
                    out += releases[j].1;
                    let window = (releases[j].0 - releases[i].0) as f64;
                    prop_assert!(
                        out <= depth + rate * window + 1e-6,
                        "window [{}, {}]: released {} > {} + {} * {}",
                        releases[i].0, releases[j].0, out, depth, rate, window
                    );
                }
            }
        }
    }
}
