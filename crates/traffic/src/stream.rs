//! Real-time (VBR/CBR) stream sources.

use flitnet::{Flit, FlitKind, FrameId, MsgId, NodeId, StreamId, TrafficClass, VcId};
use netsim::dist::{Constant, Distribution, Normal};
use netsim::snap::{SnapError, SnapReader, SnapWriter};
use netsim::{Cycles, SimRng, TimeBase};

use crate::spec::{FrameModel, StreamClass, WorkloadSpec};
use crate::workload::ScheduledMessage;

/// One VBR or CBR stream between a fixed source/destination pair.
///
/// Frames are generated every `frame_interval`; each frame is segmented
/// into `msg_flits`-flit messages injected evenly across the interval
/// (paper §4.2.1). Each message's head flit carries the stream's `Vtick`.
///
/// # Example
///
/// ```
/// use traffic::{RealTimeStream, StreamClass, WorkloadSpec};
/// use flitnet::{NodeId, StreamId, VcId};
/// use netsim::{Cycles, SimRng};
///
/// let spec = WorkloadSpec::paper_default();
/// let mut rng = SimRng::seed_from(3);
/// let mut s = RealTimeStream::new(
///     &spec, StreamClass::Vbr, StreamId(0),
///     NodeId(0), NodeId(5), VcId(1), VcId(2),
///     Cycles(0),
/// );
/// let mut next_msg_id = 0u64;
/// let m = s.next_message(&mut rng, &mut next_msg_id);
/// assert_eq!(m.src, NodeId(0));
/// assert!(!m.flits.is_empty());
/// ```
#[derive(Debug)]
pub struct RealTimeStream {
    id: StreamId,
    class: TrafficClass,
    src: NodeId,
    dest: NodeId,
    /// VC used on the source's injection link.
    vc_in: VcId,
    /// VC requested on every subsequent hop (drawn at setup, §4.2.1).
    vc_out: VcId,
    vtick: f64,
    msg_flits: u32,
    frame_interval: Cycles,
    frame_sizer: FrameSizer,
    timebase: TimeBase,
    flit_bytes: u32,
    // --- generation state ---
    frame_idx: u32,
    frame_start: Cycles,
    /// Remaining message lengths for the current frame, reversed (pop from
    /// the back); empty means "start the next frame".
    pending: Vec<u32>,
    msgs_in_frame: u32,
    msg_gap: Cycles,
    next_msg_seq: u32,
}

/// Upper bound on a single frame's flit count (2²² flits = 16 MiB of
/// 4-byte flits, ~1000× the paper's 16 666-byte mean frame).
///
/// A VBR frame size is a normal sample; with a pathological σ the tail can
/// exceed what `as u32` can represent, and even a representable multi-
/// billion-flit frame would wedge the simulation inside one frame.
/// [`RealTimeStream::begin_frame`] clamps the sampled size here instead of
/// relying on float-to-int saturation.
pub const MAX_FRAME_FLITS: u32 = 1 << 22;

/// The classic 12-frame MPEG-2 group-of-pictures pattern.
const GOP_PATTERN: [char; 12] = ['I', 'B', 'B', 'P', 'B', 'B', 'P', 'B', 'B', 'P', 'B', 'B'];

/// Per-type size multipliers for a 5:3:1 I:P:B ratio, normalised so the
/// pattern (1×I, 3×P, 8×B) averages to 1.0.
fn gop_scale(kind: char) -> f64 {
    // mean = (1·5 + 3·3 + 8·1) / 12 = 22/12.
    let unit = 12.0 / 22.0;
    match kind {
        'I' => 5.0 * unit,
        'P' => 3.0 * unit,
        _ => unit,
    }
}

/// Frame-size model: VBR draws from a normal (the paper) or follows a
/// GOP pattern (extension), CBR is constant.
#[derive(Debug)]
enum FrameSizer {
    Vbr(Normal),
    /// GOP-structured: deterministic per-type means plus normal noise,
    /// advancing through [`GOP_PATTERN`] frame by frame.
    Gop {
        mean: f64,
        noise: Normal,
        idx: usize,
    },
    Cbr(Constant),
}

impl FrameSizer {
    fn sample_bytes(&mut self, rng: &mut SimRng, floor: f64) -> f64 {
        let raw = match self {
            FrameSizer::Vbr(n) => n.sample(rng),
            FrameSizer::Gop { mean, noise, idx } => {
                let kind = GOP_PATTERN[*idx % GOP_PATTERN.len()];
                *idx += 1;
                *mean * gop_scale(kind) + noise.sample(rng) * gop_scale(kind)
            }
            FrameSizer::Cbr(c) => c.sample(rng),
        };
        raw.max(floor)
    }
}

impl RealTimeStream {
    /// Creates a stream starting its first frame at `start`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        spec: &WorkloadSpec,
        class: StreamClass,
        id: StreamId,
        src: NodeId,
        dest: NodeId,
        vc_in: VcId,
        vc_out: VcId,
        start: Cycles,
    ) -> RealTimeStream {
        spec.validate();
        let tb = spec.timebase();
        let sizer = match (class, spec.frame_model) {
            (StreamClass::Vbr, FrameModel::Normal) => {
                FrameSizer::Vbr(Normal::new(spec.frame_mean_bytes, spec.frame_std_bytes))
            }
            (StreamClass::Vbr, FrameModel::Gop) => FrameSizer::Gop {
                mean: spec.frame_mean_bytes,
                noise: Normal::new(0.0, spec.frame_std_bytes),
                idx: 0,
            },
            (StreamClass::Cbr, _) => FrameSizer::Cbr(Constant(spec.frame_mean_bytes)),
        };
        RealTimeStream {
            id,
            class: class.traffic_class(),
            src,
            dest,
            vc_in,
            vc_out,
            vtick: spec.stream_vtick_cycles(),
            msg_flits: spec.msg_flits,
            frame_interval: tb.cycles_from_ms(spec.frame_interval_ms),
            frame_sizer: sizer,
            timebase: tb,
            flit_bytes: spec.flit_bytes,
            frame_idx: 0,
            frame_start: start,
            pending: Vec::new(),
            msgs_in_frame: 0,
            msg_gap: Cycles::ZERO,
            next_msg_seq: 0,
        }
    }

    /// Stream id.
    pub fn id(&self) -> StreamId {
        self.id
    }

    /// Source endpoint.
    pub fn src(&self) -> NodeId {
        self.src
    }

    /// Destination endpoint.
    pub fn dest(&self) -> NodeId {
        self.dest
    }

    /// Injection-link VC.
    pub fn vc_in(&self) -> VcId {
        self.vc_in
    }

    /// Requested downstream VC.
    pub fn vc_out(&self) -> VcId {
        self.vc_out
    }

    /// Traffic class (VBR or CBR).
    pub fn class(&self) -> TrafficClass {
        self.class
    }

    /// The stream's negotiated Vtick in cycles/flit.
    pub fn vtick(&self) -> f64 {
        self.vtick
    }

    fn begin_frame(&mut self, rng: &mut SimRng) {
        let bytes = self
            .frame_sizer
            .sample_bytes(rng, f64::from(self.flit_bytes));
        // Clamp the sampled size to MAX_FRAME_FLITS *before* the cast: an
        // unclamped normal tail (pathological σ) otherwise rides float→int
        // saturation to u32::MAX ≈ 4.3 G flits and wedges the simulation
        // inside one frame.
        let flits = (bytes / f64::from(self.flit_bytes))
            .ceil()
            .clamp(1.0, f64::from(MAX_FRAME_FLITS)) as u32;
        let msgs = flits.div_ceil(self.msg_flits);
        // Message lengths: full messages plus a possibly-short last one,
        // stored reversed so pop() yields them in order.
        let mut lens = Vec::with_capacity(msgs as usize);
        let mut remaining = flits;
        for _ in 0..msgs {
            let len = remaining.min(self.msg_flits);
            lens.push(len);
            remaining -= len;
        }
        lens.reverse();
        self.pending = lens;
        self.msgs_in_frame = msgs;
        self.msg_gap = Cycles(self.frame_interval.get() / u64::from(msgs));
        self.next_msg_seq = 0;
    }

    /// Produces the stream's next message (monotonically increasing
    /// injection times). `next_msg_id` is a global message-id counter.
    pub fn next_message(&mut self, rng: &mut SimRng, next_msg_id: &mut u64) -> ScheduledMessage {
        if self.pending.is_empty() {
            if self.msgs_in_frame > 0 {
                // Finished a frame: advance to the next interval boundary.
                self.frame_idx += 1;
                self.frame_start += self.frame_interval;
            }
            self.begin_frame(rng);
        }
        let len = self.pending.pop().expect("begin_frame produced messages");
        let seq = self.next_msg_seq;
        self.next_msg_seq += 1;
        let at = self.frame_start + Cycles(u64::from(seq) * self.msg_gap.get());
        let msg_id = MsgId(*next_msg_id);
        *next_msg_id += 1;
        let template = Flit {
            kind: FlitKind::Head,
            stream: self.id,
            msg: msg_id,
            frame: FrameId(self.frame_idx),
            seq_in_msg: 0,
            msg_len: len,
            msg_seq_in_frame: seq,
            msgs_in_frame: self.msgs_in_frame,
            dest: self.dest,
            vc: self.vc_in,
            out_vc: self.vc_out,
            vtick: self.vtick,
            class: self.class,
            created_at: at,
        };
        ScheduledMessage {
            at,
            src: self.src,
            vc_in: self.vc_in,
            flits: Flit::flitify(template),
        }
    }

    /// The time base used for cycle conversions (handy for tests).
    pub fn timebase(&self) -> TimeBase {
        self.timebase
    }

    /// Serialises the stream's generation state (frame position, pending
    /// message lengths, GOP cursor) into a snapshot. The structural fields
    /// (endpoints, VCs, Vtick, sizer parameters) are derived from the
    /// workload spec and are not written.
    pub fn save(&self, w: &mut SnapWriter) {
        w.u32(self.frame_idx);
        w.u64(self.frame_start.0);
        w.usize(self.pending.len());
        for &len in &self.pending {
            w.u32(len);
        }
        w.u32(self.msgs_in_frame);
        w.u64(self.msg_gap.0);
        w.u32(self.next_msg_seq);
        w.usize(match &self.frame_sizer {
            FrameSizer::Gop { idx, .. } => *idx,
            _ => 0,
        });
    }

    /// Restores generation state saved by [`RealTimeStream::save`] into
    /// this freshly-constructed stream.
    ///
    /// # Errors
    ///
    /// Propagates snapshot decoding errors; rejects a GOP cursor on a
    /// non-GOP sizer.
    pub fn load_into(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.frame_idx = r.u32()?;
        self.frame_start = Cycles(r.u64()?);
        let n = r.usize()?;
        self.pending.clear();
        for _ in 0..n {
            self.pending.push(r.u32()?);
        }
        self.msgs_in_frame = r.u32()?;
        self.msg_gap = Cycles(r.u64()?);
        self.next_msg_seq = r.u32()?;
        let gop_idx = r.usize()?;
        match &mut self.frame_sizer {
            FrameSizer::Gop { idx, .. } => *idx = gop_idx,
            _ if gop_idx != 0 => {
                return Err(SnapError::BadValue("GOP cursor on a non-GOP frame sizer"))
            }
            _ => {}
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(class: StreamClass) -> RealTimeStream {
        RealTimeStream::new(
            &WorkloadSpec::paper_default(),
            class,
            StreamId(7),
            NodeId(1),
            NodeId(2),
            VcId(0),
            VcId(3),
            Cycles(1000),
        )
    }

    #[test]
    fn messages_cover_whole_frames_in_order() {
        let mut s = stream(StreamClass::Cbr);
        let mut rng = SimRng::seed_from(1);
        let mut id = 0u64;
        // CBR frame: 16_666 B = 4167 flits = 209 messages.
        let mut total = 0u32;
        let mut last_at = Cycles::ZERO;
        for k in 0..209 {
            let m = s.next_message(&mut rng, &mut id);
            assert!(m.at >= last_at, "injections must be monotonic");
            last_at = m.at;
            let head = m.flits[0];
            assert_eq!(head.msg_seq_in_frame, k);
            assert_eq!(head.msgs_in_frame, 209);
            assert_eq!(head.frame, FrameId(0));
            total += head.msg_len;
        }
        assert_eq!(total, 4167);
        // Next message starts frame 1, one interval later.
        let m = s.next_message(&mut rng, &mut id);
        assert_eq!(m.flits[0].frame, FrameId(1));
        let tb = s.timebase();
        let frame_cycles = tb.cycles_from_ms(33.0);
        assert_eq!(m.at, Cycles(1000) + frame_cycles);
    }

    #[test]
    fn last_message_of_cbr_frame_is_short() {
        let mut s = stream(StreamClass::Cbr);
        let mut rng = SimRng::seed_from(1);
        let mut id = 0u64;
        let mut lens = Vec::new();
        for _ in 0..209 {
            lens.push(s.next_message(&mut rng, &mut id).flits[0].msg_len);
        }
        // 209 messages: 208 full (20 flits) + 7-flit remainder.
        assert!(lens[..208].iter().all(|&l| l == 20));
        assert_eq!(lens[208], 7);
    }

    #[test]
    fn vbr_frame_sizes_vary() {
        let mut s = stream(StreamClass::Vbr);
        let mut rng = SimRng::seed_from(2);
        let mut id = 0u64;
        let mut frames = std::collections::HashSet::new();
        // Gather msgs_in_frame for 10 frames.
        for _ in 0..10 {
            let m = s.next_message(&mut rng, &mut id);
            let head = m.flits[0];
            frames.insert(head.msgs_in_frame);
            // Skip the rest of the frame.
            for _ in 1..head.msgs_in_frame {
                let _ = s.next_message(&mut rng, &mut id);
            }
        }
        assert!(frames.len() > 1, "VBR frames should vary in size");
    }

    #[test]
    fn gop_pattern_produces_large_i_frames() {
        let spec = WorkloadSpec {
            frame_model: FrameModel::Gop,
            frame_std_bytes: 0.0,
            ..WorkloadSpec::paper_default()
        };
        let mut s = RealTimeStream::new(
            &spec,
            StreamClass::Vbr,
            StreamId(0),
            NodeId(0),
            NodeId(1),
            VcId(0),
            VcId(1),
            Cycles(0),
        );
        let mut rng = SimRng::seed_from(8);
        let mut id = 0u64;
        // Collect the flit totals of 12 consecutive frames.
        let mut frame_flits = Vec::new();
        for _ in 0..12 {
            let m = s.next_message(&mut rng, &mut id);
            let msgs = m.flits[0].msgs_in_frame;
            let mut total = m.flits.len() as u32;
            for _ in 1..msgs {
                total += s.next_message(&mut rng, &mut id).flits.len() as u32;
            }
            frame_flits.push(total);
        }
        // I frame ≈ 5× a B frame.
        let i = frame_flits[0] as f64;
        let b = frame_flits[1] as f64;
        assert!((i / b - 5.0).abs() < 0.1, "I/B ratio {}", i / b);
        // Pattern mean ≈ the configured mean frame size in flits.
        let mean: f64 = frame_flits.iter().map(|&f| f as f64).sum::<f64>() / 12.0;
        assert!((mean - 4167.0).abs() < 30.0, "GOP mean {mean}");
        // The pattern repeats: frame 12 is an I frame again.
        let m = s.next_message(&mut rng, &mut id);
        let msgs = m.flits[0].msgs_in_frame;
        let mut total = m.flits.len() as u32;
        for _ in 1..msgs {
            total += s.next_message(&mut rng, &mut id).flits.len() as u32;
        }
        assert_eq!(total, frame_flits[0]);
    }

    #[test]
    fn mean_rate_tracks_4mbps() {
        let mut s = stream(StreamClass::Vbr);
        let mut rng = SimRng::seed_from(3);
        let mut id = 0u64;
        let mut flits = 0u64;
        let mut last = Cycles::ZERO;
        for _ in 0..50_000 {
            let m = s.next_message(&mut rng, &mut id);
            flits += m.flits.len() as u64;
            last = m.at;
        }
        let secs = s.timebase().cycles_to_secs(last - Cycles(1000));
        let bps = flits as f64 * 32.0 / secs;
        assert!((bps - 4e6).abs() < 0.1e6, "rate {bps}");
    }

    #[test]
    fn flits_carry_stream_metadata() {
        let mut s = stream(StreamClass::Vbr);
        let mut rng = SimRng::seed_from(4);
        let mut id = 5u64;
        let m = s.next_message(&mut rng, &mut id);
        assert_eq!(id, 6);
        for f in &m.flits {
            assert_eq!(f.stream, StreamId(7));
            assert_eq!(f.dest, NodeId(2));
            assert_eq!(f.vc, VcId(0), "current-hop VC starts as vc_in");
            assert_eq!(f.out_vc, VcId(3), "requested downstream VC");
            assert_eq!(f.class, TrafficClass::Vbr);
            assert!((f.vtick - 100.0).abs() < 1e-9);
        }
        assert_eq!(m.vc_in, VcId(0));
    }

    #[test]
    fn pathological_sigma_is_clamped_to_max_frame() {
        // A normal tail with an absurd σ must clamp to MAX_FRAME_FLITS,
        // not saturate `as u32` to ~4.3 G flits.
        let spec = WorkloadSpec {
            frame_std_bytes: 1e18,
            ..WorkloadSpec::paper_default()
        };
        let limit = MAX_FRAME_FLITS.div_ceil(spec.msg_flits);
        let mut clamped = 0u32;
        for seed in 0..20 {
            let mut s = RealTimeStream::new(
                &spec,
                StreamClass::Vbr,
                StreamId(0),
                NodeId(0),
                NodeId(1),
                VcId(0),
                VcId(1),
                Cycles(0),
            );
            let mut rng = SimRng::seed_from(seed);
            let mut id = 0u64;
            let head = s.next_message(&mut rng, &mut id).flits[0];
            assert!(
                head.msgs_in_frame <= limit,
                "seed {seed}: frame of {} messages exceeds the clamp",
                head.msgs_in_frame
            );
            if head.msgs_in_frame == limit {
                clamped += 1;
            }
        }
        // With σ = 1e18 roughly half the samples are enormous, so the
        // clamp must actually have engaged.
        assert!(clamped > 0, "no frame hit the clamp — σ too small?");
    }

    #[test]
    fn msg_ids_are_unique_and_sequential() {
        let mut s = stream(StreamClass::Cbr);
        let mut rng = SimRng::seed_from(5);
        let mut id = 0u64;
        let a = s.next_message(&mut rng, &mut id).flits[0].msg;
        let b = s.next_message(&mut rng, &mut id).flits[0].msg;
        assert_eq!(a, MsgId(0));
        assert_eq!(b, MsgId(1));
    }
}
