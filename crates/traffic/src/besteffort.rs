//! Best-effort traffic sources.

use flitnet::{
    Flit, FlitKind, FrameId, MsgId, NodeId, StreamId, TrafficClass, VcId, BEST_EFFORT_VTICK,
};
use netsim::dist::{Distribution, Exponential};
use netsim::snap::{SnapError, SnapReader, SnapWriter};
use netsim::{Cycles, SimRng};

use crate::spec::{ArrivalProcess, WorkloadSpec};
use crate::workload::ScheduledMessage;

/// A per-node best-effort source.
///
/// The paper (§4.2.2): constant injection rate, 20-flit messages, the
/// destination "picked from a uniform distribution of the nodes in the
/// system", and "the input and output VC for a message are picked from a
/// uniform distribution of the available VCs for this traffic class".
///
/// # Example
///
/// ```
/// use traffic::{BestEffortSource, WorkloadSpec};
/// use flitnet::{NodeId, StreamId, VcId};
/// use netsim::{Cycles, SimRng};
///
/// let spec = WorkloadSpec::paper_default();
/// let vcs: Vec<VcId> = vec![VcId(14), VcId(15)];
/// let mut rng = SimRng::seed_from(1);
/// let mut src = BestEffortSource::new(
///     &spec, StreamId(100), NodeId(0), 8, vcs, 0.2 * 400e6, Cycles(0), &mut rng,
/// );
/// let mut next_id = 0u64;
/// let m = src.next_message(&mut rng, &mut next_id);
/// assert_eq!(m.flits.len(), 20);
/// assert_ne!(m.flits[0].dest, NodeId(0)); // never self-addressed
/// ```
#[derive(Debug)]
pub struct BestEffortSource {
    id: StreamId,
    node: NodeId,
    node_count: usize,
    vcs: Vec<VcId>,
    msg_flits: u32,
    /// Mean gap between message injections, in cycles.
    mean_gap: f64,
    arrival: ArrivalProcess,
    next_at: Cycles,
    /// Fractional cycles of the gap not yet applied to `next_at`.
    /// `Cycles` is integral, so each injection rounds the gap down and
    /// banks the remainder here; without the carry a constant-rate source
    /// with a non-integer mean gap injects measurably above the requested
    /// rate forever (e.g. a 100.7-cycle gap truncated to 100 runs 0.7 %
    /// hot).
    gap_err: f64,
    msg_counter: u32,
}

impl BestEffortSource {
    /// Creates a source on `node` emitting `rate_bps` of best-effort
    /// traffic spread over the given VCs, starting at a random phase after
    /// `start`.
    ///
    /// # Panics
    ///
    /// Panics if `vcs` is empty, `rate_bps` is not positive, or fewer than
    /// two nodes exist (no possible destination).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        spec: &WorkloadSpec,
        id: StreamId,
        node: NodeId,
        node_count: usize,
        vcs: Vec<VcId>,
        rate_bps: f64,
        start: Cycles,
        rng: &mut SimRng,
    ) -> BestEffortSource {
        spec.validate();
        assert!(!vcs.is_empty(), "best-effort source needs at least one VC");
        assert!(rate_bps > 0.0, "best-effort rate must be positive");
        assert!(node_count >= 2, "need a possible destination");
        let msg_bits = f64::from(spec.msg_flits * spec.flit_bytes * 8);
        let msgs_per_sec = rate_bps / msg_bits;
        let mean_gap = spec.timebase().flits_per_second() / msgs_per_sec;
        // Random phase so constant-rate sources across nodes don't beat in
        // lock-step.
        let phase = rng.range_f64(0.0, mean_gap);
        BestEffortSource {
            id,
            node,
            node_count,
            vcs,
            msg_flits: spec.msg_flits,
            mean_gap,
            arrival: spec.arrival,
            next_at: start + Cycles(phase as u64),
            gap_err: 0.0,
            msg_counter: 0,
        }
    }

    /// The source's synthetic stream id (used for accounting only).
    pub fn id(&self) -> StreamId {
        self.id
    }

    /// The node this source injects from.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Mean injection gap in cycles.
    pub fn mean_gap_cycles(&self) -> f64 {
        self.mean_gap
    }

    /// Produces the next best-effort message.
    pub fn next_message(&mut self, rng: &mut SimRng, next_msg_id: &mut u64) -> ScheduledMessage {
        let at = self.next_at;
        let gap = match self.arrival {
            ArrivalProcess::Constant => self.mean_gap,
            ArrivalProcess::Poisson => Exponential::new(self.mean_gap).sample(rng),
        };
        // Advance by whole cycles and bank the fractional remainder: the
        // carry pays itself back as an extra cycle once it accumulates to
        // one, so the long-run rate matches the request exactly instead
        // of truncating every gap down.
        let exact = gap.max(1.0) + self.gap_err;
        let whole = exact.floor();
        self.gap_err = exact - whole;
        self.next_at = at + Cycles(whole as u64);

        let dest = NodeId(rng.index_excluding(self.node_count, self.node.index()) as u32);
        let vc_in = *rng.pick(&self.vcs);
        let vc_out = *rng.pick(&self.vcs);
        let msg_id = MsgId(*next_msg_id);
        *next_msg_id += 1;
        let seq = self.msg_counter;
        self.msg_counter = self.msg_counter.wrapping_add(1);

        let template = Flit {
            kind: FlitKind::Head,
            stream: self.id,
            msg: msg_id,
            frame: FrameId(seq),
            seq_in_msg: 0,
            msg_len: self.msg_flits,
            msg_seq_in_frame: 0,
            msgs_in_frame: 1,
            dest,
            vc: vc_in,
            out_vc: vc_out,
            vtick: BEST_EFFORT_VTICK,
            class: TrafficClass::BestEffort,
            created_at: at,
        };
        ScheduledMessage {
            at,
            src: self.node,
            vc_in,
            flits: Flit::flitify(template),
        }
    }

    /// Serialises the source's generation state (next injection time,
    /// fractional-gap carry and message counter) into a snapshot. The
    /// rate/VC configuration is derived from the workload spec and is not
    /// written.
    pub fn save(&self, w: &mut SnapWriter) {
        w.u64(self.next_at.0);
        w.f64(self.gap_err);
        w.u32(self.msg_counter);
    }

    /// Restores state saved by [`BestEffortSource::save`] into this
    /// freshly-constructed source (overwriting the random phase drawn at
    /// construction).
    ///
    /// # Errors
    ///
    /// Propagates snapshot decoding errors.
    pub fn load_into(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.next_at = Cycles(r.u64()?);
        self.gap_err = r.f64()?;
        self.msg_counter = r.u32()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn source(arrival: ArrivalProcess, rng: &mut SimRng) -> BestEffortSource {
        let spec = WorkloadSpec {
            arrival,
            ..WorkloadSpec::paper_default()
        };
        BestEffortSource::new(
            &spec,
            StreamId(50),
            NodeId(3),
            8,
            vec![VcId(14), VcId(15)],
            0.2 * 400e6, // 20 % of the link
            Cycles(0),
            rng,
        )
    }

    #[test]
    fn constant_rate_matches_request() {
        let mut rng = SimRng::seed_from(1);
        let mut s = source(ArrivalProcess::Constant, &mut rng);
        let mut id = 0u64;
        let n = 10_000;
        let mut last = Cycles::ZERO;
        for _ in 0..n {
            last = s.next_message(&mut rng, &mut id).at;
        }
        // 20 % of 400 Mbps = 80 Mbps; a 20-flit (640-bit) message every
        // 8 µs = 100 cycles.
        let mean_gap = last.as_f64() / n as f64;
        assert!((mean_gap - 100.0).abs() < 1.0, "gap {mean_gap}");
    }

    #[test]
    fn constant_rate_tracks_non_integer_gap() {
        // Regression: a constant-rate source whose mean gap is not a
        // whole number of cycles used to truncate the fraction on every
        // message (100.7 → 100), injecting 0.7 % above the requested
        // rate with no error carry. The fractional remainder must be
        // banked and paid back as whole cycles.
        let spec = WorkloadSpec::paper_default();
        let mut rng = SimRng::seed_from(7);
        // 640-bit messages against a 12.5 Mcycle/s timebase: this rate
        // works out to a mean gap of exactly 100.7 cycles.
        let rate_bps = 640.0 * spec.timebase().flits_per_second() / 100.7;
        let mut s = BestEffortSource::new(
            &spec,
            StreamId(51),
            NodeId(3),
            8,
            vec![VcId(14), VcId(15)],
            rate_bps,
            Cycles(0),
            &mut rng,
        );
        assert!((s.mean_gap_cycles() - 100.7).abs() < 1e-9);
        let mut id = 0u64;
        let n = 10_000;
        let mut last = Cycles::ZERO;
        for _ in 0..n {
            last = s.next_message(&mut rng, &mut id).at;
        }
        let mean_gap = last.as_f64() / n as f64;
        assert!(
            (mean_gap - 100.7).abs() < 0.05,
            "measured gap {mean_gap} drifted from requested 100.7"
        );
    }

    #[test]
    fn gap_error_carry_survives_snapshot() {
        // The carry is generation state: dropping it at a checkpoint
        // would make a restored run drift from the uninterrupted one.
        let spec = WorkloadSpec::paper_default();
        let mut rng = SimRng::seed_from(8);
        let rate_bps = 640.0 * spec.timebase().flits_per_second() / 100.7;
        let make = |rng: &mut SimRng| {
            BestEffortSource::new(
                &spec,
                StreamId(52),
                NodeId(1),
                8,
                vec![VcId(15)],
                rate_bps,
                Cycles(0),
                rng,
            )
        };
        let mut a = make(&mut rng);
        let mut id = 0u64;
        for _ in 0..7 {
            a.next_message(&mut rng, &mut id);
        }
        let mut w = SnapWriter::new();
        a.save(&mut w);
        let buf = w.finish();
        let mut b = make(&mut rng);
        b.load_into(&mut SnapReader::new(&buf).unwrap()).unwrap();
        // Same RNG state for both from here on: constant arrivals only
        // consume RNG draws for dest/VC picks, which we mirror by
        // cloning the RNG via snapshot-free reseeding.
        let mut rng_a = SimRng::seed_from(99);
        let mut rng_b = SimRng::seed_from(99);
        let (mut ia, mut ib) = (100u64, 100u64);
        for _ in 0..50 {
            let ma = a.next_message(&mut rng_a, &mut ia);
            let mb = b.next_message(&mut rng_b, &mut ib);
            assert_eq!(ma.at, mb.at, "restored source diverged");
        }
    }

    #[test]
    fn poisson_rate_matches_request() {
        let mut rng = SimRng::seed_from(2);
        let mut s = source(ArrivalProcess::Poisson, &mut rng);
        let mut id = 0u64;
        let n = 50_000;
        let mut last = Cycles::ZERO;
        for _ in 0..n {
            last = s.next_message(&mut rng, &mut id).at;
        }
        let mean_gap = last.as_f64() / n as f64;
        assert!((mean_gap - 100.0).abs() < 3.0, "gap {mean_gap}");
    }

    #[test]
    fn destinations_are_uniform_and_never_self() {
        let mut rng = SimRng::seed_from(3);
        let mut s = source(ArrivalProcess::Constant, &mut rng);
        let mut id = 0u64;
        let mut counts = [0u32; 8];
        for _ in 0..7000 {
            let m = s.next_message(&mut rng, &mut id);
            counts[m.flits[0].dest.index()] += 1;
        }
        assert_eq!(counts[3], 0, "never self-addressed");
        for (i, &c) in counts.iter().enumerate() {
            if i != 3 {
                assert!((800..1200).contains(&c), "dest {i} count {c}");
            }
        }
    }

    #[test]
    fn vcs_drawn_from_allowed_set() {
        let mut rng = SimRng::seed_from(4);
        let mut s = source(ArrivalProcess::Constant, &mut rng);
        let mut id = 0u64;
        for _ in 0..100 {
            let m = s.next_message(&mut rng, &mut id);
            assert!(m.vc_in == VcId(14) || m.vc_in == VcId(15));
            assert!(m.flits[0].vc == m.vc_in);
            assert!(m.flits[0].out_vc == VcId(14) || m.flits[0].out_vc == VcId(15));
        }
    }

    #[test]
    fn best_effort_flits_carry_infinite_slack() {
        let mut rng = SimRng::seed_from(5);
        let mut s = source(ArrivalProcess::Constant, &mut rng);
        let mut id = 0u64;
        let m = s.next_message(&mut rng, &mut id);
        for f in &m.flits {
            assert_eq!(f.vtick, BEST_EFFORT_VTICK);
            assert_eq!(f.class, TrafficClass::BestEffort);
        }
        assert_eq!(m.flits[0].msgs_in_frame, 1);
    }
}
