//! Building complete traffic-mix workloads (paper §4.2.3).

use flitnet::{Flit, NodeId, StreamId, TrafficClass, VcId, VcPartition};
use netsim::snap::{SnapError, SnapReader, SnapWriter};
use netsim::{Cycles, SimRng};

use crate::besteffort::BestEffortSource;
use crate::police::{Policer, PolicingMode};
use crate::spec::{StreamClass, WorkloadSpec};
use crate::stream::RealTimeStream;

/// One message ready for injection: when, where, and its flits.
#[derive(Debug, Clone)]
pub struct ScheduledMessage {
    /// Injection cycle at the source network interface.
    pub at: Cycles,
    /// Source endpoint.
    pub src: NodeId,
    /// VC on the injection link.
    pub vc_in: VcId,
    /// The message's flits in order (head … tail).
    pub flits: Vec<Flit>,
}

/// A traffic source: either a fixed real-time stream or a per-node
/// best-effort generator.
#[derive(Debug)]
pub enum Source {
    /// A VBR or CBR stream.
    RealTime(RealTimeStream),
    /// A best-effort generator.
    BestEffort(BestEffortSource),
}

/// Static description of a real-time stream, used for reports and for PCS
/// connection establishment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamInfo {
    /// Stream id (indexes [`metrics`-style trackers](https://docs.rs) densely).
    pub id: StreamId,
    /// VBR or CBR.
    pub class: TrafficClass,
    /// Source endpoint.
    pub src: NodeId,
    /// Destination endpoint.
    pub dest: NodeId,
    /// Injection-link VC.
    pub vc_in: VcId,
    /// Requested downstream VC.
    pub vc_out: VcId,
}

/// A complete workload: every source in the system plus shared generation
/// state (RNG, global message ids).
///
/// The simulation driver asks each source for its next message and keeps a
/// calendar of pending injections; see `mediaworm::sim`.
#[derive(Debug)]
pub struct Workload {
    sources: Vec<Source>,
    infos: Vec<StreamInfo>,
    rng: SimRng,
    next_msg_id: u64,
    rt_count: usize,
    rt_load: f64,
    be_load: f64,
    spec: WorkloadSpec,
    partition: VcPartition,
    oversubscribed: bool,
    policer: Policer,
}

impl Workload {
    /// Number of sources (real-time streams + best-effort generators).
    pub fn source_count(&self) -> usize {
        self.sources.len()
    }

    /// Number of real-time streams.
    pub fn real_time_stream_count(&self) -> usize {
        self.rt_count
    }

    /// Descriptions of the real-time streams.
    pub fn stream_infos(&self) -> &[StreamInfo] {
        &self.infos
    }

    /// The workload's physical parameters.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// The VC partition the workload was built against.
    pub fn partition(&self) -> VcPartition {
        self.partition
    }

    /// Realized (real-time, best-effort) load as fractions of the link
    /// bandwidth per injection link.
    pub fn realized_load(&self) -> (f64, f64) {
        (self.rt_load, self.be_load)
    }

    /// Whether the requested real-time load exceeded the per-VC stream
    /// capacity (`⌊(link/VCs)/stream⌋` per VC, §4.2.3) and VCs had to carry
    /// more streams than their bandwidth share strictly allows.
    pub fn is_oversubscribed(&self) -> bool {
        self.oversubscribed
    }

    /// Pulls the next message from source `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn next_message(&mut self, idx: usize) -> ScheduledMessage {
        let mut msg = match &mut self.sources[idx] {
            Source::RealTime(s) => s.next_message(&mut self.rng, &mut self.next_msg_id),
            Source::BestEffort(s) => s.next_message(&mut self.rng, &mut self.next_msg_id),
        };
        // Police real-time sources against their negotiated envelope at
        // the NI, in front of admission control. Best-effort sources have
        // no contract to enforce.
        if idx < self.rt_count {
            self.policer.apply(idx, &mut msg);
        }
        msg
    }

    /// The NI policing mode the workload was built with.
    pub fn policing(&self) -> PolicingMode {
        self.policer.mode()
    }

    /// Serialises the workload's generation state into a snapshot: the
    /// shared RNG stream, the global message-id counter, and every
    /// source's position. The source roster itself is a pure function of
    /// the builder inputs and is not written.
    pub fn save(&self, w: &mut SnapWriter) {
        for &word in &self.rng.state() {
            w.u64(word);
        }
        w.u64(self.next_msg_id);
        w.usize(self.sources.len());
        for src in &self.sources {
            match src {
                Source::RealTime(s) => {
                    w.u8(0);
                    s.save(w);
                }
                Source::BestEffort(s) => {
                    w.u8(1);
                    s.save(w);
                }
            }
        }
        self.policer.save(w);
    }

    /// Restores state saved by [`Workload::save`] into this workload,
    /// which must have been rebuilt from the *same* builder inputs (same
    /// node count, partition, spec, load, mix, class and seed).
    ///
    /// # Errors
    ///
    /// Propagates snapshot decoding errors; rejects a source roster whose
    /// length or per-source kinds disagree with the snapshot.
    pub fn load_into(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let state = [r.u64()?, r.u64()?, r.u64()?, r.u64()?];
        if state.iter().all(|&w| w == 0) {
            return Err(SnapError::BadValue("all-zero RNG state"));
        }
        self.rng = SimRng::from_state(state);
        self.next_msg_id = r.u64()?;
        if r.usize()? != self.sources.len() {
            return Err(SnapError::BadValue("workload source count mismatch"));
        }
        for src in &mut self.sources {
            let tag = r.u8()?;
            match (tag, src) {
                (0, Source::RealTime(s)) => s.load_into(r)?,
                (1, Source::BestEffort(s)) => s.load_into(r)?,
                _ => return Err(SnapError::BadValue("workload source kind mismatch")),
            }
        }
        self.policer.load_into(r)?;
        Ok(())
    }
}

/// Builder for [`Workload`]s.
///
/// # Example
///
/// ```
/// use traffic::{StreamClass, WorkloadBuilder};
/// use flitnet::VcPartition;
///
/// let partition = VcPartition::from_mix(16, 50.0, 50.0);
/// let wl = WorkloadBuilder::new(8, partition)
///     .load(0.8)
///     .mix(50.0, 50.0)
///     .real_time_class(StreamClass::Cbr)
///     .seed(7)
///     .build();
/// // 50 % of 0.8 load = 40 streams of 4 Mbps per 400 Mbps link.
/// assert_eq!(wl.real_time_stream_count(), 8 * 40);
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadBuilder {
    node_count: usize,
    partition: VcPartition,
    spec: WorkloadSpec,
    load: f64,
    mix_x: f64,
    mix_y: f64,
    class: StreamClass,
    seed: u64,
    policing: PolicingMode,
}

impl WorkloadBuilder {
    /// Starts a builder for `node_count` endpoints with the given VC
    /// partition. Defaults: paper Table 1 spec, load 0.8, mix 80:20, VBR,
    /// seed 0.
    ///
    /// # Panics
    ///
    /// Panics if `node_count < 2`.
    pub fn new(node_count: usize, partition: VcPartition) -> WorkloadBuilder {
        assert!(node_count >= 2, "need at least two endpoints");
        WorkloadBuilder {
            node_count,
            partition,
            spec: WorkloadSpec::paper_default(),
            load: 0.8,
            mix_x: 80.0,
            mix_y: 20.0,
            class: StreamClass::Vbr,
            seed: 0,
            policing: PolicingMode::Off,
        }
    }

    /// Replaces the physical workload parameters.
    pub fn spec(mut self, spec: WorkloadSpec) -> WorkloadBuilder {
        self.spec = spec;
        self
    }

    /// Sets the total input load as a fraction of link bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `load` is not in `(0, 1.5]` (loads slightly above 1.0 are
    /// allowed to study saturation).
    pub fn load(mut self, load: f64) -> WorkloadBuilder {
        assert!(load > 0.0 && load <= 1.5, "load must be in (0, 1.5]");
        self.load = load;
        self
    }

    /// Sets the real-time : best-effort mix ratio `x:y`.
    pub fn mix(mut self, x: f64, y: f64) -> WorkloadBuilder {
        assert!(x >= 0.0 && y >= 0.0 && x + y > 0.0, "invalid mix");
        self.mix_x = x;
        self.mix_y = y;
        self
    }

    /// Chooses VBR or CBR for the real-time component.
    pub fn real_time_class(mut self, class: StreamClass) -> WorkloadBuilder {
        self.class = class;
        self
    }

    /// Sets the RNG seed (the whole workload is a pure function of it).
    pub fn seed(mut self, seed: u64) -> WorkloadBuilder {
        self.seed = seed;
        self
    }

    /// Chooses the NI policing action for real-time streams (default:
    /// [`PolicingMode::Off`]).
    pub fn policing(mut self, mode: PolicingMode) -> WorkloadBuilder {
        self.policing = mode;
        self
    }

    /// Materialises the workload.
    ///
    /// Per node: `round(load · x/(x+y) · link/stream)` real-time streams
    /// assigned round-robin to the real-time VCs, plus one best-effort
    /// generator carrying `load · y/(x+y)` of the link (if non-zero).
    pub fn build(&self) -> Workload {
        self.spec.validate();
        let mut rng = SimRng::seed_from(self.seed);
        let tb = self.spec.timebase();
        let frac_rt = self.mix_x / (self.mix_x + self.mix_y);
        let rt_load = self.load * frac_rt;
        let be_load = self.load - rt_load;

        let streams_per_node = (rt_load * self.spec.link_bps / self.spec.stream_bps).round() as u32;
        let rt_vcs: Vec<VcId> = self.partition.vcs_for(TrafficClass::Vbr).collect();
        let be_vcs: Vec<VcId> = self.partition.vcs_for(TrafficClass::BestEffort).collect();
        let cap_per_vc = self
            .partition
            .streams_per_vc(self.spec.link_bps, self.spec.stream_bps);
        let oversubscribed =
            !rt_vcs.is_empty() && streams_per_node > cap_per_vc * rt_vcs.len() as u32;

        assert!(
            streams_per_node == 0 || !rt_vcs.is_empty(),
            "real-time load requested but no real-time VCs in the partition"
        );
        assert!(
            be_load <= 0.0 || !be_vcs.is_empty(),
            "best-effort load requested but no best-effort VCs in the partition"
        );

        let mut sources = Vec::new();
        let mut infos = Vec::new();
        let mut next_stream = 0u32;
        let frame_interval = tb.cycles_from_ms(self.spec.frame_interval_ms);

        for node in 0..self.node_count as u32 {
            for k in 0..streams_per_node {
                let id = StreamId(next_stream);
                next_stream += 1;
                let vc_in = rt_vcs[(k as usize) % rt_vcs.len()];
                let vc_out = *rng.pick(&rt_vcs);
                let dest = NodeId(rng.index_excluding(self.node_count, node as usize) as u32);
                let phase = Cycles(rng.range_u64(0, frame_interval.get().max(1)));
                let stream = RealTimeStream::new(
                    &self.spec,
                    self.class,
                    id,
                    NodeId(node),
                    dest,
                    vc_in,
                    vc_out,
                    phase,
                );
                infos.push(StreamInfo {
                    id,
                    class: self.class.traffic_class(),
                    src: NodeId(node),
                    dest,
                    vc_in,
                    vc_out,
                });
                sources.push(Source::RealTime(stream));
            }
        }
        let rt_count = sources.len();

        if be_load > 1e-12 {
            for node in 0..self.node_count as u32 {
                let id = StreamId(next_stream);
                next_stream += 1;
                let src = BestEffortSource::new(
                    &self.spec,
                    id,
                    NodeId(node),
                    self.node_count,
                    be_vcs.clone(),
                    be_load * self.spec.link_bps,
                    Cycles::ZERO,
                    &mut rng,
                );
                sources.push(Source::BestEffort(src));
            }
        }

        let realized_rt = f64::from(streams_per_node) * self.spec.stream_bps / self.spec.link_bps;
        Workload {
            sources,
            infos,
            rng,
            next_msg_id: 0,
            rt_count,
            rt_load: realized_rt,
            be_load,
            spec: self.spec.clone(),
            partition: self.partition,
            oversubscribed,
            policer: Policer::new(self.policing, rt_count, &self.spec),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn builder() -> WorkloadBuilder {
        WorkloadBuilder::new(8, VcPartition::from_mix(16, 80.0, 20.0))
    }

    #[test]
    fn stream_count_matches_load_arithmetic() {
        // 80 % of 0.9 load on 400 Mbps = 288 Mbps = 72 streams of 4 Mbps.
        let wl = builder().load(0.9).mix(80.0, 20.0).build();
        assert_eq!(wl.real_time_stream_count(), 8 * 72);
        let (rt, _be) = wl.realized_load();
        assert!((rt - 0.72).abs() < 1e-9);
    }

    #[test]
    fn pure_real_time_has_no_best_effort_sources() {
        let wl = WorkloadBuilder::new(8, VcPartition::all_real_time(16))
            .load(0.8)
            .mix(100.0, 0.0)
            .build();
        assert_eq!(wl.source_count(), wl.real_time_stream_count());
    }

    #[test]
    fn best_effort_sources_one_per_node() {
        let wl = builder().load(0.8).mix(80.0, 20.0).build();
        assert_eq!(wl.source_count(), wl.real_time_stream_count() + 8);
    }

    #[test]
    fn streams_use_only_real_time_vcs() {
        let wl = builder().load(0.8).build();
        let p = wl.partition();
        for info in wl.stream_infos() {
            assert!(p.class_of(info.vc_in).is_real_time());
            assert!(p.class_of(info.vc_out).is_real_time());
            assert_ne!(info.src, info.dest);
        }
    }

    #[test]
    fn same_seed_reproduces_workload() {
        let a = builder().seed(99).build();
        let b = builder().seed(99).build();
        assert_eq!(a.stream_infos(), b.stream_infos());
        let mut wa = a;
        let mut wb = b;
        for i in 0..wa.source_count().min(10) {
            let ma = wa.next_message(i);
            let mb = wb.next_message(i);
            assert_eq!(ma.at, mb.at);
            assert_eq!(ma.flits.len(), mb.flits.len());
        }
    }

    #[test]
    fn oversubscription_detected_past_vc_capacity() {
        // 100:0 at load 1.0 → 100 streams/node, but 16 VCs × 6 = 96 cap.
        let wl = WorkloadBuilder::new(8, VcPartition::all_real_time(16))
            .load(1.0)
            .mix(100.0, 0.0)
            .build();
        assert!(wl.is_oversubscribed());
        let ok = WorkloadBuilder::new(8, VcPartition::all_real_time(16))
            .load(0.9)
            .mix(100.0, 0.0)
            .build();
        assert!(!ok.is_oversubscribed());
    }

    #[test]
    fn messages_pull_in_time_order_per_source() {
        let mut wl = builder().load(0.7).seed(3).build();
        for i in 0..wl.source_count() {
            let mut last = Cycles::ZERO;
            for _ in 0..5 {
                let m = wl.next_message(i);
                assert!(m.at >= last);
                last = m.at;
            }
        }
    }

    #[test]
    fn msg_ids_are_globally_unique() {
        let mut wl = builder().load(0.6).seed(4).build();
        let mut seen = std::collections::HashSet::new();
        for i in 0..wl.source_count() {
            for _ in 0..3 {
                let m = wl.next_message(i);
                assert!(seen.insert(m.flits[0].msg));
            }
        }
    }

    #[test]
    fn shaped_workload_keeps_per_source_time_order() {
        let mut wl = builder()
            .load(0.9)
            .seed(5)
            .policing(PolicingMode::Shape)
            .build();
        for i in 0..wl.source_count() {
            let mut last = Cycles::ZERO;
            for _ in 0..8 {
                let m = wl.next_message(i);
                assert!(m.at >= last, "shaping broke time order at source {i}");
                last = m.at;
            }
        }
    }

    #[test]
    fn demoted_messages_keep_their_class_and_vcs() {
        // A very bursty VBR spec (σ = mean/2) so oversized frames reliably
        // overrun the mean-rate bucket within a few frame intervals.
        let spec = WorkloadSpec {
            frame_std_bytes: 8_333.0,
            ..WorkloadSpec::paper_default()
        };
        let mut wl = builder()
            .spec(spec)
            .load(0.9)
            .seed(6)
            .policing(PolicingMode::Demote)
            .build();
        let p = wl.partition();
        let rt = wl.real_time_stream_count().min(16);
        let mut demoted = 0u32;
        for i in 0..rt {
            for _ in 0..1_700 {
                let m = wl.next_message(i);
                if m.flits[0].vtick == flitnet::BEST_EFFORT_VTICK {
                    demoted += 1;
                    // Demotion changes scheduling priority only: the
                    // flits stay in their class partition.
                    assert_eq!(m.flits[0].class, TrafficClass::Vbr);
                    assert!(p.class_of(m.vc_in).is_real_time());
                }
            }
        }
        // VBR frames above the mean must trip the mean-rate bucket.
        assert!(demoted > 0, "a VBR workload should demote some messages");
    }

    #[test]
    #[should_panic(expected = "no real-time VCs")]
    fn rt_load_without_rt_vcs_panics() {
        let _ = WorkloadBuilder::new(8, VcPartition::from_mix(16, 0.0, 100.0))
            .load(0.8)
            .mix(80.0, 20.0)
            .build();
    }
}
