//! Workload generators for the MediaWorm study (paper §4.2).
//!
//! Three kinds of traffic, mixed per the experiment's `x:y` ratio:
//!
//! * **VBR** — MPEG-2-like streams: frame sizes drawn from
//!   N(16 666 B, 3 333 B), one frame every 33 ms (≈ 4 Mbps mean), each
//!   frame segmented into fixed-size messages injected evenly across the
//!   frame interval.
//! * **CBR** — identical, but with a constant 16 666 B frame size.
//! * **Best-effort** — constant-rate 20-flit messages, destination and
//!   virtual channels drawn uniformly per message.
//!
//! [`WorkloadBuilder`] turns a load level, mix ratio and VC partition into
//! a concrete set of [`Source`]s; the router simulators pull
//! [`ScheduledMessage`]s from a [`Workload`] and inject the flits.
//!
//! # Example
//!
//! ```
//! use traffic::{WorkloadBuilder, StreamClass};
//! use flitnet::VcPartition;
//!
//! // The paper's Fig. 3 workload: 8 nodes, 16 VCs, 80:20 VBR:best-effort
//! // at 90 % input load.
//! let partition = VcPartition::from_mix(16, 80.0, 20.0);
//! let wl = WorkloadBuilder::new(8, partition)
//!     .load(0.9)
//!     .mix(80.0, 20.0)
//!     .real_time_class(StreamClass::Vbr)
//!     .seed(1)
//!     .build();
//! assert!(wl.real_time_stream_count() > 0);
//! ```

#![warn(missing_docs)]

pub mod besteffort;
pub mod police;
pub mod spec;
pub mod stream;
pub mod workload;

pub use besteffort::BestEffortSource;
pub use police::{Policer, PolicingMode, TokenBucket};
pub use spec::{ArrivalProcess, FrameModel, StreamClass, WorkloadSpec};
pub use stream::RealTimeStream;
pub use workload::{ScheduledMessage, Source, StreamInfo, Workload, WorkloadBuilder};
