//! Workload parameterisation.

use flitnet::TrafficClass;
use netsim::TimeBase;

/// Which real-time model a stream follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamClass {
    /// Variable bit rate: normally-distributed frame sizes.
    Vbr,
    /// Constant bit rate: fixed frame sizes.
    Cbr,
}

impl StreamClass {
    /// The corresponding [`TrafficClass`].
    pub fn traffic_class(self) -> TrafficClass {
        match self {
            StreamClass::Vbr => TrafficClass::Vbr,
            StreamClass::Cbr => TrafficClass::Cbr,
        }
    }
}

/// Frame-size model for VBR streams.
///
/// The paper draws every frame from one normal distribution. Real MPEG-2
/// is *group-of-pictures* structured: large I frames followed by medium P
/// and small B frames in a repeating pattern, which stresses a router's
/// short-term burst tolerance even at the same mean rate. [`FrameModel::Gop`]
/// implements the classic 12-frame `IBBPBBPBBPBB` pattern with a 5:3:1
/// I:P:B size ratio, scaled so the pattern's mean equals
/// [`WorkloadSpec::frame_mean_bytes`] — a sensitivity extension beyond the
/// paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FrameModel {
    /// Independent normal frame sizes (the paper's model).
    #[default]
    Normal,
    /// GOP-structured sizes (`IBBPBBPBBPBB`, 5:3:1) with normal noise.
    Gop,
}

/// Inter-arrival process for best-effort messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ArrivalProcess {
    /// Constant spacing (the paper's "constant injection rate"), with a
    /// random initial phase per node to avoid lock-step artifacts.
    #[default]
    Constant,
    /// Poisson arrivals with the same mean rate, for sensitivity studies.
    Poisson,
}

/// Physical workload parameters (paper Table 1 defaults).
///
/// # Example
///
/// ```
/// use traffic::WorkloadSpec;
///
/// let spec = WorkloadSpec::paper_default();
/// assert_eq!(spec.flit_bytes, 4);
/// assert_eq!(spec.msg_flits, 20);
/// assert_eq!(spec.link_bps, 400e6);
/// // A 4 Mbps stream deserves one flit every 100 cycles on this link.
/// assert!((spec.stream_vtick_cycles() - 100.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Physical channel bandwidth in bits/second (400 Mbps default; the
    /// PCS comparison uses 100 Mbps).
    pub link_bps: f64,
    /// Flit width in bytes (32 bits default).
    pub flit_bytes: u32,
    /// Message size in flits (20 default; Fig. 7 sweeps it).
    pub msg_flits: u32,
    /// Mean bandwidth per real-time stream in bits/second (4 Mbps).
    pub stream_bps: f64,
    /// Frame interval in milliseconds (33 ms ≙ 30 frames/s).
    pub frame_interval_ms: f64,
    /// Mean frame size in bytes (16 666).
    pub frame_mean_bytes: f64,
    /// Frame-size standard deviation in bytes for VBR (3 333).
    pub frame_std_bytes: f64,
    /// Best-effort arrival process.
    pub arrival: ArrivalProcess,
    /// VBR frame-size model.
    pub frame_model: FrameModel,
}

impl WorkloadSpec {
    /// The paper's Table 1 configuration.
    pub fn paper_default() -> WorkloadSpec {
        WorkloadSpec {
            link_bps: 400e6,
            flit_bytes: 4,
            msg_flits: 20,
            stream_bps: 4e6,
            frame_interval_ms: 33.0,
            frame_mean_bytes: 16_666.0,
            frame_std_bytes: 3_333.0,
            arrival: ArrivalProcess::Constant,
            frame_model: FrameModel::Normal,
        }
    }

    /// The 100 Mbps variant used for the PCS comparison (Fig. 8 / Table 3).
    pub fn paper_100mbps() -> WorkloadSpec {
        WorkloadSpec {
            link_bps: 100e6,
            ..WorkloadSpec::paper_default()
        }
    }

    /// The time base implied by the link and flit parameters.
    pub fn timebase(&self) -> TimeBase {
        TimeBase::from_link(self.link_bps, self.flit_bytes * 8)
    }

    /// Flits per second a real-time stream emits on average.
    pub fn stream_flit_rate(&self) -> f64 {
        self.stream_bps / f64::from(self.flit_bytes * 8)
    }

    /// The Virtual Clock `Vtick`, in cycles per flit, that a real-time
    /// stream requests (paper §3.3: "if a message requires a bandwidth of
    /// 120 K flits/sec, then its Vtick is set to 1/120 K").
    pub fn stream_vtick_cycles(&self) -> f64 {
        self.timebase().vtick_cycles(self.stream_flit_rate())
    }

    /// How many flits a frame of `bytes` bytes occupies.
    pub fn frame_flits(&self, bytes: f64) -> u32 {
        (bytes / f64::from(self.flit_bytes)).ceil().max(1.0) as u32
    }

    /// How many messages a frame of `flits` flits needs.
    pub fn msgs_for_flits(&self, flits: u32) -> u32 {
        flits.div_ceil(self.msg_flits)
    }

    /// Maximum simultaneous real-time streams a link can carry
    /// (`⌊link / stream⌋`, e.g. 100 on the 400 Mbps link).
    pub fn streams_per_link(&self) -> u32 {
        (self.link_bps / self.stream_bps).floor() as u32
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message on nonsensical parameters.
    pub fn validate(&self) {
        assert!(self.link_bps > 0.0, "link bandwidth must be positive");
        assert!(self.flit_bytes > 0, "flit size must be positive");
        assert!(self.msg_flits > 0, "message size must be positive");
        assert!(self.stream_bps > 0.0, "stream bandwidth must be positive");
        assert!(
            self.stream_bps <= self.link_bps,
            "a single stream cannot exceed the link bandwidth"
        );
        assert!(
            self.frame_interval_ms > 0.0,
            "frame interval must be positive"
        );
        assert!(self.frame_mean_bytes > 0.0, "frame size must be positive");
        assert!(
            self.frame_std_bytes >= 0.0,
            "frame-size deviation must be non-negative"
        );
    }
}

impl Default for WorkloadSpec {
    fn default() -> WorkloadSpec {
        WorkloadSpec::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_frame_model_is_the_papers() {
        assert_eq!(
            WorkloadSpec::paper_default().frame_model,
            FrameModel::Normal
        );
    }

    #[test]
    fn paper_default_matches_table1() {
        let s = WorkloadSpec::paper_default();
        s.validate();
        assert_eq!(s.streams_per_link(), 100);
        assert_eq!(s.frame_flits(16_666.0), 4167);
        assert_eq!(s.msgs_for_flits(4167), 209);
    }

    #[test]
    fn frame_of_paper_mean_injects_every_158us() {
        // 209 messages across 33 ms ≈ 158 µs apart — the paper quotes
        // "about 165 µs" for its rounded 200-message example.
        let s = WorkloadSpec::paper_default();
        let msgs = s.msgs_for_flits(s.frame_flits(s.frame_mean_bytes));
        let gap_us = s.frame_interval_ms * 1e3 / f64::from(msgs);
        assert!((150.0..170.0).contains(&gap_us), "gap {gap_us}");
    }

    #[test]
    fn vtick_100mbps() {
        let s = WorkloadSpec::paper_100mbps();
        // 100 Mbps link moves 3.125 M flits/s; a 4 Mbps stream needs
        // 125 K flits/s → one flit every 25 cycles.
        assert!((s.stream_vtick_cycles() - 25.0).abs() < 1e-9);
        assert_eq!(s.streams_per_link(), 25);
    }

    #[test]
    fn stream_class_maps_to_traffic_class() {
        assert_eq!(StreamClass::Vbr.traffic_class(), TrafficClass::Vbr);
        assert_eq!(StreamClass::Cbr.traffic_class(), TrafficClass::Cbr);
    }

    #[test]
    fn tiny_frames_round_up() {
        let s = WorkloadSpec::paper_default();
        assert_eq!(s.frame_flits(1.0), 1);
        assert_eq!(s.msgs_for_flits(1), 1);
        assert_eq!(s.msgs_for_flits(21), 2);
    }

    #[test]
    #[should_panic(expected = "cannot exceed the link bandwidth")]
    fn oversized_stream_rejected() {
        let mut s = WorkloadSpec::paper_default();
        s.stream_bps = 500e6;
        s.validate();
    }
}
