//! Network-calculus worst-case delay bounds for MediaWorm fabrics.
//!
//! A second, *analytic* correctness oracle beside the bit-identity
//! stepping references: every real-time stream is modelled by a
//! (σ, ρ) token-bucket **arrival curve** `α(t) = σ + ρt` (flits,
//! flits/cycle) — the same envelope the admission controller negotiates
//! and the NI token buckets enforce — and every scheduling point on its
//! route by a rate-latency **service curve** `β(t) = R·(t − θ)⁺` derived
//! from the link rate and the scheduler's fairness bound. Min-plus
//! convolution composes the per-hop curves along the (feedforward) route,
//! and the horizontal deviation between α and the composed β is a delay
//! no conforming message can exceed — at any fabric size, in O(flows ×
//! hops) time, where the exhaustive stepping oracles stop scaling.
//!
//! The analysis is *separate-flow* (SFA): at each scheduling point the
//! flow under study receives the scheduler's per-VC service curve minus
//! the worst-case envelope of its competing traffic (blind-multiplexing
//! leftover — sound for any intra-VC service order), burstiness of cross
//! traffic is propagated point-to-point through each flow's output curve,
//! and the flow's own burst is paid only once via the convolution.
//!
//! Restrictions, by construction of the theory:
//!
//! * **Feedforward routes only.** The precedence graph of scheduling
//!   points must be acyclic; cyclic route sets (a `ring` whose flows wrap
//!   all the way round, any dateline `torus`) are rejected with a typed
//!   [`BoundError`] instead of a silently unsound number.
//! * **Stability.** A flow whose aggregate competition saturates a point
//!   (ρ ≥ R) has no finite bound; its entry reports `None` rather than a
//!   fabricated value, and the unbounded burstiness poisons every flow it
//!   later crosses. Under FIFO scheduling, unregulated best-effort cross
//!   traffic at a shared router port usually makes bounds unbounded —
//!   which *is* the paper's observation about FIFO and QoS.

#![warn(missing_docs)]

use std::collections::BTreeMap;

use flitnet::NodeId;
use topo::{PortTarget, Topology};

/// A token-bucket arrival curve `α(t) = σ + ρt`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalCurve {
    /// Burst tolerance σ in flits.
    pub sigma: f64,
    /// Sustained rate ρ in flits per cycle.
    pub rho: f64,
}

impl ArrivalCurve {
    /// Creates a curve; panics on a negative burst or non-positive rate.
    pub fn new(sigma: f64, rho: f64) -> ArrivalCurve {
        assert!(sigma >= 0.0, "burst must be non-negative");
        assert!(rho > 0.0, "rate must be positive");
        ArrivalCurve { sigma, rho }
    }

    /// The aggregate of two curves: bursts and rates add.
    pub fn plus(self, other: ArrivalCurve) -> ArrivalCurve {
        ArrivalCurve {
            sigma: self.sigma + other.sigma,
            rho: self.rho + other.rho,
        }
    }

    /// This curve scaled `n`-fold (an aggregate of `n` identical flows).
    pub fn times(self, n: f64) -> ArrivalCurve {
        ArrivalCurve {
            sigma: self.sigma * n,
            rho: self.rho * n,
        }
    }

    /// The arrival curve of this flow's *output* after crossing a server
    /// with service curve `s`: the rate is preserved, the burst grows by
    /// the service latency (`σ + ρθ` — the classic output-burstiness
    /// propagation for rate-latency servers with `ρ ≤ R`).
    pub fn output(self, s: ServiceCurve) -> ArrivalCurve {
        ArrivalCurve {
            sigma: self.sigma + self.rho * s.latency,
            rho: self.rho,
        }
    }
}

/// A rate-latency service curve `β(t) = R·(t − θ)⁺`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceCurve {
    /// Guaranteed long-term rate `R` in flits per cycle.
    pub rate: f64,
    /// Worst-case service latency `θ` in cycles.
    pub latency: f64,
}

impl ServiceCurve {
    /// Creates a curve; panics on a non-positive rate or negative latency.
    pub fn new(rate: f64, latency: f64) -> ServiceCurve {
        assert!(rate > 0.0, "service rate must be positive");
        assert!(latency >= 0.0, "service latency must be non-negative");
        ServiceCurve { rate, latency }
    }

    /// Min-plus convolution of two rate-latency curves: the end-to-end
    /// service of two servers in tandem is again rate-latency with the
    /// *minimum* rate and the *sum* of latencies.
    pub fn convolve(self, other: ServiceCurve) -> ServiceCurve {
        ServiceCurve {
            rate: self.rate.min(other.rate),
            latency: self.latency + other.latency,
        }
    }

    /// The *leftover* service curve after subtracting cross traffic
    /// `cross` under blind multiplexing: `R' = R − ρ_x`,
    /// `θ' = (Rθ + σ_x) / (R − ρ_x)`. `None` when the cross traffic
    /// saturates the server (no guaranteed residual rate).
    pub fn leftover(self, cross: ArrivalCurve) -> Option<ServiceCurve> {
        if cross.rho >= self.rate {
            return None;
        }
        let rate = self.rate - cross.rho;
        let latency = (self.rate * self.latency + cross.sigma) / rate;
        Some(ServiceCurve { rate, latency })
    }

    /// Worst-case delay (horizontal deviation) for arrivals bounded by
    /// `a`: `θ + σ/R`, or `None` when the flow's sustained rate exceeds
    /// the guaranteed service rate (unbounded backlog).
    pub fn delay_bound(self, a: ArrivalCurve) -> Option<f64> {
        if a.rho > self.rate {
            return None;
        }
        Some(self.latency + a.sigma / self.rate)
    }
}

/// The output-multiplexer discipline at every scheduling point, with the
/// parameters its fairness bound needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedKind {
    /// Virtual Clock: rate-latency per reserved rate, same latency term
    /// as PGPS for leaky-bucket sources (Figueira & Pasquale).
    VirtualClock,
    /// Weighted Fair Queueing (PGPS): `θ = L/R_v + L/C`.
    Wfq,
    /// Self-Clocked Fair Queueing: `θ = L/R_v + (n−1)·L/C` — one maximal
    /// packet of every competing queue can finish first.
    Scfq,
    /// Deficit Round Robin with the given per-VC quantum in flits:
    /// latency-rate server with `θ = (3n−2)·q/C` (Stiliadis & Varma).
    Drr {
        /// Per-VC quantum in flits.
        quantum: f64,
    },
    /// FIFO by arrival stamp: no isolation — the whole port is a single
    /// constant-rate server shared with *all* traffic, best-effort
    /// included.
    Fifo,
    /// Per-VC round robin, rate-agnostic: every active VC gets an equal
    /// share regardless of its reservation.
    RoundRobin,
}

/// Fabric-wide parameters shared by every scheduling point.
#[derive(Debug, Clone, Copy)]
pub struct FabricModel {
    /// Scheduler at every output multiplexer (routers and NIs).
    pub sched: SchedKind,
    /// Link rate `C` in flits per cycle (1.0 for MediaWorm links).
    pub link_rate: f64,
    /// Largest message (worm) in flits — the non-preemptable unit `L`.
    pub max_msg_flits: f64,
    /// Fixed cycles added per scheduling point: router pipeline depth
    /// plus wire latency. Not load-dependent, so outside the curves.
    pub point_fixed_cycles: f64,
    /// Scheduler weight of a real-time VC (`1 / Vtick`).
    pub rt_weight: f64,
    /// Scheduler weight of a best-effort VC (`1 / BEST_EFFORT_VTICK`).
    pub be_weight: f64,
    /// Best-effort VCs per port, all assumed backlogged (worst case).
    pub be_vcs: u32,
    /// Arrival envelope of one node's best-effort source, if the mix has
    /// a best-effort component. Only FIFO lets it interfere with
    /// real-time service order; rate-based and round-robin schedulers
    /// bound its influence through `be_vcs`/`be_weight` instead.
    pub be_per_node: Option<ArrivalCurve>,
    /// Number of endpoints (for the FIFO worst case, where every node's
    /// best-effort traffic can converge on one port).
    pub node_count: u32,
}

/// One real-time flow to bound.
#[derive(Debug, Clone, Copy)]
pub struct FlowSpec {
    /// Stream id (opaque to the analysis; echoed in the result).
    pub id: u32,
    /// Source endpoint.
    pub src: NodeId,
    /// Destination endpoint.
    pub dest: NodeId,
    /// VC on the injection link.
    pub vc_in: u32,
    /// VC on every router-to-router and ejection link.
    pub vc_out: u32,
    /// The flow's arrival envelope at the source.
    pub arrival: ArrivalCurve,
    /// Whether the envelope is *provably* enforced (CBR construction, or
    /// a shaping token bucket in front of the NI) rather than a mean-rate
    /// model of a variable source.
    pub guaranteed: bool,
}

/// The analytic result for one flow.
#[derive(Debug, Clone, Copy)]
pub struct FlowBound {
    /// Stream id, as given.
    pub id: u32,
    /// Worst-case end-to-end delay in cycles; `None` when some point on
    /// the route offers the flow no guaranteed rate (unstable or
    /// FIFO-with-unregulated-cross) — the flow has no finite bound.
    pub bound_cycles: Option<f64>,
    /// Router-to-router plus ejection scheduling points on the route.
    pub hops: u32,
    /// Copied from [`FlowSpec::guaranteed`].
    pub guaranteed: bool,
    /// The envelope the bound was computed from.
    pub arrival: ArrivalCurve,
}

/// Why a route set cannot be bounded at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoundError {
    /// The topology routes with dateline VC disciplines (tori): traffic
    /// wraps around a cycle by construction, outside feedforward
    /// network-calculus.
    Datelines {
        /// The topology's name.
        topology: String,
    },
    /// The flows' scheduling points form a precedence cycle (e.g. ring
    /// traffic wrapping all the way round): cross-traffic burstiness has
    /// no well-defined fixpoint under plain SFA.
    CyclicRoutes {
        /// The topology's name.
        topology: String,
        /// Scheduling points left unordered by the cycle.
        unordered_points: usize,
    },
    /// A flow's deterministic route failed to terminate within the
    /// router count — the routing function itself cycles.
    RouteLoop {
        /// The flow whose walk looped.
        flow: u32,
    },
}

impl std::fmt::Display for BoundError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BoundError::Datelines { topology } => {
                write!(f, "topology {topology} uses dateline (cyclic) routing; delay bounds need feedforward routes")
            }
            BoundError::CyclicRoutes {
                topology,
                unordered_points,
            } => {
                write!(f, "flow routes on {topology} form a precedence cycle ({unordered_points} points unordered); delay bounds need feedforward routes")
            }
            BoundError::RouteLoop { flow } => {
                write!(f, "deterministic route of flow {flow} revisits a router")
            }
        }
    }
}

impl std::error::Error for BoundError {}

/// A scheduling point: `(u32::MAX, node)` is node `node`'s NI multiplexer
/// onto its injection link; `(r, p)` is router `r`'s output port `p`
/// (router-to-router or ejection).
type Point = (u32, u32);

/// The canonical single-candidate route of `src → dest` as a sequence of
/// scheduling points: the NI, then one output port per router traversed
/// (the last being the ejection port).
fn flow_points(t: &Topology, src: NodeId, dest: NodeId) -> Option<Vec<Point>> {
    let mut points = vec![(u32::MAX, src.get())];
    let (mut at, _) = t.attachment(src);
    let (goal, _) = t.attachment(dest);
    let max_hops = t.router_count() + 1;
    loop {
        if points.len() > max_hops + 1 {
            return None;
        }
        let p = t.route(at, dest)[0];
        points.push((at.get(), p.get()));
        if at == goal {
            break;
        }
        match t.target_of(at, p) {
            PortTarget::Router { router, .. } => at = router,
            PortTarget::Node(_) => break,
        }
    }
    Some(points)
}

/// The per-VC service curve of one scheduling point for the rate-based
/// and round-robin disciplines (`Fifo` is handled by the caller as a
/// shared aggregate server).
fn vc_service(m: &FabricModel, rt_vcs_here: u32) -> ServiceCurve {
    let c = m.link_rate;
    let l = m.max_msg_flits;
    let n = f64::from(rt_vcs_here + m.be_vcs);
    match m.sched {
        SchedKind::VirtualClock | SchedKind::Wfq | SchedKind::Scfq => {
            let total_weight =
                f64::from(rt_vcs_here) * m.rt_weight + f64::from(m.be_vcs) * m.be_weight;
            let r = c * m.rt_weight / total_weight;
            let cross_pkts = if matches!(m.sched, SchedKind::Scfq) {
                (n - 1.0).max(0.0)
            } else {
                1.0
            };
            ServiceCurve::new(r, l / r + cross_pkts * l / c)
        }
        SchedKind::Drr { quantum } => {
            let r = c / n;
            ServiceCurve::new(r, (3.0 * n - 2.0) * quantum / c + l / c)
        }
        SchedKind::RoundRobin => {
            let r = c / n;
            ServiceCurve::new(r, n * l / c)
        }
        SchedKind::Fifo => unreachable!("FIFO points are aggregate servers"),
    }
}

/// Computes the worst-case delay bound of every flow over its
/// deterministic route.
///
/// Results are in the input's flow order. Flows crossing a saturated
/// point (or FIFO points shared with unregulated best-effort traffic)
/// report `bound_cycles: None`.
///
/// # Errors
///
/// [`BoundError::Datelines`] for dateline topologies (tori),
/// [`BoundError::CyclicRoutes`] when the flows' scheduling points form a
/// precedence cycle (e.g. ring traffic wrapping the whole loop), and
/// [`BoundError::RouteLoop`] if a single route revisits a router.
pub fn flow_bounds(
    t: &Topology,
    flows: &[FlowSpec],
    m: &FabricModel,
) -> Result<Vec<FlowBound>, BoundError> {
    if t.has_datelines() {
        return Err(BoundError::Datelines {
            topology: t.name().to_string(),
        });
    }
    // Per-flow point sequences.
    let mut paths = Vec::with_capacity(flows.len());
    for f in flows {
        let points = flow_points(t, f.src, f.dest).ok_or(BoundError::RouteLoop { flow: f.id })?;
        paths.push(points);
    }
    // Occupancy: which flows cross each point (ascending flow index, so
    // every float accumulation below has a deterministic order).
    let mut at_point: BTreeMap<Point, Vec<usize>> = BTreeMap::new();
    for (i, path) in paths.iter().enumerate() {
        for &pt in path {
            at_point.entry(pt).or_default().push(i);
        }
    }
    // Feedforward check + processing order: Kahn's algorithm over the
    // precedence edges (consecutive points of each path).
    let order = topo_order(&at_point, &paths).ok_or_else(|| BoundError::CyclicRoutes {
        topology: t.name().to_string(),
        unordered_points: at_point.len(),
    })?;

    // SFA sweep in precedence order: at each point, each crossing flow
    // gets the blind-multiplexing leftover of its VC's (or, for FIFO, the
    // port's) service curve, and its burstiness is propagated to the next
    // point on its path. `None` marks a flow with no finite bound from
    // this point on.
    let mut alpha: Vec<Option<ArrivalCurve>> = flows.iter().map(|f| Some(f.arrival)).collect();
    let mut leftovers: Vec<Vec<Option<ServiceCurve>>> = vec![Vec::new(); flows.len()];
    for pt in order {
        let here = &at_point[&pt];
        let is_ni = pt.0 == u32::MAX;
        // Aggregate curves by VC (rate-based paths) and over the whole
        // point (FIFO), in ascending flow order.
        let vc_of = |i: usize| {
            if is_ni {
                flows[i].vc_in
            } else {
                flows[i].vc_out
            }
        };
        let rt_vcs_here = {
            let mut vcs: Vec<u32> = here.iter().map(|&i| vc_of(i)).collect();
            vcs.sort_unstable();
            vcs.dedup();
            vcs.len() as u32
        };
        for &i in here {
            let Some(a_i) = alpha[i] else {
                leftovers[i].push(None);
                continue;
            };
            let leftover = if matches!(m.sched, SchedKind::Fifo) {
                // One shared constant-rate server; competition is every
                // other flow plus (worst-case) best-effort traffic.
                let mut cross: Option<ArrivalCurve> = None;
                let mut add = |c: ArrivalCurve| {
                    cross = Some(cross.map_or(c, |x| x.plus(c)));
                };
                let mut saturated = false;
                for &j in here {
                    if j == i {
                        continue;
                    }
                    match alpha[j] {
                        Some(a) => add(a),
                        None => saturated = true,
                    }
                }
                if let Some(be) = m.be_per_node {
                    // At the NI only the local source competes; at a
                    // router port, any subset of the fabric's best-effort
                    // traffic can converge (destinations are arbitrary).
                    let n = if is_ni { 1.0 } else { f64::from(m.node_count) };
                    add(be.times(n));
                }
                let port = ServiceCurve::new(m.link_rate, 0.0);
                if saturated {
                    None
                } else {
                    match cross {
                        Some(c) => port.leftover(c),
                        None => Some(port),
                    }
                }
            } else {
                let vc = vc_of(i);
                let service = vc_service(m, rt_vcs_here);
                let mut cross: Option<ArrivalCurve> = None;
                let mut saturated = false;
                for &j in here {
                    if j == i || vc_of(j) != vc {
                        continue;
                    }
                    match alpha[j] {
                        Some(a) => cross = Some(cross.map_or(a, |x| x.plus(a))),
                        None => saturated = true,
                    }
                }
                if saturated {
                    None
                } else {
                    match cross {
                        Some(c) => service.leftover(c),
                        None => Some(service),
                    }
                }
            };
            leftovers[i].push(leftover);
            alpha[i] = match leftover {
                Some(s) if a_i.rho <= s.rate => Some(a_i.output(s)),
                _ => None,
            };
        }
    }

    // End-to-end: min-plus convolution of each flow's per-point leftover
    // curves, horizontal deviation against its source envelope, plus the
    // fixed pipeline/wire cycles per point.
    Ok(flows
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let e2e = leftovers[i]
                .iter()
                .try_fold(None::<ServiceCurve>, |acc, s| {
                    let s = (*s)?;
                    Some(Some(acc.map_or(s, |a| a.convolve(s))))
                })
                .flatten();
            let fixed = m.point_fixed_cycles * paths[i].len() as f64;
            let bound_cycles = e2e
                .and_then(|s| s.delay_bound(f.arrival))
                .map(|d| d + fixed);
            FlowBound {
                id: f.id,
                bound_cycles,
                hops: (paths[i].len() - 1) as u32,
                guaranteed: f.guaranteed,
                arrival: f.arrival,
            }
        })
        .collect())
}

/// Kahn's topological sort over the precedence edges (consecutive points
/// of each flow path). Deterministic: the ready set is ordered by point
/// key. `None` if a cycle leaves points unordered.
fn topo_order(at_point: &BTreeMap<Point, Vec<usize>>, paths: &[Vec<Point>]) -> Option<Vec<Point>> {
    let mut indegree: BTreeMap<Point, usize> = at_point.keys().map(|&p| (p, 0)).collect();
    let mut edges: BTreeMap<Point, Vec<Point>> = BTreeMap::new();
    for path in paths {
        for w in path.windows(2) {
            edges.entry(w[0]).or_default().push(w[1]);
        }
    }
    for (_, outs) in edges.iter_mut() {
        outs.sort_unstable();
        outs.dedup();
        for o in outs.iter() {
            *indegree.get_mut(o).expect("edge target is a known point") += 1;
        }
    }
    let mut ready: Vec<Point> = indegree
        .iter()
        .filter(|&(_, &d)| d == 0)
        .map(|(&p, _)| p)
        .collect();
    let mut order = Vec::with_capacity(at_point.len());
    while let Some(p) = ready.pop() {
        order.push(p);
        if let Some(outs) = edges.get(&p) {
            for &o in outs {
                let d = indegree.get_mut(&o).expect("known point");
                *d -= 1;
                if *d == 0 {
                    ready.push(o);
                }
            }
        }
        // Keep the ready set deterministic (pop the largest key; any
        // fixed order works, it never changes the results — only the
        // sweep sequence).
        ready.sort_unstable();
    }
    (order.len() == at_point.len()).then_some(order)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(id: u32, src: u32, dest: u32, vc: u32, sigma: f64, rho: f64) -> FlowSpec {
        FlowSpec {
            id,
            src: NodeId(src),
            dest: NodeId(dest),
            vc_in: vc,
            vc_out: vc,
            arrival: ArrivalCurve::new(sigma, rho),
            guaranteed: true,
        }
    }

    fn model(sched: SchedKind) -> FabricModel {
        FabricModel {
            sched,
            link_rate: 1.0,
            max_msg_flits: 20.0,
            point_fixed_cycles: 6.0,
            rt_weight: 0.01,
            be_weight: 1e-12,
            be_vcs: 0,
            be_per_node: None,
            node_count: 8,
        }
    }

    #[test]
    fn curve_algebra_basics() {
        let a = ArrivalCurve::new(20.0, 0.01);
        let b = a.plus(ArrivalCurve::new(10.0, 0.02));
        assert_eq!(b, ArrivalCurve::new(30.0, 0.03));
        let s = ServiceCurve::new(0.5, 10.0).convolve(ServiceCurve::new(0.25, 5.0));
        assert_eq!(s, ServiceCurve::new(0.25, 15.0));
        // Horizontal deviation: θ + σ/R.
        assert_eq!(s.delay_bound(a), Some(15.0 + 20.0 / 0.25));
        // Output burstiness: σ + ρθ.
        assert_eq!(a.output(s), ArrivalCurve::new(20.0 + 0.01 * 15.0, 0.01));
        // An overloaded server bounds nothing.
        assert_eq!(s.delay_bound(ArrivalCurve::new(1.0, 0.3)), None);
        assert_eq!(
            ServiceCurve::new(0.5, 0.0).leftover(ArrivalCurve::new(1.0, 0.5)),
            None
        );
    }

    #[test]
    fn cbr_single_switch_closed_form() {
        // One lone CBR flow through a single switch under Virtual Clock:
        // two scheduling points (NI + ejection port), no cross traffic,
        // each a full-weight rate-latency server. With one RT VC and no
        // BE VCs, R = C = 1 and θ = L/R + L/C = 40; the convolution is
        // (1, 80), the bound θ_e2e + σ/R + 2·fixed = 80 + 20 + 12 = 112.
        let t = Topology::single_switch(4);
        let flows = [flow(0, 0, 1, 1, 20.0, 0.01)];
        let b = flow_bounds(&t, &flows, &model(SchedKind::VirtualClock)).unwrap();
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].hops, 1);
        let expected = 2.0 * (20.0 / 1.0 + 20.0 / 1.0) + 20.0 / 1.0 + 2.0 * 6.0;
        assert!(
            (b[0].bound_cycles.unwrap() - expected).abs() < 1e-9,
            "bound {:?} expected {expected}",
            b[0].bound_cycles
        );
    }

    #[test]
    fn bound_grows_with_competing_load() {
        let t = Topology::single_switch(8);
        let m = model(SchedKind::VirtualClock);
        let solo = flow_bounds(&t, &[flow(0, 0, 7, 1, 20.0, 0.01)], &m).unwrap()[0]
            .bound_cycles
            .unwrap();
        // Nine flows from distinct sources converging on the same
        // ejection port and VC: more cross traffic, larger bound.
        let flows: Vec<FlowSpec> = (0..7).map(|i| flow(i, i, 7, 1, 20.0, 0.01)).collect();
        let loaded = flow_bounds(&t, &flows, &m).unwrap()[0]
            .bound_cycles
            .unwrap();
        assert!(
            loaded > solo,
            "competing load must not shrink the bound: solo {solo} loaded {loaded}"
        );
        // And the bound is monotone in the number of competitors.
        let mut last = solo;
        for n in 2..=7u32 {
            let flows: Vec<FlowSpec> = (0..n).map(|i| flow(i, i, 7, 1, 20.0, 0.01)).collect();
            let b = flow_bounds(&t, &flows, &m).unwrap()[0]
                .bound_cycles
                .unwrap();
            assert!(b >= last, "bound shrank from {last} to {b} at n={n}");
            last = b;
        }
    }

    #[test]
    fn bound_grows_with_hops() {
        // The same flow over longer mesh lines: each extra router adds a
        // scheduling point, so the bound must grow.
        let m = model(SchedKind::VirtualClock);
        let mut last = 0.0;
        for w in 2..=5u32 {
            let t = Topology::mesh(w, 1, 1);
            let flows = [flow(0, 0, w - 1, 1, 20.0, 0.01)];
            let b = flow_bounds(&t, &flows, &m).unwrap()[0];
            assert_eq!(b.hops, w);
            let bound = b.bound_cycles.unwrap();
            assert!(bound > last, "bound must grow with hops: {last} → {bound}");
            last = bound;
        }
    }

    #[test]
    fn every_scheduler_yields_a_finite_bound_without_be() {
        let t = Topology::single_switch(8);
        for sched in [
            SchedKind::VirtualClock,
            SchedKind::Wfq,
            SchedKind::Scfq,
            SchedKind::Drr { quantum: 4.0 },
            SchedKind::RoundRobin,
            SchedKind::Fifo,
        ] {
            let flows: Vec<FlowSpec> = (0..4).map(|i| flow(i, i, 7, 1, 20.0, 0.01)).collect();
            let b = flow_bounds(&t, &flows, &model(sched)).unwrap();
            for fb in &b {
                assert!(
                    fb.bound_cycles.is_some(),
                    "{sched:?} must bound a lightly-loaded RT-only mix"
                );
            }
        }
    }

    #[test]
    fn fifo_with_best_effort_cross_traffic_is_unbounded() {
        let t = Topology::single_switch(8);
        let mut m = model(SchedKind::Fifo);
        m.be_per_node = Some(ArrivalCurve::new(20.0, 0.2));
        // 8 nodes × 0.2 flits/cycle of potential cross traffic saturates
        // any single port: FIFO offers the stream no guaranteed rate.
        let b = flow_bounds(&t, &[flow(0, 0, 1, 1, 20.0, 0.01)], &m).unwrap();
        assert_eq!(b[0].bound_cycles, None);
        // The same mix under Virtual Clock stays bounded: BE rides its
        // own VCs at negligible weight.
        let mut m = model(SchedKind::VirtualClock);
        m.be_per_node = Some(ArrivalCurve::new(20.0, 0.2));
        m.be_vcs = 3;
        let b = flow_bounds(&t, &[flow(0, 0, 1, 1, 20.0, 0.01)], &m).unwrap();
        assert!(b[0].bound_cycles.is_some());
    }

    #[test]
    fn saturated_vc_reports_none_not_a_number() {
        let t = Topology::single_switch(8);
        let m = model(SchedKind::VirtualClock);
        // 120 flows of ρ=0.01 on one VC of one ejection port: aggregate
        // 1.2 flits/cycle exceeds the link — no finite bound for anyone
        // crossing it.
        let flows: Vec<FlowSpec> = (0..120).map(|i| flow(i, i % 7, 7, 1, 20.0, 0.01)).collect();
        let b = flow_bounds(&t, &flows, &m).unwrap();
        assert!(b.iter().all(|fb| fb.bound_cycles.is_none()));
    }

    #[test]
    fn torus_rejected_with_typed_error() {
        let t = Topology::torus(3, 3, 1);
        let err =
            flow_bounds(&t, &[flow(0, 0, 4, 1, 20.0, 0.01)], &model(SchedKind::Wfq)).unwrap_err();
        assert!(matches!(err, BoundError::Datelines { .. }), "{err}");
    }

    #[test]
    fn ring_wrap_around_rejected_as_cyclic() {
        // Four two-hop clockwise flows covering the whole ring: their
        // through ports chain r0→r1→r2→r3→r0 — a precedence cycle.
        let t = Topology::ring(4, 1);
        let flows = [
            flow(0, 0, 2, 1, 20.0, 0.01),
            flow(1, 1, 3, 1, 20.0, 0.01),
            flow(2, 2, 0, 1, 20.0, 0.01),
            flow(3, 3, 1, 1, 20.0, 0.01),
        ];
        let err = flow_bounds(&t, &flows, &model(SchedKind::Wfq)).unwrap_err();
        assert!(matches!(err, BoundError::CyclicRoutes { .. }), "{err}");
        // A partial (genuinely feedforward) ring mix stays analysable.
        let ok = flow_bounds(&t, &flows[..2], &model(SchedKind::Wfq)).unwrap();
        assert!(ok.iter().all(|b| b.bound_cycles.is_some()));
    }

    #[test]
    fn results_are_deterministic() {
        let t = Topology::single_switch(8);
        let flows: Vec<FlowSpec> = (0..20)
            .map(|i| flow(i, i % 8, (i + 3) % 8, 1 + i % 3, 20.0, 0.01))
            .collect();
        let a = flow_bounds(&t, &flows, &model(SchedKind::Scfq)).unwrap();
        let b = flow_bounds(&t, &flows, &model(SchedKind::Scfq)).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                x.bound_cycles.map(f64::to_bits),
                y.bound_cycles.map(f64::to_bits)
            );
        }
    }
}
