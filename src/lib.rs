//! Umbrella crate for the MediaWorm reproduction workspace.
//!
//! This crate exists to host the workspace-level integration tests
//! (`tests/`) and runnable examples (`examples/`); the actual library
//! surface lives in the member crates:
//!
//! * [`mediaworm`] — the MediaWorm router and network simulator (the
//!   paper's contribution),
//! * [`pcs_router`] — the pipelined circuit-switched baseline,
//! * [`topo`] — topologies (single switch, meshes, fat-meshes),
//! * [`traffic`] — VBR/CBR/best-effort workload generation,
//! * [`metrics`] — jitter and latency trackers,
//! * [`netsim`] / [`flitnet`] — the simulation and network substrates.
//!
//! See the repository README for a tour and `DESIGN.md` for the system
//! inventory.

#![warn(missing_docs)]

pub use flitnet;
pub use mediaworm;
pub use metrics;
pub use netsim;
pub use pcs_router;
pub use topo;
pub use traffic;
