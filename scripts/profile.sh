#!/usr/bin/env bash
# Profiling notes + driver for the simulator hot path.
#
# Usage:
#   scripts/profile.sh            # perf record/report the perf harness
#   scripts/profile.sh flame      # same, rendered as a flamegraph (needs
#                                 # inferno or flamegraph.pl on PATH)
#
# What to profile: the `perf` binary steps a fig. 3-configured network
# (8-port switch, 16 VCs) through hundreds of thousands of busy cycles in
# both stepping modes, so its profile is dominated by exactly the code the
# occupancy-driven active sets optimize: `Router::arbitrate` /
# `crossbar` / `output_stage`, `Network::deliver` / `ni_send`, and the
# schedulers. Expect the *reference* half of the run to show the full-scan
# loops that the active half avoids.
#
# Symbols: the release profile strips nothing by default, but for clean
# stacks add to Cargo.toml temporarily:
#   [profile.release]
#   debug = true
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p mediaworm-bench

if ! command -v perf >/dev/null; then
    echo "error: 'perf' not found; install linux-tools for your kernel" >&2
    exit 1
fi

case "${1:-report}" in
flame)
    # perf script | stack collapse | flamegraph SVG. Works with either the
    # Rust `inferno` tools or Brendan Gregg's flamegraph.pl scripts.
    perf record -g --call-graph dwarf -o perf.data \
        ./target/release/perf --quick --jobs 1
    if command -v inferno-collapse-perf >/dev/null; then
        perf script -i perf.data | inferno-collapse-perf | inferno-flamegraph >flame.svg
    else
        perf script -i perf.data | stackcollapse-perf.pl | flamegraph.pl >flame.svg
    fi
    echo "wrote flame.svg"
    ;;
report)
    perf record -g --call-graph dwarf -o perf.data \
        ./target/release/perf --quick --jobs 1
    perf report -i perf.data
    ;;
*)
    echo "usage: scripts/profile.sh [flame|report]" >&2
    exit 2
    ;;
esac
