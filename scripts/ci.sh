#!/usr/bin/env bash
# Local CI gate: formatting, lints, the full test suite, and audit mode.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
cargo test -q

# The criterion targets must keep compiling even though full benchmark
# runs stay out of the gate (they are wall-clock heavy).
cargo bench --no-run

# Active-set stepping must stay bit-identical to the full-scan reference
# (counters, stall reports, trace bytes); named so the gate gets loud if
# the suite is renamed away.
cargo test -q --test stepping_identity

# The deterministic parallel stepper must produce the same bits as the
# sequential path at every thread count (meshes, fat-mesh, dateline
# torus, traces, deadlock reports).
cargo test -q --test stepping_identity parallel
cargo test -q --test stepping_identity ring_deadlock_classification_is_identical_under_parallel_stepping

# Audit mode: the flow-control invariant checks must stay clean on healthy
# runs AND flag an injected credit fault (mutation coverage), and the
# progress watchdog must classify the crafted deadlock without false
# positives elsewhere. These run as part of the full suite above; naming
# them keeps the gate loud if they are ever renamed away.
cargo test -q -p mediaworm audit
cargo test -q -p mediaworm watchdog
cargo test -q -p pcs-router watchdog

# Resume identity: checkpoint/restore must be bit-identical to an
# uninterrupted run (stitched traces, end snapshots, stall reports) on
# every stepping path, and the sharded sweep engine must merge shard
# reports byte-stably and resume interrupted points through the bench
# layer. Corrupt checkpoints must abort, never silently restart.
cargo test -q --test stepping_identity checkpoint
cargo test -q --test stepping_identity snapshot_round_trip_over_random_runs
cargo test -q -p mediaworm snapshot
cargo test -q -p mediaworm checkpoint
cargo test -q -p mediaworm-bench --test shard_resume
cargo test -q -p mediaworm-bench shard

# Quiescence-horizon identity: the horizon-skipping driver must be
# byte-identical to the exhaustive every-cycle oracle (and the reference
# and parallel drivers) across loads, policing modes and topologies,
# including a checkpoint taken inside a skipped span and the deadlocked
# ring's stall report.
cargo test -q --test stepping_identity horizon
cargo test -q --test stepping_identity snapshot_mid_jump
cargo test -q -p mediaworm skip
cargo test -q -p mediaworm-bench skip_timing

# Skip effectiveness: the perf harness's skip section (fig. 3 load 0.3,
# the shaped points, the wire-dominated configuration) must report a
# nonzero cycles_skipped at every point.
cargo run --release -q -p mediaworm-bench --bin perf -- \
  --quick --skip-only --json target/bench/BENCH_perf_skip.json
test "$(jq '(.skip | length >= 4) and ([.skip[] | .skip.cycles_skipped > 0] | all)' \
  target/bench/BENCH_perf_skip.json)" = "true"

# Delay-bound oracle: the network-calculus bounds must dominate the
# simulator on healthy runs (sim <= bound for every real-time stream),
# and the credit-starvation mutation test proves the oracle fires when
# flow control is sabotaged. Both run as part of the full suite above;
# naming them keeps the gate loud if they are renamed away.
cargo test -q -p calculus
cargo test -q --test delay_bounds

# Bounds smoke: one Virtual Clock slice of the bounds matrix must bound
# every stream, observe no violations, and audit the provable (CBR,
# policing-off) envelopes clean.
cargo run --release -q -p mediaworm-bench --bin bounds -- \
  --quick --schedulers vc --policing off,shape --loads 0.8 \
  --json target/bench/BENCH_bounds.json
test "$(jq '([.results[] | .bounds_summary.guaranteed_violations == 0] | all)
  and ([.results[] | .bounds_summary.bounded > 0] | all)
  and ([.results[] | .bounds_summary.violations == 0] | all)' \
  target/bench/BENCH_bounds.json)" = "true"

# Ablation smoke: a tiny slice of the scheduler x policing matrix must
# produce bit-identical results at any --jobs split. The throughput
# block records wall-clock time (the one legitimate difference), so it
# is stripped before comparing; everything else must match byte-for-byte.
smoke_flags=(--quick --schedulers wfq,drr,scfq --policing off,shape --loads 0.8)
cargo run --release -q -p mediaworm-bench --bin ablation_sched -- \
  "${smoke_flags[@]}" --jobs 1 --json target/bench/ablation_smoke_jobs1.json
cargo run --release -q -p mediaworm-bench --bin ablation_sched -- \
  "${smoke_flags[@]}" --jobs 2 --json target/bench/BENCH_ablation_sched.json
sed 's/"throughput".*//' target/bench/ablation_smoke_jobs1.json \
  > target/bench/ablation_smoke_jobs1.stripped
sed 's/"throughput".*//' target/bench/BENCH_ablation_sched.json \
  > target/bench/ablation_smoke_jobs2.stripped
cmp target/bench/ablation_smoke_jobs1.stripped target/bench/ablation_smoke_jobs2.stripped
