#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --workspace -- -D warnings
cargo test -q
