#!/usr/bin/env python3
"""Fill EXPERIMENTS.md placeholders from repro_report.txt.

Maps each `<<KEY>>` placeholder to the corresponding experiment section of
the combined report produced by `repro_all`, inserting its table as a
fenced code block. Idempotent: run after every `repro_all` refresh.
"""
import re
import sys

REPORT = sys.argv[1] if len(sys.argv) > 1 else "repro_report.txt"
DOC = sys.argv[2] if len(sys.argv) > 2 else "EXPERIMENTS.md"

SECTIONS = {
    "FIG3": "## Fig 3",
    "FIG4": "## Fig 4",
    "FIG5": "## Fig 5",
    "TABLE2": "## Table 2",
    "FIG6": "## Fig 6",
    "FIG7": "## Fig 7",
    "FIG8": "## Fig 8",
    "TABLE3": "## Table 3",
    "FIG9": "## Fig 9",
    "ABL_SCHED": "## Ablation: scheduler",
    "ABL_POINT": "## Ablation: sched point",
    "ABL_BORROW": "## Ablation: VC borrowing",
    "GOP": "## Extension: GOP frames",
    "BOUNDS": "## Extension: delay bounds",
}


def extract(report: str, header: str) -> str:
    start = report.index(header)
    body = report[start:]
    # Section body runs until the next "## " header (or EOF).
    m = re.search(r"\n## ", body[3:])
    if m:
        body = body[: m.start() + 3]
    # Drop the header line itself; keep the table.
    lines = body.splitlines()[1:]
    table = "\n".join(l for l in lines).strip("\n")
    return f"```text\n{table}\n```"


def main() -> None:
    report = open(REPORT).read()
    doc = open(DOC).read()
    for key, header in SECTIONS.items():
        placeholder = f"<<{key}>>"
        if placeholder not in doc:
            continue
        try:
            doc = doc.replace(placeholder, extract(report, header))
        except ValueError:
            print(f"warning: section {header!r} not found in {REPORT}")
    open(DOC, "w").write(doc)
    print("EXPERIMENTS.md updated")


if __name__ == "__main__":
    main()
