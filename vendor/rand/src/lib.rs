//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides exactly the subset of the rand 0.10 API the workspace
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`RngExt`] sampling methods (`random`, `random_range`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the same
//! stream as upstream `StdRng` (which is unspecified and allowed to change
//! between rand versions), but a high-quality, deterministic, portable
//! one, which is all the simulator requires.

#![warn(missing_docs)]

use std::ops::Range;

/// A random number generator: the single source primitive everything else
/// derives from.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A value samplable uniformly from an `RngCore` (the "standard"
/// distribution of upstream rand).
pub trait StandardSample {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable uniformly, mirroring rand's `SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[lo, hi)` by widening multiply (Lemire's method
/// without the rejection step; the bias is < 2⁻⁶⁴ per draw).
fn range_u64<R: RngCore + ?Sized>(rng: &mut R, lo: u64, hi: u64) -> u64 {
    assert!(lo < hi, "cannot sample from empty range [{lo}, {hi})");
    let span = hi - lo;
    lo + (((rng.next_u64() as u128) * (span as u128)) >> 64) as u64
}

impl SampleRange<u64> for Range<u64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        range_u64(rng, self.start, self.end)
    }
}

impl SampleRange<u32> for Range<u32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u32 {
        range_u64(rng, u64::from(self.start), u64::from(self.end)) as u32
    }
}

impl SampleRange<usize> for Range<usize> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        range_u64(rng, self.start as u64, self.end as u64) as usize
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(
            self.start < self.end,
            "cannot sample from empty range [{}, {})",
            self.start,
            self.end
        );
        let u = f64::sample_standard(rng);
        let x = self.start + u * (self.end - self.start);
        // Floating rounding can land exactly on `end`; clamp back inside.
        if x >= self.end {
            self.end.next_down()
        } else {
            x
        }
    }
}

/// Convenience sampling methods, blanket-implemented for every generator
/// (rand 0.10's `Rng`/`RngExt` surface).
pub trait RngExt: RngCore {
    /// Draws from the standard distribution of `T` (`u64`/`u32` uniform
    /// over the full domain, `f64` uniform in `[0, 1)`).
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> RngExt for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl StdRng {
        /// The raw xoshiro256++ state, for checkpointing.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a previously captured [`StdRng::state`].
        ///
        /// # Panics
        ///
        /// Panics if the state is all-zero (the one state xoshiro cannot
        /// leave, which `seed_from_u64` can never produce).
        pub fn from_state(s: [u64; 4]) -> StdRng {
            assert!(s.iter().any(|&w| w != 0), "xoshiro state must be non-zero");
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u = rng.random_range(10u64..20);
            assert!((10..20).contains(&u));
            let i = rng.random_range(0usize..3);
            assert!(i < 3);
            let f = rng.random_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
            let unit: f64 = rng.random();
            assert!((0.0..1.0).contains(&unit));
        }
    }

    #[test]
    fn full_range_u64_hits_high_bits() {
        let mut rng = StdRng::seed_from_u64(9);
        let any_high = (0..64).any(|_| rng.random_range(0u64..u64::MAX) > u64::MAX / 2);
        assert!(any_high);
    }

    #[test]
    fn uniformity_rough_check() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.random_range(5u64..5);
    }
}
