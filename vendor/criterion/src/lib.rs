//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the slice of criterion's API the workspace's
//! micro-benchmarks use: [`Criterion::bench_function`], benchmark groups,
//! `iter` / `iter_batched`, and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Behaviour: under `cargo bench` (cargo passes `--bench`) every benchmark
//! is timed over a ~300 ms window and a mean ns/iter line is printed.
//! Under `cargo test` each benchmark body runs exactly once, as a smoke
//! test, like upstream's test mode.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How `iter_batched` amortises its setup (kept for API compatibility;
/// the stand-in always runs setup once per iteration).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small inputs: many per batch upstream.
    SmallInput,
    /// Large inputs: few per batch upstream.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Drives one benchmark's measurement loop.
#[derive(Debug)]
pub struct Bencher {
    bench_mode: bool,
    /// (iterations, total duration) of the measured run.
    measured: Option<(u64, Duration)>,
}

/// Time budget for one benchmark's measurement window.
const BUDGET: Duration = Duration::from_millis(300);

impl Bencher {
    /// Measures `routine` repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if !self.bench_mode {
            let _ = routine();
            return;
        }
        let started = Instant::now();
        let mut iters = 0u64;
        while started.elapsed() < BUDGET || iters == 0 {
            let _ = std::hint::black_box(routine());
            iters += 1;
        }
        self.measured = Some((iters, started.elapsed()));
    }

    /// Measures `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        if !self.bench_mode {
            let _ = routine(setup());
            return;
        }
        let mut measured = Duration::ZERO;
        let mut iters = 0u64;
        while measured < BUDGET || iters == 0 {
            let input = setup();
            let started = Instant::now();
            let _ = std::hint::black_box(routine(input));
            measured += started.elapsed();
            iters += 1;
        }
        self.measured = Some((iters, measured));
    }
}

/// The benchmark registry / runner.
#[derive(Debug)]
pub struct Criterion {
    bench_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            bench_mode: std::env::args().any(|a| a == "--bench"),
        }
    }
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        mut f: F,
    ) -> &mut Criterion {
        let mut b = Bencher {
            bench_mode: self.bench_mode,
            measured: None,
        };
        f(&mut b);
        match b.measured {
            Some((iters, total)) if iters > 0 => {
                let per_iter = total.as_nanos() as f64 / iters as f64;
                println!(
                    "{:<55} {:>14.1} ns/iter ({iters} iters)",
                    name.as_ref(),
                    per_iter
                );
            }
            _ => println!("{:<55} ok (test mode)", name.as_ref()),
        }
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup<'_> {
        if self.bench_mode {
            println!("group {}:", name.as_ref());
        }
        BenchmarkGroup { c: self }
    }
}

/// A group of related benchmarks (display nesting only).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for API compatibility; the
    /// stand-in's window is time-based).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        self.c.bench_function(name, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion { bench_mode: false };
        let mut runs = 0;
        c.bench_function("probe", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
        let mut batched = 0;
        c.bench_function("probe_batched", |b| {
            b.iter_batched(|| 7, |x| batched += x, BatchSize::SmallInput)
        });
        assert_eq!(batched, 7);
    }

    #[test]
    fn groups_chain() {
        let mut c = Criterion { bench_mode: false };
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        let mut ran = false;
        g.bench_function("inner", |b| b.iter(|| ran = true));
        g.finish();
        assert!(ran);
    }
}
