//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the subset of proptest's API the workspace's property
//! tests use: the [`proptest!`] macro, range and tuple strategies,
//! [`collection::vec`], and the `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!` macros.
//!
//! Differences from upstream: failing cases are *not* shrunk (the failing
//! inputs are printed verbatim), and the case count is fixed (256 per
//! property, overridable via `PROPTEST_CASES`).

#![warn(missing_docs)]

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{RngExt, SampleRange, SeedableRng};

/// Strategies generate random values of their `Value` type.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// The RNG handed to strategies (a seeded [`StdRng`]).
#[derive(Debug)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// A generator for one deterministic test run.
    pub fn seeded(seed: u64) -> TestRng {
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Uniform draw from a range.
    pub fn range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        self.inner.random_range(range)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {
        $(impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.range(self.clone())
            }
        })*
    };
}

range_strategy!(u32, u64, usize, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+)),+) => {
        $(impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        })+
    };
}

tuple_strategy!(
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3)
);

/// A constant "strategy" for plain values used where a strategy is
/// expected (upstream's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// The admissible sizes of a generated collection.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Machinery used by the [`proptest!`] expansion.
pub mod test_runner {
    /// Per-block configuration, mirroring upstream's
    /// `#![proptest_config(ProptestConfig::with_cases(n))]`.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Cases to run per property in the block.
        pub cases: u64,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u64) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig {
                cases: case_count(),
            }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; try another case.
        Reject(String),
        /// A `prop_assert!` failed.
        Fail(String),
    }

    impl TestCaseError {
        /// A rejection (does not fail the property).
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }

        /// A failure (fails the property).
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }
    }

    /// Cases to run per property: `PROPTEST_CASES` or 256.
    pub fn case_count() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256)
    }

    /// Base seed for a property's case stream: `PROPTEST_SEED` or a fixed
    /// default so failures reproduce.
    pub fn base_seed() -> u64 {
        std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0x9E37_79B9_7F4A_7C15)
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` that runs the body over many sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let cases = config.cases;
                $crate::__proptest_body!(cases, $name, ($($arg in $strat),*), $body);
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::test_runner::case_count();
                $crate::__proptest_body!(cases, $name, ($($arg in $strat),*), $body);
            }
        )*
    };
}

/// Shared case loop behind [`proptest!`] (implementation detail).
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cases:expr, $name:ident, ($($arg:ident in $strat:expr),*), $body:block) => {
        {
                let cases = $cases;
                let mut rejected = 0u64;
                let mut case = 0u64;
                while case < cases {
                    let seed = $crate::test_runner::base_seed()
                        .wrapping_add((case + rejected).wrapping_mul(0x2545_F491_4F6C_DD1D));
                    let mut rng = $crate::TestRng::seeded(seed);
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    // The closure gives `prop_assume!`/`prop_assert!` a
                    // `return Err(...)` target, so an inline block won't do.
                    #[allow(clippy::redundant_closure_call)]
                    let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => case += 1,
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            assert!(
                                rejected < 10_000,
                                "property {}: too many prop_assume! rejections",
                                stringify!($name)
                            );
                        }
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property {} failed: {}\n  inputs: {:?}",
                                stringify!($name),
                                msg,
                                ($(&$arg,)*)
                            );
                        }
                    }
                }
        }
    };
}

/// Rejects the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// The usual glob import, mirroring upstream.
pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u32..17, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vectors_respect_size(xs in collection::vec(0u64..10, 2..5)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 5);
            for x in &xs {
                prop_assert!(*x < 10);
            }
        }

        #[test]
        fn tuples_compose(pair in collection::vec((0usize..4, 1.0f64..2.0), 1..3)) {
            for (i, f) in &pair {
                prop_assert!(*i < 4);
                prop_assert!((1.0..2.0).contains(f));
            }
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    mod configured {
        use crate::prelude::*;
        use std::sync::atomic::{AtomicU64, Ordering};

        static RUNS: AtomicU64 = AtomicU64::new(0);

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(7))]
            fn runs_exactly_the_configured_cases(x in 0u32..10) {
                let _ = x;
                RUNS.fetch_add(1, Ordering::Relaxed);
            }
        }

        #[test]
        fn config_is_respected() {
            RUNS.store(0, Ordering::Relaxed);
            runs_exactly_the_configured_cases();
            assert_eq!(RUNS.load(Ordering::Relaxed), 7);
        }
    }

    #[test]
    #[should_panic(expected = "property always_fails failed")]
    fn failures_panic_with_inputs() {
        proptest! {
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
