//! Integration tests for multi-switch (fat-mesh) operation.

use flitnet::VcPartition;
use mediaworm::{sim, RouterConfig};
use topo::Topology;
use traffic::{StreamClass, WorkloadBuilder};

fn run(topology: &Topology, load: f64, x: f64, y: f64, seed: u64) -> mediaworm::SimOutcome {
    let partition = if y == 0.0 {
        VcPartition::all_real_time(16)
    } else {
        VcPartition::from_mix(16, x, y)
    };
    let wl = WorkloadBuilder::new(topology.node_count(), partition)
        .load(load)
        .mix(x, y)
        .real_time_class(StreamClass::Vbr)
        .seed(seed)
        .build();
    sim::run(topology, wl, &RouterConfig::default(), 0.05, 0.2)
}

#[test]
fn fat_mesh_is_jitter_free_at_moderate_mixed_load() {
    let topology = Topology::fat_mesh(2, 2, 2, 4);
    let out = run(&topology, 0.7, 60.0, 40.0, 1);
    assert!(
        out.is_jitter_free(33.0, 1.0),
        "d={} σ={}",
        out.jitter.mean_ms,
        out.jitter.std_ms
    );
    assert!(out.be_msgs > 1000);
}

#[test]
fn fat_mesh_holds_at_the_single_switch_cliff() {
    // Paper §5.7 ranks the fat mesh's jitter-free ceiling below the
    // single switch's. In this smoke-scale window (0.05 s + 0.2 s) both
    // topologies are still inside their jitter-free region at 0.9/80:20,
    // so the σ_d *ordering* between them is at-the-cliff arbitration
    // noise, not signal — it flips with seed and with any change to
    // best-effort tie-breaking (DESIGN.md §6f). What must hold at this
    // scale: neither topology is jitter-broken at 0.9, and the mesh
    // carries its multi-hop transit traffic without blowing up. The
    // paper's single-vs-mesh ordering is measured by the full fig9
    // windows, not here.
    let single = run(&Topology::single_switch(8), 0.9, 80.0, 20.0, 2);
    let mesh = run(&Topology::fat_mesh(2, 2, 2, 4), 0.9, 80.0, 20.0, 2);
    assert!(
        single.jitter.std_ms < 1.0,
        "single σ={}",
        single.jitter.std_ms
    );
    assert!(mesh.jitter.std_ms < 1.0, "mesh σ={}", mesh.jitter.std_ms);
    assert!(mesh.delivered_msgs > 0 && single.delivered_msgs > 0);
}

#[test]
fn fat_links_outperform_thin_links() {
    // Same endpoints and load; the fat topology has twice the
    // inter-switch bandwidth and must deliver no worse jitter.
    let thin = run(&Topology::mesh(2, 2, 4), 0.6, 60.0, 40.0, 3);
    let fat = run(&Topology::fat_mesh(2, 2, 2, 4), 0.6, 60.0, 40.0, 3);
    assert!(
        fat.jitter.std_ms <= thin.jitter.std_ms + 0.05,
        "fat σ={} thin σ={}",
        fat.jitter.std_ms,
        thin.jitter.std_ms
    );
    // The thin mesh's inter-switch links carry ~4 nodes' worth of transit
    // traffic; at this load they are already past their ceiling.
    assert!(
        thin.jitter.std_ms > 1.0,
        "expected the thin mesh to be jittery here, σ={}",
        thin.jitter.std_ms
    );
}

#[test]
fn larger_fat_mesh_also_works() {
    // Beyond the paper: a 3×2 fat-mesh at light load must stay
    // jitter-free (exercises multi-hop XY routes with >2 hops).
    let topology = Topology::fat_mesh(3, 2, 2, 2);
    let out = run(&topology, 0.3, 100.0, 0.0, 4);
    assert!(
        out.is_jitter_free(33.0, 1.0),
        "d={} σ={}",
        out.jitter.mean_ms,
        out.jitter.std_ms
    );
}

#[test]
fn best_effort_latency_grows_with_real_time_share() {
    // Fig. 9(c): at a fixed load, more VBR means slower best-effort.
    let topology = Topology::fat_mesh(2, 2, 2, 4);
    let lo = run(&topology, 0.7, 40.0, 60.0, 5);
    let hi = run(&topology, 0.7, 80.0, 20.0, 5);
    assert!(
        hi.be_mean_latency_us > lo.be_mean_latency_us * 0.8,
        "hi-share BE latency {} should not be far below lo-share {}",
        hi.be_mean_latency_us,
        lo.be_mean_latency_us
    );
}
