//! End-to-end integration tests on the paper's single 8-port switch.

use flitnet::VcPartition;
use mediaworm::{sim, Network, RouterConfig, SchedulerKind};
use topo::Topology;
use traffic::{StreamClass, Workload, WorkloadBuilder, WorkloadSpec};

fn workload(load: f64, x: f64, y: f64, class: StreamClass, seed: u64) -> Workload {
    let partition = if y == 0.0 {
        VcPartition::all_real_time(16)
    } else {
        VcPartition::from_mix(16, x, y)
    };
    WorkloadBuilder::new(8, partition)
        .load(load)
        .mix(x, y)
        .real_time_class(class)
        .seed(seed)
        .build()
}

#[test]
fn mixed_traffic_at_moderate_load_is_jitter_free() {
    let out = sim::run(
        &Topology::single_switch(8),
        workload(0.7, 80.0, 20.0, StreamClass::Vbr, 1),
        &RouterConfig::default(),
        0.05,
        0.2,
    );
    assert!(
        out.is_jitter_free(33.0, 0.5),
        "d={} σ={}",
        out.jitter.mean_ms,
        out.jitter.std_ms
    );
    assert!(out.be_msgs > 1000, "best-effort must flow: {}", out.be_msgs);
    assert!(
        out.be_mean_latency_us < 100.0,
        "BE latency {}",
        out.be_mean_latency_us
    );
}

#[test]
fn virtual_clock_beats_fifo_on_jitter_at_high_load() {
    let run = |kind| {
        sim::run(
            &Topology::single_switch(8),
            workload(0.96, 80.0, 20.0, StreamClass::Vbr, 2),
            &RouterConfig::default().scheduler(kind),
            0.05,
            0.25,
        )
    };
    let vc = run(SchedulerKind::VirtualClock);
    let fifo = run(SchedulerKind::Fifo);
    assert!(
        vc.jitter.std_ms < fifo.jitter.std_ms,
        "VirtualClock σ={} should beat FIFO σ={}",
        vc.jitter.std_ms,
        fifo.jitter.std_ms
    );
    // …and the real-time mean interval should track the source better.
    assert!(
        (vc.jitter.mean_ms - 33.0).abs() <= (fifo.jitter.mean_ms - 33.0).abs() + 0.05,
        "VC d̄={} FIFO d̄={}",
        vc.jitter.mean_ms,
        fifo.jitter.mean_ms
    );
}

#[test]
fn real_time_is_immune_to_best_effort_pressure() {
    // Same real-time load, with and without a best-effort component: the
    // paper's conclusion is that best-effort does not hurt VBR jitter.
    let pure = sim::run(
        &Topology::single_switch(8),
        workload(0.6, 100.0, 0.0, StreamClass::Vbr, 3),
        &RouterConfig::default(),
        0.05,
        0.2,
    );
    let mixed = sim::run(
        &Topology::single_switch(8),
        // 0.75 × 80 % = 0.6 real-time + 0.15 best-effort on top.
        workload(0.75, 80.0, 20.0, StreamClass::Vbr, 3),
        &RouterConfig::default(),
        0.05,
        0.2,
    );
    assert!(pure.is_jitter_free(33.0, 0.5));
    assert!(
        mixed.is_jitter_free(33.0, 0.5),
        "adding best-effort must not break VBR: σ={}",
        mixed.jitter.std_ms
    );
    assert!((mixed.jitter.std_ms - pure.jitter.std_ms).abs() < 0.5);
}

#[test]
fn cbr_tolerates_at_least_as_much_load_as_vbr() {
    let run = |class| {
        sim::run(
            &Topology::single_switch(8),
            workload(0.9, 100.0, 0.0, class, 4),
            &RouterConfig::default(),
            0.05,
            0.2,
        )
    };
    let cbr = run(StreamClass::Cbr);
    let vbr = run(StreamClass::Vbr);
    // Fig. 4: CBR's fixed frames jitter no more than VBR's variable ones.
    assert!(
        cbr.jitter.std_ms <= vbr.jitter.std_ms + 0.2,
        "CBR σ={} VBR σ={}",
        cbr.jitter.std_ms,
        vbr.jitter.std_ms
    );
}

#[test]
fn flit_conservation_under_sustained_load() {
    let topology = Topology::single_switch(8);
    let cfg = RouterConfig::default();
    let mut net = Network::new(
        &topology,
        workload(0.8, 80.0, 20.0, StreamClass::Vbr, 5),
        &cfg,
    );
    let tb = net.timebase();
    net.run_until(tb.cycles_from_ms(60.0));
    // Below saturation the backlog must stay bounded: a sustained 0.8
    // load keeps at most a few frames' worth of flits in flight.
    assert!(
        net.flits_in_flight() < 200_000,
        "unbounded backlog: {} flits in flight",
        net.flits_in_flight()
    );
    // And the network keeps making progress.
    let before = net.delivered_msgs();
    net.run_until(tb.cycles_from_ms(80.0));
    assert!(
        net.delivered_msgs() > before,
        "the network must keep making progress"
    );
    // Every delivered message accounts for all its flits: at 0.8/80:20
    // the dominant message length is 20 flits, so flit and message counts
    // stay consistent within the short-message tail.
    assert!(net.delivered_flits() >= net.delivered_msgs() * 7);
    assert!(net.delivered_flits() <= net.delivered_msgs() * 20);
}

#[test]
fn message_size_sweep_remains_jitter_free_at_moderate_load() {
    // Fig. 7: message size barely affects QoS at 0.64 load. (We sweep the
    // paper's small-to-medium sizes here; at the extreme 2560-flit point
    // our model shows a few ms of σ_d from input-VC head-of-line blocking
    // — see EXPERIMENTS.md.)
    for &msg_flits in &[20u32, 40, 80, 160] {
        let spec = WorkloadSpec {
            msg_flits,
            ..WorkloadSpec::paper_default()
        };
        let wl = WorkloadBuilder::new(8, VcPartition::all_real_time(16))
            .spec(spec)
            .load(0.64)
            .mix(100.0, 0.0)
            .real_time_class(StreamClass::Vbr)
            .seed(6)
            .build();
        let out = sim::run(
            &Topology::single_switch(8),
            wl,
            &RouterConfig::default(),
            0.05,
            0.15,
        );
        assert!(
            out.is_jitter_free(33.0, 1.0),
            "msg {msg_flits} flits: d={} σ={}",
            out.jitter.mean_ms,
            out.jitter.std_ms
        );
    }
}

#[test]
fn deterministic_given_seed() {
    let run = || {
        sim::run(
            &Topology::single_switch(8),
            workload(0.8, 50.0, 50.0, StreamClass::Vbr, 77),
            &RouterConfig::default(),
            0.03,
            0.08,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.jitter.mean_ms.to_bits(), b.jitter.mean_ms.to_bits());
    assert_eq!(a.jitter.std_ms.to_bits(), b.jitter.std_ms.to_bits());
    assert_eq!(a.be_msgs, b.be_msgs);
    assert_eq!(a.delivered_msgs, b.delivered_msgs);
}
