//! Property-based tests (proptest) on the core data structures and
//! invariants of the reproduction.

use flitnet::{Flit, FlitKind, FrameId, MsgId, NodeId, StreamId, TrafficClass, VcId, VcPartition};
use mediaworm::{MuxScheduler, SchedulerKind};
use netsim::dist::{Distribution, Normal};
use netsim::{Calendar, Cycles, RunningStats, SimRng, TimeBase};
use proptest::prelude::*;

fn flit(kind: FlitKind, vtick: f64, stream: u32) -> Flit {
    Flit {
        kind,
        stream: StreamId(stream),
        msg: MsgId(u64::from(stream)),
        frame: FrameId(0),
        seq_in_msg: 0,
        msg_len: 4,
        msg_seq_in_frame: 0,
        msgs_in_frame: 1,
        dest: NodeId(0),
        vc: VcId(0),
        out_vc: VcId(0),
        vtick,
        class: TrafficClass::Vbr,
        created_at: Cycles(0),
    }
}

proptest! {
    /// The VC partition always covers all VCs, with both classes disjoint,
    /// and any class with a positive share keeps at least one VC.
    #[test]
    fn partition_covers_and_respects_shares(
        total in 1u32..64,
        x in 0.0f64..100.0,
        y in 0.0f64..100.0,
    ) {
        prop_assume!(x + y > 0.0);
        let p = VcPartition::from_mix(total, x, y);
        prop_assert_eq!(p.real_time_count() + p.best_effort_count(), total);
        if x > 0.0 && total >= 2 {
            prop_assert!(p.real_time_count() >= 1);
        }
        if y > 0.0 && total >= 2 {
            prop_assert!(p.best_effort_count() >= 1);
        }
        let rt: Vec<VcId> = p.vcs_for(TrafficClass::Vbr).collect();
        let be: Vec<VcId> = p.vcs_for(TrafficClass::BestEffort).collect();
        for vc in &rt {
            prop_assert!(p.class_of(*vc).is_real_time());
        }
        for vc in &be {
            prop_assert!(!p.class_of(*vc).is_real_time());
        }
    }

    /// Flitify always produces exactly one head and one tail, in order,
    /// covering `msg_len` flits.
    #[test]
    fn flitify_is_well_formed(len in 1u32..500) {
        let mut template = flit(FlitKind::Head, 10.0, 0);
        template.msg_len = len;
        let flits = Flit::flitify(template);
        prop_assert_eq!(flits.len(), len as usize);
        prop_assert!(flits[0].kind.is_head());
        prop_assert!(flits[len as usize - 1].kind.is_tail());
        let heads = flits.iter().filter(|f| f.kind.is_head()).count();
        let tails = flits.iter().filter(|f| f.kind.is_tail()).count();
        prop_assert_eq!(heads, 1);
        prop_assert_eq!(tails, 1);
        for (i, f) in flits.iter().enumerate() {
            prop_assert_eq!(f.seq_in_msg as usize, i);
        }
    }

    /// The Virtual Clock scheduler is work-conserving: whenever any VC is
    /// eligible, it serves one — and it never serves an empty VC.
    #[test]
    fn virtual_clock_is_work_conserving(
        arrivals in proptest::collection::vec((0usize..4, 1.0f64..1000.0), 1..200),
    ) {
        let mut s = MuxScheduler::new(SchedulerKind::VirtualClock, 4);
        let mut queued = [0u32; 4];
        for (vc, vtick) in &arrivals {
            s.on_arrival(*vc, Cycles(0), &flit(FlitKind::HeadTail, *vtick, *vc as u32));
            queued[*vc] += 1;
        }
        let total: u32 = queued.iter().sum();
        for _ in 0..total {
            let eligible: Vec<bool> = queued.iter().map(|&q| q > 0).collect();
            let vc = s.choose(&eligible).expect("work conservation");
            prop_assert!(queued[vc] > 0);
            queued[vc] -= 1;
            s.on_service(vc);
        }
        prop_assert!(queued.iter().all(|&q| q == 0));
    }

    /// Under persistent backlog, Virtual Clock shares bandwidth in
    /// proportion to the configured rates (the paper's soft guarantee).
    #[test]
    fn virtual_clock_shares_by_rate(ratio in 2u32..8) {
        let mut s = MuxScheduler::new(SchedulerKind::VirtualClock, 2);
        let slow_tick = 1000.0;
        let fast_tick = slow_tick / f64::from(ratio);
        let n = 2000u32;
        s.on_arrival(0, Cycles(0), &flit(FlitKind::Head, slow_tick, 0));
        s.on_arrival(1, Cycles(0), &flit(FlitKind::Head, fast_tick, 1));
        for _ in 1..n {
            s.on_arrival(0, Cycles(0), &flit(FlitKind::Body, slow_tick, 0));
            s.on_arrival(1, Cycles(0), &flit(FlitKind::Body, fast_tick, 1));
        }
        let mut served = [0u32; 2];
        for _ in 0..n {
            let vc = s.choose(&[true, true]).expect("backlogged");
            served[vc] += 1;
            s.on_service(vc);
        }
        let measured = f64::from(served[1]) / f64::from(served[0]);
        prop_assert!(
            (measured - f64::from(ratio)).abs() / f64::from(ratio) < 0.25,
            "expected ratio {ratio}, measured {measured:.2} ({served:?})"
        );
    }

    /// Every discipline in the scheduler zoo is work-conserving: whenever
    /// any VC is eligible, one is served — and never an empty one.
    #[test]
    fn scheduler_zoo_is_work_conserving(
        kind_idx in 0usize..6,
        arrivals in proptest::collection::vec((0usize..4, 1.0f64..1000.0), 1..200),
    ) {
        let kind = [
            SchedulerKind::VirtualClock,
            SchedulerKind::Fifo,
            SchedulerKind::RoundRobin,
            SchedulerKind::Wfq,
            SchedulerKind::Drr,
            SchedulerKind::Scfq,
        ][kind_idx];
        let mut s = MuxScheduler::new(kind, 4);
        let mut queued = [0u32; 4];
        for (vc, vtick) in &arrivals {
            s.on_arrival(*vc, Cycles(0), &flit(FlitKind::HeadTail, *vtick, *vc as u32));
            queued[*vc] += 1;
        }
        let total: u32 = queued.iter().sum();
        for _ in 0..total {
            let eligible: Vec<bool> = queued.iter().map(|&q| q > 0).collect();
            let vc = s.choose(&eligible).expect("work conservation");
            prop_assert!(queued[vc] > 0, "{kind:?} granted an empty VC");
            queued[vc] -= 1;
            s.on_service(vc);
        }
        prop_assert!(queued.iter().all(|&q| q == 0));
    }

    /// The rate-aware fair-queueing disciplines (WFQ, SCFQ) share a
    /// backlogged link in proportion to the configured rates, like
    /// Virtual Clock does.
    #[test]
    fn fair_queueing_zoo_shares_by_rate(kind_idx in 0usize..2, ratio in 2u32..8) {
        let kind = [SchedulerKind::Wfq, SchedulerKind::Scfq][kind_idx];
        let mut s = MuxScheduler::new(kind, 2);
        let slow_tick = 1000.0;
        let fast_tick = slow_tick / f64::from(ratio);
        let n = 2000u32;
        s.on_arrival(0, Cycles(0), &flit(FlitKind::Head, slow_tick, 0));
        s.on_arrival(1, Cycles(0), &flit(FlitKind::Head, fast_tick, 1));
        for _ in 1..n {
            s.on_arrival(0, Cycles(0), &flit(FlitKind::Body, slow_tick, 0));
            s.on_arrival(1, Cycles(0), &flit(FlitKind::Body, fast_tick, 1));
        }
        let mut served = [0u32; 2];
        for _ in 0..n {
            let vc = s.choose(&[true, true]).expect("backlogged");
            served[vc] += 1;
            s.on_service(vc);
        }
        let measured = f64::from(served[1]) / f64::from(served[0]);
        prop_assert!(
            (measured - f64::from(ratio)).abs() / f64::from(ratio) < 0.25,
            "{kind:?}: expected ratio {ratio}, measured {measured:.2} ({served:?})"
        );
    }

    /// DRR ignores rates entirely: with a fixed quantum both backlogged
    /// VCs get equal service no matter how skewed their vticks are.
    #[test]
    fn drr_splits_evenly_regardless_of_rate(ratio in 2u32..8) {
        let mut s = MuxScheduler::new(SchedulerKind::Drr, 2);
        let slow_tick = 1000.0;
        let fast_tick = slow_tick / f64::from(ratio);
        let n = 2000u32;
        for i in 0..n {
            let k = if i == 0 { FlitKind::Head } else { FlitKind::Body };
            s.on_arrival(0, Cycles(0), &flit(k, slow_tick, 0));
            s.on_arrival(1, Cycles(0), &flit(k, fast_tick, 1));
        }
        let mut served = [0u32; 2];
        for _ in 0..n {
            let vc = s.choose(&[true, true]).expect("backlogged");
            served[vc] += 1;
            s.on_service(vc);
        }
        prop_assert!(served[0] == served[1], "DRR must split evenly: {served:?}");
    }

    /// The calendar pops events in non-decreasing time order, FIFO within
    /// a cycle.
    #[test]
    fn calendar_orders_events(times in proptest::collection::vec(0u64..10_000, 1..300)) {
        let mut cal = Calendar::new();
        for (i, t) in times.iter().enumerate() {
            cal.schedule(Cycles(*t), i);
        }
        let mut last: Option<(Cycles, usize)> = None;
        while let Some((at, idx)) = cal.pop() {
            if let Some((lat, lidx)) = last {
                prop_assert!(at >= lat);
                if at == lat {
                    prop_assert!(idx > lidx, "FIFO within a cycle");
                }
            }
            last = Some((at, idx));
        }
    }

    /// Welford statistics agree with the two-pass computation on random
    /// samples.
    #[test]
    fn running_stats_match_two_pass(xs in proptest::collection::vec(-1e6f64..1e6, 2..500)) {
        let s: RunningStats = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        prop_assert!((s.mean() - mean).abs() <= 1e-6 * mean.abs().max(1.0));
        prop_assert!((s.variance() - var).abs() <= 1e-6 * var.abs().max(1.0));
    }

    /// Time base round trips cycles ↔ wall clock within rounding error.
    #[test]
    fn timebase_roundtrip(ms in 0.001f64..10_000.0) {
        let tb = TimeBase::from_link(400e6, 32);
        let c = tb.cycles_from_ms(ms);
        let back = tb.cycles_to_ms(c);
        // Half a cycle of rounding is 40 ns.
        prop_assert!((back - ms).abs() <= tb.ns_per_cycle() * 1e-6);
    }

    /// Normal samples have the right first two moments for arbitrary
    /// parameters.
    #[test]
    fn normal_moments(mean in -1e4f64..1e4, sd in 0.1f64..1e3, seed in 0u64..1000) {
        let d = Normal::new(mean, sd);
        let mut rng = SimRng::seed_from(seed);
        let n = 20_000;
        let mut stats = RunningStats::new();
        for _ in 0..n {
            stats.push(d.sample(&mut rng));
        }
        prop_assert!((stats.mean() - mean).abs() < 5.0 * sd / (n as f64).sqrt() + 1e-9);
        prop_assert!((stats.std_dev() - sd).abs() / sd < 0.1);
    }

    /// Fat-tree routes always terminate and respect the two-hop bound.
    #[test]
    fn fat_tree_routes_terminate(
        leaves in 2u32..6,
        roots in 1u32..4,
        endpoints in 1u32..4,
    ) {
        use topo::Topology;
        let t = Topology::fat_tree(leaves, roots, endpoints);
        let n = t.node_count() as u32;
        for s in 0..n {
            for d in 0..n {
                if s == d {
                    continue;
                }
                let hops = t.hops(NodeId(s), NodeId(d));
                prop_assert!(hops == 0 || hops == 2, "fat-tree hop count {hops}");
            }
        }
    }

    /// Fat-mesh routes terminate for arbitrary grid shapes.
    #[test]
    fn fat_mesh_routes_terminate(
        w in 1u32..5,
        h in 1u32..5,
        fat in 1u32..3,
        endpoints in 1u32..3,
    ) {
        prop_assume!(w * h >= 2);
        use topo::Topology;
        let t = Topology::fat_mesh(w, h, fat, endpoints);
        let n = t.node_count() as u32;
        let max_hops = (w - 1) + (h - 1);
        for s in 0..n {
            for d in 0..n {
                if s == d {
                    continue;
                }
                prop_assert!(t.hops(NodeId(s), NodeId(d)) <= max_hops);
            }
        }
    }

    /// FIFO ties (equal stamps) rotate deterministically through the VCs:
    /// serving a tied winner moves the tie-break cursor past it, so every
    /// VC is visited exactly once per round instead of pinning to the
    /// lowest index.
    #[test]
    fn fifo_tie_break_is_deterministic(n_vcs in 2usize..8) {
        let mut s = MuxScheduler::new(SchedulerKind::Fifo, n_vcs);
        for vc in 0..n_vcs {
            // Two tied flits per VC so every VC stays eligible for a full
            // rotation.
            s.on_arrival(vc, Cycles(7), &flit(FlitKind::HeadTail, 1.0, vc as u32));
            s.on_arrival(vc, Cycles(7), &flit(FlitKind::HeadTail, 1.0, vc as u32));
        }
        let mut eligible = vec![true; n_vcs];
        for round in 0..2 * n_vcs {
            for (vc, e) in eligible.iter_mut().enumerate() {
                *e = s.pending(vc) > 0;
            }
            let pick = s.choose(&eligible);
            prop_assert_eq!(pick, Some((round + 1) % n_vcs));
            s.on_service(pick.unwrap());
        }
    }

    /// Stream workloads conserve frame bytes: the flits of each frame's
    /// messages sum to the frame size in flits.
    #[test]
    fn stream_messages_cover_frames(seed in 0u64..500) {
        use traffic::{RealTimeStream, StreamClass, WorkloadSpec};
        let spec = WorkloadSpec::paper_default();
        let mut s = RealTimeStream::new(
            &spec,
            StreamClass::Vbr,
            StreamId(0),
            NodeId(0),
            NodeId(1),
            VcId(0),
            VcId(1),
            Cycles(0),
        );
        let mut rng = SimRng::seed_from(seed);
        let mut next_id = 0u64;
        // Walk two full frames.
        for _ in 0..2 {
            let first = s.next_message(&mut rng, &mut next_id);
            let msgs = first.flits[0].msgs_in_frame;
            let mut flits = first.flits.len() as u32;
            for k in 1..msgs {
                let m = s.next_message(&mut rng, &mut next_id);
                prop_assert_eq!(m.flits[0].msg_seq_in_frame, k);
                flits += m.flits.len() as u32;
            }
            // Full messages except possibly the last.
            prop_assert!(flits > (msgs - 1) * spec.msg_flits);
            prop_assert!(flits <= msgs * spec.msg_flits);
        }
    }

    /// Histogram percentiles agree with the exact sorted-sample quantile
    /// to within one bucket width for in-range samples. Both sides use
    /// the same rank convention (`ceil(p/100 · n)`, clamped to at least
    /// rank 1), so the bucket's linear interpolation is the only source
    /// of error.
    #[test]
    fn histogram_percentile_matches_exact_quantile(
        xs in proptest::collection::vec(0.0f64..100.0, 1..400),
        buckets in 1usize..200,
        p in 0.0f64..100.0,
    ) {
        use netsim::Histogram;
        let mut h = Histogram::new(0.0, 100.0, buckets);
        for &x in &xs {
            h.record(x);
        }
        let mut sorted = xs.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = ((p / 100.0 * sorted.len() as f64).ceil().max(1.0) as usize).min(sorted.len());
        let exact = sorted[rank - 1];
        let width = 100.0 / buckets as f64;
        let approx = h.percentile(p);
        prop_assert!(
            (approx - exact).abs() <= width + 1e-9,
            "p{p}: histogram {approx} vs exact {exact} (bucket width {width})"
        );
        // The extremes bracket the samples: p0 at or below the minimum's
        // bucket ceiling, p100 at or above the maximum.
        prop_assert!(h.percentile(100.0) + 1e-9 >= exact.min(*sorted.last().unwrap()));
    }

    /// Out-of-range samples clamp percentiles to the histogram bounds
    /// instead of extrapolating.
    #[test]
    fn histogram_percentile_clamps_out_of_range(
        below in 1usize..20,
        above in 1usize..20,
    ) {
        use netsim::Histogram;
        let mut h = Histogram::new(0.0, 10.0, 16);
        for _ in 0..below {
            h.record(-5.0);
        }
        for _ in 0..above {
            h.record(25.0);
        }
        prop_assert_eq!(h.underflow(), below as u64);
        prop_assert_eq!(h.overflow(), above as u64);
        prop_assert_eq!(h.percentile(0.0).to_bits(), 0.0f64.to_bits());
        prop_assert_eq!(h.percentile(100.0).to_bits(), 10.0f64.to_bits());
    }
}

// The simulation properties below drive full cycle-accurate networks, so
// each case costs real wall-clock time; the case count is capped.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// `Network::run_until`'s idle-cycle jump must be unobservable: a
    /// naive cycle-by-cycle run of an identically-built network reaches
    /// the same end state (deliveries, jitter summary, best-effort
    /// latency) bit for bit. The jumped-over cycles have no flit anywhere
    /// in the system, so nothing can act in them — credits still in
    /// flight are drained by the first post-jump delivery phase.
    #[test]
    fn idle_jump_matches_exhaustive_stepping(
        seed in 0u64..1_000_000,
        load_pct in 10u32..45,
    ) {
        use mediaworm::{Network, RouterConfig};
        use topo::Topology;
        use traffic::{StreamClass, WorkloadBuilder};

        let build = || {
            WorkloadBuilder::new(8, VcPartition::from_mix(16, 80.0, 20.0))
                .load(f64::from(load_pct) / 100.0)
                .mix(80.0, 20.0)
                .real_time_class(StreamClass::Vbr)
                .seed(seed)
                .build()
        };
        let topology = Topology::single_switch(8);
        let cfg = RouterConfig::default();
        let mut jumped = Network::new(&topology, build(), &cfg);
        let mut naive = Network::new(&topology, build(), &cfg);
        let tb = jumped.timebase();
        let warmup = tb.cycles_from_ms(2.0);
        let end = tb.cycles_from_ms(8.0);
        jumped.set_warmup_end(warmup);
        naive.set_warmup_end(warmup);
        jumped.run_until(end);
        naive.run_until_exhaustive(end);

        prop_assert_eq!(jumped.injected_msgs(), naive.injected_msgs());
        prop_assert_eq!(jumped.delivered_msgs(), naive.delivered_msgs());
        prop_assert_eq!(jumped.delivered_flits(), naive.delivered_flits());
        prop_assert_eq!(jumped.flits_in_flight(), naive.flits_in_flight());
        let (j, n) = (jumped.delivery().summary(), naive.delivery().summary());
        prop_assert_eq!(j.intervals, n.intervals);
        prop_assert_eq!(j.frames, n.frames);
        prop_assert_eq!(j.mean_ms.to_bits(), n.mean_ms.to_bits());
        prop_assert_eq!(j.std_ms.to_bits(), n.std_ms.to_bits());
        prop_assert_eq!(j.max_ms.to_bits(), n.max_ms.to_bits());
        prop_assert_eq!(j.p99_ms.to_bits(), n.p99_ms.to_bits());
        prop_assert_eq!(jumped.latency().count(), naive.latency().count());
        prop_assert_eq!(
            jumped.latency().mean_us().to_bits(),
            naive.latency().mean_us().to_bits()
        );
    }

    /// The occupancy-driven active sets must be unobservable: stepping
    /// with them (`run_until`) and with the full-scan reference
    /// (`run_until_reference`) reaches the same end state bit for bit,
    /// for arbitrary seeds and loads across the operating range.
    #[test]
    fn active_set_stepping_matches_full_scan_reference(
        seed in 0u64..1_000_000,
        load_pct in 20u32..97,
    ) {
        use mediaworm::{Network, RouterConfig};
        use topo::Topology;
        use traffic::{StreamClass, WorkloadBuilder};

        let build = || {
            WorkloadBuilder::new(8, VcPartition::from_mix(16, 80.0, 20.0))
                .load(f64::from(load_pct) / 100.0)
                .mix(80.0, 20.0)
                .real_time_class(StreamClass::Vbr)
                .seed(seed)
                .build()
        };
        let topology = Topology::single_switch(8);
        let cfg = RouterConfig::default();
        let mut active = Network::new(&topology, build(), &cfg);
        let mut reference = Network::new(&topology, build(), &cfg);
        let tb = active.timebase();
        let warmup = tb.cycles_from_ms(2.0);
        let end = tb.cycles_from_ms(8.0);
        active.set_warmup_end(warmup);
        reference.set_warmup_end(warmup);
        active.run_until(end);
        reference.run_until_reference(end);

        prop_assert_eq!(active.injected_msgs(), reference.injected_msgs());
        prop_assert_eq!(active.delivered_msgs(), reference.delivered_msgs());
        prop_assert_eq!(active.delivered_flits(), reference.delivered_flits());
        prop_assert_eq!(active.flits_in_flight(), reference.flits_in_flight());
        prop_assert_eq!(active.counters(), reference.counters());
        prop_assert_eq!(active.alloc_diag(), reference.alloc_diag());
        let (a, r) = (active.delivery().summary(), reference.delivery().summary());
        prop_assert_eq!(a.intervals, r.intervals);
        prop_assert_eq!(a.frames, r.frames);
        prop_assert_eq!(a.mean_ms.to_bits(), r.mean_ms.to_bits());
        prop_assert_eq!(a.std_ms.to_bits(), r.std_ms.to_bits());
        prop_assert_eq!(a.max_ms.to_bits(), r.max_ms.to_bits());
        prop_assert_eq!(a.p99_ms.to_bits(), r.p99_ms.to_bits());
        prop_assert_eq!(active.latency().count(), reference.latency().count());
        prop_assert_eq!(
            active.latency().mean_us().to_bits(),
            reference.latency().mean_us().to_bits()
        );
    }
}
