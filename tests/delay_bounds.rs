//! The delay-bound oracle vs. the simulator.
//!
//! Network calculus gives every real-time stream an analytic worst-case
//! latency (see `crates/calculus` and `mediaworm::bounds`); the simulator
//! measures what actually happened. `observed ≤ bound` must hold on every
//! healthy run — and, just as importantly, must *fail* when the fabric is
//! sabotaged, which the credit-starvation mutation test proves. A bound
//! oracle that can't catch a broken network isn't checking anything.

use flitnet::VcPartition;
use mediaworm::{sim, BoundsOracle, Network, RouterConfig, SchedulerKind, SimOpts};
use topo::Topology;
use traffic::{PolicingMode, StreamClass, Workload, WorkloadBuilder};

/// All the rate-isolating disciplines (FIFO is the deliberate outlier:
/// with unregulated best-effort cross traffic it has no bound at all).
const ISOLATING: [SchedulerKind; 5] = [
    SchedulerKind::VirtualClock,
    SchedulerKind::Wfq,
    SchedulerKind::Scfq,
    SchedulerKind::Drr,
    SchedulerKind::RoundRobin,
];

fn cbr_workload(load: f64, seed: u64) -> Workload {
    WorkloadBuilder::new(8, VcPartition::all_real_time(16))
        .load(load)
        .mix(100.0, 0.0)
        .real_time_class(StreamClass::Cbr)
        .seed(seed)
        .build()
}

fn fig3_workload(load: f64, seed: u64, policing: PolicingMode) -> Workload {
    WorkloadBuilder::new(8, VcPartition::from_mix(16, 80.0, 20.0))
        .load(load)
        .mix(80.0, 20.0)
        .real_time_class(StreamClass::Vbr)
        .policing(policing)
        .seed(seed)
        .build()
}

/// CBR without policing is the `guaranteed` case: the envelope is the
/// generator's literal schedule, so a violation falsifies the simulator.
/// Every isolating scheduler at a mid and a high fig. 3 load must come
/// back clean.
#[test]
fn cbr_bounds_hold_for_every_isolating_scheduler() {
    let topology = Topology::single_switch(8);
    for kind in ISOLATING {
        for &load in &[0.6, 0.9] {
            let out = sim::run_opts(
                &topology,
                cbr_workload(load, 42),
                &RouterConfig::default().scheduler(kind),
                0.005,
                0.015,
                SimOpts::standard().bounds(),
            );
            let report = out.bounds.expect("bounds audit requested");
            let what = format!("{kind:?} load {load}");
            assert!(out.delivered_msgs > 0, "{what}: traffic must flow");
            assert!(
                report.streams.iter().all(|s| s.guaranteed),
                "{what}: CBR without policing is a provable envelope"
            );
            assert!(
                report.streams.iter().any(|s| s.bound_cycles.is_some()),
                "{what}: the analysis must bound some streams"
            );
            assert!(
                report.violations.is_empty(),
                "{what}: observed must stay under the bound: {:?}",
                report.violations
            );
            // The bound is an upper bound, not an estimate: whenever both
            // sides exist, tightness stays in (0, 1].
            for s in &report.streams {
                if let Some(t) = s.tightness() {
                    assert!(
                        t > 0.0 && t <= 1.0,
                        "{what}: stream {} tightness {t} outside (0, 1]",
                        s.stream
                    );
                }
            }
        }
    }
}

/// The fig. 3 mixed workload (VBR 80:20 with best-effort) across the
/// policing ablation. VBR streams are modelled by their negotiated
/// envelope (`guaranteed: false`), and the bounds still hold empirically
/// with room to spare.
#[test]
fn fig3_mixed_bounds_hold_across_policing_modes() {
    let topology = Topology::single_switch(8);
    for mode in PolicingMode::ALL {
        let out = sim::run_opts(
            &topology,
            fig3_workload(0.9, 42, mode),
            &RouterConfig::default(),
            0.005,
            0.015,
            SimOpts::standard().bounds(),
        );
        let report = out.bounds.expect("bounds audit requested");
        assert!(out.delivered_msgs > 0, "policing {mode}: traffic must flow");
        assert!(
            report.streams.iter().any(|s| s.bound_cycles.is_some()),
            "policing {mode}: Virtual Clock must bound the VBR streams"
        );
        assert_eq!(
            report.guaranteed_violations().count(),
            0,
            "policing {mode}: no provable-envelope violations"
        );
        assert!(
            report.violations.is_empty(),
            "policing {mode}: VBR bounds expected to hold empirically: {:?}",
            report.violations
        );
    }
}

/// FIFO offers real-time traffic no isolation from best-effort floods:
/// with 8 nodes of unregulated cross traffic every port can saturate, so
/// the analysis must refuse to produce a number at all.
#[test]
fn fifo_with_best_effort_has_no_finite_bounds() {
    let topology = Topology::single_switch(8);
    let out = sim::run_opts(
        &topology,
        fig3_workload(0.9, 42, PolicingMode::Off),
        &RouterConfig::default().scheduler(SchedulerKind::Fifo),
        0.005,
        0.015,
        SimOpts::standard().bounds(),
    );
    let report = out.bounds.expect("bounds audit requested");
    assert!(
        report.streams.iter().all(|s| s.bound_cycles.is_none()),
        "FIFO + unregulated best-effort must be unbounded"
    );
    assert!(report.violations.is_empty(), "no bound, nothing to violate");
}

/// The mutation test: sabotage flow control and the oracle must fire.
/// Zeroing the credits of one ejection-port VC before any traffic flows
/// starves it forever (endpoints never return credits), so messages
/// routed there are never delivered. A max-latency check alone would
/// vacuously pass — the stuck-message check is what catches it.
#[test]
fn credit_starvation_trips_the_oracle() {
    let topology = Topology::single_switch(8);
    let cfg = RouterConfig::default();
    // Low load so every stream gets a finite bound (no saturated VCs).
    let wl = || cbr_workload(0.2, 7);

    let oracle = BoundsOracle::new(&topology, &wl(), &cfg).expect("feedforward");
    assert!(
        oracle.bounds().iter().all(|b| b.bound_cycles.is_some()),
        "low-load CBR must be fully bounded"
    );
    let infos = wl().stream_infos().to_vec();
    let victim = infos[0];
    let (router, port) = topology.attachment(victim.dest);

    // Healthy control: same run, no sabotage, audit comes back clean.
    // CBR streams stagger their first frame across the 33 ms interval,
    // so the run must cover at least one full interval for the victim
    // stream to inject at all.
    let mut healthy = Network::new(&topology, wl(), &cfg);
    let end = healthy.timebase().cycles_from_secs(0.04);
    healthy.run_until(end);
    let clean = oracle.report(&healthy, end);
    assert!(
        clean.violations.is_empty(),
        "healthy fabric must audit clean: {:?}",
        clean.violations
    );

    // Mutant: the victim stream's ejection VC never has credits.
    let mut broken = Network::new(&topology, wl(), &cfg);
    broken.inject_credit_starvation(router, port, victim.vc_out);
    broken.run_until(end);
    let report = oracle.report(&broken, end);
    let stuck: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.kind == mediaworm::BoundViolationKind::Stuck)
        .collect();
    assert!(
        !stuck.is_empty(),
        "starved fabric must produce stuck-message violations"
    );
    assert!(
        stuck.iter().any(|v| v.guaranteed),
        "the starved CBR streams are guaranteed — their violation is load-bearing"
    );
    // Output VCs are allocated dynamically (vc_out is a preference), so
    // the stranded worm is whichever stream's message claimed the starved
    // VC — but it must be one routed to the sabotaged ejection port.
    assert!(
        stuck
            .iter()
            .any(|v| infos[v.stream as usize].dest == victim.dest),
        "a stream routed to the starved port must be among the violations: {stuck:?}"
    );
}

/// The audit's observation state (per-stream latency statistics and the
/// outstanding-message FIFOs) lives in the snapshot: a run restored from
/// a mid-run checkpoint must produce the byte-identical report.
#[test]
fn bounds_observations_survive_snapshot_round_trip() {
    let topology = Topology::single_switch(8);
    let cfg = RouterConfig::default();
    let wl = || cbr_workload(0.6, 11);
    let oracle = BoundsOracle::new(&topology, &wl(), &cfg).expect("feedforward");

    let mut full = Network::new(&topology, wl(), &cfg);
    let tb = full.timebase();
    let warmup = tb.cycles_from_secs(0.0005);
    let mid = tb.cycles_from_secs(0.002);
    let end = tb.cycles_from_secs(0.004);
    full.set_warmup_end(warmup);
    full.run_until(end);
    assert!(
        full.rt_latency_stats().iter().any(|s| s.count() > 0),
        "the run must measure real-time latencies"
    );

    let mut pre = Network::new(&topology, wl(), &cfg);
    pre.set_warmup_end(warmup);
    pre.run_until(mid);
    let bytes = pre.snapshot();

    let mut post = Network::new(&topology, wl(), &cfg);
    post.restore(&bytes).expect("restore");
    post.run_until(end);

    assert!(
        full.snapshot() == post.snapshot(),
        "end-of-run snapshots (including audit state) must be identical"
    );
    let a = oracle.report(&full, end).to_json().to_string();
    let b = oracle.report(&post, end).to_json().to_string();
    assert_eq!(a, b, "restored run must reproduce the same bounds report");
}
